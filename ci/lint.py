#!/usr/bin/env python3
"""Repo lint gate: project-specific rules clang-tidy cannot express.

Rules (each has an id; suppress a finding with a trailing or preceding
`// delex-lint: allow(<rule-id>)` comment):

  reinterpret-cast       reinterpret_cast is confined to src/storage/ (the
                         binary-format layer owns byte reinterpretation);
                         anywhere else in src/ needs an allow comment.
  bare-assert            src/ uses DELEX_CHECK / DELEX_CHECK_MSG, never the
                         NDEBUG-stripped assert(): invariants must hold in
                         Release builds too.
  nondeterminism         std::random_device / rand / srand / system_clock
                         are banned in deterministic code (everything under
                         src/ except src/obs/, which timestamps logs).
                         Seeded PRNGs live in common/random.h.
  relative-include       #include "../..." breaks the single src/-rooted
                         include space.
  bits-include           <bits/...> is a libstdc++ internal.
  simd-intrinsics        raw x86 intrinsics (<immintrin.h>, _mm*_, __m128/
                         256/512) are confined to src/common/simd.h — all
                         other code goes through the delex::simd dispatch
                         kernels so the scalar tier stays complete.
  header-guard           headers under src/ carry the canonical
                         DELEX_<PATH>_H_ guard, derived from the path.
  shard-storage-include  src/shard/ drives whole engines through the
                         DelexEngine API and must never include the
                         storage internals (reuse_file.h, result_cache.h,
                         record_file.h) directly — the shard layer has no
                         business decoding on-disk records.
  resource-probe         raw process-resource reads (getrusage, /proc/self)
                         and signal-handler installation (sigaction,
                         SIGPROF, setitimer) are confined to src/obs/ —
                         everything else goes through obs/mem.h and
                         obs/profiler.h so there is exactly one sampler
                         and one SIGPROF owner per process.
  raw-mutex              std::mutex / lock_guard / unique_lock /
                         scoped_lock / condition_variable are confined to
                         src/common/mutex.h — everything else uses
                         delex::Mutex / MutexLock / CondVar so the clang
                         thread-safety annotations and the runtime
                         lock-order detector see every lock in the
                         process.
  sigprof-safety         the body of DelexSigprofHandler in
                         src/obs/profiler.cc must stay async-signal-safe:
                         no allocation, locks, logging, or stdio between
                         the definition and its closing brace.

Format rules (clang-format is not in the CI image, so the invariants that
matter are enforced here; .clang-format remains the source of truth for
developers with the binary):

  tab                    no hard tabs in C++ sources.
  trailing-whitespace    no trailing spaces.
  crlf                   LF line endings only.
  missing-final-newline  files end with exactly one newline.
  long-line              hard cap 100 columns (style target is 80; the cap
                         only guards against runaway lines).

Usage:
  ci/lint.py              lint the repo, exit 1 on any finding
  ci/lint.py --self-test  verify every rule fires on a violating input
"""

import argparse
import os
import re
import sys
import tempfile

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
LINT_DIRS = ("src", "tests", "bench", "fuzz", "examples")
ALLOW_RE = re.compile(r"//\s*delex-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
MAX_COLUMNS = 100


def allowed_rules(lines, idx):
    """Rule ids suppressed at line index `idx` (same or preceding line)."""
    rules = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def strip_strings_and_comments(line):
    """Crude but sufficient: blank out string/char literals and // tails."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    """src/delex/engine.h -> DELEX_DELEX_ENGINE_H_"""
    stem = rel_path[len("src/"):]
    return "DELEX_" + re.sub(r"[/.]", "_", stem).upper() + "_"


TOKEN_RULES = [
    # (rule id, regex, message, path predicate, match raw line)
    ("reinterpret-cast",
     re.compile(r"\breinterpret_cast\b"),
     "reinterpret_cast outside src/storage/ (byte punning stays in the "
     "format layer)",
     lambda p: p.startswith("src/") and not p.startswith("src/storage/"),
     False),
    ("bare-assert",
     re.compile(r"(?<![_A-Za-z0-9])assert\s*\("),
     "use DELEX_CHECK / DELEX_CHECK_MSG (assert vanishes under NDEBUG)",
     lambda p: p.startswith("src/"),
     False),
    ("nondeterminism",
     re.compile(r"std::random_device|(?<![_A-Za-z0-9])s?rand\s*\(|"
                r"system_clock"),
     "nondeterministic source in deterministic code (seed a PRNG from "
     "common/random.h instead)",
     lambda p: p.startswith("src/") and not p.startswith("src/obs/"),
     False),
    ("relative-include",
     re.compile(r"#\s*include\s+\"\.\./"),
     "relative include escapes the src/-rooted include space",
     lambda p: True,
     True),  # raw: the offending path is inside the quoted literal
    ("bits-include",
     re.compile(r"#\s*include\s+<bits/"),
     "libstdc++ internal header",
     lambda p: True,
     True),
    ("shard-storage-include",
     re.compile(r"#\s*include\s+\"storage/(reuse_file|result_cache|"
                r"record_file)\.h\""),
     "shard layer reaching into storage internals (go through the "
     "DelexEngine API)",
     lambda p: p.startswith("src/shard/"),
     True),  # raw: the offending path is inside the quoted literal
    ("resource-probe",
     re.compile(r"\bgetrusage\s*\(|/proc/self|\bsigaction\s*\(|"
                r"\bSIGPROF\b|\bsetitimer\s*\("),
     "raw resource probe / signal handler outside src/obs/ (use obs/mem.h "
     "and obs/profiler.h — one sampler, one SIGPROF owner per process)",
     lambda p: p.startswith("src/") and not p.startswith("src/obs/"),
     True),  # raw: /proc/self appears inside string literals
    ("simd-intrinsics",
     re.compile(r"#\s*include\s+<[a-z0-9]*intrin\.h>|_mm\d*_|"
                r"\b__m(128|256|512)i?\b"),
     "raw SIMD intrinsics outside src/common/simd.h (add a kernel to the "
     "delex::simd dispatch layer instead)",
     lambda p: p != "src/common/simd.h",
     True),  # raw: includes are matched inside the <...> literal
    ("raw-mutex",
     re.compile(r"std::[a-z_]*mutex\b|std::lock_guard\b|std::unique_lock\b|"
                r"std::scoped_lock\b|std::condition_variable(_any)?\b"),
     "raw standard-library lock outside src/common/mutex.h (use "
     "delex::Mutex / MutexLock / CondVar so the thread-safety annotations "
     "and the lock-order detector see every lock)",
     lambda p: p != "src/common/mutex.h",
     False),
]

# --- SIGPROF handler safety (region rule) ----------------------------------
#
# The sampling profiler's signal handler runs on whatever thread the timer
# interrupts, possibly while that thread holds the malloc lock or a
# delex::Mutex. Only lock-free atomics are legal inside it. The scan covers
# the DelexSigprofHandler definition through its closing column-0 brace.

SIGPROF_FILE = "src/obs/profiler.cc"
SIGPROF_START_RE = re.compile(r"\bDelexSigprofHandler\s*\(\s*int\b")
SIGPROF_BANNED_RE = re.compile(
    r"\bnew\b|\bdelete\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"\bfree\s*\(|\bstd::string\b|\bpush_back\b|\bemplace\w*\b|"
    r"\bDELEX_LOG\b|\bfopen\s*\(|\bfwrite\s*\(|\bfprintf\s*\(|"
    r"\bprintf\s*\(|\bsnprintf\s*\(|\bMutex\b|\bmutex\b|\block\b|"
    r"\bLock\b|\bunlock\b|\bUnlock\b|\bcondition_variable\b|\bWait\b|"
    r"\bnotify\w*\b")


def lint_sigprof_region(rel_path, lines):
    findings = []
    in_region = False
    found = False
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if not in_region:
            if SIGPROF_START_RE.search(code):
                in_region = found = True
            continue
        if line.startswith("}"):
            in_region = False
            continue
        m = SIGPROF_BANNED_RE.search(code)
        if m and "sigprof-safety" not in allowed_rules(lines, i):
            findings.append(
                (rel_path, i + 1, "sigprof-safety",
                 f"'{m.group(0)}' inside the SIGPROF handler (only lock-free "
                 "atomics are async-signal-safe here)"))
    if not found:
        findings.append(
            (rel_path, 1, "sigprof-safety",
             "DelexSigprofHandler definition not found — if the handler was "
             "renamed, update SIGPROF_START_RE so the safety scan still "
             "covers it"))
    return findings


def lint_file(rel_path, text):
    findings = []
    lines = text.split("\n")

    # --- format rules (raw text, never suppressible) ---
    if "\r" in text:
        findings.append((rel_path, 1, "crlf", "CRLF line ending"))
    if text and not text.endswith("\n"):
        findings.append((rel_path, len(lines), "missing-final-newline",
                         "no newline at end of file"))
    for i, line in enumerate(lines, 1):
        if "\t" in line:
            findings.append((rel_path, i, "tab", "hard tab"))
        if line.rstrip("\r") != line.rstrip():
            findings.append((rel_path, i, "trailing-whitespace",
                             "trailing whitespace"))
        if len(line.rstrip("\r")) > MAX_COLUMNS:
            findings.append((rel_path, i, "long-line",
                             f"line exceeds {MAX_COLUMNS} columns"))

    # --- token rules (string/comment-stripped, suppressible) ---
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        for rule, pattern, message, applies, raw in TOKEN_RULES:
            if not applies(rel_path):
                continue
            haystack = line if raw else code
            if pattern.search(haystack) and rule not in allowed_rules(lines, i):
                findings.append((rel_path, i + 1, rule, message))

    # --- header guards ---
    if rel_path.startswith("src/") and rel_path.endswith((".h", ".hpp")):
        guard = expected_guard(rel_path)
        if (f"#ifndef {guard}" not in text or f"#define {guard}" not in text):
            findings.append((rel_path, 1, "header-guard",
                             f"missing canonical include guard {guard}"))

    # --- async-signal-safety of the profiler's SIGPROF handler ---
    if rel_path == SIGPROF_FILE:
        findings.extend(lint_sigprof_region(rel_path, lines))
    return findings


def lint_tree(root):
    findings = []
    for top in LINT_DIRS:
        top_dir = os.path.join(root, top)
        if not os.path.isdir(top_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(top_dir):
            dirnames.sort()
            if os.path.basename(dirpath) == "corpus":
                dirnames[:] = []  # fuzz corpora are arbitrary bytes
                continue
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", newline="") as f:
                    findings.extend(lint_file(rel, f.read()))
    return findings


# --- self-test -------------------------------------------------------------

SELF_TEST_CASES = {
    # rule id -> (relative path, file content) that must fire exactly it
    "reinterpret-cast": (
        "src/delex/bad.cc",
        "void f(char* p) { auto* q = reinterpret_cast<int*>(p); }\n"),
    "bare-assert": (
        "src/delex/bad2.cc",
        "#include <cassert>\nvoid f(int x) { assert(x > 0); }\n"),
    "nondeterminism": (
        "src/text/bad.cc",
        "#include <random>\nint f() { std::random_device rd; return rd(); }\n"),
    "relative-include": (
        "tests/bad_test.cc",
        "#include \"../src/delex/engine.h\"\n"),
    "bits-include": (
        "src/common/bad.h",
        "#ifndef DELEX_COMMON_BAD_H_\n#define DELEX_COMMON_BAD_H_\n"
        "#include <bits/stdc++.h>\n#endif\n"),
    "shard-storage-include": (
        "src/shard/bad.cc",
        "#include \"storage/reuse_file.h\"\n"),
    "resource-probe": (
        "src/delex/bad_rusage.cc",
        "#include <sys/resource.h>\n"
        "long f() { rusage ru; getrusage(0, &ru); return ru.ru_maxrss; }\n"),
    "simd-intrinsics": (
        "src/text/bad_simd.cc",
        "#include <immintrin.h>\n"
        "int f(const char* p) { __m256i v = _mm256_set1_epi8(*p); "
        "return _mm256_movemask_epi8(v); }\n"),
    "raw-mutex": (
        "src/delex/bad_mutex.cc",
        "#include <mutex>\n"
        "std::mutex g_mu;\n"
        "void f() { std::lock_guard<std::mutex> lock(g_mu); }\n"),
    "sigprof-safety": (
        "src/obs/profiler.cc",
        "extern \"C\" void DelexSigprofHandler(int) {\n"
        "  std::string s;  // allocates inside a signal handler\n"
        "  (void)s;\n"
        "}\n"),
    "header-guard": (
        "src/common/bad2.h",
        "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n"),
    "tab": ("src/delex/bad3.cc", "int\tx = 0;\n"),
    "trailing-whitespace": ("src/delex/bad4.cc", "int x = 0;  \n"),
    "crlf": ("src/delex/bad5.cc", "int x = 0;\r\n"),
    "missing-final-newline": ("src/delex/bad6.cc", "int x = 0;"),
    "long-line": ("src/delex/bad7.cc", "// " + "x" * MAX_COLUMNS + "\n"),
}

SELF_TEST_CLEAN = {
    # must produce NO findings: suppressions, storage-layer casts, strings
    "src/storage/ok.cc":
        "void f(char* p) { auto* q = reinterpret_cast<long*>(p); }\n",
    "src/obs/ok.cc":
        "#include <chrono>\n"
        "long now() { return std::chrono::system_clock::now()"
        ".time_since_epoch().count(); }\n",
    "src/delex/ok.cc":
        "// delex-lint: allow(reinterpret-cast)\n"
        "void f(char* p) { auto* q = reinterpret_cast<int*>(p); }\n"
        "const char* s = \"reinterpret_cast assert( rand( \";\n"
        "// comment mentioning assert(x) and rand() is fine\n",
    "src/common/ok.h":
        "#ifndef DELEX_COMMON_OK_H_\n#define DELEX_COMMON_OK_H_\n"
        "#endif  // DELEX_COMMON_OK_H_\n",
    "src/shard/ok.cc":
        "#include \"storage/snapshot.h\"\n"  # snapshot API is fair game
        "#include \"delex/engine.h\"\n",
    "src/obs/ok_probe.cc":
        "#include <sys/resource.h>\n"
        "long f() { rusage ru; getrusage(0, &ru); return ru.ru_maxrss; }\n"
        "const char* kStatm = \"/proc/self/statm\";\n",
    "src/common/simd.h":
        "#ifndef DELEX_COMMON_SIMD_H_\n#define DELEX_COMMON_SIMD_H_\n"
        "#include <immintrin.h>\n"
        "inline int f(const char* p) { __m128i v = _mm_set1_epi8(*p); "
        "return _mm_movemask_epi8(v); }\n"
        "#endif  // DELEX_COMMON_SIMD_H_\n",
    "src/common/mutex.h":
        "#ifndef DELEX_COMMON_MUTEX_H_\n#define DELEX_COMMON_MUTEX_H_\n"
        "#include <mutex>\n"
        "namespace delex { class Mutex { std::mutex mu_; }; }\n"
        "// a comment mentioning std::mutex is fine anywhere\n"
        "#endif  // DELEX_COMMON_MUTEX_H_\n",
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="delex-lint-selftest-") as root:
        for rule, (rel, content) in SELF_TEST_CASES.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", newline="") as f:
                f.write(content)
        for rel, content in SELF_TEST_CLEAN.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", newline="") as f:
                f.write(content)

        findings = lint_tree(root)
        fired = {}
        for rel, _line, rule, _msg in findings:
            fired.setdefault(rel, set()).add(rule)

        for rule, (rel, _content) in SELF_TEST_CASES.items():
            if rule not in fired.get(rel, set()):
                failures.append(f"rule '{rule}' did not fire on {rel}")
        for rel in SELF_TEST_CLEAN:
            if fired.get(rel):
                failures.append(
                    f"clean file {rel} drew findings: {sorted(fired[rel])}")

    if failures:
        for f in failures:
            print(f"lint self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"lint self-test OK: {len(SELF_TEST_CASES)} rules fire, "
          f"{len(SELF_TEST_CLEAN)} clean files stay clean")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a violating input")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_tree(root)
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
