#!/usr/bin/env bash
# CI gate: Release build + full ctest + a quick identical-fraction bench
# smoke, an AddressSanitizer build + full ctest (the memory gate for the
# raw byte-passthrough in the reuse files), then a ThreadSanitizer build +
# full ctest. TSan is the race gate for the parallel page pipeline — a
# clean parallel_engine_test under TSan is a hard requirement for any
# change to src/delex or src/common/thread_pool.h.
#
# Usage: ci/check.sh [jobs]          (default: nproc)
#   DELEX_CI_TSAN_ONLY=1 ci/check.sh     # skip the Release and ASan legs
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_leg() {
  local name="$1" build_dir="$2"; shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

if [[ "${DELEX_CI_TSAN_ONLY:-0}" != "1" ]]; then
  run_leg "Release" build-release -DCMAKE_BUILD_TYPE=Release

  # Quick-mode smoke of the identical-page fast path: tiny corpus, but the
  # bench still runs fast-on vs fast-off end to end and self-checks
  # Theorem-1 equivalence per fraction.
  echo "=== Release: bench_identical_fraction smoke ==="
  smoke_json="$(DELEX_PAGES_DBLIFE=24 DELEX_SNAPSHOTS=3 \
    ./build-release/bench/bench_identical_fraction)"
  echo "${smoke_json}"
  if grep -q '"results_match": false' <<<"${smoke_json}"; then
    echo "FAIL: fast path changed extraction results" >&2
    exit 1
  fi

  # Traced smoke of the observability layer: a 3-snapshot parallel DBLife
  # run with tracing and run reports on. The trace must be valid JSON
  # (Perfetto-loadable) and every non-warm-up Delex report line must carry
  # finite predicted-vs-actual per-unit costs.
  echo "=== Release: traced dblife smoke ==="
  obs_tmp="$(mktemp -d)"
  DELEX_TRACE="${obs_tmp}/trace.json" \
    DELEX_STATS_JSON="${obs_tmp}/stats.jsonl" \
    DELEX_THREADS=2 \
    ./build-release/examples/dblife_portal 16 3 >/dev/null
  python3 -m json.tool "${obs_tmp}/trace.json" >/dev/null
  python3 - "${obs_tmp}/stats.jsonl" <<'EOF'
import json, math, sys

delex_lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = json.loads(raw)
        if line["solution"] != "Delex" or line["warmup"]:
            continue
        delex_lines += 1
        assert "optimizer" in line, "missing optimizer block"
        assert line["optimizer"]["assignment"], "empty matcher assignment"
        assert line["units"], "no per-unit rows"
        for unit in line["units"]:
            for key in ("predicted_us", "actual_us", "match_us",
                        "extract_us", "copy_us"):
                value = unit.get(key)
                assert isinstance(value, (int, float)) and math.isfinite(value), \
                    f"unit field {key} not finite: {value!r}"
assert delex_lines > 0, "no non-warm-up Delex report lines"
print(f"traced smoke OK: {delex_lines} Delex report lines")
EOF
  rm -rf "${obs_tmp}"

  # ASan guards the raw record passthrough (framed-byte copies, sidecar
  # index offsets) against out-of-bounds reads and leaks.
  run_leg "ASan" build-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDELEX_SANITIZE=address
fi

# TSan wants debug info and no sanitizer-hostile optimizations; O1 keeps
# the suite fast enough while preserving every instrumented access.
run_leg "TSan" build-tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDELEX_SANITIZE=thread

echo "=== all checks passed ==="
