#!/usr/bin/env bash
# CI gate. Legs, in order:
#
#   lint      ci/lint.py self-test + repo lint (always on; seconds).
#   clang     opportunistic, whenever the binaries exist: clang-format,
#             clang-tidy at zero warnings (--warnings-as-errors='*'),
#             and a clang++ build with -Werror=thread-safety checking
#             the DELEX_GUARDED_BY/DELEX_REQUIRES annotations.
#   Release   build + full ctest + bench/obs/metrics smokes + the
#             perf-regression gate over bench/baselines/.
#   fuzz      extended deterministic mutation budget for every fuzz
#             harness against the committed corpora (the per-harness
#             512-run replay already runs inside every ctest leg).
#   LockOrder RelWithDebInfo build + full ctest with DELEX_DEADLOCK=fatal:
#             any runtime lock-order inversion aborts the offending test.
#   UBSan     -fsanitize=undefined build + full ctest: the UB gate for
#             the decoder/arithmetic paths (no-recover: any UB aborts).
#   A+UBSan   -fsanitize=address,undefined build + full ctest: the
#             memory gate for the raw byte-passthrough in the reuse
#             files, with UB checking riding along.
#   TSan      -fsanitize=thread build + full ctest: the race gate for
#             the parallel page pipeline — a clean parallel_engine_test
#             under TSan is a hard requirement for any change to
#             src/delex or src/common/thread_pool.h.
#
# Usage: ci/check.sh [jobs]              (default: nproc)
#   DELEX_CI_FAST=1 ci/check.sh          # lint + Release build/ctest only
#   DELEX_CI_TSAN_ONLY=1 ci/check.sh     # skip everything but lint + TSan
#   DELEX_CI_CLANG=1 ci/check.sh         # force the clang legs even under
#                                        # DELEX_CI_FAST (skipped per-tool
#                                        # when a binary is missing)
#   DELEX_BENCH_BASELINE_UPDATE=1 ci/check.sh   # re-baseline the benches
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Every mktemp -d is registered here and removed on ANY exit, success or
# failure — a failing smoke must not leave /tmp litter behind.
CLEANUP_DIRS=()
cleanup() {
  if ((${#CLEANUP_DIRS[@]})); then
    rm -rf "${CLEANUP_DIRS[@]}"
  fi
}
trap cleanup EXIT
scratch_dir() {
  local dir
  dir="$(mktemp -d)"
  CLEANUP_DIRS+=("${dir}")
  echo "${dir}"
}

run_leg() {
  local name="$1" build_dir="$2"; shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

# --- lint: always on, fires before any compile ---------------------------
echo "=== lint: self-test ==="
python3 ci/lint.py --self-test
echo "=== lint: repo ==="
python3 ci/lint.py
# clang-based legs run whenever the binaries exist (the default CI image
# is gcc-only, so they are opportunistic). DELEX_CI_CLANG=1 forces them on
# even under DELEX_CI_FAST.
if [[ "${DELEX_CI_FAST:-0}" != "1" || "${DELEX_CI_CLANG:-0}" == "1" ]]; then
  if command -v clang-format >/dev/null; then
    echo "=== lint: clang-format ==="
    git ls-files 'src/*' 'tests/*' 'bench/*' 'fuzz/*' 'examples/*' \
      | grep -E '\.(cc|h|cpp|hpp)$' \
      | xargs clang-format --dry-run -Werror
  fi
  if command -v clang-tidy >/dev/null; then
    # Zero-warning gate: .clang-tidy enables bugprone-*, concurrency-*,
    # performance-*; --warnings-as-errors='*' promotes every finding.
    echo "=== lint: clang-tidy (zero warnings) ==="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    clang-tidy -p build-release --warnings-as-errors='*' \
      src/common/*.cc src/delex/*.cc src/obs/*.cc src/storage/*.cc
  else
    echo "=== clang-tidy not found: skipping tidy gate ==="
  fi
  if command -v clang++ >/dev/null; then
    # Thread-safety-analysis gate: CMakeLists adds -Wthread-safety
    # -Werror=thread-safety under clang, so this build fails on any
    # DELEX_GUARDED_BY / DELEX_REQUIRES violation. Build only — the ctest
    # coverage comes from the gcc legs.
    echo "=== clang: thread-safety-analysis build ==="
    cmake -B build-clang-tsa -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
    cmake --build build-clang-tsa -j "${JOBS}"
  else
    echo "=== clang++ not found: skipping thread-safety-analysis build ==="
  fi
fi

if [[ "${DELEX_CI_TSAN_ONLY:-0}" != "1" ]]; then
  run_leg "Release" build-release -DCMAKE_BUILD_TYPE=Release

  # Quick-mode smoke of the identical-page fast path: tiny corpus, but the
  # bench still runs fast-on vs fast-off end to end and self-checks
  # Theorem-1 equivalence per fraction.
  echo "=== Release: bench_identical_fraction smoke ==="
  smoke_json="$(DELEX_PAGES_DBLIFE=24 DELEX_SNAPSHOTS=3 \
    ./build-release/bench/bench_identical_fraction)"
  echo "${smoke_json}"
  if grep -q '"results_match": false' <<<"${smoke_json}"; then
    echo "FAIL: fast path changed extraction results" >&2
    exit 1
  fi
fi

if [[ "${DELEX_CI_FAST:-0}" == "1" ]]; then
  echo "=== DELEX_CI_FAST=1: skipping smokes, fuzz, and sanitizer legs ==="
  echo "=== fast checks passed ==="
  exit 0
fi

if [[ "${DELEX_CI_TSAN_ONLY:-0}" != "1" ]]; then
  # Scalar-dispatch leg: the full Release suite again with DELEX_SIMD=0,
  # so every kernel consumer (diff trim, suffix stream, digest check) is
  # also exercised through the scalar tier. Byte-identical results across
  # tiers are asserted in-process by simd_test and the paranoid oracle;
  # this leg catches anything only reachable through the env knob.
  echo "=== Release: ctest with DELEX_SIMD=0 (scalar kernels) ==="
  DELEX_SIMD=0 ctest --test-dir build-release --output-on-failure -j "${JOBS}"

  # Traced smoke of the observability layer: a 3-snapshot parallel DBLife
  # run with tracing and run reports on. The trace must be valid JSON
  # (Perfetto-loadable) and every non-warm-up Delex report line must carry
  # finite predicted-vs-actual per-unit costs.
  echo "=== Release: traced dblife smoke ==="
  obs_tmp="$(scratch_dir)"
  DELEX_TRACE="${obs_tmp}/trace.json" \
    DELEX_STATS_JSON="${obs_tmp}/stats.jsonl" \
    DELEX_THREADS=2 \
    ./build-release/examples/dblife_portal 16 3 >/dev/null
  python3 -m json.tool "${obs_tmp}/trace.json" >/dev/null
  python3 - "${obs_tmp}/stats.jsonl" <<'EOF'
import json, math, sys

delex_lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = json.loads(raw)
        if line["solution"] != "Delex" or line["warmup"]:
            continue
        delex_lines += 1
        assert "optimizer" in line, "missing optimizer block"
        assert line["optimizer"]["assignment"], "empty matcher assignment"
        assert line["units"], "no per-unit rows"
        for unit in line["units"]:
            for key in ("predicted_us", "actual_us", "match_us",
                        "extract_us", "copy_us"):
                value = unit.get(key)
                assert isinstance(value, (int, float)) and math.isfinite(value), \
                    f"unit field {key} not finite: {value!r}"
assert delex_lines > 0, "no non-warm-up Delex report lines"
print(f"traced smoke OK: {delex_lines} Delex report lines")
EOF

  # Profiled smoke (observability layer 4): a 3-generation parallel DBLife
  # run with the span profiler and memory sampler on. The folded profile
  # must be non-empty with a positive top-span count, every frame must be
  # a span name from the source tree's trace vocabulary, and /memz +
  # /profilez must be scrapeable live.
  echo "=== Release: profiled dblife smoke ==="
  prof_tmp="$(scratch_dir)"
  prof_port=19466
  DELEX_PROFILE="${prof_tmp}/profile.folded" \
    DELEX_PROFILE_HZ=997 \
    DELEX_MEM_SAMPLE_MS=20 \
    DELEX_METRICS_PORT="${prof_port}" \
    DELEX_METRICS_LINGER_MS=8000 \
    DELEX_THREADS=2 \
    ./build-release/examples/dblife_portal 128 3 >/dev/null &
  prof_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:${prof_port}/healthz" \
        >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  curl -fsS "http://127.0.0.1:${prof_port}/memz" -o "${prof_tmp}/memz.json"
  curl -fsS "http://127.0.0.1:${prof_port}/profilez" \
    -o "${prof_tmp}/profilez.txt"
  wait "${prof_pid}"
  python3 - "${prof_tmp}/memz.json" <<'EOF'
import json, sys

memz = json.load(open(sys.argv[1]))
for key in ("rss_bytes", "peak_rss_bytes", "tracked_bytes",
            "tracked_peak_bytes", "subsystems"):
    assert key in memz, f"/memz missing {key}"
assert memz["rss_bytes"] > 0, memz
tags = {s["tag"] for s in memz["subsystems"]}
assert {"snapshot", "matcher", "thread_pool"} <= tags, tags
print(f"memz OK: {len(memz['subsystems'])} subsystems")
EOF
  PROFILE_VOCAB="$(grep -rhoE 'DELEX_TRACE_SPAN\("[a-z_]+"' src \
    | sed 's/.*"\(.*\)"/\1/' | sort -u)" \
    python3 - "${prof_tmp}/profile.folded" <<'EOF'
import os, sys

vocab = set(os.environ["PROFILE_VOCAB"].split()) | {"(no_span)"}
lines = [l.rstrip("\n") for l in open(sys.argv[1]) if l.strip()]
assert lines, "folded profile is empty"
total = top = 0
for line in lines:
    path, count = line.rsplit(" ", 1)
    total += int(count)
    top = max(top, int(count))
    for frame in path.split(";"):
        assert frame in vocab, f"unknown span {frame!r} in {line!r}"
assert top > 0, "no stack accumulated a positive sample count"
print(f"profiled smoke OK: {len(lines)} stacks, {total} samples")
EOF

  # Sharded smoke: the same portal hash-partitioned into 4 engine shards
  # on a shared pool. Every non-warm-up Delex report line must carry the
  # schema-v5 merged view: num_shards, a 4-entry per-shard summary whose
  # pages and result_tuples fold exactly into the merged totals.
  echo "=== Release: sharded dblife smoke (DELEX_SHARDS=4) ==="
  shard_tmp="$(scratch_dir)"
  DELEX_SHARDS=4 \
    DELEX_THREADS=2 \
    DELEX_STATS_JSON="${shard_tmp}/stats.jsonl" \
    ./build-release/examples/dblife_portal 16 3 >/dev/null
  python3 - "${shard_tmp}/stats.jsonl" <<'EOF'
import json, sys

delex_lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = json.loads(raw)
        assert line["schema_version"] == 6, line["schema_version"]
        assert "resources" in line, "missing v6 resources block"
        assert line["resources"]["rss_bytes"] > 0, line["resources"]
        if line["solution"] != "Delex" or line["warmup"]:
            continue
        delex_lines += 1
        assert line["num_shards"] == 4, line
        shards = line["shards"]
        assert len(shards) == 4, shards
        for entry in shards:
            for key in ("shard", "pages", "pages_identical",
                        "result_tuples", "total_us", "reuse_corrupt_drops"):
                assert key in entry, f"shard summary missing {key}"
        assert [s["shard"] for s in shards] == [0, 1, 2, 3], shards
        assert sum(s["pages"] for s in shards) == line["pages"], line
        assert sum(s["result_tuples"] for s in shards) == \
            line["result_tuples"], line
assert delex_lines > 0, "no non-warm-up sharded Delex report lines"
print(f"sharded smoke OK: {delex_lines} merged report lines")
EOF

  # Metrics exposition smoke: run the portal with the stats server and the
  # periodic snapshot writer on, scrape /metrics and /healthz live with
  # curl, and validate the scrape against the Prometheus text-format
  # grammar (every line; cumulative monotone buckets; +Inf == _count).
  # DELEX_METRICS_LINGER_MS keeps the server up after the run finishes so
  # the scrape can never lose the race against a fast portal.
  echo "=== Release: metrics exposition smoke ==="
  metrics_tmp="$(scratch_dir)"
  metrics_port=19464
  DELEX_METRICS_PORT="${metrics_port}" \
    DELEX_METRICS_LINGER_MS=8000 \
    DELEX_METRICS_SNAPSHOT_MS=200 \
    DELEX_METRICS_SNAPSHOT_PATH="${metrics_tmp}/metrics.jsonl" \
    ./build-release/examples/dblife_portal 8 3 >/dev/null &
  portal_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:${metrics_port}/healthz" \
        >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  curl -fsS "http://127.0.0.1:${metrics_port}/healthz" | grep -q '^ok$'
  # The engine registers its histograms lazily: keep scraping until the
  # page-eval series shows up (the linger window keeps the server alive
  # even after a fast portal run finishes).
  for _ in $(seq 1 300); do
    if curl -fsS "http://127.0.0.1:${metrics_port}/metrics" \
        -o "${metrics_tmp}/metrics.prom" 2>/dev/null \
        && grep -q "page_eval" "${metrics_tmp}/metrics.prom"; then
      break
    fi
    sleep 0.1
  done
  if curl -fsS "http://127.0.0.1:${metrics_port}/no-such" \
      >/dev/null 2>&1; then
    echo "FAIL: stats server did not 404 an unknown path" >&2
    exit 1
  fi
  wait "${portal_pid}"
  python3 - "${metrics_tmp}/metrics.prom" <<'EOF'
import re, sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE = re.compile(
    r"^(" + NAME + r")(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? "
    r"(-?[0-9.eE+-]+|\+Inf)$")
LE = re.compile(r'le="([^"]+)"')

types = {}
buckets = {}   # family -> list of (le, cumulative) in exposition order
counts = {}
samples = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert len(parts) >= 3 and parts[1] in ("HELP", "TYPE"), line
            if parts[1] == "TYPE":
                assert parts[3] in ("counter", "gauge", "histogram"), line
                types[parts[2]] = parts[3]
            continue
        m = SAMPLE.match(line)
        assert m, f"malformed sample line: {line!r}"
        samples += 1
        name = m.group(1)
        family = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        assert family in types, f"sample without TYPE: {line!r}"
        if name.endswith("_bucket"):
            le = LE.search(m.group(2) or "")
            assert le, f"bucket without le label: {line!r}"
            bound = float("inf") if le.group(1) == "+Inf" else float(le.group(1))
            buckets.setdefault(family, []).append((bound, float(m.group(4))))
        elif name.endswith("_count") and types.get(family) == "histogram":
            counts[family] = float(m.group(4))
for family, rows in buckets.items():
    for (le1, c1), (le2, c2) in zip(rows, rows[1:]):
        assert le2 > le1 and c2 >= c1, f"non-monotone buckets in {family}"
    assert rows[-1][0] == float("inf"), f"missing +Inf bucket in {family}"
    assert rows[-1][1] == counts.get(family), f"+Inf != _count in {family}"
assert samples > 0 and buckets, "empty or histogram-free exposition"
assert any("page_eval" in f for f in buckets), "engine histograms missing"
print(f"metrics smoke OK: {samples} samples, {len(buckets)} histograms")
EOF
  python3 - "${metrics_tmp}/metrics.jsonl" <<'EOF'
import json, sys

lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        snap = json.loads(raw)
        assert "uptime_ms" in snap and "counters" in snap, "bad snapshot"
        assert "histograms" in snap, "snapshot without histograms"
        lines += 1
assert lines > 0, "snapshot writer produced no lines"
print(f"snapshot writer OK: {lines} lines")
EOF

  # Generation-history + introspection smoke: a 3-generation portal run
  # with the stats server up. TMPDIR points at CI scratch so the portal's
  # work dirs land there. Validates every task's history.jsonl at the
  # byte level (fixed-offset FNV-1a checksums, one record per generation,
  # monotone gap-free gens), scrapes /statusz and /varz live, streams
  # /history as NDJSON, and requires delex_inspect diff to attribute at
  # least one matcher switch to its audited cost margin.
  echo "=== Release: generation-history + introspection smoke ==="
  history_tmp="$(scratch_dir)"
  history_port=19465
  # 64 pages (not 16): at 16 every page is identical across days, the
  # optimizer never leaves DN, and there is no matcher switch to audit.
  TMPDIR="${history_tmp}" \
    DELEX_METRICS_PORT="${history_port}" \
    DELEX_METRICS_LINGER_MS=8000 \
    DELEX_THREADS=2 \
    ./build-release/examples/dblife_portal 64 3 >/dev/null &
  history_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:${history_port}/healthz" \
        >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  # The linger window keeps the endpoints alive after the run finishes
  # (but only until the process exits): poll /history until the final
  # task's store shows all three generations, scrape everything, THEN
  # wait for the portal.
  for _ in $(seq 1 300); do
    if curl -fsS "http://127.0.0.1:${history_port}/history" \
        -o "${history_tmp}/history.ndjson" 2>/dev/null \
        && [[ "$(wc -l < "${history_tmp}/history.ndjson")" -ge 3 ]]; then
      break
    fi
    sleep 0.1
  done
  curl -fsS "http://127.0.0.1:${history_port}/statusz" \
    -o "${history_tmp}/statusz.html"
  grep -q "<title>delex /statusz</title>" "${history_tmp}/statusz.html"
  grep -q "DELEX_HISTORY_RETAIN" "${history_tmp}/statusz.html"
  grep -q "Last generation" "${history_tmp}/statusz.html"
  curl -fsS "http://127.0.0.1:${history_port}/varz" \
    -o "${history_tmp}/varz.json"
  wait "${history_pid}"
  python3 - "${history_tmp}/varz.json" <<'EOF'
import json, sys

varz = json.load(open(sys.argv[1]))
for key in ("uptime_ms", "counters", "gauges", "histograms"):
    assert key in varz, f"/varz missing {key}"
print("varz OK")
EOF
  for task in talk chair advise; do
    python3 - "${history_tmp}/delex-dblife/delex-${task}/history.jsonl" 3 \
        <<'EOF'
import json, sys

FNV_OFFSET, FNV_PRIME, MASK = 0xCBF29CE484222325, 0x100000001B3, 2**64 - 1


def fnv1a64(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK
    return h


path, days = sys.argv[1], int(sys.argv[2])
gens = []
with open(path, "rb") as f:
    for raw in f:
        line = raw.rstrip(b"\n")
        assert line[:8] == b'{"crc":"', f"bad envelope prefix: {line[:8]!r}"
        assert line[24:32] == b'","rec":', f"bad rec marker: {line[24:32]!r}"
        assert line[-1:] == b"}", "envelope not closed"
        assert int(line[8:24], 16) == fnv1a64(line[32:-1]), \
            f"checksum mismatch in {path}"
        gens.append(json.loads(line[32:-1])["gen"])
assert gens == list(range(1, days + 1)), \
    f"{path}: want one record per generation 1..{days}, got {gens}"
print(f"history OK: {path} ({len(gens)} generations)")
EOF
  done
  python3 - "${history_tmp}/history.ndjson" <<'EOF'
import json, sys

FNV_OFFSET, FNV_PRIME, MASK = 0xCBF29CE484222325, 0x100000001B3, 2**64 - 1


def fnv1a64(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK
    return h


gens = []
with open(sys.argv[1], "rb") as f:
    for raw in f:
        line = raw.rstrip(b"\n")
        assert int(line[8:24], 16) == fnv1a64(line[32:-1]), \
            "/history line failed its checksum"
        gens.append(json.loads(line[32:-1])["gen"])
assert gens and gens == sorted(set(gens)), f"/history gens not monotone: {gens}"
print(f"/history endpoint OK: {len(gens)} records")
EOF
  inspect=./build-release/src/tools/delex_inspect
  switch_attributed=0
  for task in talk chair advise; do
    hist="${history_tmp}/delex-dblife/delex-${task}/history.jsonl"
    "${inspect}" summary "${hist}" >/dev/null
    "${inspect}" decisions "${hist}" 2 >/dev/null
    "${inspect}" diff "${hist}" >/dev/null  # default pair: last two gens
    diff_out="$("${inspect}" diff "${hist}" 1 2)"
    if grep -q "audited margin" <<<"${diff_out}"; then
      switch_attributed=1
      echo "--- ${task}: matcher switch attributed to audited margin"
      grep "switched" <<<"${diff_out}"
    fi
  done
  if [[ "${switch_attributed}" != "1" ]]; then
    echo "FAIL: no matcher switch attributed to an audited cost margin" >&2
    exit 1
  fi

  # Perf-regression gate: re-run the gated benches at the pinned
  # quick scale and compare against the committed baselines; the median
  # per-metric slowdown must stay within 15%. Re-baseline intentional perf
  # changes with DELEX_BENCH_BASELINE_UPDATE=1 ci/check.sh.
  echo "=== Release: bench baseline gate ==="
  bench_tmp="$(scratch_dir)"
  bench_env=(DELEX_PAGES_DBLIFE=24 DELEX_PAGES_WIKI=24 DELEX_SNAPSHOTS=3
             DELEX_PAGES_SYN1M=1200 DELEX_BENCH_REPS=2 DELEX_THREADS=1)
  env "${bench_env[@]}" ./build-release/bench/bench_identical_fraction \
    > "${bench_tmp}/identical_fraction.json"
  env "${bench_env[@]}" ./build-release/bench/bench_parallel_scaling \
    > "${bench_tmp}/parallel_scaling.json"
  env "${bench_env[@]}" ./build-release/bench/bench_matchers_micro \
    --benchmark_format=json --benchmark_min_time=0.05 \
    > "${bench_tmp}/matchers_micro.json" 2>/dev/null
  env "${bench_env[@]}" ./build-release/bench/bench_cost_drift \
    > "${bench_tmp}/cost_drift.json"
  env "${bench_env[@]}" ./build-release/bench/bench_shard_scaling \
    > "${bench_tmp}/shard_scaling.json"
  for bench in identical_fraction parallel_scaling matchers_micro \
               cost_drift shard_scaling; do
    python3 ci/bench_compare.py "bench/baselines/${bench}.json" \
      "${bench_tmp}/${bench}.json"
  done
  if [[ "${DELEX_BENCH_BASELINE_UPDATE:-0}" == "0" ]]; then
    # Self-test: the gate must actually fire on a synthetic 2x slowdown.
    if python3 ci/bench_compare.py bench/baselines/identical_fraction.json \
        "${bench_tmp}/identical_fraction.json" --inject-slowdown 2.0 \
        >/dev/null; then
      echo "FAIL: bench gate did not fire on injected 2x slowdown" >&2
      exit 1
    fi
    echo "bench gate self-test OK: injected 2x slowdown rejected"
  fi

  # Extended fuzz smoke: a bigger deterministic mutation budget than the
  # per-harness ctest replay, different seed, same committed corpora. Any
  # crash here is a real finding — minimize it, commit the input to
  # fuzz/corpus/<harness>/, and promote it into tests/corrupt_input_test.
  echo "=== Release: fuzz smoke ==="
  for harness in build-release/fuzz/fuzz_*; do
    name="$(basename "${harness}")"
    echo "--- ${name}"
    "${harness}" -runs=4096 -seed=1 "fuzz/corpus/${name}"
  done

  # Lock-order gate: the full suite with the runtime deadlock detector
  # promoted to fatal, so any lock-order inversion anywhere in the tree
  # aborts the offending test on the spot. RelWithDebInfo keeps the
  # detector compiled in (Release compiles it out of delex::Mutex).
  echo "=== LockOrder: configure ==="
  cmake -B build-lockorder -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "=== LockOrder: build ==="
  cmake --build build-lockorder -j "${JOBS}"
  echo "=== LockOrder: ctest with DELEX_DEADLOCK=fatal ==="
  DELEX_DEADLOCK=fatal ctest --test-dir build-lockorder \
    --output-on-failure -j "${JOBS}"

  # UBSan first (cheap instrumentation, isolates pure-UB findings), then
  # ASan+UBSan together: the memory gate for the raw byte passthrough in
  # the reuse files, with UB checks riding along. Both run with
  # no-recover, so any finding is a hard test failure.
  run_leg "UBSan" build-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDELEX_SANITIZE=ubsan
  run_leg "ASan+UBSan" build-asan-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDELEX_SANITIZE=address,undefined
fi

# TSan wants debug info and no sanitizer-hostile optimizations; O1 keeps
# the suite fast enough while preserving every instrumented access.
run_leg "TSan" build-tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDELEX_SANITIZE=thread

echo "=== all checks passed ==="
