#!/usr/bin/env bash
# CI gate: Release build + full ctest, then a ThreadSanitizer build + full
# ctest. TSan is the race gate for the parallel page pipeline — a clean
# parallel_engine_test under TSan is a hard requirement for any change to
# src/delex or src/common/thread_pool.h.
#
# Usage: ci/check.sh [jobs]          (default: nproc)
#   DELEX_CI_TSAN_ONLY=1 ci/check.sh     # skip the Release leg
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_leg() {
  local name="$1" build_dir="$2"; shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

if [[ "${DELEX_CI_TSAN_ONLY:-0}" != "1" ]]; then
  run_leg "Release" build-release -DCMAKE_BUILD_TYPE=Release
fi

# TSan wants debug info and no sanitizer-hostile optimizations; O1 keeps
# the suite fast enough while preserving every instrumented access.
run_leg "TSan" build-tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDELEX_SANITIZE=thread

echo "=== all checks passed ==="
