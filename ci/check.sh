#!/usr/bin/env bash
# CI gate. Legs, in order:
#
#   lint      ci/lint.py self-test + repo lint (always on; seconds).
#   Release   build + full ctest + bench/obs/metrics smokes + the
#             perf-regression gate over bench/baselines/.
#   fuzz      extended deterministic mutation budget for every fuzz
#             harness against the committed corpora (the per-harness
#             512-run replay already runs inside every ctest leg).
#   UBSan     -fsanitize=undefined build + full ctest: the UB gate for
#             the decoder/arithmetic paths (no-recover: any UB aborts).
#   A+UBSan   -fsanitize=address,undefined build + full ctest: the
#             memory gate for the raw byte-passthrough in the reuse
#             files, with UB checking riding along.
#   TSan      -fsanitize=thread build + full ctest: the race gate for
#             the parallel page pipeline — a clean parallel_engine_test
#             under TSan is a hard requirement for any change to
#             src/delex or src/common/thread_pool.h.
#
# Usage: ci/check.sh [jobs]              (default: nproc)
#   DELEX_CI_FAST=1 ci/check.sh          # lint + Release build/ctest only
#   DELEX_CI_TSAN_ONLY=1 ci/check.sh     # skip everything but lint + TSan
#   DELEX_CI_CLANG=1 ci/check.sh         # also run clang-format/clang-tidy
#                                        # if the binaries exist
#   DELEX_BENCH_BASELINE_UPDATE=1 ci/check.sh   # re-baseline the benches
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Every mktemp -d is registered here and removed on ANY exit, success or
# failure — a failing smoke must not leave /tmp litter behind.
CLEANUP_DIRS=()
cleanup() {
  if ((${#CLEANUP_DIRS[@]})); then
    rm -rf "${CLEANUP_DIRS[@]}"
  fi
}
trap cleanup EXIT
scratch_dir() {
  local dir
  dir="$(mktemp -d)"
  CLEANUP_DIRS+=("${dir}")
  echo "${dir}"
}

run_leg() {
  local name="$1" build_dir="$2"; shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

# --- lint: always on, fires before any compile ---------------------------
echo "=== lint: self-test ==="
python3 ci/lint.py --self-test
echo "=== lint: repo ==="
python3 ci/lint.py
if [[ "${DELEX_CI_CLANG:-0}" == "1" ]]; then
  if command -v clang-format >/dev/null; then
    echo "=== lint: clang-format ==="
    git ls-files 'src/*' 'tests/*' 'bench/*' 'fuzz/*' 'examples/*' \
      | grep -E '\.(cc|h|cpp|hpp)$' \
      | xargs clang-format --dry-run -Werror
  fi
  if command -v clang-tidy >/dev/null; then
    echo "=== lint: clang-tidy (src/delex + src/storage) ==="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    clang-tidy -p build-release src/delex/*.cc src/storage/*.cc
  fi
fi

if [[ "${DELEX_CI_TSAN_ONLY:-0}" != "1" ]]; then
  run_leg "Release" build-release -DCMAKE_BUILD_TYPE=Release

  # Quick-mode smoke of the identical-page fast path: tiny corpus, but the
  # bench still runs fast-on vs fast-off end to end and self-checks
  # Theorem-1 equivalence per fraction.
  echo "=== Release: bench_identical_fraction smoke ==="
  smoke_json="$(DELEX_PAGES_DBLIFE=24 DELEX_SNAPSHOTS=3 \
    ./build-release/bench/bench_identical_fraction)"
  echo "${smoke_json}"
  if grep -q '"results_match": false' <<<"${smoke_json}"; then
    echo "FAIL: fast path changed extraction results" >&2
    exit 1
  fi
fi

if [[ "${DELEX_CI_FAST:-0}" == "1" ]]; then
  echo "=== DELEX_CI_FAST=1: skipping smokes, fuzz, and sanitizer legs ==="
  echo "=== fast checks passed ==="
  exit 0
fi

if [[ "${DELEX_CI_TSAN_ONLY:-0}" != "1" ]]; then
  # Scalar-dispatch leg: the full Release suite again with DELEX_SIMD=0,
  # so every kernel consumer (diff trim, suffix stream, digest check) is
  # also exercised through the scalar tier. Byte-identical results across
  # tiers are asserted in-process by simd_test and the paranoid oracle;
  # this leg catches anything only reachable through the env knob.
  echo "=== Release: ctest with DELEX_SIMD=0 (scalar kernels) ==="
  DELEX_SIMD=0 ctest --test-dir build-release --output-on-failure -j "${JOBS}"

  # Traced smoke of the observability layer: a 3-snapshot parallel DBLife
  # run with tracing and run reports on. The trace must be valid JSON
  # (Perfetto-loadable) and every non-warm-up Delex report line must carry
  # finite predicted-vs-actual per-unit costs.
  echo "=== Release: traced dblife smoke ==="
  obs_tmp="$(scratch_dir)"
  DELEX_TRACE="${obs_tmp}/trace.json" \
    DELEX_STATS_JSON="${obs_tmp}/stats.jsonl" \
    DELEX_THREADS=2 \
    ./build-release/examples/dblife_portal 16 3 >/dev/null
  python3 -m json.tool "${obs_tmp}/trace.json" >/dev/null
  python3 - "${obs_tmp}/stats.jsonl" <<'EOF'
import json, math, sys

delex_lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = json.loads(raw)
        if line["solution"] != "Delex" or line["warmup"]:
            continue
        delex_lines += 1
        assert "optimizer" in line, "missing optimizer block"
        assert line["optimizer"]["assignment"], "empty matcher assignment"
        assert line["units"], "no per-unit rows"
        for unit in line["units"]:
            for key in ("predicted_us", "actual_us", "match_us",
                        "extract_us", "copy_us"):
                value = unit.get(key)
                assert isinstance(value, (int, float)) and math.isfinite(value), \
                    f"unit field {key} not finite: {value!r}"
assert delex_lines > 0, "no non-warm-up Delex report lines"
print(f"traced smoke OK: {delex_lines} Delex report lines")
EOF

  # Sharded smoke: the same portal hash-partitioned into 4 engine shards
  # on a shared pool. Every non-warm-up Delex report line must carry the
  # schema-v4 merged view: num_shards, a 4-entry per-shard summary whose
  # pages and result_tuples fold exactly into the merged totals.
  echo "=== Release: sharded dblife smoke (DELEX_SHARDS=4) ==="
  shard_tmp="$(scratch_dir)"
  DELEX_SHARDS=4 \
    DELEX_THREADS=2 \
    DELEX_STATS_JSON="${shard_tmp}/stats.jsonl" \
    ./build-release/examples/dblife_portal 16 3 >/dev/null
  python3 - "${shard_tmp}/stats.jsonl" <<'EOF'
import json, sys

delex_lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = json.loads(raw)
        assert line["schema_version"] == 4, line["schema_version"]
        if line["solution"] != "Delex" or line["warmup"]:
            continue
        delex_lines += 1
        assert line["num_shards"] == 4, line
        shards = line["shards"]
        assert len(shards) == 4, shards
        for entry in shards:
            for key in ("shard", "pages", "pages_identical",
                        "result_tuples", "total_us", "reuse_corrupt_drops"):
                assert key in entry, f"shard summary missing {key}"
        assert [s["shard"] for s in shards] == [0, 1, 2, 3], shards
        assert sum(s["pages"] for s in shards) == line["pages"], line
        assert sum(s["result_tuples"] for s in shards) == \
            line["result_tuples"], line
assert delex_lines > 0, "no non-warm-up sharded Delex report lines"
print(f"sharded smoke OK: {delex_lines} merged report lines")
EOF

  # Metrics exposition smoke: run the portal with the stats server and the
  # periodic snapshot writer on, scrape /metrics and /healthz live with
  # curl, and validate the scrape against the Prometheus text-format
  # grammar (every line; cumulative monotone buckets; +Inf == _count).
  # DELEX_METRICS_LINGER_MS keeps the server up after the run finishes so
  # the scrape can never lose the race against a fast portal.
  echo "=== Release: metrics exposition smoke ==="
  metrics_tmp="$(scratch_dir)"
  metrics_port=19464
  DELEX_METRICS_PORT="${metrics_port}" \
    DELEX_METRICS_LINGER_MS=8000 \
    DELEX_METRICS_SNAPSHOT_MS=200 \
    DELEX_METRICS_SNAPSHOT_PATH="${metrics_tmp}/metrics.jsonl" \
    ./build-release/examples/dblife_portal 8 3 >/dev/null &
  portal_pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:${metrics_port}/healthz" \
        >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  curl -fsS "http://127.0.0.1:${metrics_port}/healthz" | grep -q '^ok$'
  # The engine registers its histograms lazily: keep scraping until the
  # page-eval series shows up (the linger window keeps the server alive
  # even after a fast portal run finishes).
  for _ in $(seq 1 300); do
    if curl -fsS "http://127.0.0.1:${metrics_port}/metrics" \
        -o "${metrics_tmp}/metrics.prom" 2>/dev/null \
        && grep -q "page_eval" "${metrics_tmp}/metrics.prom"; then
      break
    fi
    sleep 0.1
  done
  if curl -fsS "http://127.0.0.1:${metrics_port}/no-such" \
      >/dev/null 2>&1; then
    echo "FAIL: stats server did not 404 an unknown path" >&2
    exit 1
  fi
  wait "${portal_pid}"
  python3 - "${metrics_tmp}/metrics.prom" <<'EOF'
import re, sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE = re.compile(
    r"^(" + NAME + r")(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? "
    r"(-?[0-9.eE+-]+|\+Inf)$")
LE = re.compile(r'le="([^"]+)"')

types = {}
buckets = {}   # family -> list of (le, cumulative) in exposition order
counts = {}
samples = 0
with open(sys.argv[1]) as f:
    for raw in f:
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert len(parts) >= 3 and parts[1] in ("HELP", "TYPE"), line
            if parts[1] == "TYPE":
                assert parts[3] in ("counter", "gauge", "histogram"), line
                types[parts[2]] = parts[3]
            continue
        m = SAMPLE.match(line)
        assert m, f"malformed sample line: {line!r}"
        samples += 1
        name = m.group(1)
        family = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        assert family in types, f"sample without TYPE: {line!r}"
        if name.endswith("_bucket"):
            le = LE.search(m.group(2) or "")
            assert le, f"bucket without le label: {line!r}"
            bound = float("inf") if le.group(1) == "+Inf" else float(le.group(1))
            buckets.setdefault(family, []).append((bound, float(m.group(4))))
        elif name.endswith("_count") and types.get(family) == "histogram":
            counts[family] = float(m.group(4))
for family, rows in buckets.items():
    for (le1, c1), (le2, c2) in zip(rows, rows[1:]):
        assert le2 > le1 and c2 >= c1, f"non-monotone buckets in {family}"
    assert rows[-1][0] == float("inf"), f"missing +Inf bucket in {family}"
    assert rows[-1][1] == counts.get(family), f"+Inf != _count in {family}"
assert samples > 0 and buckets, "empty or histogram-free exposition"
assert any("page_eval" in f for f in buckets), "engine histograms missing"
print(f"metrics smoke OK: {samples} samples, {len(buckets)} histograms")
EOF
  python3 - "${metrics_tmp}/metrics.jsonl" <<'EOF'
import json, sys

lines = 0
with open(sys.argv[1]) as f:
    for raw in f:
        snap = json.loads(raw)
        assert "uptime_ms" in snap and "counters" in snap, "bad snapshot"
        assert "histograms" in snap, "snapshot without histograms"
        lines += 1
assert lines > 0, "snapshot writer produced no lines"
print(f"snapshot writer OK: {lines} lines")
EOF

  # Perf-regression gate: re-run the gated benches at the pinned
  # quick scale and compare against the committed baselines; the median
  # per-metric slowdown must stay within 15%. Re-baseline intentional perf
  # changes with DELEX_BENCH_BASELINE_UPDATE=1 ci/check.sh.
  echo "=== Release: bench baseline gate ==="
  bench_tmp="$(scratch_dir)"
  bench_env=(DELEX_PAGES_DBLIFE=24 DELEX_PAGES_WIKI=24 DELEX_SNAPSHOTS=3
             DELEX_PAGES_SYN1M=1200 DELEX_BENCH_REPS=2 DELEX_THREADS=1)
  env "${bench_env[@]}" ./build-release/bench/bench_identical_fraction \
    > "${bench_tmp}/identical_fraction.json"
  env "${bench_env[@]}" ./build-release/bench/bench_parallel_scaling \
    > "${bench_tmp}/parallel_scaling.json"
  env "${bench_env[@]}" ./build-release/bench/bench_matchers_micro \
    --benchmark_format=json --benchmark_min_time=0.05 \
    > "${bench_tmp}/matchers_micro.json" 2>/dev/null
  env "${bench_env[@]}" ./build-release/bench/bench_cost_drift \
    > "${bench_tmp}/cost_drift.json"
  env "${bench_env[@]}" ./build-release/bench/bench_shard_scaling \
    > "${bench_tmp}/shard_scaling.json"
  for bench in identical_fraction parallel_scaling matchers_micro \
               cost_drift shard_scaling; do
    python3 ci/bench_compare.py "bench/baselines/${bench}.json" \
      "${bench_tmp}/${bench}.json"
  done
  if [[ "${DELEX_BENCH_BASELINE_UPDATE:-0}" == "0" ]]; then
    # Self-test: the gate must actually fire on a synthetic 2x slowdown.
    if python3 ci/bench_compare.py bench/baselines/identical_fraction.json \
        "${bench_tmp}/identical_fraction.json" --inject-slowdown 2.0 \
        >/dev/null; then
      echo "FAIL: bench gate did not fire on injected 2x slowdown" >&2
      exit 1
    fi
    echo "bench gate self-test OK: injected 2x slowdown rejected"
  fi

  # Extended fuzz smoke: a bigger deterministic mutation budget than the
  # per-harness ctest replay, different seed, same committed corpora. Any
  # crash here is a real finding — minimize it, commit the input to
  # fuzz/corpus/<harness>/, and promote it into tests/corrupt_input_test.
  echo "=== Release: fuzz smoke ==="
  for harness in build-release/fuzz/fuzz_*; do
    name="$(basename "${harness}")"
    echo "--- ${name}"
    "${harness}" -runs=4096 -seed=1 "fuzz/corpus/${name}"
  done

  # UBSan first (cheap instrumentation, isolates pure-UB findings), then
  # ASan+UBSan together: the memory gate for the raw byte passthrough in
  # the reuse files, with UB checks riding along. Both run with
  # no-recover, so any finding is a hard test failure.
  run_leg "UBSan" build-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDELEX_SANITIZE=ubsan
  run_leg "ASan+UBSan" build-asan-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDELEX_SANITIZE=address,undefined
fi

# TSan wants debug info and no sanitizer-hostile optimizations; O1 keeps
# the suite fast enough while preserving every instrumented access.
run_leg "TSan" build-tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDELEX_SANITIZE=thread

echo "=== all checks passed ==="
