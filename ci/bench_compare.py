#!/usr/bin/env python3
"""Continuous perf-regression gate over the JSON bench outputs.

Compares a current bench result against a committed baseline and fails
(exit 1) when the MEDIAN of the per-metric current/baseline ratios exceeds
1 + threshold (default 0.15). The median — not the max — is the gate: any
single metric on a busy CI box can swing far more than 15%, but half of
them moving together is a real regression, not noise.

Supported inputs (auto-detected from the JSON shape):
  - bench_identical_fraction: {"bench": "identical_fraction", "runs": [...]}
      metrics: off/on wall seconds per identical-fraction row, plus
      whole-process peak RSS ("peak_rss_bytes", also on shard_scaling)
  - bench_parallel_scaling:   {"bench": "parallel_scaling", "programs": [...]}
      metrics: wall seconds per (program, thread-count) row
  - bench_shard_scaling:      {"bench": "shard_scaling", "grid": [...]}
      metrics: wall seconds per (threads, shards) grid point (p99 latency
      is informational and not gated — a percentile on a busy box is far
      noisier than a whole-series wall clock)
  - bench_cost_drift:         {"bench": "cost_drift", "runs": [...]}
      metrics: learn-on/off wall seconds per snapshot (drift columns are
      informational and not gated)
  - bench_matchers_micro:     google-benchmark --benchmark_format=json
      metrics: real_time per benchmark (normalized to nanoseconds)

Usage:
  bench_compare.py BASELINE CURRENT [--threshold 0.15]
                   [--inject-slowdown FACTOR] [--update]

  --update (or env DELEX_BENCH_BASELINE_UPDATE=1) copies CURRENT over
  BASELINE and exits 0 — the escape hatch after an intentional perf change.
  --inject-slowdown multiplies every current metric by FACTOR before
  comparing; CI uses 2.0 as a self-test that the gate actually fires.

Exit codes: 0 pass / baseline updated, 1 median regression, 2 usage or
parse error.
"""

import argparse
import json
import os
import shutil
import statistics
import sys


def fail_usage(message):
    print("bench_compare: %s" % message, file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail_usage("cannot load %s: %s" % (path, e))


def metrics_identical_fraction(doc):
    """off/on seconds per identical-fraction row, lower is better."""
    out = {}
    for row in doc.get("runs", []):
        tag = "identfrac_%02d" % round(float(row["identical_fraction"]) * 100)
        out[tag + "_off_seconds"] = float(row["off_seconds"])
        out[tag + "_on_seconds"] = float(row["on_seconds"])
    add_peak_rss(doc, "identfrac", out)
    return out


def add_peak_rss(doc, prefix, out):
    """Whole-process peak RSS, gated like a timing metric (lower is
    better): a memory blow-up is a regression even when wall clock holds.
    Old baselines without the field just skip it (shared-metric rule)."""
    value = doc.get("peak_rss_bytes")
    if value is not None and float(value) > 0:
        out["%s_peak_rss_bytes" % prefix] = float(value)


def metrics_cost_drift(doc):
    """on/off wall seconds per snapshot, lower is better. The drift
    columns are intentionally NOT gated — drift measures model quality,
    not speed, and re-baselining timing must not freeze it."""
    out = {}
    for row in doc.get("runs", []):
        tag = "costdrift_s%02d" % int(row["snapshot"])
        out[tag + "_on_seconds"] = float(row["on_seconds"])
        out[tag + "_off_seconds"] = float(row["off_seconds"])
    return out


def metrics_parallel_scaling(doc):
    """Wall seconds per (program, thread count), lower is better."""
    out = {}
    for program in doc.get("programs", []):
        for row in program.get("runs", []):
            name = "scaling_%s_t%d_seconds" % (program["program"],
                                               int(row["threads"]))
            out[name] = float(row["seconds"])
    return out


def metrics_shard_scaling(doc):
    """Wall seconds per (threads, shards) grid point, lower is better.
    A grid point whose merged output diverged from the unsharded run is a
    correctness failure, not a perf number — refuse to compare it."""
    out = {}
    for row in doc.get("grid", []):
        if not row.get("results_match", False):
            fail_usage("shard_scaling grid point t%d/s%d has "
                       "results_match=false" % (int(row["threads"]),
                                                int(row["shards"])))
        name = "shardscale_t%d_s%d_seconds" % (int(row["threads"]),
                                               int(row["shards"]))
        out[name] = float(row["seconds"])
    add_peak_rss(doc, "shardscale", out)
    return out


_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def metrics_google_benchmark(doc):
    """real_time per benchmark, normalized to ns, lower is better."""
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue  # keep raw runs only; repetitions are rare here anyway
        scale = _TIME_UNIT_NS.get(row.get("time_unit", "ns"), 1.0)
        name = row["name"].replace("/", "_").replace("<", "_").replace(">", "_")
        out["micro_%s_real_ns" % name] = float(row["real_time"]) * scale
    return out


def extract_metrics(doc, path):
    if isinstance(doc, dict) and "benchmarks" in doc:
        return metrics_google_benchmark(doc)
    kind = doc.get("bench") if isinstance(doc, dict) else None
    if kind == "identical_fraction":
        return metrics_identical_fraction(doc)
    if kind == "cost_drift":
        return metrics_cost_drift(doc)
    if kind == "parallel_scaling":
        return metrics_parallel_scaling(doc)
    if kind == "shard_scaling":
        return metrics_shard_scaling(doc)
    fail_usage("unrecognized bench JSON shape in %s" % path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed median slowdown (default 0.15 = 15%%)")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        metavar="FACTOR",
                        help="multiply current metrics by FACTOR (gate "
                             "self-test; CI uses 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="copy CURRENT over BASELINE and exit 0")
    args = parser.parse_args()

    update = args.update or os.environ.get(
        "DELEX_BENCH_BASELINE_UPDATE", "0") not in ("", "0")
    if update:
        if not os.path.exists(args.current):
            fail_usage("cannot update from missing file %s" % args.current)
        shutil.copyfile(args.current, args.baseline)
        print("bench_compare: baseline %s updated from %s" %
              (args.baseline, args.current))
        return 0

    baseline = extract_metrics(load_json(args.baseline), args.baseline)
    current = extract_metrics(load_json(args.current), args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        fail_usage("no shared metrics between %s and %s" %
                   (args.baseline, args.current))
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    for name in only_base:
        print("  note: metric %s only in baseline (skipped)" % name)
    for name in only_cur:
        print("  note: metric %s only in current (skipped)" % name)

    rows = []
    print("%-42s %12s %12s %8s" % ("metric", "baseline", "current", "ratio"))
    for name in shared:
        base_value = baseline[name]
        cur_value = current[name] * args.inject_slowdown
        if base_value <= 0:
            print("  note: metric %s has non-positive baseline (skipped)" %
                  name)
            continue
        ratio = cur_value / base_value
        rows.append((name, base_value, cur_value, ratio))
        marker = "  <-- slow" if ratio > 1.0 + args.threshold else ""
        print("%-42s %12.4g %12.4g %7.3fx%s" %
              (name, base_value, cur_value, ratio, marker))
    if not rows:
        fail_usage("no comparable metrics (all baselines non-positive)")

    median = statistics.median(ratio for _, _, _, ratio in rows)
    limit = 1.0 + args.threshold
    verdict = "PASS" if median <= limit else "FAIL"
    print("median ratio over %d metrics: %.3fx (limit %.3fx) -> %s" %
          (len(rows), median, limit, verdict))
    if verdict == "FAIL":
        # The table above goes to stdout, which CI may swallow — repeat
        # every over-limit metric with its baseline-vs-measured values on
        # stderr, worst first, so the failure log alone tells the story.
        print("bench_compare: median regression exceeds %d%% "
              "(median %.3fx over %d metrics, limit %.3fx)" %
              (round(args.threshold * 100), median, len(rows), limit),
              file=sys.stderr)
        regressed = sorted((r for r in rows if r[3] > limit),
                           key=lambda r: r[3], reverse=True)
        for name, base_value, cur_value, ratio in regressed:
            print("bench_compare:   %s: baseline %.4g -> measured %.4g "
                  "(%.3fx)" % (name, base_value, cur_value, ratio),
                  file=sys.stderr)
        print("bench_compare: if this slowdown is intentional, re-baseline "
              "with DELEX_BENCH_BASELINE_UPDATE=1", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
