// Harness: the per-generation page result cache (src/storage).
//
// `results.gen<N>` is read back one generation later by the
// identical-page fast path; a corrupted cache must surface as Status /
// found=false — the engine then demotes the page — never as a crash.
// Slices the reader does hand back must decode into exactly the
// advertised number of rows, each carrying the requested did.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "storage/result_cache.h"

using delex::DecodeResultSlice;
using delex::ResultCacheReader;
using delex::ResultPageSlice;
using delex::Status;
using delex::Tuple;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = delex::fuzz::ScratchDir() + "/results.gen0";
  delex::fuzz::WriteFileOrDie(
      path, std::string_view(reinterpret_cast<const char*>(data), size));

  ResultCacheReader reader;
  if (!reader.Open(path).ok()) return 0;
  for (int64_t did = 0; did < 6; ++did) {
    ResultPageSlice slice;
    bool found = false;
    if (!reader.ReadPage(did, &slice, &found).ok()) break;
    if (!found) continue;
    std::vector<Tuple> rows;
    Status st = DecodeResultSlice(slice, did, &rows);
    if (!st.ok()) continue;  // payload corruption degrades upstream
    if (static_cast<int64_t>(rows.size()) != slice.n_rows) __builtin_trap();
    for (const Tuple& row : rows) {
      // DecodeResultSlice prefixes every row with the requested did.
      if (row.empty() || !std::holds_alternative<int64_t>(row[0]) ||
          std::get<int64_t>(row[0]) != did) {
        __builtin_trap();
      }
    }
  }
  reader.Close().ok();
  return 0;
}
