// Harness: value/tuple wire decoding (src/common/value.cc).
//
// The decoders sit under every untrusted byte source in the repo (reuse
// records, result cache rows, snapshots), so they must turn arbitrary
// bytes into a Status — never a crash, never UB, never an unbounded
// allocation. A successful decode must also re-encode to a decodable
// form (round-trip sanity).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/value.h"

using delex::DecodeTuple;
using delex::DecodeValue;
using delex::EncodeTuple;
using delex::Tuple;
using delex::Value;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  size_t offset = 0;
  auto value = DecodeValue(bytes, &offset);
  (void)value;

  offset = 0;
  auto tuple = DecodeTuple(bytes, &offset);
  if (tuple.ok()) {
    // Round trip: anything the decoder accepts, the encoder must
    // reproduce in decodable form.
    std::string encoded;
    EncodeTuple(*tuple, &encoded);
    size_t re_offset = 0;
    auto again = DecodeTuple(encoded, &re_offset);
    if (!again.ok() || again->size() != tuple->size()) __builtin_trap();
  }

  // Decoding from an interior offset exercises the bounds math with a
  // nonzero base — where additive overflow bugs hide.
  if (size > 1) {
    offset = size / 2;
    auto mid = DecodeTuple(bytes, &offset);
    (void)mid;
  }
  return 0;
}
