#include "fuzz/fuzz_util.h"

#include <cstdlib>
#include <filesystem>

namespace delex {
namespace fuzz {

std::string ScratchDir() {
  static const std::string dir = [] {
    std::string templ = "/tmp/delex-fuzz-XXXXXX";
    char* made = mkdtemp(templ.data());
    if (made == nullptr) {
      std::fprintf(stderr, "fuzz: mkdtemp failed\n");
      std::abort();
    }
    return std::string(made);
  }();
  return dir;
}

void WriteFileOrDie(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "fuzz: cannot open %s\n", path.c_str());
    std::abort();
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fprintf(stderr, "fuzz: short write to %s\n", path.c_str());
    std::abort();
  }
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "fuzz: close failed for %s\n", path.c_str());
    std::abort();
  }
}

}  // namespace fuzz
}  // namespace delex
