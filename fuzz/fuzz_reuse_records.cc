// Harness: reuse-format v2 record payload decoding (src/storage).
//
// Covers the per-record decoders (input tuples, output tuples, page
// index entries) plus the raw-slice machinery (DecodeRawPageSlice /
// CaptureFromRawSlice) that the identical-page fast path trusts.
// Successful decodes are round-tripped through the encoders; a decode
// that succeeds but re-encodes differently would silently corrupt the
// next generation's files.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "storage/reuse_file.h"

using delex::CaptureFromRawSlice;
using delex::DecodeInputTuple;
using delex::DecodeOutputTuple;
using delex::DecodePageIndexEntry;
using delex::DecodeRawPageSlice;
using delex::EncodeInputTuple;
using delex::EncodeOutputTuple;
using delex::EncodePageIndexEntry;
using delex::PageCapture;
using delex::RawPageSlice;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  delex::fuzz::FuzzCursor cursor(data, size);
  const uint8_t mode = cursor.Byte();
  const std::string bytes = cursor.Rest();

  switch (mode % 4) {
    case 0: {
      auto rec = DecodeInputTuple(bytes);
      if (rec.ok()) {
        std::string encoded;
        EncodeInputTuple(*rec, &encoded);
        if (!DecodeInputTuple(encoded).ok()) __builtin_trap();
      }
      break;
    }
    case 1: {
      auto rec = DecodeOutputTuple(bytes);
      if (rec.ok()) {
        std::string encoded;
        EncodeOutputTuple(*rec, &encoded);
        if (!DecodeOutputTuple(encoded).ok()) __builtin_trap();
      }
      break;
    }
    case 2: {
      auto entry = DecodePageIndexEntry(bytes);
      if (entry.ok()) {
        std::string encoded;
        EncodePageIndexEntry(*entry, &encoded);
        auto again = DecodePageIndexEntry(encoded);
        if (!again.ok() || again->did != entry->did) __builtin_trap();
      }
      break;
    }
    case 3: {
      // Raw slice: first bytes pick the in/out split and advertised
      // counts, the rest is framed-record soup.
      delex::fuzz::FuzzCursor inner(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
      RawPageSlice slice;
      slice.n_inputs = inner.Int(0, 8);
      slice.n_outputs = inner.Int(0, 8);
      const size_t split =
          static_cast<size_t>(inner.Int(0, static_cast<int64_t>(inner.remaining())));
      slice.in_bytes = inner.Bytes(split);
      slice.out_bytes = inner.Rest();
      std::vector<delex::InputTupleRec> inputs;
      std::vector<delex::OutputTupleRec> outputs;
      auto st = DecodeRawPageSlice(slice, /*did=*/7, &inputs, &outputs);
      if (st.ok()) {
        // The decode validated counts; the capture rebuild must agree.
        PageCapture capture;
        if (!CaptureFromRawSlice(slice, &capture).ok()) __builtin_trap();
        if (capture.groups.size() != inputs.size()) __builtin_trap();
      }
      break;
    }
  }
  return 0;
}
