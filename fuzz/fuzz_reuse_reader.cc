// Harness: UnitReuseReader over an adversarial file triple (src/storage).
//
// The reader owns the `.in` / `.out` / `.idx` trust boundary: a work dir
// can hold truncated, bit-flipped, or version-skewed files, and every
// byte must be validated before any allocation or memcpy. The input
// selects the three files' contents; the harness then drives the same
// call sequence the engine uses — forward SeekPage / ReadPageRaw per
// page — and re-validates the digest-guarded raw path: a slice the
// reader blesses as `index_valid` must survive a raw re-commit and read
// back with the counts the index advertised.

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "storage/reuse_file.h"

using delex::InputTupleRec;
using delex::OutputTupleRec;
using delex::RawPageSlice;
using delex::Status;
using delex::UnitReuseReader;
using delex::UnitReuseWriter;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  delex::fuzz::FuzzCursor cursor(data, size);
  // Layout: [u64 digest][u16 in_len][u16 out_len][in bytes][out bytes][idx].
  const uint64_t digest = cursor.U64();
  const size_t in_len = static_cast<size_t>(cursor.Byte()) << 8 | cursor.Byte();
  const size_t out_len =
      static_cast<size_t>(cursor.Byte()) << 8 | cursor.Byte();
  const std::string in_bytes = cursor.Bytes(in_len);
  const std::string out_bytes = cursor.Bytes(out_len);
  const std::string idx_bytes = cursor.Rest();

  const std::string prefix = delex::fuzz::ScratchDir() + "/unit0.gen0";
  delex::fuzz::WriteFileOrDie(prefix + ".in", in_bytes);
  delex::fuzz::WriteFileOrDie(prefix + ".out", out_bytes);
  delex::fuzz::WriteFileOrDie(prefix + ".idx", idx_bytes);

  UnitReuseReader reader;
  if (!reader.Open(prefix).ok()) return 0;

  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  for (int64_t did = 0; did < 6; ++did) {
    if (did % 2 == 0) {
      RawPageSlice slice;
      bool found = false;
      bool index_valid = false;
      Status st = reader.ReadPageRaw(did, digest, &slice, &found, &index_valid);
      if (!st.ok()) break;
      if (found && index_valid) {
        // The index agreed with the forward scan, so this slice is
        // eligible for the zero-decode relocation. Re-commit it raw and
        // read the copy back: the relocated group must scan cleanly and
        // keep its advertised record counts (payload decoding may still
        // fail later — that degrades, it doesn't crash).
        const std::string copy = delex::fuzz::ScratchDir() + "/unit0.gen1";
        UnitReuseWriter writer;
        if (!writer.Open(copy).ok() ||
            !writer.CommitPageRaw(/*did=*/did + 100, slice).ok() ||
            !writer.Close().ok()) {
          __builtin_trap();
        }
        UnitReuseReader verify;
        if (!verify.Open(copy).ok()) __builtin_trap();
        RawPageSlice round;
        bool round_found = false;
        bool round_valid = false;
        if (!verify.ReadPageRaw(did + 100, slice.page_digest, &round,
                                &round_found, &round_valid)
                 .ok() ||
            !round_found) {
          __builtin_trap();
        }
        if (round.n_inputs != slice.n_inputs ||
            round.n_outputs != slice.n_outputs ||
            round.in_bytes != slice.in_bytes ||
            round.out_bytes != slice.out_bytes) {
          __builtin_trap();
        }
        verify.Close().ok();
      }
    } else {
      if (!reader.SeekPage(did, &inputs, &outputs).ok()) break;
      // Decoded groups carry synthesized page-local ordinals: dense tids,
      // uniform did, outputs referencing existing inputs.
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].tid != static_cast<int64_t>(i)) __builtin_trap();
        if (inputs[i].did != did) __builtin_trap();
      }
      for (const OutputTupleRec& out : outputs) {
        if (out.did != did) __builtin_trap();
        if (out.itid < 0 || out.itid >= static_cast<int64_t>(inputs.size())) {
          __builtin_trap();
        }
      }
    }
  }
  reader.Close().ok();
  return 0;
}
