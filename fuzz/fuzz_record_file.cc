// Harness: the length-prefixed record-file reader (src/storage).
//
// Feeds arbitrary bytes to RecordReader through a scratch file. The
// reader must terminate (EOF or Status) on every input — truncated
// frames, giant length prefixes, and zero-length records included — and
// must never hand back a record larger than the file.

#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "storage/record_file.h"

using delex::RecordReader;
using delex::Status;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = delex::fuzz::ScratchDir() + "/record_file.bin";
  delex::fuzz::WriteFileOrDie(
      path, std::string_view(reinterpret_cast<const char*>(data), size));

  RecordReader reader;
  if (!reader.Open(path).ok()) return 0;
  std::string record;
  bool at_end = false;
  // The file has at most `size` bytes of payload, so more than size/8 + 1
  // records means the reader fabricated frames out of nothing.
  size_t records = 0;
  const size_t max_records = size / 8 + 1;
  while (true) {
    Status st = reader.Next(&record, &at_end);
    if (!st.ok() || at_end) break;
    if (record.size() > size) __builtin_trap();
    if (++records > max_records) __builtin_trap();
  }
  reader.Close().ok();
  return 0;
}
