// Harness: structure-aware matcher + region-derivation fuzzing.
//
// Builds an (old page, new page) pair the way real corpora evolve — a
// token-soup old page plus an edit script applied to it — instead of
// feeding matchers raw byte noise (which would almost never produce a
// match, leaving the interesting paths cold). Every matcher output is
// then pushed through the paranoid checkers, which DELEX_CHECK-abort on
// violation: segments must be equal-length, in-bounds, byte-identical;
// derived copy interiors and extraction regions must be monotone,
// disjoint, and contained — the invariants Theorem 1's proof leans on.

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "delex/paranoid.h"
#include "delex/region_derivation.h"
#include "fuzz/fuzz_util.h"
#include "matcher/matcher.h"

using delex::DeriveRegionsTagged;
using delex::GetMatcher;
using delex::MatchContext;
using delex::Matcher;
using delex::MatcherKind;
using delex::MatchSegment;
using delex::RegionDerivation;
using delex::TaggedSegment;
using delex::TextSpan;

namespace {

// A small token alphabet keeps repeated substrings (and thus matches)
// likely while the cursor still controls every structural choice.
constexpr const char* kTokens[] = {
    "alpha ", "beta ",    "gamma ", "delta-",  "epsilon. ", "zeta\n",
    "eta ",   "theta, ",  "iota ",  "kappa ",  "lambda ",   "mu42 ",
};
constexpr size_t kNumTokens = sizeof(kTokens) / sizeof(kTokens[0]);

std::string BuildOldPage(delex::fuzz::FuzzCursor* cursor) {
  const int64_t tokens = cursor->Int(1, 192);
  std::string text;
  for (int64_t i = 0; i < tokens; ++i) {
    text += kTokens[static_cast<size_t>(cursor->Byte()) % kNumTokens];
  }
  return text;
}

/// Applies a cursor-driven edit script: splice, delete, duplicate-block,
/// and raw-byte insert operations over the old text.
std::string ApplyEdits(const std::string& old_text,
                       delex::fuzz::FuzzCursor* cursor) {
  std::string text = old_text;
  const int64_t edits = cursor->Int(0, 8);
  for (int64_t e = 0; e < edits && !text.empty(); ++e) {
    const size_t at = static_cast<size_t>(
        cursor->Int(0, static_cast<int64_t>(text.size())));
    switch (cursor->Byte() % 4) {
      case 0:  // insert a token run
        text.insert(at, kTokens[static_cast<size_t>(cursor->Byte()) %
                                kNumTokens]);
        break;
      case 1:  // delete a run
        text.erase(at, static_cast<size_t>(cursor->Int(1, 24)));
        break;
      case 2: {  // relocate a block (what ST finds and UD cannot)
        const size_t len = static_cast<size_t>(cursor->Int(1, 48));
        const std::string block = text.substr(at, len);
        text.erase(at, len);
        const size_t to = static_cast<size_t>(
            cursor->Int(0, static_cast<int64_t>(text.size())));
        text.insert(to, block);
        break;
      }
      case 3:  // raw byte noise
        text.insert(at, cursor->Bytes(static_cast<size_t>(cursor->Int(1, 8))));
        break;
    }
  }
  return text;
}

/// A sub-span of [0, size) chosen by the cursor (never empty unless the
/// text is).
TextSpan PickRegion(int64_t size, delex::fuzz::FuzzCursor* cursor) {
  if (size <= 0) return TextSpan(0, 0);
  const int64_t start = cursor->Int(0, size - 1);
  const int64_t end = cursor->Int(start + 1, size);
  return TextSpan(start, end);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  delex::fuzz::FuzzCursor cursor(data, size);
  const std::string q_text = BuildOldPage(&cursor);
  const std::string p_text = ApplyEdits(q_text, &cursor);
  const TextSpan q_region =
      PickRegion(static_cast<int64_t>(q_text.size()), &cursor);
  const TextSpan p_region =
      PickRegion(static_cast<int64_t>(p_text.size()), &cursor);
  const int64_t alpha = cursor.Int(0, 12);
  const int64_t beta = cursor.Int(0, 12);

  MatchContext ctx;
  // RU last: it answers from what UD/ST recorded into the context, so the
  // recycled-segment path sees real entries.
  const MatcherKind kinds[] = {MatcherKind::kUD, MatcherKind::kST,
                               MatcherKind::kRU};
  for (MatcherKind kind : kinds) {
    const Matcher& matcher = GetMatcher(kind);
    std::vector<MatchSegment> segments =
        matcher.Match(p_text, p_region, q_text, q_region, &ctx);
    delex::paranoid::CheckSegments(p_text, p_region, q_text, q_region,
                                   segments);
    std::vector<TaggedSegment> tagged;
    tagged.reserve(segments.size());
    for (const MatchSegment& seg : segments) {
      tagged.push_back({seg, q_region, /*old_tid=*/0});
    }
    RegionDerivation derivation =
        DeriveRegionsTagged(p_region, std::move(tagged), alpha, beta);
    delex::paranoid::CheckDerivation(derivation, p_region);
  }
  return 0;
}
