// Harness: snapshot (de)serialization (src/storage).
//
// Snapshots come off disk in bench/CI replay flows; ReadSnapshot must
// reject arbitrary bytes with a Status. An accepted snapshot must be
// internally consistent: dense dids, every page findable by url, and a
// write/read round trip that preserves page count and bytes.

#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "storage/snapshot.h"

using delex::ReadSnapshot;
using delex::Snapshot;
using delex::WriteSnapshot;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = delex::fuzz::ScratchDir() + "/snapshot.bin";
  delex::fuzz::WriteFileOrDie(
      path, std::string_view(reinterpret_cast<const char*>(data), size));

  auto snapshot = ReadSnapshot(path);
  if (!snapshot.ok()) return 0;

  for (const delex::Page& page : snapshot->pages()) {
    auto idx = snapshot->FindByUrl(page.url);
    if (!idx.has_value()) __builtin_trap();
  }

  const std::string copy = delex::fuzz::ScratchDir() + "/snapshot_copy.bin";
  if (!WriteSnapshot(*snapshot, copy).ok()) __builtin_trap();
  auto again = ReadSnapshot(copy);
  if (!again.ok() || again->NumPages() != snapshot->NumPages()) {
    __builtin_trap();
  }
  for (size_t i = 0; i < again->pages().size(); ++i) {
    if (again->pages()[i].content != snapshot->pages()[i].content) {
      __builtin_trap();
    }
  }
  return 0;
}
