// Deterministic fallback fuzz driver.
//
// The harnesses in this directory expose the libFuzzer entry point
// (LLVMFuzzerTestOneInput). Under clang they link against libFuzzer
// proper (-fsanitize=fuzzer) and this file is not compiled. Under any
// other toolchain this driver supplies main(): it replays every corpus
// file, then (optionally) runs a budget of deterministic xorshift
// mutations over the corpus — so ctest can exercise the harnesses and
// replay regression inputs on toolchains without libFuzzer, with
// bit-identical behavior from run to run.
//
// Flag subset mirrors libFuzzer so CI invokes both the same way:
//   -runs=N            mutation budget after corpus replay (default 0)
//   -max_total_time=S  soft wall-clock cap in seconds (0 = none)
//   -seed=N            mutation PRNG seed (default 1)
// Positional arguments are corpus files or directories (scanned
// non-recursively, sorted by name for determinism).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

/// One deterministic mutation: flip, overwrite, insert, erase, truncate,
/// or duplicate a slice — the classic byte-level menu, driven entirely by
/// the PRNG state.
std::string Mutate(std::string input, uint64_t* state) {
  const int op = static_cast<int>(XorShift64(state) % 6);
  const size_t size = input.size();
  const size_t at = size > 0 ? XorShift64(state) % size : 0;
  switch (op) {
    case 0:  // bit flip
      if (size > 0) input[at] ^= static_cast<char>(1u << (XorShift64(state) % 8));
      break;
    case 1:  // byte overwrite
      if (size > 0) input[at] = static_cast<char>(XorShift64(state));
      break;
    case 2:  // insert a small run
      input.insert(at, std::string(1 + XorShift64(state) % 8,
                                   static_cast<char>(XorShift64(state))));
      break;
    case 3:  // erase a small run
      if (size > 0) input.erase(at, 1 + XorShift64(state) % 8);
      break;
    case 4:  // truncate
      input.resize(at);
      break;
    case 5:  // duplicate a slice to the end
      if (size > 0) {
        const size_t len = std::min<size_t>(1 + XorShift64(state) % 32,
                                            size - at);
        input += input.substr(at, len);
      }
      break;
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 0;
  long long max_total_time = 0;
  uint64_t seed = 1;
  std::vector<std::string> corpus_args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::atoll(arg + 6);
    } else if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      max_total_time = std::atoll(arg + 16);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 6));
    } else if (arg[0] == '-') {
      // Unknown libFuzzer flags are accepted and ignored so CI scripts
      // can pass a uniform command line to either binary.
      std::fprintf(stderr, "fuzz driver: ignoring flag %s\n", arg);
    } else {
      corpus_args.push_back(arg);
    }
  }
  if (seed == 0) seed = 1;  // xorshift has a zero fixed point

  std::vector<std::string> files;
  for (const std::string& arg : corpus_args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(arg);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::string> corpus;
  corpus.reserve(files.size());
  for (const std::string& path : files) {
    corpus.push_back(ReadFileOrDie(path));
    RunOne(corpus.back());
  }
  std::fprintf(stderr, "fuzz driver: replayed %zu corpus inputs\n",
               corpus.size());

  if (runs > 0 && corpus.empty()) corpus.push_back(std::string());
  const auto start = std::chrono::steady_clock::now();
  long long executed = 0;
  uint64_t state = seed;
  for (long long i = 0; i < runs; ++i) {
    if (max_total_time > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start);
      if (elapsed.count() >= max_total_time) break;
    }
    // Stacked mutations over a rotating base input: depth 1-4 keeps most
    // inputs near the structured corpus while still reaching odd shapes.
    std::string input = corpus[static_cast<size_t>(i) % corpus.size()];
    const int depth = 1 + static_cast<int>(XorShift64(&state) % 4);
    for (int d = 0; d < depth; ++d) input = Mutate(std::move(input), &state);
    RunOne(input);
    ++executed;
  }
  std::fprintf(stderr, "fuzz driver: executed %lld mutated inputs\n",
               executed);
  return 0;
}
