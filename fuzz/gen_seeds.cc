// Seed-corpus generator for the fuzz harnesses.
//
//   delex_fuzz_gen_seeds <corpus_root>
//
// Runs a real extraction program over two generated snapshots and plants
// the artifacts it leaves behind — reuse file triples, the page result
// cache, serialized snapshots, individual encoded records — as seeds
// under <corpus_root>/<harness>/. Fuzzing then starts from well-formed
// bytes of the actual formats instead of discovering the magics from
// nothing. A few hand-crafted regression seeds (giant length prefix,
// truncated header) reproduce past decoder findings.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "corpus/generator.h"
#include "delex/engine.h"
#include "delex/run_stats.h"
#include "harness/programs.h"
#include "matcher/matcher.h"
#include "storage/reuse_file.h"
#include "storage/snapshot.h"

namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "gen_seeds: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void WriteSeed(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr ||
      (!bytes.empty() &&
       std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) ||
      std::fclose(f) != 0) {
    std::fprintf(stderr, "gen_seeds: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(stderr, "gen_seeds: %s (%zu bytes)\n", path.c_str(),
               bytes.size());
}

std::string PutU64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus_root>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];

  // Small but real: a DBLife-profile corpus through the talk program,
  // two generations, so every v2 artifact exists with multiple pages.
  delex::DatasetProfile profile = delex::DatasetProfile::DBLife();
  profile.num_sources = 6;
  delex::CorpusGenerator gen(profile, /*seed=*/42);
  delex::Snapshot s0 = gen.Initial();
  delex::Snapshot s1 = gen.Evolve(s0);

  auto program = delex::MakeProgram("talk");
  if (!program.ok()) {
    std::fprintf(stderr, "gen_seeds: %s\n", program.status().ToString().c_str());
    return 2;
  }

  std::string work = "/tmp/delex-gen-seeds-XXXXXX";
  if (mkdtemp(work.data()) == nullptr) return 2;

  delex::DelexEngine::Options options;
  options.work_dir = work;
  delex::DelexEngine engine(program->plan, options);
  delex::MatcherAssignment none;
  auto run0 = [&]() -> delex::Status {
    DELEX_RETURN_NOT_OK(engine.Init());
    DELEX_ASSIGN_OR_RETURN(auto rows0,
                           engine.RunSnapshot(s0, nullptr, none, nullptr));
    const delex::MatcherAssignment st = delex::MatcherAssignment::Uniform(
        engine.NumUnits(), delex::MatcherKind::kST);
    DELEX_ASSIGN_OR_RETURN(auto rows1,
                           engine.RunSnapshot(s1, &s0, st, nullptr));
    (void)rows0;
    (void)rows1;
    return delex::Status::OK();
  };
  delex::Status st = run0();
  if (!st.ok()) {
    std::fprintf(stderr, "gen_seeds: engine run failed: %s\n",
                 st.ToString().c_str());
    return 2;
  }

  // Generation-1 artifacts (generation 0 was consumed and deleted).
  const std::string in_bytes = ReadFileOrDie(work + "/unit0.gen1.in");
  const std::string out_bytes = ReadFileOrDie(work + "/unit0.gen1.out");
  const std::string idx_bytes = ReadFileOrDie(work + "/unit0.gen1.idx");
  const std::string results_bytes = ReadFileOrDie(work + "/results.gen1");

  // fuzz_record_file: a real framed record file.
  WriteSeed(root + "/fuzz_record_file", "reuse-in", in_bytes);
  // Regression: 0xFF..FF length prefix once overflowed `8 + length`.
  WriteSeed(root + "/fuzz_record_file", "giant-length",
            std::string(8, '\xff'));
  // Regression: truncated length prefix.
  WriteSeed(root + "/fuzz_record_file", "short-prefix", std::string(3, 'x'));

  // fuzz_reuse_reader: [u64 digest][u16 in_len][u16 out_len][in][out][idx]
  // with the digest of the first old page, so the index-valid raw path
  // fires on replay.
  if (in_bytes.size() > 0xffff || out_bytes.size() > 0xffff) {
    std::fprintf(stderr, "gen_seeds: reuse files too large for seed header\n");
    return 2;
  }
  std::string triple = PutU64(s1.pages()[0].content_hash);
  triple += static_cast<char>(in_bytes.size() >> 8);
  triple += static_cast<char>(in_bytes.size() & 0xff);
  triple += static_cast<char>(out_bytes.size() >> 8);
  triple += static_cast<char>(out_bytes.size() & 0xff);
  triple += in_bytes;
  triple += out_bytes;
  triple += idx_bytes;
  WriteSeed(root + "/fuzz_reuse_reader", "gen1-triple", triple);

  // fuzz_result_cache: the real generation-1 cache.
  WriteSeed(root + "/fuzz_result_cache", "results-gen1", results_bytes);

  // fuzz_snapshot: a small real snapshot (full generated snapshots are
  // ~100 KB — too heavy to commit as a seed).
  delex::Snapshot tiny;
  tiny.AddPage("http://dblife.example/p0",
               "serge abiteboul gives a talk at stanford. filler sentence.");
  tiny.AddPage("http://dblife.example/p1", "");
  tiny.AddPage("http://dblife.example/p2",
               "jeff ullman chairs sigmod. more filler text here.");
  const std::string snap_path = work + "/snapshot.bin";
  if (!delex::WriteSnapshot(tiny, snap_path).ok()) return 2;
  WriteSeed(root + "/fuzz_snapshot", "tiny-snapshot", ReadFileOrDie(snap_path));

  // fuzz_value_decode: an encoded tuple exercising all three value kinds.
  delex::Tuple tuple;
  tuple.push_back(int64_t{12345});
  tuple.push_back(std::string("serge abiteboul gives a talk"));
  tuple.push_back(delex::TextSpan(17, 29));
  std::string encoded;
  delex::EncodeTuple(tuple, &encoded);
  WriteSeed(root + "/fuzz_value_decode", "mixed-tuple", encoded);

  // fuzz_reuse_records: one seed per decoder mode (leading mode byte).
  delex::InputTupleRec in_rec;
  in_rec.region = delex::TextSpan(100, 180);
  in_rec.region_hash = 0x1234567890abcdefULL;
  std::string rec_bytes;
  delex::EncodeInputTuple(in_rec, &rec_bytes);
  WriteSeed(root + "/fuzz_reuse_records", "input-tuple",
            std::string(1, '\0') + rec_bytes);
  delex::OutputTupleRec out_rec;
  out_rec.itid = 0;
  out_rec.payload = tuple;
  rec_bytes.clear();
  delex::EncodeOutputTuple(out_rec, &rec_bytes);
  WriteSeed(root + "/fuzz_reuse_records", "output-tuple",
            std::string(1, '\x01') + rec_bytes);
  delex::PageIndexEntry entry;
  entry.did = 3;
  entry.page_digest = s1.pages()[0].content_hash;
  entry.in_bytes = 64;
  entry.n_inputs = 2;
  rec_bytes.clear();
  delex::EncodePageIndexEntry(entry, &rec_bytes);
  WriteSeed(root + "/fuzz_reuse_records", "index-entry",
            std::string(1, '\x02') + rec_bytes);

  // fuzz_matcher: the cursor consumes token picks, an edit script, then
  // region endpoints — a long run of varied bytes reaches all of them.
  std::string matcher_seed;
  matcher_seed += static_cast<char>(96);  // token count selector
  for (int i = 0; i < 96; ++i) matcher_seed += static_cast<char>(i * 7);
  WriteSeed(root + "/fuzz_matcher", "token-walk", matcher_seed);

  std::error_code ec;
  std::filesystem::remove_all(work, ec);
  return 0;
}
