#ifndef DELEX_FUZZ_FUZZ_UTIL_H_
#define DELEX_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace delex {
namespace fuzz {

/// \brief Deterministic byte-stream consumer shared by all harnesses.
///
/// Every derived value is a pure function of the input bytes, so a corpus
/// file replays identically under libFuzzer and under the fallback
/// driver. When the stream drains, all accessors return zeros/empties —
/// short inputs explore the small-value corner instead of erroring out.
class FuzzCursor {
 public:
  FuzzCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  uint8_t Byte() { return pos_ < size_ ? data_[pos_++] : 0; }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(Byte()) << (8 * i);
    return v;
  }

  /// Uniform-ish value in [lo, hi] (inclusive); lo when the range is bad.
  int64_t Int(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(U64() % span);
  }

  /// Up to `n` bytes off the stream (fewer when it drains).
  std::string Bytes(size_t n) {
    const size_t take = n < remaining() ? n : remaining();
    std::string out(reinterpret_cast<const char*>(data_ + pos_), take);
    pos_ += take;
    return out;
  }

  /// Everything left.
  std::string Rest() { return Bytes(remaining()); }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// \brief Scratch directory for harnesses that must round-trip through
/// real files (record/reuse/result-cache readers take paths). One
/// directory per process, created lazily; files inside are overwritten
/// per input, so no per-iteration cleanup is needed.
std::string ScratchDir();

/// Overwrites `path` with `bytes`; aborts on I/O failure (the harness
/// cannot distinguish scratch-disk trouble from a finding otherwise).
void WriteFileOrDie(const std::string& path, std::string_view bytes);

}  // namespace fuzz
}  // namespace delex

#endif  // DELEX_FUZZ_FUZZ_UTIL_H_
