// Tests for reuse format v2's sidecar page index and the zero-decode raw
// passthrough: ReadPageRaw/CommitPageRaw must reproduce CommitPage's bytes
// exactly, and a missing/truncated/corrupt index must degrade to the
// decode path — never miscompute.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "storage/result_cache.h"
#include "storage/reuse_file.h"

namespace delex {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("delex-reusev2-" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

PageCapture MakeCapture() {
  PageCapture capture;
  PageCapture::Group& a = capture.groups.emplace_back();
  a.region = TextSpan(10, 90);
  a.region_hash = 777;
  a.outputs.push_back({TextSpan(12, 20), std::string("alpha")});
  a.outputs.push_back({TextSpan(40, 55), std::string("beta")});
  PageCapture::Group& b = capture.groups.emplace_back();
  b.region = TextSpan(90, 160);
  b.region_hash = 778;
  b.context = {int64_t{3}, std::string("ctx")};
  PageCapture::Group& c = capture.groups.emplace_back();
  c.region = TextSpan(160, 200);
  c.region_hash = 779;
  c.outputs.push_back({TextSpan(161, 170), std::string("gamma")});
  return capture;
}

constexpr uint64_t kDigest0 = 0xAAAA0000;
constexpr uint64_t kDigest1 = 0xBBBB1111;
constexpr uint64_t kDigest2 = 0xCCCC2222;

// Writes pages 0 (the rich capture), 1 (empty), 2 (one plain group).
void WriteFixture(const std::string& prefix) {
  UnitReuseWriter writer;
  ASSERT_TRUE(writer.Open(prefix).ok());
  ASSERT_TRUE(writer.CommitPage(0, kDigest0, MakeCapture()).ok());
  ASSERT_TRUE(writer.CommitPage(1, kDigest1, PageCapture()).ok());
  PageCapture last;
  PageCapture::Group& g = last.groups.emplace_back();
  g.region = TextSpan(0, 30);
  g.region_hash = 900;
  ASSERT_TRUE(writer.CommitPage(2, kDigest2, last).ok());
  ASSERT_TRUE(writer.Close().ok());
}

TEST(ReuseV2Index, IndexEntriesDescribeEveryPage) {
  std::string prefix = TempDir("index") + "/unit0";
  WriteFixture(prefix);

  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix).ok());
  EXPECT_TRUE(reader.has_page_index());

  const PageIndexEntry* e0 = reader.FindIndexEntry(0);
  ASSERT_NE(e0, nullptr);
  EXPECT_EQ(e0->did, 0);
  EXPECT_EQ(e0->page_digest, kDigest0);
  EXPECT_EQ(e0->n_inputs, 3);
  EXPECT_EQ(e0->n_outputs, 3);
  EXPECT_GT(e0->in_bytes, 0);
  EXPECT_GT(e0->out_bytes, 0);

  // Empty pages still get an entry — "page had nothing", not "missing".
  const PageIndexEntry* e1 = reader.FindIndexEntry(1);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->page_digest, kDigest1);
  EXPECT_EQ(e1->n_inputs, 0);
  EXPECT_EQ(e1->n_outputs, 0);
  EXPECT_EQ(e1->in_bytes, 0);

  const PageIndexEntry* e2 = reader.FindIndexEntry(2);
  ASSERT_NE(e2, nullptr);
  // Page 2's records sit right after page 0's (headers excluded from the
  // byte ranges, so offsets are strictly increasing but not contiguous).
  EXPECT_GT(e2->in_offset, e0->in_offset);
  EXPECT_EQ(reader.FindIndexEntry(99), nullptr);
  ASSERT_TRUE(reader.Close().ok());
}

TEST(ReuseV2Index, RawPassthroughReproducesCommitPageBytes) {
  std::string dir = TempDir("raw");
  std::string prefix = dir + "/unit0";
  WriteFixture(prefix);

  // Relocate all three pages raw under shifted dids...
  std::string raw_prefix = dir + "/raw";
  {
    UnitReuseReader reader;
    ASSERT_TRUE(reader.Open(prefix).ok());
    UnitReuseWriter writer;
    ASSERT_TRUE(writer.Open(raw_prefix).ok());
    const uint64_t digests[] = {kDigest0, kDigest1, kDigest2};
    for (int64_t did = 0; did < 3; ++did) {
      RawPageSlice slice;
      bool found = false;
      bool index_valid = false;
      ASSERT_TRUE(reader.ReadPageRaw(did, digests[did], &slice, &found,
                                     &index_valid)
                      .ok());
      ASSERT_TRUE(found);
      ASSERT_TRUE(index_valid);
      EXPECT_EQ(slice.page_digest, digests[did]);
      ASSERT_TRUE(writer.CommitPageRaw(did + 10, slice).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    ASSERT_TRUE(reader.Close().ok());
  }

  // ...and re-capture the same pages through the decode path under the
  // same shifted dids. Both routes must produce byte-identical files.
  std::string dec_prefix = dir + "/dec";
  {
    UnitReuseReader reader;
    ASSERT_TRUE(reader.Open(prefix).ok());
    UnitReuseWriter writer;
    ASSERT_TRUE(writer.Open(dec_prefix).ok());
    const uint64_t digests[] = {kDigest0, kDigest1, kDigest2};
    for (int64_t did = 0; did < 3; ++did) {
      RawPageSlice slice;
      bool found = false;
      bool index_valid = false;
      ASSERT_TRUE(reader.ReadPageRaw(did, digests[did], &slice, &found,
                                     &index_valid)
                      .ok());
      ASSERT_TRUE(found);
      PageCapture capture;
      ASSERT_TRUE(CaptureFromRawSlice(slice, &capture).ok());
      ASSERT_TRUE(writer.CommitPage(did + 10, digests[did], capture).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    ASSERT_TRUE(reader.Close().ok());
  }

  for (const char* suffix : {".in", ".out", ".idx"}) {
    EXPECT_EQ(ReadFileBytes(raw_prefix + suffix),
              ReadFileBytes(dec_prefix + suffix))
        << suffix;
  }

  // The relocated files decode exactly like the originals, page for page.
  UnitReuseReader original;
  ASSERT_TRUE(original.Open(prefix).ok());
  UnitReuseReader relocated;
  ASSERT_TRUE(relocated.Open(raw_prefix).ok());
  for (int64_t did = 0; did < 3; ++did) {
    std::vector<InputTupleRec> in_a, in_b;
    std::vector<OutputTupleRec> out_a, out_b;
    ASSERT_TRUE(original.SeekPage(did, &in_a, &out_a).ok());
    ASSERT_TRUE(relocated.SeekPage(did + 10, &in_b, &out_b).ok());
    ASSERT_EQ(in_a.size(), in_b.size());
    ASSERT_EQ(out_a.size(), out_b.size());
    for (size_t i = 0; i < in_a.size(); ++i) {
      EXPECT_EQ(in_a[i].tid, in_b[i].tid);
      EXPECT_EQ(in_a[i].region, in_b[i].region);
      EXPECT_EQ(in_a[i].region_hash, in_b[i].region_hash);
      EXPECT_EQ(in_a[i].context, in_b[i].context);
      EXPECT_EQ(in_b[i].did, did + 10);  // did re-stamped, nothing else
    }
    for (size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].itid, out_b[i].itid);
      EXPECT_EQ(out_a[i].payload, out_b[i].payload);
    }
  }
}

TEST(ReuseV2Index, DigestMismatchInvalidatesIndexButSliceStillDecodes) {
  std::string prefix = TempDir("digest") + "/unit0";
  WriteFixture(prefix);

  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix).ok());
  RawPageSlice slice;
  bool found = false;
  bool index_valid = true;
  // Expected digest disagrees with the recorded one → no raw relocation.
  ASSERT_TRUE(
      reader.ReadPageRaw(0, kDigest0 + 1, &slice, &found, &index_valid).ok());
  EXPECT_TRUE(found);
  EXPECT_FALSE(index_valid);

  // The slice itself is still sound: the decode fallback recovers the page.
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  ASSERT_TRUE(DecodeRawPageSlice(slice, 0, &inputs, &outputs).ok());
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[0].region, TextSpan(10, 90));
  EXPECT_EQ(inputs[0].did, 0);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(outputs[0].itid, 0);
  EXPECT_EQ(outputs[2].itid, 2);
}

struct IndexDamage {
  const char* name;
  void (*inflict)(const std::string& idx_path);
};

class ReuseV2IndexDamageTest : public ::testing::TestWithParam<IndexDamage> {};

TEST_P(ReuseV2IndexDamageTest, DamagedIndexDegradesToDecodePath) {
  std::string prefix = TempDir(std::string("damage-") + GetParam().name) +
                       "/unit0";
  WriteFixture(prefix);
  GetParam().inflict(prefix + ".idx");

  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix).ok());  // never fails on index damage
  EXPECT_FALSE(reader.has_page_index());
  EXPECT_EQ(reader.FindIndexEntry(0), nullptr);

  // Raw relocation is off...
  RawPageSlice slice;
  bool found = false;
  bool index_valid = true;
  ASSERT_TRUE(
      reader.ReadPageRaw(0, kDigest0, &slice, &found, &index_valid).ok());
  EXPECT_TRUE(found);
  EXPECT_FALSE(index_valid);

  // ...but every record is still recoverable from the captured slice.
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  ASSERT_TRUE(DecodeRawPageSlice(slice, 0, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 3u);
  EXPECT_EQ(outputs.size(), 3u);

  // And the decode-path seek on a fresh reader sees the full fixture.
  UnitReuseReader seek_reader;
  ASSERT_TRUE(seek_reader.Open(prefix).ok());
  ASSERT_TRUE(seek_reader.SeekPage(2, &inputs, &outputs).ok());
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].region, TextSpan(0, 30));
  EXPECT_TRUE(outputs.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Damage, ReuseV2IndexDamageTest,
    ::testing::Values(
        IndexDamage{"missing",
                    [](const std::string& path) {
                      std::filesystem::remove(path);
                    }},
        IndexDamage{"truncated",
                    [](const std::string& path) {
                      std::filesystem::resize_file(
                          path, std::filesystem::file_size(path) / 2);
                    }},
        IndexDamage{"badmagic",
                    [](const std::string& path) {
                      std::fstream f(path, std::ios::in | std::ios::out |
                                               std::ios::binary);
                      // Clobber the magic record's payload.
                      f.seekp(8);
                      f.write("XXXXXXXX", 8);
                    }},
        IndexDamage{"garbage",
                    [](const std::string& path) {
                      // Valid magic, then a record too short to be an entry.
                      std::fstream f(path, std::ios::in | std::ios::out |
                                               std::ios::binary);
                      f.seekp(16);
                      const char len[8] = {2, 0, 0, 0, 0, 0, 0, 0};
                      f.write(len, 8);
                    }}),
    [](const ::testing::TestParamInfo<IndexDamage>& info) {
      return info.param.name;
    });

TEST(ReuseV2Index, BackwardRawReadReportsNotFound) {
  std::string prefix = TempDir("backward") + "/unit0";
  WriteFixture(prefix);
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix).ok());
  RawPageSlice slice;
  bool found = false;
  bool index_valid = false;
  ASSERT_TRUE(
      reader.ReadPageRaw(2, kDigest2, &slice, &found, &index_valid).ok());
  ASSERT_TRUE(found);
  // Page 0 was passed by the forward scan: not found, never invented.
  ASSERT_TRUE(
      reader.ReadPageRaw(0, kDigest0, &slice, &found, &index_valid).ok());
  EXPECT_FALSE(found);
  EXPECT_FALSE(index_valid);
}

TEST(ReuseV2Index, CaptureFromRawSliceRejectsOrphanedOutputs) {
  std::string prefix = TempDir("orphan") + "/unit0";
  // An output referencing input ordinal 5 in a page with one input.
  UnitReuseWriter writer;
  ASSERT_TRUE(writer.Open(prefix).ok());
  PageCapture capture = MakeCapture();
  ASSERT_TRUE(writer.CommitPage(0, kDigest0, capture).ok());
  ASSERT_TRUE(writer.Close().ok());

  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix).ok());
  RawPageSlice slice;
  bool found = false;
  bool index_valid = false;
  ASSERT_TRUE(
      reader.ReadPageRaw(0, kDigest0, &slice, &found, &index_valid).ok());
  ASSERT_TRUE(found);
  // Keep only the first input record (length-prefixed framing): the output
  // produced by input ordinal 2 is now orphaned.
  uint64_t first_len = 0;
  for (int i = 7; i >= 0; --i) {
    first_len = (first_len << 8) |
                static_cast<unsigned char>(slice.in_bytes[i]);
  }
  slice.in_bytes.resize(8 + first_len);
  slice.n_inputs = 1;
  PageCapture rebuilt;
  EXPECT_FALSE(CaptureFromRawSlice(slice, &rebuilt).ok());
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ResultCache, RoundTripsRowsAndStripsDids) {
  std::string path = TempDir("results") + "/results.gen1";
  ResultCacheWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<Tuple> rows;
  rows.push_back({int64_t{0}, TextSpan(3, 9), std::string("m1")});
  rows.push_back({int64_t{0}, TextSpan(14, 20), std::string("m2")});
  ASSERT_TRUE(writer.CommitPage(0, rows).ok());
  ASSERT_TRUE(writer.CommitPage(1, {}).ok());
  std::vector<Tuple> rows2;
  rows2.push_back({int64_t{2}, std::string("solo")});
  ASSERT_TRUE(writer.CommitPage(2, rows2).ok());
  ASSERT_TRUE(writer.Close().ok());

  ResultCacheReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ResultPageSlice slice;
  bool found = false;
  ASSERT_TRUE(reader.ReadPage(0, &slice, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(slice.n_rows, 2);

  // Re-prefix under a new did — the fast path's row recovery.
  std::vector<Tuple> decoded;
  ASSERT_TRUE(DecodeResultSlice(slice, 42, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(decoded[0][0]), 42);
  EXPECT_EQ(std::get<TextSpan>(decoded[0][1]), TextSpan(3, 9));
  EXPECT_EQ(std::get<std::string>(decoded[1][2]), "m2");

  ASSERT_TRUE(reader.ReadPage(1, &slice, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(slice.n_rows, 0);

  ASSERT_TRUE(reader.ReadPage(2, &slice, &found).ok());
  ASSERT_TRUE(found);
  decoded.clear();
  ASSERT_TRUE(DecodeResultSlice(slice, 7, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(decoded[0][0]), 7);

  // Absent page: found=false, never an error.
  ASSERT_TRUE(reader.ReadPage(9, &slice, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(reader.Close().ok());
}

TEST(ResultCache, CommitRejectsRowsWithoutLeadingDid) {
  std::string path = TempDir("results-bad") + "/results.gen1";
  ResultCacheWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<Tuple> rows;
  rows.push_back({std::string("no did here")});
  EXPECT_FALSE(writer.CommitPage(0, rows).ok());
}

TEST(ResultCache, RawRecommitReproducesBytes) {
  std::string dir = TempDir("results-raw");
  std::string gen1 = dir + "/results.gen1";
  {
    ResultCacheWriter writer;
    ASSERT_TRUE(writer.Open(gen1).ok());
    std::vector<Tuple> rows;
    rows.push_back({int64_t{0}, std::string("r")});
    ASSERT_TRUE(writer.CommitPage(0, rows).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Relocate page 0 raw into gen2, and rebuild it via decode into gen2b.
  std::string gen2 = dir + "/results.gen2";
  std::string gen2b = dir + "/results.gen2b";
  ResultPageSlice slice;
  bool found = false;
  {
    ResultCacheReader reader;
    ASSERT_TRUE(reader.Open(gen1).ok());
    ASSERT_TRUE(reader.ReadPage(0, &slice, &found).ok());
    ASSERT_TRUE(found);
    ASSERT_TRUE(reader.Close().ok());
  }
  {
    ResultCacheWriter writer;
    ASSERT_TRUE(writer.Open(gen2).ok());
    ASSERT_TRUE(writer.CommitPageRaw(5, slice).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    std::vector<Tuple> rows;
    ASSERT_TRUE(DecodeResultSlice(slice, 5, &rows).ok());
    ResultCacheWriter writer;
    ASSERT_TRUE(writer.Open(gen2b).ok());
    ASSERT_TRUE(writer.CommitPage(5, rows).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_EQ(ReadFileBytes(gen2), ReadFileBytes(gen2b));
}

TEST(ResultCache, TruncatedFileReportsCorruptionOnRead) {
  std::string path = TempDir("results-trunc") + "/results.gen1";
  {
    ResultCacheWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    std::vector<Tuple> rows;
    rows.push_back({int64_t{0}, std::string(600, 'x')});
    ASSERT_TRUE(writer.CommitPage(0, rows).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 10);
  ResultCacheReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  ResultPageSlice slice;
  bool found = false;
  EXPECT_FALSE(reader.ReadPage(0, &slice, &found).ok());
}

}  // namespace
}  // namespace delex
