// Observability layer 3: the checksummed generation-history store.
// Covers the envelope framing (fixed-offset crc), full-record round
// trips, every corruption path (framing, checksum, JSON, missing gen,
// torn tail, out-of-order generations) degrading to Status::Corruption
// drops — never aborts — retention compaction, the env knobs, and the
// end-to-end contract: RunSeries appends one record per completed
// generation (plus per-shard views) across {1,4} shards × {1,8} threads.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "obs/history.h"

namespace delex {
namespace {

namespace fs = std::filesystem;

using obs::HistoryLoadInfo;
using obs::HistoryRecord;
using obs::HistoryStore;

fs::path FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("delex-history-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Restores (or clears) one env var when the test scope ends.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// A record exercising every optional block: optimizer with coeffs and
/// audited decisions, per-unit summaries, and per-shard rollups.
HistoryRecord FullRecord(int gen) {
  HistoryRecord r;
  r.gen = gen;
  r.solution = "Delex";
  r.tag = "history-test";
  r.warmup = false;
  r.threads = 4;
  r.num_shards = 2;
  r.fast_path = true;
  r.assignment = "ST,RU";
  r.pages = 120;
  r.pages_identical = 80;
  r.result_tuples = 64;
  r.match_us = 1000;
  r.extract_us = 2000;
  r.copy_us = 300;
  r.opt_us = 40;
  r.capture_us = 500;
  r.total_us = 4000;
  r.others_us = 160;
  r.phase_drift_us = 7;
  r.demote_result_cache = 1;
  r.demote_missing_group = 2;
  r.decode_copy_groups = 3;
  r.reuse_corrupt_drops = 4;
  r.trace_dropped_events = 5;
  r.has_optimizer = true;
  r.learning = true;
  r.predicted_total_us = 3900.5;
  r.cost_drift = 0.125;
  obs::OptimizerReport::LearnedCoefficient coeff;
  coeff.matcher = "ST";
  coeff.gain = 1.25;
  coeff.bias = 40.5;
  coeff.drift = 0.0625;
  coeff.samples = 12;
  r.coeffs.push_back(coeff);
  obs::OptimizerReport::UnitDecision d;
  d.unit = 0;
  d.winner = "ST";
  d.runner_up = "RU";
  d.margin_us = 17.5;
  d.candidate_us = {{"DN", 900.0}, {"UD", 410.0}, {"ST", 180.5}, {"RU", 198.0}};
  d.f = 0.25;
  d.m = 120;
  d.a = 1.5;
  d.l = 640;
  d.gain = 1.25;
  d.bias = 40.5;
  d.samples = 12;
  d.history_window = 3;
  r.decisions.push_back(d);
  HistoryRecord::UnitSummary u0{"ST", 180.5, 200.0};
  HistoryRecord::UnitSummary u1{"RU", -1, 350.0};
  r.units = {u0, u1};
  obs::RunReportMeta::ShardSummary s0;
  s0.shard = 0;
  s0.pages = 70;
  s0.pages_identical = 50;
  s0.result_tuples = 40;
  s0.total_us = 2200;
  s0.reuse_corrupt_drops = 4;
  s0.assignment = "ST,RU";
  s0.cost_drift = 0.25;
  obs::RunReportMeta::ShardSummary s1;
  s1.shard = 1;
  s1.pages = 50;
  s1.pages_identical = 30;
  s1.result_tuples = 24;
  s1.total_us = 1800;
  // s1 has no assignment / drift: the "unavailable" arm of the schema.
  r.shards = {s0, s1};
  return r;
}

TEST(HistoryLine, EnvelopeHasFixedOffsetChecksum) {
  std::string line = HistoryStore::FormatLine(FullRecord(3));
  ASSERT_GE(line.size(), 35u);
  EXPECT_EQ(line.substr(0, 8), "{\"crc\":\"");
  EXPECT_EQ(line.substr(24, 8), "\",\"rec\":");
  EXPECT_EQ(line.back(), '}');
  // The hex field at [8,24) is Fnv1a64 of the rec bytes at [32,len-1) —
  // the exact contract ci/check.sh validates with Python string slicing.
  std::string body = line.substr(32, line.size() - 33);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(body)));
  EXPECT_EQ(line.substr(8, 16), hex);
}

TEST(HistoryLine, RoundTripsEveryField) {
  HistoryRecord in = FullRecord(7);
  std::string line = HistoryStore::FormatLine(in);
  HistoryRecord out;
  ASSERT_TRUE(HistoryStore::ParseLine(line, &out).ok());

  EXPECT_EQ(out.gen, in.gen);
  EXPECT_EQ(out.shard, -1);
  EXPECT_EQ(out.solution, in.solution);
  EXPECT_EQ(out.tag, in.tag);
  EXPECT_EQ(out.warmup, in.warmup);
  EXPECT_EQ(out.threads, in.threads);
  EXPECT_EQ(out.num_shards, in.num_shards);
  EXPECT_EQ(out.fast_path, in.fast_path);
  EXPECT_EQ(out.assignment, in.assignment);
  EXPECT_EQ(out.pages, in.pages);
  EXPECT_EQ(out.pages_identical, in.pages_identical);
  EXPECT_EQ(out.result_tuples, in.result_tuples);
  EXPECT_EQ(out.match_us, in.match_us);
  EXPECT_EQ(out.extract_us, in.extract_us);
  EXPECT_EQ(out.copy_us, in.copy_us);
  EXPECT_EQ(out.opt_us, in.opt_us);
  EXPECT_EQ(out.capture_us, in.capture_us);
  EXPECT_EQ(out.total_us, in.total_us);
  EXPECT_EQ(out.others_us, in.others_us);
  EXPECT_EQ(out.phase_drift_us, in.phase_drift_us);
  EXPECT_EQ(out.demote_result_cache, in.demote_result_cache);
  EXPECT_EQ(out.demote_missing_group, in.demote_missing_group);
  EXPECT_EQ(out.decode_copy_groups, in.decode_copy_groups);
  EXPECT_EQ(out.reuse_corrupt_drops, in.reuse_corrupt_drops);
  EXPECT_EQ(out.trace_dropped_events, in.trace_dropped_events);

  EXPECT_TRUE(out.has_optimizer);
  EXPECT_TRUE(out.learning);
  EXPECT_DOUBLE_EQ(out.predicted_total_us, in.predicted_total_us);
  EXPECT_DOUBLE_EQ(out.cost_drift, in.cost_drift);
  ASSERT_EQ(out.coeffs.size(), 1u);
  EXPECT_EQ(out.coeffs[0].matcher, "ST");
  EXPECT_DOUBLE_EQ(out.coeffs[0].gain, 1.25);
  EXPECT_DOUBLE_EQ(out.coeffs[0].bias, 40.5);
  EXPECT_DOUBLE_EQ(out.coeffs[0].drift, 0.0625);
  EXPECT_EQ(out.coeffs[0].samples, 12);
  ASSERT_EQ(out.decisions.size(), 1u);
  EXPECT_EQ(out.decisions[0].unit, 0);
  EXPECT_EQ(out.decisions[0].winner, "ST");
  EXPECT_EQ(out.decisions[0].runner_up, "RU");
  EXPECT_DOUBLE_EQ(out.decisions[0].margin_us, 17.5);
  ASSERT_EQ(out.decisions[0].candidate_us.size(), 4u);
  EXPECT_EQ(out.decisions[0].candidate_us[2].first, "ST");
  EXPECT_DOUBLE_EQ(out.decisions[0].candidate_us[2].second, 180.5);
  EXPECT_DOUBLE_EQ(out.decisions[0].f, 0.25);
  EXPECT_DOUBLE_EQ(out.decisions[0].m, 120);
  EXPECT_DOUBLE_EQ(out.decisions[0].a, 1.5);
  EXPECT_DOUBLE_EQ(out.decisions[0].l, 640);
  EXPECT_DOUBLE_EQ(out.decisions[0].gain, 1.25);
  EXPECT_DOUBLE_EQ(out.decisions[0].bias, 40.5);
  EXPECT_EQ(out.decisions[0].samples, 12);
  EXPECT_EQ(out.decisions[0].history_window, 3);

  ASSERT_EQ(out.units.size(), 2u);
  EXPECT_EQ(out.units[0].matcher, "ST");
  EXPECT_DOUBLE_EQ(out.units[0].predicted_us, 180.5);
  EXPECT_DOUBLE_EQ(out.units[0].actual_us, 200.0);
  EXPECT_EQ(out.units[1].matcher, "RU");
  EXPECT_DOUBLE_EQ(out.units[1].predicted_us, -1);  // omitted when < 0

  ASSERT_EQ(out.shards.size(), 2u);
  EXPECT_EQ(out.shards[0].shard, 0);
  EXPECT_EQ(out.shards[0].assignment, "ST,RU");
  EXPECT_DOUBLE_EQ(out.shards[0].cost_drift, 0.25);
  EXPECT_EQ(out.shards[1].total_us, 1800);
  EXPECT_EQ(out.shards[1].assignment, "");
  EXPECT_DOUBLE_EQ(out.shards[1].cost_drift, -1);

  EXPECT_EQ(out.raw, line);
}

TEST(HistoryLine, WarmupRecordOmitsOptimizerBlock) {
  HistoryRecord in;
  in.gen = 1;
  in.solution = "Delex";
  in.warmup = true;
  in.assignment = "DN,DN";
  in.has_optimizer = false;
  std::string line = HistoryStore::FormatLine(in);
  EXPECT_EQ(line.find("\"optimizer\""), std::string::npos);
  HistoryRecord out;
  ASSERT_TRUE(HistoryStore::ParseLine(line, &out).ok());
  EXPECT_FALSE(out.has_optimizer);
  EXPECT_TRUE(out.warmup);
  EXPECT_EQ(out.assignment, "DN,DN");
}

TEST(HistoryLine, RejectsBadFraming) {
  HistoryRecord rec;
  EXPECT_TRUE(HistoryStore::ParseLine("", &rec).IsCorruption());
  EXPECT_TRUE(HistoryStore::ParseLine("{\"gen\":1}", &rec).IsCorruption());

  std::string line = HistoryStore::FormatLine(FullRecord(1));
  std::string bad_prefix = line;
  bad_prefix[2] = 'x';  // {"xrc":"... — envelope key tampered
  EXPECT_TRUE(HistoryStore::ParseLine(bad_prefix, &rec).IsCorruption());

  std::string bad_hex = line;
  bad_hex[10] = 'Z';  // not lowercase hex
  EXPECT_TRUE(HistoryStore::ParseLine(bad_hex, &rec).IsCorruption());

  std::string no_brace = line.substr(0, line.size() - 1);
  EXPECT_TRUE(HistoryStore::ParseLine(no_brace, &rec).IsCorruption());
}

TEST(HistoryLine, RejectsChecksumMismatchAndBadJson) {
  std::string line = HistoryStore::FormatLine(FullRecord(2));
  std::string flipped = line;
  size_t digit = flipped.find("\"pages\":120");
  ASSERT_NE(digit, std::string::npos);
  flipped[digit + 8] = '9';  // 120 -> 920 without fixing the crc
  HistoryRecord rec;
  Status st = HistoryStore::ParseLine(flipped, &rec);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("checksum"), std::string::npos);

  // A correctly checksummed envelope whose rec is not valid JSON.
  std::string body = "{\"gen\":";
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(body)));
  std::string crafted = "{\"crc\":\"" + std::string(hex) + "\",\"rec\":" +
                        body + "}";
  EXPECT_TRUE(HistoryStore::ParseLine(crafted, &rec).IsCorruption());
}

TEST(HistoryLine, RejectsMissingGeneration) {
  std::string body = "{\"solution\":\"Delex\"}";
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(body)));
  std::string crafted = "{\"crc\":\"" + std::string(hex) + "\",\"rec\":" +
                        body + "}";
  HistoryRecord rec;
  Status st = HistoryStore::ParseLine(crafted, &rec);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("generation"), std::string::npos);
}

TEST(HistoryStoreTest, MissingFileIsEmptyHistoryNotError) {
  fs::path dir = FreshDir("missing");
  HistoryStore store((dir / "history.jsonl").string());
  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(store.Load(&records, &info).ok());
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(info.corrupt_dropped, 0);
  fs::remove_all(dir);
}

TEST(HistoryStoreTest, AppendLoadRoundTripsInOrder) {
  fs::path dir = FreshDir("append");
  HistoryStore store((dir / "history.jsonl").string());
  for (int gen = 1; gen <= 3; ++gen) {
    ASSERT_TRUE(store.Append(FullRecord(gen)).ok());
  }
  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(store.Load(&records, &info).ok());
  ASSERT_EQ(records.size(), 3u);
  for (int gen = 1; gen <= 3; ++gen) {
    EXPECT_EQ(records[static_cast<size_t>(gen - 1)].gen, gen);
  }
  EXPECT_EQ(info.corrupt_dropped, 0);
  fs::remove_all(dir);
}

TEST(HistoryStoreTest, CorruptTailIsDroppedAndNextAppendLandsCleanly) {
  fs::path dir = FreshDir("torntail");
  std::string path = (dir / "history.jsonl").string();
  HistoryStore store(path);
  ASSERT_TRUE(store.Append(FullRecord(1)).ok());

  // A crashed writer left a torn, newline-less fragment at the tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"crc\":\"0123456789abcdef\",\"rec\":{\"gen\":2,\"trunc";
  }

  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(store.Load(&records, &info).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].gen, 1);
  EXPECT_EQ(info.corrupt_dropped, 1);
  EXPECT_TRUE(info.first_error.IsCorruption()) << info.first_error.ToString();

  // The next Append must heal the tail: the new record starts a fresh
  // line instead of concatenating with the fragment.
  ASSERT_TRUE(store.Append(FullRecord(2)).ok());
  records.clear();
  info = HistoryLoadInfo();
  ASSERT_TRUE(store.Load(&records, &info).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].gen, 1);
  EXPECT_EQ(records[1].gen, 2);
  EXPECT_EQ(info.corrupt_dropped, 1);  // the fragment is still in the file
  fs::remove_all(dir);
}

TEST(HistoryStoreTest, OutOfOrderGenerationsAreDropped) {
  fs::path dir = FreshDir("order");
  std::string path = (dir / "history.jsonl").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << HistoryStore::FormatLine(FullRecord(1)) << "\n";
    out << HistoryStore::FormatLine(FullRecord(3)) << "\n";
    out << HistoryStore::FormatLine(FullRecord(2)) << "\n";  // regression
    out << HistoryStore::FormatLine(FullRecord(3)) << "\n";  // duplicate
    out << HistoryStore::FormatLine(FullRecord(4)) << "\n";
  }
  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(HistoryStore::LoadFile(path, &records, &info).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].gen, 1);
  EXPECT_EQ(records[1].gen, 3);
  EXPECT_EQ(records[2].gen, 4);
  EXPECT_EQ(info.corrupt_dropped, 2);
  EXPECT_TRUE(info.first_error.IsCorruption());
  EXPECT_NE(info.first_error.message().find("out-of-order"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(HistoryStoreTest, RetentionCompactsToNewestRecords) {
  fs::path dir = FreshDir("retain");
  HistoryStore::Options options;
  options.retain_gens = 2;
  HistoryStore store((dir / "history.jsonl").string(), options);
  for (int gen = 1; gen <= 5; ++gen) {
    ASSERT_TRUE(store.Append(FullRecord(gen)).ok());
  }
  std::vector<HistoryRecord> records;
  ASSERT_TRUE(store.Load(&records, nullptr).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].gen, 4);
  EXPECT_EQ(records[1].gen, 5);
  fs::remove_all(dir);
}

TEST(HistoryStoreTest, RetentionCompactionDiscardsCorruptLines) {
  fs::path dir = FreshDir("retain-heal");
  std::string path = (dir / "history.jsonl").string();
  HistoryStore::Options options;
  options.retain_gens = 10;
  HistoryStore store(path, options);
  ASSERT_TRUE(store.Append(FullRecord(1)).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "not a history line\n";
  }
  ASSERT_TRUE(store.Append(FullRecord(2)).ok());
  // The compacting append rewrote the file: only verified lines remain.
  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(store.Load(&records, &info).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(info.corrupt_dropped, 0);
  fs::remove_all(dir);
}

TEST(HistoryEnv, KnobsReadFreshFromEnvironment) {
  {
    ScopedEnv history("DELEX_HISTORY", nullptr);
    ScopedEnv retain("DELEX_HISTORY_RETAIN", nullptr);
    ScopedEnv audit("DELEX_DECISION_AUDIT", nullptr);
    EXPECT_TRUE(obs::HistoryEnabledFromEnv());
    EXPECT_EQ(obs::HistoryRetainFromEnv(), 0);
    EXPECT_TRUE(obs::DecisionAuditEnabledFromEnv());
  }
  {
    ScopedEnv history("DELEX_HISTORY", "0");
    ScopedEnv retain("DELEX_HISTORY_RETAIN", "7");
    ScopedEnv audit("DELEX_DECISION_AUDIT", "0");
    EXPECT_FALSE(obs::HistoryEnabledFromEnv());
    EXPECT_EQ(obs::HistoryRetainFromEnv(), 7);
    EXPECT_FALSE(obs::DecisionAuditEnabledFromEnv());
  }
  {
    ScopedEnv retain("DELEX_HISTORY_RETAIN", "-3");
    EXPECT_EQ(obs::HistoryRetainFromEnv(), 0);  // nonsense clamps to off
  }
}

/// Shrinks a profile for test speed.
DatasetProfile SmallProfile(DatasetProfile profile, int pages) {
  profile.num_sources = pages;
  return profile;
}

struct EngineCase {
  int num_shards;
  int num_threads;
};

class HistoryEngineRoundTrip : public ::testing::TestWithParam<EngineCase> {};

TEST_P(HistoryEngineRoundTrip, OneRecordPerGenerationAcrossShardsThreads) {
  const EngineCase param = GetParam();
  auto spec_or = MakeProgram("talk");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), 20), 3, /*seed=*/17);

  fs::path dir = FreshDir("engine-s" + std::to_string(param.num_shards) +
                          "-t" + std::to_string(param.num_threads));
  DelexSolutionOptions options;
  options.num_shards = param.num_shards;
  options.num_threads = param.num_threads;
  auto solution = MakeDelexSolution(spec, dir.string(), options);
  auto run = RunSeries(solution.get(), series, /*keep_results=*/false,
                       "history-test");
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(
      HistoryStore::LoadFile((dir / "history.jsonl").string(), &records, &info)
          .ok());
  EXPECT_EQ(info.corrupt_dropped, 0);
  ASSERT_EQ(records.size(), series.size());  // one record per generation

  for (size_t i = 0; i < records.size(); ++i) {
    const HistoryRecord& rec = records[i];
    EXPECT_EQ(rec.gen, static_cast<int>(i) + 1);  // monotone, gap-free
    EXPECT_EQ(rec.shard, -1);                     // merged view
    EXPECT_EQ(rec.solution, "Delex");
    EXPECT_EQ(rec.tag, "history-test");
    EXPECT_EQ(rec.warmup, i == 0);
    EXPECT_EQ(rec.threads, param.num_threads);
    EXPECT_EQ(rec.num_shards, param.num_shards);
    EXPECT_FALSE(rec.assignment.empty());
    EXPECT_GT(rec.pages, 0);
    EXPECT_EQ(rec.has_optimizer, i > 0);
    if (i == 0) {
      // The warm-up record has no optimizer block, but its units still
      // carry the executed uniform-DN plan (from the assignment string),
      // so a later diff can attribute matcher switches against gen 1.
      EXPECT_FALSE(rec.units.empty());
      for (const auto& unit : rec.units) {
        EXPECT_EQ(unit.matcher, "DN");
      }
    }
    if (i > 0) {
      // Optimized generations carry the decision audit (default-on) with
      // all four candidate costs per unit.
      EXPECT_FALSE(rec.decisions.empty());
      for (const auto& d : rec.decisions) {
        EXPECT_EQ(d.candidate_us.size(), 4u);
        EXPECT_FALSE(d.winner.empty());
        EXPECT_FALSE(d.runner_up.empty());
      }
    }
  }

  // The recorded stats mirror the SeriesRun's measured stats (gens 2..n
  // align with run->stats rows).
  for (size_t i = 1; i < records.size(); ++i) {
    const RunStats& stats = run->stats[i - 1];
    EXPECT_EQ(records[i].pages, stats.pages);
    EXPECT_EQ(records[i].result_tuples, stats.result_tuples);
    EXPECT_EQ(records[i].total_us, stats.phases.total_us);
    EXPECT_EQ(records[i].assignment, run->assignments[i - 1]);
  }

  // Sharded runs also write a pared per-shard view under shard<K>/.
  if (param.num_shards > 1) {
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i].shards.size(),
                static_cast<size_t>(param.num_shards));
    }
    for (int k = 0; k < param.num_shards; ++k) {
      std::vector<HistoryRecord> view;
      HistoryLoadInfo view_info;
      std::string path =
          (dir / ("shard" + std::to_string(k)) / "history.jsonl").string();
      ASSERT_TRUE(HistoryStore::LoadFile(path, &view, &view_info).ok());
      EXPECT_EQ(view_info.corrupt_dropped, 0);
      ASSERT_EQ(view.size(), series.size()) << "shard " << k;
      for (size_t i = 0; i < view.size(); ++i) {
        EXPECT_EQ(view[i].gen, static_cast<int>(i) + 1);
        EXPECT_EQ(view[i].shard, k);
        EXPECT_EQ(view[i].num_shards, param.num_shards);
        // The shard view repeats the merged record's per-shard rollup.
        EXPECT_EQ(view[i].pages,
                  records[i].shards[static_cast<size_t>(k)].pages);
        EXPECT_EQ(view[i].total_us,
                  records[i].shards[static_cast<size_t>(k)].total_us);
      }
    }
  } else {
    EXPECT_FALSE(fs::exists(dir / "shard0" / "history.jsonl"));
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    ShardThreadMatrix, HistoryEngineRoundTrip,
    ::testing::Values(EngineCase{1, 1}, EngineCase{1, 8}, EngineCase{4, 1},
                      EngineCase{4, 8}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.num_shards) + "t" +
             std::to_string(info.param.num_threads);
    });

TEST(HistoryEngine, DisabledByEnvWritesNothing) {
  ScopedEnv history("DELEX_HISTORY", "0");
  auto spec_or = MakeProgram("talk");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), 12), 2, /*seed=*/19);
  fs::path dir = FreshDir("disabled");
  auto solution = MakeDelexSolution(spec, dir.string());
  auto run = RunSeries(solution.get(), series);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(fs::exists(dir / "history.jsonl"));
  fs::remove_all(dir);
}

TEST(HistoryEngine, RetentionEnvCompactsEngineHistory) {
  ScopedEnv retain("DELEX_HISTORY_RETAIN", "2");
  auto spec_or = MakeProgram("talk");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), 12), 4, /*seed=*/23);
  fs::path dir = FreshDir("retain-env");
  auto solution = MakeDelexSolution(spec, dir.string());
  auto run = RunSeries(solution.get(), series);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<HistoryRecord> records;
  ASSERT_TRUE(
      HistoryStore::LoadFile((dir / "history.jsonl").string(), &records,
                             nullptr)
          .ok());
  ASSERT_EQ(records.size(), 2u);  // newest two of four generations
  EXPECT_EQ(records[0].gen, 3);
  EXPECT_EQ(records[1].gen, 4);
  fs::remove_all(dir);
}

TEST(HistoryEngine, CorruptMergedStoreDegradesAndRecovers) {
  // An engine run over a store with a torn tail must still append its
  // record cleanly — telemetry degrades (drops the fragment), the run
  // itself never fails.
  auto spec_or = MakeProgram("talk");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), 12), 2, /*seed=*/29);
  fs::path dir = FreshDir("engine-corrupt");
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "history.jsonl", std::ios::binary);
    out << "torn fragment without newline";
  }
  auto solution = MakeDelexSolution(spec, dir.string());
  auto run = RunSeries(solution.get(), series);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<HistoryRecord> records;
  HistoryLoadInfo info;
  ASSERT_TRUE(
      HistoryStore::LoadFile((dir / "history.jsonl").string(), &records, &info)
          .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].gen, 1);
  EXPECT_EQ(records[1].gen, 2);
  EXPECT_EQ(info.corrupt_dropped, 1);
  EXPECT_TRUE(info.first_error.IsCorruption());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace delex
