// Tests for the harness layer: the seven benchmark program specs are
// wired correctly (parse, translate, bind, and actually extract things
// from their corpus profile), the experiment driver behaves, and the
// table printer renders.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/programs.h"
#include "harness/table.h"
#include "xlog/plan.h"

namespace delex {
namespace {

TEST(Programs, AllNamesBuild) {
  for (const std::string& name : AllProgramNames()) {
    auto spec = MakeProgram(name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status().ToString();
    EXPECT_EQ(spec->name, name);
    EXPECT_NE(spec->plan, nullptr);
    EXPECT_GT(spec->num_blackboxes, 0);
    EXPECT_GT(spec->whole_alpha, 0);
    EXPECT_FALSE(spec->description.empty());
  }
  EXPECT_FALSE(MakeProgram("nonsense").ok());
}

TEST(Programs, BlackboxCountsMatchFigure8b) {
  const std::vector<std::pair<std::string, int>> expected = {
      {"talk", 1},  {"chair", 3}, {"advise", 5},
      {"blockbuster", 2}, {"play", 4}, {"award", 5}, {"infobox", 5}};
  for (const auto& [name, blackboxes] : expected) {
    auto spec = MakeProgram(name);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->num_blackboxes, blackboxes) << name;
  }
}

class ProgramYield : public ::testing::TestWithParam<std::string> {};

TEST_P(ProgramYield, ExtractsMentionsFromItsProfile) {
  auto spec = MakeProgram(GetParam());
  ASSERT_TRUE(spec.ok());
  DatasetProfile profile = spec->Profile();
  profile.num_sources = GetParam() == "infobox" ? 10 : 25;
  std::vector<Snapshot> series = GenerateSeries(profile, 1, 4242);
  auto rows = xlog::ExecutePlanOnSnapshot(*spec->plan, series[0]);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(rows->size(), 0u)
      << GetParam() << " extracts nothing from its own corpus profile";
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ProgramYield,
                         ::testing::Values("talk", "chair", "advise",
                                           "blockbuster", "play", "award",
                                           "infobox"),
                         [](const auto& info) { return info.param; });

TEST(Experiment, GenerateSeriesEvolvesIncrementally) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 10;
  std::vector<Snapshot> series = GenerateSeries(profile, 4, 1);
  ASSERT_EQ(series.size(), 4u);
  // Consecutive snapshots share URLs.
  int shared = 0;
  for (const Page& page : series[1].pages()) {
    if (series[0].FindByUrl(page.url)) ++shared;
  }
  EXPECT_GE(shared, 9);
}

TEST(Experiment, RunSeriesSkipsWarmupSnapshot) {
  auto spec = MakeProgram("blockbuster");
  ASSERT_TRUE(spec.ok());
  DatasetProfile profile = spec->Profile();
  profile.num_sources = 5;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 2);
  auto solution = MakeNoReuseSolution(*spec);
  auto run = RunSeries(solution.get(), series, true);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->seconds.size(), 2u);   // snapshots 2..3 only
  EXPECT_EQ(run->results.size(), 2u);
  EXPECT_EQ(run->solution, "No-reuse");
}

TEST(Experiment, CanonicalizeSortsAndCompares) {
  std::vector<Tuple> a = {{int64_t{2}}, {int64_t{1}}};
  std::vector<Tuple> b = {{int64_t{1}}, {int64_t{2}}};
  EXPECT_TRUE(SameResults(Canonicalize(a), Canonicalize(b)));
  std::vector<Tuple> c = {{int64_t{1}}};
  EXPECT_FALSE(SameResults(Canonicalize(a), Canonicalize(c)));
  std::vector<Tuple> d = {{int64_t{1}}, {int64_t{3}}};
  EXPECT_FALSE(SameResults(Canonicalize(b), Canonicalize(d)));
}

TEST(TableTest, RendersAlignedMarkdown) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"a-much-longer-name", "2.50"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name | 2.50  |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10, 0), "10");
}

TEST(MatcherAssignmentTest, ToStringAndEquality) {
  MatcherAssignment a = MatcherAssignment::Uniform(3, MatcherKind::kDN);
  a.per_unit[1] = MatcherKind::kST;
  EXPECT_EQ(a.ToString(), "DN,ST,DN");
  MatcherAssignment b = a;
  EXPECT_TRUE(a == b);
  b.per_unit[2] = MatcherKind::kRU;
  EXPECT_FALSE(a == b);
}

TEST(PhaseBreakdownTest, OthersIsResidualAndNonNegative) {
  PhaseBreakdown phases;
  phases.total_us = 100;
  phases.match_us = 30;
  phases.extract_us = 50;
  EXPECT_EQ(phases.OthersUs(), 20);
  phases.opt_us = 40;  // accounted > total (clock skew)
  EXPECT_EQ(phases.OthersUs(), 0);
  PhaseBreakdown other;
  other.total_us = 10;
  other.copy_us = 5;
  phases += other;
  EXPECT_EQ(phases.total_us, 110);
  EXPECT_EQ(phases.copy_us, 5);
}

}  // namespace
}  // namespace delex
