// Tests for the self-tuning cost model: RLS convergence of the
// per-matcher calibration, the optimizer feedback loop shrinking its
// predicted-vs-measured drift across generations, coefficient
// persistence (round-trip + corruption fallback), and the harness-level
// per-generation coeffs.genN lifecycle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/programs.h"
#include "optimizer/learned_coeffs.h"
#include "optimizer/optimizer.h"

namespace delex {
namespace {

namespace fs = std::filesystem;

/// A scratch directory that starts empty (removed, then recreated).
fs::path FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("delex-costlearn-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(CoefficientLearner, RecoversLinearModelFromCleanSamples) {
  CoefficientLearner learner;
  // Ground truth: measured = 500 + 3 * raw.
  for (int i = 0; i < 40; ++i) {
    double raw = 100.0 + 37.0 * (i % 25);
    learner.Observe(MatcherKind::kUD, raw, 500.0 + 3.0 * raw);
  }
  const CoefficientLearner::KindModel& m = learner.model(MatcherKind::kUD);
  EXPECT_EQ(m.samples, 40);
  EXPECT_NEAR(m.gain, 3.0, 0.05);
  EXPECT_NEAR(m.bias, 500.0, 25.0);
  EXPECT_NEAR(learner.Calibrate(MatcherKind::kUD, 400.0), 1700.0, 20.0);
  // Untouched kinds stay at the identity.
  EXPECT_DOUBLE_EQ(learner.Calibrate(MatcherKind::kST, 400.0), 400.0);
  EXPECT_EQ(learner.model(MatcherKind::kST).samples, 0);
}

TEST(CoefficientLearner, IgnoresNonFiniteAndNegativeInputs) {
  CoefficientLearner learner;
  learner.Observe(MatcherKind::kDN, -1.0, 100.0);
  learner.Observe(MatcherKind::kDN, 100.0, -1.0);
  learner.Observe(MatcherKind::kDN, std::numeric_limits<double>::quiet_NaN(),
                  100.0);
  learner.Observe(MatcherKind::kDN, 100.0,
                  std::numeric_limits<double>::infinity());
  EXPECT_EQ(learner.model(MatcherKind::kDN).samples, 0);
  EXPECT_EQ(learner, CoefficientLearner());
}

TEST(CoefficientLearner, CalibrationExportsLearnedKindsOnly) {
  CoefficientLearner learner;
  for (int i = 0; i < 30; ++i) {
    double raw = 50.0 + 11.0 * (i % 17);
    learner.Observe(MatcherKind::kST, raw, 200.0 + 2.0 * raw);
  }
  CostCalibration cal = learner.Calibration();
  size_t st = MatcherIndex(MatcherKind::kST);
  size_t dn = MatcherIndex(MatcherKind::kDN);
  EXPECT_NEAR(cal.gain[st], 2.0, 0.05);
  EXPECT_NEAR(cal.bias[st], 200.0, 15.0);
  EXPECT_DOUBLE_EQ(cal.gain[dn], 1.0);
  EXPECT_DOUBLE_EQ(cal.bias[dn], 0.0);
}

TEST(CoefficientLearner, SaveLoadRoundTripsExactly) {
  fs::path dir = FreshDir("roundtrip");
  CoefficientLearner learner;
  for (int i = 0; i < 12; ++i) {
    learner.Observe(MatcherKind::kUD, 100.0 + i * 13.0, 700.0 + i * 29.0);
    learner.Observe(MatcherKind::kRU, 90.0 + i * 7.0, 1000.0 + i * 3.0);
  }
  std::string path = (dir / "coeffs.gen3").string();
  ASSERT_TRUE(learner.Save(path).ok());

  CoefficientLearner loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded, learner);
  fs::remove_all(dir);
}

TEST(CoefficientLearner, CorruptFileIsRejectedAndLearnerUntouched) {
  fs::path dir = FreshDir("corrupt");
  CoefficientLearner learner;
  for (int i = 0; i < 8; ++i) {
    learner.Observe(MatcherKind::kST, 100.0 + i * 10.0, 400.0 + i * 20.0);
  }
  std::string path = (dir / "coeffs.gen1").string();
  ASSERT_TRUE(learner.Save(path).ok());

  // Flip a payload digit without fixing the checksum line.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  size_t digit = contents.find_first_of("0123456789", contents.find('\n'));
  ASSERT_NE(digit, std::string::npos);
  contents[digit] = contents[digit] == '9' ? '8' : '9';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  CoefficientLearner before_load;
  for (int i = 0; i < 3; ++i) {
    before_load.Observe(MatcherKind::kDN, 10.0 + i, 20.0 + i);
  }
  CoefficientLearner loaded = before_load;
  Status status = loaded.Load(path);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_EQ(loaded, before_load);  // untouched on failure

  // Truncated file: drop the checksum line entirely.
  std::string truncated = contents.substr(0, contents.rfind("checksum"));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << truncated;
  }
  EXPECT_FALSE(loaded.Load(path).ok());
  EXPECT_EQ(loaded, before_load);

  // Missing file.
  EXPECT_FALSE(loaded.Load((dir / "nope").string()).ok());
  EXPECT_EQ(loaded, before_load);
  fs::remove_all(dir);
}

/// Fabricates a RunStats whose per-unit measured time follows a fixed
/// linear law of the optimizer's *raw* (uncalibrated) estimate, so the
/// feedback loop has a learnable ground truth.
RunStats MeasuredStats(const std::vector<double>& raw_us) {
  RunStats stats;
  stats.units.resize(raw_us.size());
  for (size_t u = 0; u < raw_us.size(); ++u) {
    stats.units[u].match_us = static_cast<int64_t>(2.5 * raw_us[u] + 1500.0);
  }
  return stats;
}

TEST(OptimizerLearning, DriftShrinksAcrossGenerations) {
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 40;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 17);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  Optimizer optimizer(spec.plan, *analysis);
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[1], series[0], 1).ok());
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[2], series[1], 2).ok());
  ASSERT_TRUE(optimizer.LearningEnabled());
  EXPECT_LT(optimizer.LastDrift(), 0);  // no feedback yet

  auto assignment = optimizer.ChooseAssignment();
  ASSERT_TRUE(assignment.ok());

  // Simulated generations: the "machine" consistently runs at
  // measured = 2.5 * raw + 1500 µs per unit. The statistics are frozen
  // (no new ObserveSnapshotPair), so every drift change is attributable
  // to the learned calibration alone.
  std::vector<double> drift;
  for (int gen = 0; gen < 4; ++gen) {
    auto raw = optimizer.EstimateRawPerUnitCost(*assignment);
    ASSERT_TRUE(raw.ok());
    RunStats stats = MeasuredStats(*raw);
    ASSERT_TRUE(optimizer.ObserveMeasuredCosts(*assignment, stats).ok());
    drift.push_back(optimizer.LastDrift());
    ASSERT_GE(drift.back(), 0);
  }
  // First generation predicts with the identity calibration — way off.
  // After feedback the fit is near-exact, so drift collapses.
  EXPECT_GT(drift.front(), 0.2);
  EXPECT_LT(drift.back(), drift.front() * 0.25);
  EXPECT_LT(drift.back(), 0.05);

  // The learned calibration now steers EstimatePerUnitCost.
  auto raw = optimizer.EstimateRawPerUnitCost(*assignment);
  auto calibrated = optimizer.EstimatePerUnitCost(*assignment);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(calibrated.ok());
  ASSERT_EQ(raw->size(), calibrated->size());
  for (size_t u = 0; u < raw->size(); ++u) {
    double truth = 2.5 * (*raw)[u] + 1500.0;
    EXPECT_NEAR((*calibrated)[u], truth, 0.05 * truth + 50.0) << "unit " << u;
  }
}

TEST(OptimizerLearning, DisabledLearningStillMeasuresDrift) {
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 40;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 17);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  Optimizer::Options options;
  options.learn_coefficients = false;
  Optimizer optimizer(spec.plan, *analysis, options);
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[1], series[0], 1).ok());
  EXPECT_FALSE(optimizer.LearningEnabled());
  auto assignment = optimizer.ChooseAssignment();
  ASSERT_TRUE(assignment.ok());

  std::vector<double> drift;
  for (int gen = 0; gen < 3; ++gen) {
    auto raw = optimizer.EstimateRawPerUnitCost(*assignment);
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(
        optimizer.ObserveMeasuredCosts(*assignment, MeasuredStats(*raw)).ok());
    drift.push_back(optimizer.LastDrift());
  }
  // Drift is reported but never improves: no coefficients are learned.
  EXPECT_GE(drift.back(), drift.front() * 0.9);
  EXPECT_EQ(optimizer.learner().TotalSamples(), 0);
}

TEST(OptimizerLearning, ObserveRejectsMismatchedAssignment) {
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 40;
  std::vector<Snapshot> series = GenerateSeries(profile, 2, 17);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  Optimizer optimizer(spec.plan, *analysis);
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[1], series[0], 1).ok());
  MatcherAssignment wrong = MatcherAssignment::Uniform(1, MatcherKind::kDN);
  RunStats stats;
  stats.units.resize(analysis->units.size());
  if (analysis->units.size() != 1) {
    EXPECT_FALSE(optimizer.ObserveMeasuredCosts(wrong, stats).ok());
  }
}

/// Counts work_dir files named coeffs.genN and returns the largest N
/// (-1 when none exist).
int NewestCoefficientGeneration(const fs::path& dir, int* count = nullptr) {
  int newest = -1;
  int seen = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("coeffs.gen", 0) != 0) continue;
    ++seen;
    newest = std::max(newest, std::atoi(name.c_str() + 10));
  }
  if (count != nullptr) *count = seen;
  return newest;
}

TEST(HarnessLearning, CoefficientsPersistPerGenerationAndResume) {
  fs::path dir = FreshDir("harness");
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 20;
  std::vector<Snapshot> series = GenerateSeries(profile, 5, 99);

  {
    auto solution = MakeDelexSolution(spec, dir.string());
    RunStats stats;
    const Snapshot* previous = nullptr;
    for (size_t i = 0; i < 4; ++i) {
      stats = RunStats();
      auto result = solution->RunSnapshot(series[i], previous, &stats);
      ASSERT_TRUE(result.ok()) << "snapshot " << i;
      previous = &series[i];
    }
    obs::RunReportMeta meta;
    obs::OptimizerReport optimizer;
    solution->DescribeRun(&meta, &optimizer);
    EXPECT_TRUE(optimizer.has_optimizer);
    EXPECT_TRUE(optimizer.learning_enabled);
    EXPECT_GE(optimizer.cost_drift, 0);  // feedback ran on the later runs
    EXPECT_FALSE(optimizer.learned.empty());
    for (const obs::OptimizerReport::LearnedCoefficient& row :
         optimizer.learned) {
      EXPECT_GT(row.samples, 0) << row.matcher;
    }
  }

  // Only the newest generation's coefficient file is kept, mirroring the
  // reuse-file lifecycle.
  int count = 0;
  int newest = NewestCoefficientGeneration(dir, &count);
  EXPECT_EQ(count, 1);
  EXPECT_GE(newest, 2);

  // A fresh solution over the same work_dir resumes from the persisted
  // coefficients. After its own warm-up + one feedback run, the learned
  // sample counts exceed what a single run could have produced alone —
  // proof the prior solution's observations were loaded, not relearned.
  {
    auto analysis = AnalyzeUnits(spec.plan);
    ASSERT_TRUE(analysis.ok());
    auto solution = MakeDelexSolution(spec, dir.string());
    RunStats stats;
    ASSERT_TRUE(solution->RunSnapshot(series[3], nullptr, &stats).ok());
    stats = RunStats();
    ASSERT_TRUE(solution->RunSnapshot(series[4], &series[3], &stats).ok());
    obs::RunReportMeta meta;
    obs::OptimizerReport optimizer;
    solution->DescribeRun(&meta, &optimizer);
    ASSERT_FALSE(optimizer.learned.empty());
    int64_t total_samples = 0;
    for (const obs::OptimizerReport::LearnedCoefficient& row :
         optimizer.learned) {
      total_samples += row.samples;
    }
    EXPECT_GT(total_samples, static_cast<int64_t>(analysis->units.size()));
  }
  fs::remove_all(dir);
}

TEST(HarnessLearning, LearningCanBeDisabledPerSolution) {
  fs::path dir = FreshDir("harness-off");
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 20;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 7);

  DelexSolutionOptions options;
  options.learn_coefficients = false;
  auto solution = MakeDelexSolution(spec, dir.string(), options);
  RunStats stats;
  const Snapshot* previous = nullptr;
  for (size_t i = 0; i < 3; ++i) {
    stats = RunStats();
    ASSERT_TRUE(solution->RunSnapshot(series[i], previous, &stats).ok());
    previous = &series[i];
  }
  obs::RunReportMeta meta;
  obs::OptimizerReport optimizer;
  solution->DescribeRun(&meta, &optimizer);
  EXPECT_FALSE(optimizer.learning_enabled);
  EXPECT_TRUE(optimizer.learned.empty());
  int count = 0;
  NewestCoefficientGeneration(dir, &count);
  EXPECT_EQ(count, 0);  // nothing persisted when learning is off
  fs::remove_all(dir);
}

}  // namespace
}  // namespace delex
