// Tests for the SIMD kernel layer: every dispatch level must return
// byte-identical results for every kernel, the DELEX_SIMD override
// machinery must behave, and the higher-level users (DiffMatch,
// SuffixMatch) must produce identical output no matter which level the
// kernels dispatch to — the in-process version of the differential
// oracle's simd-off leg.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "text/diff.h"
#include "text/suffix_matcher.h"

namespace delex {
namespace {

using simd::Level;

std::vector<Level> Levels() { return simd::SupportedLevels(); }

/// Random buffer over the full byte range (non-ASCII included), with NULs.
std::string RandomBytes(Rng* rng, size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(rng->Uniform(256));
  }
  return s;
}

TEST(SimdDispatch, SupportedLevelsStartAtScalarAndAreOrdered) {
  std::vector<Level> levels = Levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
}

TEST(SimdDispatch, ScopedOverrideForcesAndRestores) {
  Level before = simd::ActiveLevel();
  {
    simd::ScopedLevelOverride guard(Level::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), Level::kScalar);
    {
      simd::ScopedLevelOverride nested(simd::DetectCpuLevel());
      EXPECT_EQ(simd::ActiveLevel(), simd::DetectCpuLevel());
    }
    EXPECT_EQ(simd::ActiveLevel(), Level::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
}

TEST(SimdDispatch, LevelFromSpecParsesKnobValues) {
  const Level fb = Level::kAvx2;  // stand-in for "detected best"
  EXPECT_EQ(simd::LevelFromSpec(nullptr, fb), fb);
  EXPECT_EQ(simd::LevelFromSpec("", fb), fb);
  EXPECT_EQ(simd::LevelFromSpec("0", fb), Level::kScalar);
  EXPECT_EQ(simd::LevelFromSpec("scalar", fb), Level::kScalar);
  EXPECT_EQ(simd::LevelFromSpec("off", fb), Level::kScalar);
  EXPECT_EQ(simd::LevelFromSpec("1", fb), Level::kSse2);
  EXPECT_EQ(simd::LevelFromSpec("sse2", fb), Level::kSse2);
  EXPECT_EQ(simd::LevelFromSpec("2", fb), Level::kAvx2);
  EXPECT_EQ(simd::LevelFromSpec("avx2", fb), Level::kAvx2);
  EXPECT_EQ(simd::LevelFromSpec("bogus", fb), fb);
}

TEST(SimdKernels, CommonPrefixAgreesAcrossLevels) {
  Rng rng(0xA11CE);
  for (int round = 0; round < 200; ++round) {
    size_t n = rng.Uniform(200);
    std::string a = RandomBytes(&rng, n);
    std::string b = a;
    if (n > 0 && rng.Uniform(2) == 0) {
      size_t at = rng.Uniform(n);
      b[at] = static_cast<char>(b[at] ^ 0x40);
    }
    size_t expect = simd::CommonPrefixScalar(a.data(), b.data(), n);
    for (Level level : Levels()) {
      EXPECT_EQ(simd::CommonPrefixAt(level, a.data(), b.data(), n), expect)
          << "level=" << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, CommonSuffixAgreesAcrossLevels) {
  Rng rng(0xB0B);
  for (int round = 0; round < 200; ++round) {
    size_t na = 1 + rng.Uniform(200);
    size_t nb = 1 + rng.Uniform(200);
    std::string a = RandomBytes(&rng, na);
    std::string b = RandomBytes(&rng, nb);
    // Plant a shared tail half the time.
    size_t tail = rng.Uniform(std::min(na, nb) + 1);
    if (rng.Uniform(2) == 0) {
      for (size_t i = 0; i < tail; ++i) b[nb - 1 - i] = a[na - 1 - i];
    }
    size_t max_n = std::min(na, nb);
    size_t expect =
        simd::CommonSuffixScalar(a.data(), na, b.data(), nb, max_n);
    for (Level level : Levels()) {
      EXPECT_EQ(simd::CommonSuffixAt(level, a.data(), na, b.data(), nb, max_n),
                expect)
          << "level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdKernels, BytesEqualFindByteCountByteAgreeAcrossLevels) {
  Rng rng(0xC4B1E);
  for (int round = 0; round < 200; ++round) {
    size_t n = rng.Uniform(300);
    std::string a = RandomBytes(&rng, n);
    std::string b = rng.Uniform(2) == 0 ? a : RandomBytes(&rng, n);
    char needle = static_cast<char>(rng.Uniform(256));
    bool eq = simd::BytesEqualScalar(a.data(), b.data(), n);
    size_t find = simd::FindByteScalar(a.data(), n, needle);
    size_t count = simd::CountByteScalar(a.data(), n, needle);
    for (Level level : Levels()) {
      EXPECT_EQ(simd::BytesEqualAt(level, a.data(), b.data(), n), eq);
      EXPECT_EQ(simd::FindByteAt(level, a.data(), n, needle), find);
      EXPECT_EQ(simd::CountByteAt(level, a.data(), n, needle), count);
    }
  }
}

TEST(SimdKernels, FindFirstInSetAgreesAcrossLevels) {
  Rng rng(0xD1CE);
  for (int round = 0; round < 200; ++round) {
    simd::ByteSet set;
    // Sparse or dense sets, always exercising the 0x7F/0x80 boundary rows.
    size_t members = 1 + rng.Uniform(80);
    for (size_t i = 0; i < members; ++i) {
      set.Add(static_cast<unsigned char>(rng.Uniform(256)));
    }
    if (round % 4 == 0) {
      set.Add(0x00);
      set.Add(0x7F);
      set.Add(0x80);
      set.Add(0xFF);
    }
    size_t n = rng.Uniform(300);
    std::string data = RandomBytes(&rng, n);
    const unsigned char* bytes =
        static_cast<const unsigned char*>(static_cast<const void*>(data.data()));
    size_t expect = simd::FindFirstInSetScalar(bytes, n, set);
    for (Level level : Levels()) {
      EXPECT_EQ(simd::FindFirstInSetAt(level, bytes, n, set), expect)
          << "level=" << simd::LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, ByteSetContainsMatchesMembership) {
  simd::ByteSet set;
  for (int c : {0, 1, 10, 127, 128, 200, 255}) {
    set.Add(static_cast<unsigned char>(c));
  }
  for (int c = 0; c < 256; ++c) {
    bool member = c == 0 || c == 1 || c == 10 || c == 127 || c == 128 ||
                  c == 200 || c == 255;
    EXPECT_EQ(set.Contains(static_cast<unsigned char>(c)), member) << c;
  }
}

/// A page pair that exercises trims, the Myers middle, relocations and
/// non-ASCII bytes: random lines, a fraction mutated/inserted/deleted.
std::pair<std::string, std::string> MutatedPagePair(Rng* rng) {
  auto random_line = [&](size_t len) {
    std::string line;
    for (size_t i = 0; i < len; ++i) {
      // Mostly printable, some high / control bytes, no '\n'.
      unsigned char c = static_cast<unsigned char>(rng->Uniform(256));
      if (c == '\n') c = 'x';
      line.push_back(static_cast<char>(c));
    }
    line.push_back('\n');
    return line;
  };
  size_t lines = 4 + rng->Uniform(60);
  std::vector<std::string> q_lines;
  for (size_t i = 0; i < lines; ++i) {
    q_lines.push_back(random_line(1 + rng->Uniform(90)));
  }
  std::vector<std::string> p_lines = q_lines;
  size_t edits = rng->Uniform(1 + lines / 4);
  for (size_t e = 0; e < edits && !p_lines.empty(); ++e) {
    size_t at = rng->Uniform(p_lines.size());
    switch (rng->Uniform(3)) {
      case 0:
        p_lines[at] = random_line(1 + rng->Uniform(90));
        break;
      case 1:
        p_lines.erase(p_lines.begin() + static_cast<int64_t>(at));
        break;
      default:
        p_lines.insert(p_lines.begin() + static_cast<int64_t>(at),
                       random_line(1 + rng->Uniform(90)));
        break;
    }
  }
  if (rng->Uniform(4) == 0 && !p_lines.empty()) {
    p_lines.back().pop_back();  // drop the final '\n' sometimes
  }
  std::string p;
  std::string q;
  for (const std::string& l : p_lines) p += l;
  for (const std::string& l : q_lines) q += l;
  return {p, q};
}

TEST(SimdEquivalence, DiffMatchIsByteIdenticalAcrossLevels) {
  Rng rng(0x5EED);
  for (int round = 0; round < 60; ++round) {
    auto [p, q] = MutatedPagePair(&rng);
    std::vector<std::vector<MatchSegment>> per_level;
    for (Level level : Levels()) {
      simd::ScopedLevelOverride guard(level);
      per_level.push_back(DiffMatch(p, 7, q, 13));
    }
    for (size_t i = 1; i < per_level.size(); ++i) {
      EXPECT_EQ(per_level[i], per_level[0])
          << "round " << round << ": " << simd::LevelName(Levels()[i])
          << " diverges from scalar";
    }
  }
}

TEST(SimdEquivalence, SuffixMatchIsByteIdenticalAcrossLevels) {
  Rng rng(0xFACADE);
  for (int round = 0; round < 40; ++round) {
    auto [p, q] = MutatedPagePair(&rng);
    SuffixMatchOptions options;
    options.min_match_length = 8;
    std::vector<std::vector<MatchSegment>> per_level;
    for (Level level : Levels()) {
      simd::ScopedLevelOverride guard(level);
      per_level.push_back(SuffixMatch(p, 0, q, 0, options));
    }
    for (size_t i = 1; i < per_level.size(); ++i) {
      EXPECT_EQ(per_level[i], per_level[0])
          << "round " << round << ": " << simd::LevelName(Levels()[i])
          << " diverges from scalar";
    }
  }
}

TEST(SimdEquivalence, LongestCommonSubstringAgreesAcrossLevels) {
  Rng rng(0xACE);
  for (int round = 0; round < 40; ++round) {
    std::string text = RandomBytes(&rng, 50 + rng.Uniform(400));
    std::string query = RandomBytes(&rng, 50 + rng.Uniform(400));
    if (rng.Uniform(2) == 0) {
      // Plant a shared run so matches actually exist.
      size_t len = 10 + rng.Uniform(30);
      size_t from = rng.Uniform(text.size() - len);
      size_t to = rng.Uniform(query.size() - len);
      query.replace(to, len, text.substr(from, len));
    }
    SuffixAutomaton automaton(text);
    std::vector<int64_t> per_level;
    for (Level level : Levels()) {
      simd::ScopedLevelOverride guard(level);
      per_level.push_back(automaton.LongestCommonSubstring(query));
    }
    for (size_t i = 1; i < per_level.size(); ++i) {
      EXPECT_EQ(per_level[i], per_level[0]);
    }
  }
}

}  // namespace
}  // namespace delex
