// Resource-observability tests (layer 4): tagged memory accounting
// balance across a full engine lifecycle, background-sampler peak
// monotonicity, the schema-v6 resources round-trip through the
// generation-history store, folded-stack profiler output (parse,
// positive counts, sorted determinism), span-path stability across
// thread counts, and the thread-pool queue-depth gauge + one-WARN-per-run
// saturation counter.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "obs/history.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace delex {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("delex-res-" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Tagged accounting
// ---------------------------------------------------------------------------

TEST(MemAccountingTest, ChargeDischargeAndPeaks) {
  obs::MemResetForTesting();
  {
    obs::ScopedMemCharge charge(obs::MemTag::kSnapshot);
    charge.Set(1000);
    EXPECT_EQ(obs::MemCurrent(obs::MemTag::kSnapshot), 1000);
    charge.Add(500);
    EXPECT_EQ(obs::MemCurrent(obs::MemTag::kSnapshot), 1500);
    charge.Set(200);  // shrink discharges the delta, peak stays
    EXPECT_EQ(obs::MemCurrent(obs::MemTag::kSnapshot), 200);
    EXPECT_EQ(obs::MemPeak(obs::MemTag::kSnapshot), 1500);
    EXPECT_EQ(obs::MemTrackedCurrent(), 200);
  }
  EXPECT_EQ(obs::MemCurrent(obs::MemTag::kSnapshot), 0);
  EXPECT_EQ(obs::MemTrackedCurrent(), 0);
  EXPECT_EQ(obs::MemTrackedPeak(), 1500);
}

TEST(MemAccountingTest, TrackedPeakIsHighWaterOfTheSumNotOfPerTagPeaks) {
  obs::MemResetForTesting();
  {
    // Two tags alive at different times: per-tag peaks are 1000 each, but
    // the tracked total never exceeded 1000 at any instant.
    obs::ScopedMemCharge a(obs::MemTag::kSnapshot, 1000);
  }
  {
    obs::ScopedMemCharge b(obs::MemTag::kMatcher, 1000);
  }
  EXPECT_EQ(obs::MemPeak(obs::MemTag::kSnapshot), 1000);
  EXPECT_EQ(obs::MemPeak(obs::MemTag::kMatcher), 1000);
  EXPECT_EQ(obs::MemTrackedPeak(), 1000);
}

TEST(MemAccountingTest, MoveTransfersAndCopyDuplicatesTheCharge) {
  obs::MemResetForTesting();
  obs::ScopedMemCharge a(obs::MemTag::kShard, 400);
  obs::ScopedMemCharge moved = std::move(a);
  EXPECT_EQ(obs::MemCurrent(obs::MemTag::kShard), 400);
  obs::ScopedMemCharge copy = moved;
  EXPECT_EQ(obs::MemCurrent(obs::MemTag::kShard), 800);
}

TEST(MemAccountingTest, BalancesToZeroAfterEngineTeardown) {
  obs::MemResetForTesting();
  {
    ProgramSpec spec = []() {
      auto spec = MakeProgram("chair");
      EXPECT_TRUE(spec.ok());
      return std::move(spec).ValueOrDie();
    }();
    DatasetProfile profile = spec.Profile();
    profile.num_sources = 12;
    std::vector<Snapshot> series = GenerateSeries(profile, 3, 7);
    DelexEngine::Options options;
    options.work_dir = FreshDir("balance");
    options.num_threads = 2;
    DelexEngine engine(spec.plan, options);
    ASSERT_TRUE(engine.Init().ok());
    MatcherAssignment ud =
        MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kUD);
    for (size_t i = 0; i < series.size(); ++i) {
      RunStats stats;
      ASSERT_TRUE(engine
                      .RunSnapshot(series[i],
                                   i > 0 ? &series[i - 1] : nullptr, ud,
                                   &stats)
                      .ok());
    }
    // While the series is alive, its snapshot text is on the books.
    EXPECT_GT(obs::MemCurrent(obs::MemTag::kSnapshot), 0);
  }
  // Everything the run charged was scoped to an owner that is now gone:
  // the whole tracker balances back to zero, tag by tag.
  for (int t = 0; t < obs::kMemTagCount; ++t) {
    obs::MemTag tag = static_cast<obs::MemTag>(t);
    EXPECT_EQ(obs::MemCurrent(tag), 0) << obs::MemTagName(tag);
  }
  EXPECT_EQ(obs::MemTrackedCurrent(), 0);
  EXPECT_GT(obs::MemTrackedPeak(), 0);
}

// ---------------------------------------------------------------------------
// Process sampler
// ---------------------------------------------------------------------------

TEST(MemSamplerTest, SamplesAccumulateAndPeaksAreMonotone) {
  obs::ResourceUsage before = obs::CollectResourceUsage();
  EXPECT_GT(before.rss_bytes, 0);
  EXPECT_GT(before.vm_bytes, 0);
  EXPECT_GT(before.peak_rss_bytes, 0);

  obs::MemSampler& sampler = obs::MemSampler::Global();
  sampler.Start(/*interval_ms=*/5);
  EXPECT_TRUE(sampler.running());
  int64_t first = sampler.sample_count();
  for (int i = 0; i < 200 && sampler.sample_count() <= first + 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sampler.sample_count(), first + 2) << "sampler never ticked";

  // Peak RSS is a high-water mark: successive collections never go down.
  int64_t last_peak = before.peak_rss_bytes;
  for (int i = 0; i < 5; ++i) {
    obs::ResourceUsage usage = obs::CollectResourceUsage();
    EXPECT_GE(usage.peak_rss_bytes, last_peak);
    last_peak = usage.peak_rss_bytes;
  }
  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  // The sampler refreshed the gauges on its own cadence.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_GT(registry.GetGauge("mem.rss_bytes")->value(), 0);
  EXPECT_GT(registry.GetGauge("mem.peak_rss_bytes")->value(), 0);
}

// ---------------------------------------------------------------------------
// Schema-v6 resources round-trip through the history store
// ---------------------------------------------------------------------------

TEST(HistoryResourcesTest, V6ResourcesBlockRoundTrips) {
  obs::HistoryRecord rec;
  rec.gen = 3;
  rec.solution = "Delex";
  rec.has_resources = true;
  rec.resources.rss_bytes = 123456789;
  rec.resources.vm_bytes = 987654321;
  rec.resources.peak_rss_bytes = 222333444;
  rec.resources.tracked_bytes = 1111;
  rec.resources.tracked_peak_bytes = 2222;
  for (int t = 0; t < obs::kMemTagCount; ++t) {
    obs::ResourceUsage::Subsystem sub;
    sub.tag = obs::MemTagName(static_cast<obs::MemTag>(t));
    sub.current_bytes = 10 * (t + 1);
    sub.peak_bytes = 100 * (t + 1);
    rec.resources.subsystems.push_back(sub);
  }
  rec.profile_samples = 500;
  rec.profile_lost = 3;
  rec.top_spans.push_back({"eval_page", 300});
  rec.top_spans.push_back({"match_st", 150});

  std::string line = obs::HistoryStore::FormatLine(rec);
  obs::HistoryRecord parsed;
  ASSERT_TRUE(obs::HistoryStore::ParseLine(line, &parsed).ok());
  ASSERT_TRUE(parsed.has_resources);
  EXPECT_EQ(parsed.resources.rss_bytes, 123456789);
  EXPECT_EQ(parsed.resources.vm_bytes, 987654321);
  EXPECT_EQ(parsed.resources.peak_rss_bytes, 222333444);
  EXPECT_EQ(parsed.resources.tracked_bytes, 1111);
  EXPECT_EQ(parsed.resources.tracked_peak_bytes, 2222);
  ASSERT_EQ(parsed.resources.subsystems.size(),
            static_cast<size_t>(obs::kMemTagCount));
  for (int t = 0; t < obs::kMemTagCount; ++t) {
    EXPECT_EQ(parsed.resources.subsystems[t].tag,
              obs::MemTagName(static_cast<obs::MemTag>(t)));
    EXPECT_EQ(parsed.resources.subsystems[t].current_bytes, 10 * (t + 1));
    EXPECT_EQ(parsed.resources.subsystems[t].peak_bytes, 100 * (t + 1));
  }
  EXPECT_EQ(parsed.profile_samples, 500);
  EXPECT_EQ(parsed.profile_lost, 3);
  ASSERT_EQ(parsed.top_spans.size(), 2u);
  EXPECT_EQ(parsed.top_spans[0].span, "eval_page");
  EXPECT_EQ(parsed.top_spans[0].self_samples, 300);
  EXPECT_EQ(parsed.top_spans[1].span, "match_st");
  EXPECT_EQ(parsed.top_spans[1].self_samples, 150);
}

TEST(HistoryResourcesTest, PreLayer4RecordsParseWithoutResources) {
  obs::HistoryRecord rec;
  rec.gen = 1;
  rec.solution = "Delex";
  rec.has_resources = false;  // an old store's record shape
  std::string line = obs::HistoryStore::FormatLine(rec);
  EXPECT_EQ(line.find("resources"), std::string::npos);
  obs::HistoryRecord parsed;
  ASSERT_TRUE(obs::HistoryStore::ParseLine(line, &parsed).ok());
  EXPECT_FALSE(parsed.has_resources);
  EXPECT_EQ(parsed.profile_samples, 0);
  EXPECT_TRUE(parsed.top_spans.empty());
}

// ---------------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------------

std::atomic<uint64_t> g_burn_sink{0};

/// Burns CPU (not just wall time — ITIMER_PROF ticks on CPU consumption)
/// for roughly `ms` milliseconds.
void BurnCpuMs(int ms) {
  auto end = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  uint64_t x = 0x9e3779b97f4a7c15ull;
  while (std::chrono::steady_clock::now() < end) {
    for (int i = 0; i < 4096; ++i) x = x * 6364136223846793005ull + 1442695ull;
    g_burn_sink.store(x, std::memory_order_relaxed);
  }
}

void SpanWorkload(int ms) {
  DELEX_TRACE_SPAN("res_outer");
  BurnCpuMs(ms / 2);
  {
    DELEX_TRACE_SPAN("res_inner");
    BurnCpuMs(ms / 2);
  }
}

/// Parses folded output: "frame;frame;... N" lines, N > 0, paths strictly
/// ascending (the sorted order IS the determinism contract).
std::vector<std::pair<std::string, int64_t>> ParseFolded(
    const std::string& text) {
  std::vector<std::pair<std::string, int64_t>> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "malformed folded line: " << line;
    out.emplace_back(line.substr(0, space),
                     std::atoll(line.c_str() + space + 1));
  }
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first)
        << "folded output not sorted by path";
  }
  return out;
}

std::set<std::string> RunProfiledWorkload(int num_threads) {
  obs::SpanProfiler& profiler = obs::SpanProfiler::Global();
  profiler.ClearForTesting();
  EXPECT_TRUE(profiler.Start(/*hz=*/997).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([] { SpanWorkload(/*ms=*/160); });
  }
  for (std::thread& t : threads) t.join();
  profiler.Stop();
  EXPECT_FALSE(profiler.running());

  EXPECT_GT(profiler.TotalSamples(), 0) << "no SIGPROF ticks landed";
  std::set<std::string> paths;
  for (const auto& [path, count] : ParseFolded(profiler.FoldedText())) {
    EXPECT_GT(count, 0) << path;
    paths.insert(path);
  }
  EXPECT_FALSE(paths.empty());
  return paths;
}

TEST(SpanProfilerTest, FoldedStacksParseAndPathsAreDeterministic) {
  // Every observed path must come from the workload's span structure —
  // at ANY thread count. A torn or interleaved path means the handler
  // read another thread's stack or a half-written frame.
  const std::set<std::string> expected = {"res_outer", "res_outer;res_inner",
                                          "(no_span)"};
  std::set<std::string> serial = RunProfiledWorkload(1);
  for (const std::string& path : serial) {
    EXPECT_TRUE(expected.count(path)) << "unexpected path: " << path;
  }
  // The dominant frame (all CPU burns inside res_outer) must be present.
  EXPECT_TRUE(serial.count("res_outer") ||
              serial.count("res_outer;res_inner"))
      << "profiler missed the span the workload burned inside";

  std::set<std::string> parallel = RunProfiledWorkload(8);
  for (const std::string& path : parallel) {
    EXPECT_TRUE(expected.count(path)) << "unexpected path: " << path;
  }

  // Top self-time rollup agrees with the folded view.
  obs::SpanProfiler& profiler = obs::SpanProfiler::Global();
  std::vector<obs::SpanSelfSample> top = profiler.TopSelfSamples(10);
  ASSERT_FALSE(top.empty());
  EXPECT_GT(top[0].self_samples, 0);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].self_samples, top[i].self_samples);
  }
  profiler.ClearForTesting();
}

TEST(SpanProfilerTest, StartStopIsIdempotentAndRestartable) {
  obs::SpanProfiler& profiler = obs::SpanProfiler::Global();
  profiler.ClearForTesting();
  ASSERT_TRUE(profiler.Start(/*hz=*/97).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(97).ok());  // already running
  profiler.Stop();
  profiler.Stop();  // second stop is a no-op
  EXPECT_FALSE(profiler.running());
  ASSERT_TRUE(profiler.Start(97).ok());  // restartable after stop
  profiler.Stop();
  profiler.ClearForTesting();
}

// ---------------------------------------------------------------------------
// Thread-pool queue depth + saturation
// ---------------------------------------------------------------------------

TEST(ThreadPoolObsTest, QueueDepthGaugeAndSaturationWarnOncePerRun) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* saturations = registry.GetCounter("pool.saturation_warns");
  const int64_t warns_before = saturations->value();

  obs::MemResetForTesting();
  {
    ThreadPool pool(1);
    // Gate the single worker so submissions pile up past 4x the workers.
    std::atomic<bool> release{false};
    pool.Submit([&release]() {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::OK();
    });
    for (int i = 0; i < 16; ++i) {
      pool.Submit([]() { return Status::OK(); });
    }
    // Queued tasks are on the books while they wait...
    EXPECT_GT(obs::MemCurrent(obs::MemTag::kThreadPool), 0);
    EXPECT_GT(registry.GetGauge("pool.queue_depth")->value(), 0);
    // ...and the saturation trip fired exactly once despite 12+ deep
    // submissions past the threshold.
    EXPECT_EQ(saturations->value(), warns_before + 1);
    release.store(true, std::memory_order_release);
    ASSERT_TRUE(pool.Wait().ok());
    EXPECT_EQ(registry.GetGauge("pool.queue_depth")->value(), 0);
    EXPECT_EQ(obs::MemCurrent(obs::MemTag::kThreadPool), 0);

    // Wait() re-arms the once-per-run latch: the next saturation warns
    // again.
    std::atomic<bool> release2{false};
    pool.Submit([&release2]() {
      while (!release2.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::OK();
    });
    for (int i = 0; i < 16; ++i) {
      pool.Submit([]() { return Status::OK(); });
    }
    EXPECT_EQ(saturations->value(), warns_before + 2);
    release2.store(true, std::memory_order_release);
    ASSERT_TRUE(pool.Wait().ok());
  }
  EXPECT_EQ(obs::MemCurrent(obs::MemTag::kThreadPool), 0);
}

}  // namespace
}  // namespace delex
