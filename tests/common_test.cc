// Tests for the common substrate: Status/Result, spans, values and their
// binary codec, deterministic RNG, hashing.

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/span.h"
#include "common/status.h"
#include "common/value.h"

namespace delex {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(Status, FactoriesAndPredicates) {
  EXPECT_TRUE(Status::OK().ok());
  Status io = Status::IOError("disk gone");
  EXPECT_FALSE(io.ok());
  EXPECT_TRUE(io.IsIOError());
  EXPECT_EQ(io.ToString(), "IOError: disk gone");
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Result, HoldsValueOrError) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::NotFound("nope"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsNotFound());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DELEX_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(Result, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// TextSpan

TEST(TextSpan, BasicGeometry) {
  TextSpan s(3, 9);
  EXPECT_EQ(s.length(), 6);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(TextSpan(4, 4).empty());
  EXPECT_TRUE(s.Contains(TextSpan(3, 9)));
  EXPECT_TRUE(s.Contains(TextSpan(4, 8)));
  EXPECT_FALSE(s.Contains(TextSpan(2, 5)));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(9));  // half-open
}

TEST(TextSpan, OverlapAndIntersect) {
  EXPECT_TRUE(TextSpan(0, 5).Overlaps(TextSpan(4, 10)));
  EXPECT_FALSE(TextSpan(0, 5).Overlaps(TextSpan(5, 10)));  // touching
  EXPECT_EQ(TextSpan(0, 5).Intersect(TextSpan(3, 10)), TextSpan(3, 5));
  EXPECT_TRUE(TextSpan(0, 2).Intersect(TextSpan(5, 9)).empty());
}

TEST(TextSpan, ExpandClipsToBounds) {
  TextSpan bounds(0, 100);
  EXPECT_EQ(TextSpan(10, 20).Expand(5, bounds), TextSpan(5, 25));
  EXPECT_EQ(TextSpan(2, 4).Expand(10, bounds), TextSpan(0, 14));
  EXPECT_EQ(TextSpan(95, 99).Expand(10, bounds), TextSpan(85, 100));
}

TEST(TextSpan, ShiftMovesBothEnds) {
  EXPECT_EQ(TextSpan(5, 9).Shift(100), TextSpan(105, 109));
  EXPECT_EQ(TextSpan(5, 9).Shift(-5), TextSpan(0, 4));
}

// ---------------------------------------------------------------------------
// Value codec

class ValueRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTrip, EncodeDecodeIdentity) {
  std::string buffer;
  EncodeValue(GetParam(), &buffer);
  size_t offset = 0;
  auto decoded = DecodeValue(buffer, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(offset, buffer.size());
  EXPECT_FALSE(ValueLess(*decoded, GetParam()) ||
               ValueLess(GetParam(), *decoded));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ValueRoundTrip,
    ::testing::Values(Value(int64_t{0}), Value(int64_t{-12345}),
                      Value(int64_t{1} << 60), Value(3.25), Value(-0.5),
                      Value(true), Value(false), Value(std::string("")),
                      Value(std::string("hello \"world\"\n")),
                      Value(TextSpan(0, 0)), Value(TextSpan(17, 94235))));

TEST(TupleCodec, RoundTripsMixedTuple) {
  Tuple tuple = {int64_t{7}, std::string("abc"), TextSpan(2, 9), true, 1.5};
  std::string buffer;
  EncodeTuple(tuple, &buffer);
  size_t offset = 0;
  auto decoded = DecodeTuple(buffer, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), tuple.size());
  EXPECT_FALSE(TupleLess(*decoded, tuple) || TupleLess(tuple, *decoded));
}

TEST(TupleCodec, TruncationDetected) {
  Tuple tuple = {std::string("abcdef")};
  std::string buffer;
  EncodeTuple(tuple, &buffer);
  for (size_t cut = 1; cut < buffer.size(); ++cut) {
    size_t offset = 0;
    std::string_view clipped(buffer.data(), cut);
    auto decoded = DecodeTuple(clipped, &offset);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(Value, ShiftSpansOnlyTouchesSpans) {
  Tuple tuple = {int64_t{5}, TextSpan(10, 20), std::string("x"),
                 TextSpan(30, 31)};
  ShiftSpans(&tuple, 7);
  EXPECT_EQ(std::get<int64_t>(tuple[0]), 5);
  EXPECT_EQ(std::get<TextSpan>(tuple[1]), TextSpan(17, 27));
  EXPECT_EQ(std::get<std::string>(tuple[2]), "x");
  EXPECT_EQ(std::get<TextSpan>(tuple[3]), TextSpan(37, 38));
}

TEST(Value, SpanEnvelopeCoversAllSpans) {
  Tuple tuple = {TextSpan(50, 60), std::string("x"), TextSpan(10, 20)};
  EXPECT_EQ(SpanEnvelope(tuple), TextSpan(10, 60));
  EXPECT_TRUE(SpanEnvelope({int64_t{1}, std::string("a")}).empty());
  EXPECT_TRUE(HasSpan(tuple));
  EXPECT_FALSE(HasSpan({int64_t{1}}));
}

TEST(Value, TupleLessIsStrictWeakOrder) {
  Tuple a = {int64_t{1}};
  Tuple b = {int64_t{2}};
  Tuple c = {int64_t{1}, int64_t{0}};
  EXPECT_TRUE(TupleLess(a, b));
  EXPECT_FALSE(TupleLess(b, a));
  EXPECT_TRUE(TupleLess(a, c));  // prefix is smaller
  EXPECT_FALSE(TupleLess(a, a));
  // Kind-major order across variant alternatives is consistent.
  Tuple d = {std::string("z")};
  EXPECT_TRUE(TupleLess(a, d) != TupleLess(d, a));
}

TEST(Value, TupleToStringReadable) {
  EXPECT_EQ(TupleToString({int64_t{1}, std::string("x"), TextSpan(2, 3)}),
            "(1, \"x\", [2,3))");
}

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ForkIndependentOfParentDraws) {
  Rng parent(5);
  Rng fork1 = parent.Fork(99);
  parent.Next();
  // Forking with the same salt from the same state yields the same stream.
  Rng parent2(5);
  Rng fork2 = parent2.Fork(99);
  EXPECT_EQ(fork1.Next(), fork2.Next());
}

// ---------------------------------------------------------------------------
// Hash

TEST(Hash, Fnv1aBasics) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(Hash, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace delex
