// Observability-layer tests: trace recorder (JSON well-formedness, span
// pairing/nesting per thread, pipeline span counts, zero-output guarantee
// when disabled), leveled logger (threshold, sink capture, CHECK routing),
// metrics registry (counters, gauges, histograms), latency-histogram
// bucket/percentile correctness against a sorted reference, Prometheus
// exposition well-formedness, the snapshot writer and embedded stats
// server, phase-drift accounting, and the versioned run report (schema-v2
// latency/trace blocks, per-unit predicted-vs-actual columns, determinism
// of counters and histogram counts across thread counts and fast-path
// settings).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/history.h"
#include "obs/json_writer.h"
#include "obs/log.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace delex {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser — enough to validate trace files and run-report
// lines without external dependencies. Numbers are doubles; objects keep
// only the last value per key (duplicate keys are a test failure anyway).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return kind == kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue missing;
    auto it = object.find(key);
    return it != object.end() ? it->second : missing;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            *out += '?';  // tests never inspect non-ASCII content
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (ParseLiteral("true")) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return true;
    }
    if (ParseLiteral("false")) {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return true;
    }
    if (ParseLiteral("null")) {
      out->kind = JsonValue::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object[key] = std::move(value);
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&value)) << "invalid JSON: " << text;
  return value;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string FreshDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("delex-obs-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNesting) {
  obs::JsonWriter json;
  json.BeginObject()
      .KV("s", "a\"b\\c\nd\te")
      .KV("i", static_cast<int64_t>(-42))
      .KV("b", true)
      .KV("d", 1.5)
      .Key("arr")
      .BeginArray()
      .Value(1)
      .Value("two")
      .Null()
      .EndArray()
      .Key("nested")
      .BeginObject()
      .KV("x", static_cast<int64_t>(0))
      .EndObject()
      .EndObject();
  JsonValue parsed = MustParse(json.str());
  EXPECT_EQ(parsed.At("s").string, "a\"b\\c\nd\te");
  EXPECT_EQ(parsed.At("i").number, -42);
  EXPECT_TRUE(parsed.At("b").boolean);
  EXPECT_EQ(parsed.At("arr").array.size(), 3u);
  EXPECT_EQ(parsed.At("nested").At("x").number, 0);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter json;
  json.BeginObject()
      .KV("inf", std::numeric_limits<double>::infinity())
      .KV("nan", std::numeric_limits<double>::quiet_NaN())
      .EndObject();
  JsonValue parsed = MustParse(json.str());
  EXPECT_EQ(parsed.At("inf").kind, JsonValue::kNull);
  EXPECT_EQ(parsed.At("nan").kind, JsonValue::kNull);
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

std::vector<std::string>& CapturedLines() {
  static std::vector<std::string> lines;
  return lines;
}

void CaptureSink(obs::LogLevel, const std::string& line) {
  CapturedLines().push_back(line);
}

class LogCapture {
 public:
  LogCapture() {
    CapturedLines().clear();
    obs::SetLogSinkForTesting(&CaptureSink);
  }
  ~LogCapture() { obs::SetLogSinkForTesting(nullptr); }
};

TEST(LogTest, ThresholdFiltersAndOperandsNotEvaluated) {
  LogCapture capture;
  obs::LogLevel saved = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kWARN);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 7;
  };
  DELEX_LOG(DEBUG) << "hidden " << count();
  DELEX_LOG(INFO) << "hidden " << count();
  DELEX_LOG(WARN) << "visible " << count();
  DELEX_LOG(ERROR) << "visible " << count();
  obs::SetLogLevel(saved);
  EXPECT_EQ(evaluations, 2);
  ASSERT_EQ(CapturedLines().size(), 2u);
  EXPECT_NE(CapturedLines()[0].find("visible 7"), std::string::npos);
  EXPECT_EQ(CapturedLines()[0][0], 'W');
  EXPECT_EQ(CapturedLines()[1][0], 'E');
}

TEST(LogTest, LinePrefixCarriesFileAndThread) {
  LogCapture capture;
  obs::LogLevel saved = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kINFO);
  DELEX_LOG(INFO) << "marker";
  obs::SetLogLevel(saved);
  ASSERT_EQ(CapturedLines().size(), 1u);
  const std::string& line = CapturedLines()[0];
  EXPECT_NE(line.find("obs_test.cc:"), std::string::npos) << line;
  EXPECT_NE(line.find(" t"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(LogTest, CheckMacrosStillPass) {
  // DELEX_CHECK semantics preserved: passing checks are silent no-ops.
  LogCapture capture;
  DELEX_CHECK(true);
  DELEX_CHECK_EQ(2 + 2, 4);
  DELEX_CHECK_LE(1, 1);
  DELEX_CHECK_LT(1, 2);
  DELEX_CHECK_GE(2, 2);
  EXPECT_TRUE(CapturedLines().empty());
}

TEST(LogDeathTest, CheckFailureEmitsAndAborts) {
  EXPECT_DEATH({ DELEX_CHECK_MSG(1 == 2, "broken invariant"); },
               "CHECK failed.*broken invariant");
}

TEST(LogDeathTest, CheckFailureFlushesStartedTraceBeforeAborting) {
  // The crash-flush hooks registered by TraceRecorder::Start must run in
  // the CHECK-failure path, so a crashed run still leaves a parseable
  // trace behind. threadsafe style re-executes the test in the child, so
  // the recorder state there is exactly what the statement sets up.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string path = TempPath("delex-obs-crash-trace.json");
  std::filesystem::remove(path);
  EXPECT_DEATH(
      {
        obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
        recorder.ClearForTesting();
        if (recorder.Start(path).ok()) {
          { DELEX_TRACE_SPAN("doomed_span", 1); }
          DELEX_CHECK_MSG(false, "crash-flush test");
        }
      },
      "CHECK failed.*crash-flush test");
  JsonValue trace = MustParse(ReadFile(path));
  ASSERT_TRUE(trace.Has("traceEvents"));
  bool saw_span = false;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    if (event.At("name").string == "doomed_span") saw_span = true;
  }
  EXPECT_TRUE(saw_span) << "crash flush dropped the buffered span";
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersAccumulateAndSnapshotSorted) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Counter* b = registry.GetCounter("obs_test.b");
  obs::Counter* a = registry.GetCounter("obs_test.a");
  EXPECT_EQ(registry.GetCounter("obs_test.b"), b);  // stable identity
  a->Increment();
  b->Increment(41);
  b->Increment();
  EXPECT_EQ(a->value(), 1);
  EXPECT_EQ(b->value(), 42);
  auto snapshot = registry.Snapshot();
  std::map<std::string, int64_t> by_name(snapshot.begin(), snapshot.end());
  EXPECT_EQ(by_name["obs_test.a"], 1);
  EXPECT_EQ(by_name["obs_test.b"], 42);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
  registry.ResetAll();
  EXPECT_EQ(a->value(), 0);
  EXPECT_EQ(b->value(), 0);
}

TEST(MetricsTest, GaugesSetAddAndReset) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Gauge* gauge = registry.GetGauge("obs_test.gauge");
  EXPECT_EQ(registry.GetGauge("obs_test.gauge"), gauge);  // stable identity
  gauge->Set(41);
  gauge->Add(2);
  gauge->Add(-1);
  EXPECT_EQ(gauge->value(), 42);
  registry.ResetAll();
  EXPECT_EQ(gauge->value(), 0);
}

TEST(MetricsTest, FullSnapshotIsSortedAndComplete) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  registry.GetCounter("obs_test.z_counter")->Increment(3);
  registry.GetCounter("obs_test.a_counter")->Increment(1);
  registry.GetGauge("obs_test.gauge")->Set(7);
  registry.GetHistogram("obs_test.hist_us")->Record(100);
  obs::MetricsSnapshot snapshot = registry.FullSnapshot();

  // Each section is strictly name-sorted — the determinism exporters and
  // the snapshot writer rely on.
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
  for (size_t i = 1; i < snapshot.gauges.size(); ++i) {
    EXPECT_LT(snapshot.gauges[i - 1].first, snapshot.gauges[i].first);
  }
  for (size_t i = 1; i < snapshot.histograms.size(); ++i) {
    EXPECT_LT(snapshot.histograms[i - 1].first, snapshot.histograms[i].first);
  }

  std::map<std::string, int64_t> counters(snapshot.counters.begin(),
                                          snapshot.counters.end());
  EXPECT_EQ(counters["obs_test.a_counter"], 1);
  EXPECT_EQ(counters["obs_test.z_counter"], 3);
  std::map<std::string, int64_t> gauges(snapshot.gauges.begin(),
                                        snapshot.gauges.end());
  EXPECT_EQ(gauges["obs_test.gauge"], 7);
  bool found_hist = false;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name == "obs_test.hist_us") {
      found_hist = true;
      EXPECT_EQ(hist.count(), 1);
      EXPECT_EQ(hist.sum(), 100);
    }
  }
  EXPECT_TRUE(found_hist);
  registry.ResetAll();
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsPartitionTheValueRange) {
  // Buckets tile [0, INT64_MAX] with no gaps or overlaps, and both bounds
  // of every bucket map back to that bucket.
  for (int i = 0; i < obs::hist::kBucketCount; ++i) {
    int64_t lower = obs::hist::BucketLowerBound(i);
    int64_t upper = obs::hist::BucketUpperBound(i);
    EXPECT_LE(lower, upper) << "bucket " << i;
    EXPECT_EQ(obs::hist::BucketIndex(lower), i);
    EXPECT_EQ(obs::hist::BucketIndex(upper), i);
    if (i + 1 < obs::hist::kBucketCount) {
      EXPECT_EQ(obs::hist::BucketLowerBound(i + 1), upper + 1)
          << "gap/overlap between buckets " << i << " and " << i + 1;
    }
  }
  EXPECT_EQ(obs::hist::BucketIndex(-5), 0);
  EXPECT_EQ(obs::hist::BucketIndex(INT64_MAX), obs::hist::kBucketCount - 1);
}

TEST(HistogramTest, BucketWidthStaysUnderTheRelativeErrorBound) {
  // Above the linear range every bucket is at most 1/16 of its lower
  // bound wide — the ≤6.25 % relative-error contract percentiles rely on.
  for (int i = obs::hist::kLinearBuckets; i < obs::hist::kBucketCount - 1;
       ++i) {
    int64_t lower = obs::hist::BucketLowerBound(i);
    int64_t width = obs::hist::BucketUpperBound(i) - lower + 1;
    EXPECT_LE(width * 16, lower) << "bucket " << i;
  }
}

TEST(HistogramTest, PercentilesTrackASortedReference) {
  obs::LocalHistogram hist;
  std::vector<int64_t> values;
  uint64_t state = 0x9e3779b97f4a7c15u;  // deterministic LCG, no <random>
  int64_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005u + 1442695040888963407u;
    int64_t value = static_cast<int64_t>((state >> 33) % 2000000);
    values.push_back(value);
    total += value;
    hist.Record(value);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(hist.count(), 5000);
  EXPECT_EQ(hist.sum(), total);
  EXPECT_EQ(hist.max(), values.back());
  for (double p : {1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    if (rank < 1) rank = 1;
    if (rank > values.size()) rank = values.size();
    int64_t exact = values[rank - 1];
    int64_t estimate = hist.Percentile(p);
    // Never below the exact percentile, at most one bucket width above.
    EXPECT_GE(estimate, exact) << "p" << p;
    EXPECT_LE(estimate, exact + exact / 16 + 1) << "p" << p;
  }
  EXPECT_EQ(obs::LocalHistogram().Percentile(50), 0);  // empty histogram
}

TEST(HistogramTest, ShardMergeMatchesSequentialRecording) {
  // Recording into per-thread shards and merging must be observationally
  // identical to recording everything into one histogram — the property
  // that makes parallel runs report the same percentiles as serial runs.
  obs::LocalHistogram shards[3];
  obs::LocalHistogram sequential;
  uint64_t state = 12345;
  for (int i = 0; i < 3000; ++i) {
    state = state * 2862933555777941757u + 3037000493u;
    int64_t value = static_cast<int64_t>((state >> 40) % 500000);
    shards[i % 3].Record(value);
    sequential.Record(value);
  }
  obs::LocalHistogram merged;
  for (const obs::LocalHistogram& shard : shards) merged.MergeFrom(shard);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.sum(), sequential.sum());
  EXPECT_EQ(merged.max(), sequential.max());
  EXPECT_EQ(merged.buckets(), sequential.buckets());
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_EQ(merged.Percentile(p), sequential.Percentile(p)) << "p" << p;
  }
  // Merging an empty shard is a no-op, even into an empty histogram.
  obs::LocalHistogram empty;
  empty.MergeFrom(obs::LocalHistogram());
  EXPECT_EQ(empty.count(), 0);
  EXPECT_TRUE(empty.buckets().empty());
}

TEST(HistogramTest, CumulativeLeNeverOvercountsAndIsMonotone) {
  obs::LocalHistogram hist;
  for (int64_t v : {0, 3, 15, 16, 17, 100, 4095, 4096, 1000000}) {
    hist.Record(v);
  }
  // Linear buckets are exact, so small bounds count precisely.
  EXPECT_EQ(hist.CumulativeLE(0), 1);
  EXPECT_EQ(hist.CumulativeLE(15), 3);
  int64_t previous = 0;
  for (int64_t bound :
       std::vector<int64_t>{0, 1, 10, 100, 1000, 4095, 100000, INT64_MAX}) {
    int64_t cumulative = hist.CumulativeLE(bound);
    EXPECT_GE(cumulative, previous) << "bound " << bound;
    // Never counts an observation above the bound.
    int64_t exact = 0;
    for (int64_t v : {0, 3, 15, 16, 17, 100, 4095, 4096, 1000000}) {
      if (v <= bound) ++exact;
    }
    EXPECT_LE(cumulative, exact) << "bound " << bound;
    previous = cumulative;
  }
  EXPECT_EQ(hist.CumulativeLE(INT64_MAX), hist.count());
}

TEST(HistogramTest, RegistryHistogramSurvivesConcurrentRecording) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Histogram* hist = registry.GetHistogram("obs_test.concurrent_us");
  EXPECT_EQ(registry.GetHistogram("obs_test.concurrent_us"), hist);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += (t * kPerThread + i) % 4096;
    }
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Record((t * kPerThread + i) % 4096);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  obs::LocalHistogram snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count(), kThreads * kPerThread);  // nothing lost
  EXPECT_EQ(snapshot.sum(), expected_sum);
  EXPECT_EQ(snapshot.max(), 4095);
  // 4095 is an exact bucket boundary: the cumulative count is exact too.
  EXPECT_EQ(snapshot.CumulativeLE(4095), kThreads * kPerThread);
  registry.ResetAll();
}

TEST(HistogramTest, RegistryMergeFromShardMatchesItsSnapshot) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::LocalHistogram shard;
  for (int64_t v : {1, 10, 100, 1000, 10000}) shard.Record(v);
  obs::Histogram* hist = registry.GetHistogram("obs_test.merge_us");
  hist->MergeFrom(shard);
  obs::LocalHistogram snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count(), shard.count());
  EXPECT_EQ(snapshot.sum(), shard.sum());
  EXPECT_EQ(snapshot.max(), shard.max());
  EXPECT_EQ(snapshot.buckets(), shard.buckets());
  registry.ResetAll();
}

TEST(HistogramTest, DisabledGateSkipsScopedTimerRecording) {
  ASSERT_TRUE(obs::HistogramsEnabled()) << "tests assume the default gate";
  obs::LocalHistogram shard;
  obs::SetHistogramsEnabled(false);
  { obs::ScopedLatencyTimer timer(&shard); }
  obs::SetHistogramsEnabled(true);
  EXPECT_EQ(shard.count(), 0);
  { obs::ScopedLatencyTimer timer(&shard); }
  EXPECT_EQ(shard.count(), 1);
}

// ---------------------------------------------------------------------------
// Phase drift
// ---------------------------------------------------------------------------

TEST(PhaseDriftTest, OvershootRecordedNotSilentlyClamped) {
  PhaseBreakdown phases;
  phases.match_us = 600;
  phases.extract_us = 500;
  phases.total_us = 1000;  // parallel shards summed past the wall clock
  phases.FinalizeDrift();
  EXPECT_EQ(phases.phase_drift_us, 100);
  EXPECT_EQ(phases.OthersUs(), 0);

  PhaseBreakdown under;
  under.match_us = 300;
  under.total_us = 1000;
  under.FinalizeDrift();
  EXPECT_EQ(under.phase_drift_us, 0);
  EXPECT_EQ(under.OthersUs(), 700);
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledRecorderBuffersAndWritesNothing) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  ASSERT_FALSE(recorder.started());
  recorder.ClearForTesting();
  {
    DELEX_TRACE_SPAN("dead_span", 1);
    DELEX_TRACE_SPAN("dead_span_2");
  }
  EXPECT_EQ(recorder.BufferedEventCount(), 0);
  EXPECT_FALSE(obs::TraceRecorder::enabled());
  // Stop without Start writes no file.
  EXPECT_TRUE(recorder.Stop().ok());
}

TEST(TraceTest, RecordsWellFormedChromeTraceJson) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.ClearForTesting();
  std::string path = TempPath("delex-obs-trace-basic.json");
  std::filesystem::remove(path);
  ASSERT_TRUE(recorder.Start(path).ok());
  // A second Start while recording is rejected (first session wins).
  EXPECT_FALSE(recorder.Start(TempPath("other.json")).ok());
  {
    DELEX_TRACE_SPAN("outer", 7);
    { DELEX_TRACE_SPAN("inner", 8, "io"); }
    { DELEX_TRACE_SPAN("inner", 9, "io"); }
  }
  ASSERT_TRUE(recorder.Stop().ok());

  JsonValue trace = MustParse(ReadFile(path));
  ASSERT_TRUE(trace.Has("traceEvents"));
  const auto& events = trace.At("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);
  int outer_seen = 0;
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.At("ph").string, "X");
    EXPECT_TRUE(event.Has("name"));
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("dur"));
    EXPECT_TRUE(event.Has("pid"));
    EXPECT_TRUE(event.Has("tid"));
    EXPECT_GE(event.At("dur").number, 0);
    if (event.At("name").string == "outer") {
      ++outer_seen;
      EXPECT_EQ(event.At("args").At("id").number, 7);
      EXPECT_EQ(event.At("cat").string, "delex");
    } else {
      EXPECT_EQ(event.At("cat").string, "io");
    }
  }
  EXPECT_EQ(outer_seen, 1);
  EXPECT_EQ(trace.At("otherData").At("dropped_events").number, 0);
  std::filesystem::remove(path);
}

TEST(TraceTest, SpansNestProperlyPerThread) {
  // Complete events from RAII spans on one thread must either nest or be
  // disjoint — a partial overlap would mean broken begin/end pairing.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.ClearForTesting();
  std::string path = TempPath("delex-obs-trace-nest.json");
  ASSERT_TRUE(recorder.Start(path).ok());

  ProgramSpec spec = []() {
    auto spec = MakeProgram("chair");
    EXPECT_TRUE(spec.ok());
    return std::move(spec).ValueOrDie();
  }();
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 6;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 77);
  DelexEngine::Options options;
  options.work_dir = FreshDir("trace-nest");
  options.num_threads = 2;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment st =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
  for (size_t i = 0; i < series.size(); ++i) {
    ASSERT_TRUE(engine
                    .RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                 st, nullptr)
                    .ok());
  }
  ASSERT_TRUE(recorder.Stop().ok());

  JsonValue trace = MustParse(ReadFile(path));
  std::map<double, std::vector<std::pair<double, double>>> by_tid;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    by_tid[event.At("tid").number].push_back(
        {event.At("ts").number,
         event.At("ts").number + event.At("dur").number});
  }
  EXPECT_GE(by_tid.size(), 1u);
  size_t total = 0;
  for (const auto& [tid, spans] : by_tid) {
    total += spans.size();
    for (size_t i = 0; i < spans.size(); ++i) {
      for (size_t j = i + 1; j < spans.size(); ++j) {
        auto [s1, e1] = spans[i];
        auto [s2, e2] = spans[j];
        bool disjoint = e1 <= s2 || e2 <= s1;
        bool nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
        EXPECT_TRUE(disjoint || nested)
            << "partial overlap on tid " << tid << ": [" << s1 << "," << e1
            << ") vs [" << s2 << "," << e2 << ")";
      }
    }
  }
  EXPECT_GT(total, 0u);
  std::filesystem::remove(path);
}

/// Counts events named `name` currently buffered in the recorder.
int64_t CountSpans(const char* name) {
  int64_t count = 0;
  for (const obs::TraceEvent& event :
       obs::TraceRecorder::Global().SnapshotEvents()) {
    if (std::string_view(event.name) == name) ++count;
  }
  return count;
}

TEST(TraceTest, EvalPageSpanCountMatchesNonIdenticalPages) {
  // The acceptance invariant: worker ("eval_page") spans == pages −
  // pages_identical, because the whole-page fast path bypasses EvalPage.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.ClearForTesting();
  std::string path = TempPath("delex-obs-trace-count.json");
  ASSERT_TRUE(recorder.Start(path).ok());

  ProgramSpec spec = []() {
    auto spec = MakeProgram("chair");
    EXPECT_TRUE(spec.ok());
    return std::move(spec).ValueOrDie();
  }();
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 8;
  profile.identical_fraction = 0.8;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 99);
  DelexEngine::Options options;
  options.work_dir = FreshDir("trace-count");
  options.num_threads = 2;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment ud =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kUD);

  int64_t total_pages = 0;
  int64_t total_identical = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    RunStats stats;
    ASSERT_TRUE(engine
                    .RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                 ud, &stats)
                    .ok());
    total_pages += stats.pages;
    total_identical += stats.pages_identical;
  }
  EXPECT_GT(total_identical, 0) << "corpus produced no identical pages";
  EXPECT_EQ(CountSpans("eval_page"), total_pages - total_identical);
  EXPECT_EQ(CountSpans("commit_page"), total_pages);
  EXPECT_EQ(CountSpans("run_snapshot"), static_cast<int64_t>(series.size()));
  ASSERT_TRUE(recorder.Stop().ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// One parsed sample line of the text exposition format.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Parses `name{label="v",...} value`. Returns false on any grammar
/// violation — the test treats that as a malformed exposition.
bool ParsePromSample(const std::string& line, PromSample* out) {
  size_t pos = 0;
  auto name_start_char = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto name_char = [&](char c) {
    return name_start_char(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (pos >= line.size() || !name_start_char(line[pos])) return false;
  while (pos < line.size() && name_char(line[pos])) ++pos;
  out->name = line.substr(0, pos);
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      size_t key_start = pos;
      while (pos < line.size() && name_char(line[pos])) ++pos;
      if (pos == key_start) return false;
      std::string key = line.substr(key_start, pos - key_start);
      if (pos >= line.size() || line[pos] != '=') return false;
      ++pos;
      if (pos >= line.size() || line[pos] != '"') return false;
      ++pos;
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\') ++pos;
        if (pos < line.size()) value += line[pos++];
      }
      if (pos >= line.size()) return false;
      ++pos;  // closing quote
      out->labels[key] = value;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') return false;
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  ++pos;
  std::string value_text = line.substr(pos);
  if (value_text.empty()) return false;
  if (value_text == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
    return true;
  }
  try {
    size_t consumed = 0;
    out->value = std::stod(value_text, &consumed);
    return consumed == value_text.size();
  } catch (...) {
    return false;
  }
}

TEST(PrometheusTest, ExpositionIsWellFormed) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  registry.GetCounter("obs_test.prom.counter")->Increment(5);
  registry.GetGauge("obs_test.prom.gauge")->Set(-3);
  obs::Histogram* hist = registry.GetHistogram("obs_test.prom.hist_us");
  int64_t hist_sum = 0;
  for (int64_t v : {0, 3, 40, 999, 12345, 2400000}) {
    hist->Record(v);
    hist_sum += v;
  }

  std::string text = obs::PrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Parse every line: each is a HELP comment, a TYPE comment, or a sample
  // whose family has already been declared by a TYPE comment.
  std::map<std::string, std::string> type_of;  // family → counter/gauge/...
  std::vector<PromSample> samples;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, kind, family;
      comment >> hash >> kind >> family;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      ASSERT_FALSE(family.empty()) << line;
      if (kind == "TYPE") {
        std::string type;
        comment >> type;
        ASSERT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
        type_of[family] = type;
      }
      continue;
    }
    PromSample sample;
    ASSERT_TRUE(ParsePromSample(line, &sample)) << "malformed line: " << line;
    // Strip _total/_bucket/_sum/_count to recover the declared family.
    std::string family = sample.name;
    for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
      std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          type_of.count(family.substr(0, family.size() - s.size())) > 0) {
        family = family.substr(0, family.size() - s.size());
        break;
      }
    }
    EXPECT_EQ(type_of.count(family), 1u)
        << "sample without TYPE declaration: " << line;
    samples.push_back(std::move(sample));
  }

  // Our three metrics are present with the documented naming scheme
  // (delex_ prefix, dots → underscores, counters get _total).
  double counter_value = -1;
  double gauge_value = 0;
  double bucket_count = -1;
  double count_value = -1;
  double sum_value = -1;
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  for (const PromSample& sample : samples) {
    if (sample.name == "delex_obs_test_prom_counter_total") {
      counter_value = sample.value;
    } else if (sample.name == "delex_obs_test_prom_gauge") {
      gauge_value = sample.value;
    } else if (sample.name == "delex_obs_test_prom_hist_us_bucket") {
      ASSERT_EQ(sample.labels.count("le"), 1u);
      double le = sample.labels.at("le") == "+Inf"
                      ? std::numeric_limits<double>::infinity()
                      : std::stod(sample.labels.at("le"));
      buckets.push_back({le, sample.value});
      if (std::isinf(le)) bucket_count = sample.value;
    } else if (sample.name == "delex_obs_test_prom_hist_us_count") {
      count_value = sample.value;
    } else if (sample.name == "delex_obs_test_prom_hist_us_sum") {
      sum_value = sample.value;
    }
  }
  EXPECT_EQ(counter_value, 5);
  EXPECT_EQ(gauge_value, -3);
  EXPECT_EQ(count_value, 6);
  EXPECT_EQ(sum_value, static_cast<double>(hist_sum));
  // Buckets are cumulative and monotone in le, and +Inf equals _count.
  ASSERT_GE(buckets.size(), 2u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].first, buckets[i - 1].first);
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);
  }
  EXPECT_TRUE(std::isinf(buckets.back().first)) << "+Inf bucket must be last";
  EXPECT_EQ(bucket_count, count_value);
  registry.ResetAll();
}

TEST(PrometheusTest, ShardLabelsRenderAsPromLabelSets) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  // The `#k=v` naming convention (used by the shard layer) must render as
  // a Prometheus label set, with HELP/TYPE emitted once per family even
  // though each labeled series is a distinct registry entry.
  registry.GetCounter("obs_test.lbl.pages#shard=0")->Increment(4);
  registry.GetCounter("obs_test.lbl.pages#shard=1")->Increment(6);
  registry.GetGauge("obs_test.lbl.gen#shard=1")->Set(3);
  registry.GetHistogram("obs_test.lbl.hist_us#shard=2")->Record(25);

  std::string text = obs::PrometheusText();
  EXPECT_NE(text.find("delex_obs_test_lbl_pages_total{shard=\"0\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("delex_obs_test_lbl_pages_total{shard=\"1\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("delex_obs_test_lbl_gen{shard=\"1\"} 3"),
            std::string::npos);
  // Bucket lines put the shard label before the le label.
  EXPECT_NE(
      text.find("delex_obs_test_lbl_hist_us_bucket{shard=\"2\",le=\"+Inf\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("delex_obs_test_lbl_hist_us_count{shard=\"2\"} 1"),
            std::string::npos);
  // One TYPE declaration per family, not one per labeled series.
  std::string type_line = "# TYPE delex_obs_test_lbl_pages_total counter";
  size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos)
      << "TYPE repeated for labeled series";
  registry.ResetAll();
}

TEST(PrometheusTest, EmptyHistogramFamilyRendersZeroedSeries) {
  // A histogram that exists but never recorded must still render a full,
  // well-formed family: every bucket 0, _sum 0, _count 0 — not vanish and
  // not emit partial series.
  obs::MetricsSnapshot snapshot;
  snapshot.histograms.emplace_back("obs_test.edge.empty_us",
                                   obs::LocalHistogram());
  std::string text = obs::PrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE delex_obs_test_edge_empty_us histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("delex_obs_test_edge_empty_us_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("delex_obs_test_edge_empty_us_sum 0"),
            std::string::npos);
  EXPECT_NE(text.find("delex_obs_test_edge_empty_us_count 0"),
            std::string::npos);
  // Every bucket line of the empty family reports 0 observations.
  size_t pos = 0;
  int bucket_lines = 0;
  const std::string bucket = "delex_obs_test_edge_empty_us_bucket{";
  while ((pos = text.find(bucket, pos)) != std::string::npos) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = text.substr(pos, eol - pos);
    EXPECT_EQ(line.substr(line.size() - 2), " 0") << line;
    ++bucket_lines;
    pos = eol;
  }
  EXPECT_GE(bucket_lines, 2);
}

TEST(PrometheusTest, LabelValuesEscapeQuotesBackslashesAndNewlines) {
  // Label values in `#k=v` registry names may carry the three characters
  // the Prometheus text format requires escaping: `"`, `\`, and newline.
  obs::MetricsSnapshot snapshot;
  snapshot.counters.emplace_back(std::string("obs_test.esc.pages#path=a\"b") +
                                     "\\c\nd",
                                 3);
  std::string text = obs::PrometheusText(snapshot);
  // Rendered: path="a\"b\\c\nd" — quote and backslash backslash-escaped,
  // the raw newline rendered as the two characters '\' 'n'.
  EXPECT_NE(
      text.find(
          "delex_obs_test_esc_pages_total{path=\"a\\\"b\\\\c\\nd\"} 3"),
      std::string::npos)
      << text;
  // No raw newline may survive inside a sample line.
  for (size_t pos = text.find("pages_total{");
       pos != std::string::npos && pos + 1 < text.size();
       pos = text.find("pages_total{", pos + 1)) {
    size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol - pos);
    EXPECT_NE(line.find("} 3"), std::string::npos) << "torn line: " << line;
  }
}

TEST(PrometheusTest, FamilyPresentOnlyUnderSomeLabelSets) {
  // A family that exists only as labeled series (no unlabeled sample, and
  // a sparse shard set — 0 and 2 but not 1) must emit HELP/TYPE exactly
  // once and exactly the series that exist.
  obs::MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("obs_test.sparse.pages#shard=0", 4);
  snapshot.counters.emplace_back("obs_test.sparse.pages#shard=2", 6);
  snapshot.histograms.emplace_back("obs_test.sparse.lat_us#shard=2",
                                   obs::LocalHistogram());
  std::string text = obs::PrometheusText(snapshot);

  const std::string type_line =
      "# TYPE delex_obs_test_sparse_pages_total counter";
  size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos)
      << "TYPE repeated for a sparse labeled family";
  EXPECT_NE(text.find("delex_obs_test_sparse_pages_total{shard=\"0\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("delex_obs_test_sparse_pages_total{shard=\"2\"} 6"),
            std::string::npos);
  EXPECT_EQ(text.find("shard=\"1\""), std::string::npos);
  // No unlabeled sample is invented for a labels-only family: every
  // occurrence of the family name outside comments carries a label set.
  for (size_t pos = text.find("delex_obs_test_sparse_pages_total ");
       pos != std::string::npos;
       pos = text.find("delex_obs_test_sparse_pages_total ", pos + 1)) {
    size_t line_start = text.rfind('\n', pos);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    EXPECT_EQ(text[line_start], '#')
        << "unlabeled sample for labels-only family";
  }
  // The labels-only histogram renders its shard label on every series.
  EXPECT_NE(
      text.find("delex_obs_test_sparse_lat_us_bucket{shard=\"2\",le=\"+Inf\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("delex_obs_test_sparse_lat_us_count{shard=\"2\"} 0"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Exporters: snapshot writer + stats server
// ---------------------------------------------------------------------------

TEST(ExportTest, SnapshotJsonLineRoundTrips) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  registry.GetCounter("obs_test.export.counter")->Increment(9);
  registry.GetGauge("obs_test.export.gauge")->Set(4);
  registry.GetHistogram("obs_test.export.hist_us")->Record(77);
  JsonValue line = MustParse(obs::MetricsSnapshotJsonLine());
  EXPECT_TRUE(line.Has("uptime_ms"));
  EXPECT_GE(line.At("uptime_ms").number, 0);
  EXPECT_EQ(line.At("counters").At("obs_test.export.counter").number, 9);
  EXPECT_EQ(line.At("gauges").At("obs_test.export.gauge").number, 4);
  const JsonValue& hist = line.At("histograms").At("obs_test.export.hist_us");
  EXPECT_EQ(hist.At("count").number, 1);
  EXPECT_EQ(hist.At("sum").number, 77);
  EXPECT_EQ(hist.At("max").number, 77);
  EXPECT_EQ(hist.At("p50").number, 77);  // single sample: p50 == max
  registry.ResetAll();
}

TEST(ExportTest, SnapshotWriterAppendsParseableLines) {
  std::string path = TempPath("delex-obs-metrics-snap.jsonl");
  std::filesystem::remove(path);
  obs::MetricsSnapshotWriter& writer = obs::MetricsSnapshotWriter::Global();
  // A huge interval isolates the WriteNow calls from the periodic thread.
  ASSERT_TRUE(writer.Start(path, /*interval_ms=*/3600 * 1000).ok());
  EXPECT_FALSE(writer.Start(path, 1000).ok());  // already running
  EXPECT_TRUE(writer.running());
  ASSERT_TRUE(writer.WriteNow().ok());
  ASSERT_TRUE(writer.WriteNow().ok());
  writer.Stop();
  EXPECT_FALSE(writer.running());

  std::ifstream file(path);
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    JsonValue parsed = MustParse(line);
    EXPECT_TRUE(parsed.Has("uptime_ms"));
    EXPECT_TRUE(parsed.Has("counters"));
    EXPECT_TRUE(parsed.Has("histograms"));
    ++lines;
  }
  EXPECT_GE(lines, 2);
  std::filesystem::remove(path);
}

/// Blocking HTTP GET against 127.0.0.1:`port`; returns the raw response.
std::string HttpGet(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to port " << port;
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t got;
  while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(ExportTest, StatsServerServesMetricsAndHealth) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  registry.GetCounter("obs_test.server.counter")->Increment();
  obs::StatsServer& server = obs::StatsServer::Global();
  ASSERT_TRUE(server.Start(/*port=*/0).ok());  // 0 = ephemeral
  int port = server.port();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.Start(0).ok());  // already running

  std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos) << health;

  std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("delex_obs_test_server_counter_total"),
            std::string::npos);

  std::string missing = HttpGet(port, "/no-such-endpoint");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  registry.ResetAll();
}

/// The HTTP body: everything after the blank line separating the headers.
std::string HttpBody(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(ExportTest, StatuszVarzAndHistoryEndpoints) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  registry.GetCounter("obs_test.statusz.pages#shard=1")->Increment(11);

  // Publish a two-generation store plus its newest framed line, the way
  // RunSeries does after every append.
  std::string history_path = TempPath("delex-obs-statusz-history.jsonl");
  obs::HistoryStore store(history_path);
  std::filesystem::remove(history_path);
  obs::HistoryRecord rec;
  rec.gen = 1;
  rec.solution = "Delex";
  rec.tag = "statusz-test";
  rec.warmup = true;
  rec.assignment = "DN,DN";
  ASSERT_TRUE(store.Append(rec).ok());
  rec.gen = 2;
  rec.warmup = false;
  rec.assignment = "ST,RU";
  rec.pages = 42;
  rec.has_optimizer = true;
  rec.cost_drift = 0.25;
  ASSERT_TRUE(store.Append(rec).ok());
  obs::PublishHistoryForStatus(history_path,
                               obs::HistoryStore::FormatLine(rec));
  EXPECT_EQ(obs::PublishedHistoryPath(), history_path);
  EXPECT_FALSE(obs::PublishedHistoryLine().empty());

  obs::StatsServer& server = obs::StatsServer::Global();
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  int port = server.port();
  ASSERT_GT(port, 0);

  std::string statusz = HttpGet(port, "/statusz");
  EXPECT_NE(statusz.find("200"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("text/html"), std::string::npos);
  EXPECT_NE(statusz.find("uptime_ms"), std::string::npos);
  EXPECT_NE(statusz.find("git_sha"), std::string::npos);
  // Every operational knob appears, set or "(unset)".
  EXPECT_NE(statusz.find("DELEX_SHARDS"), std::string::npos);
  EXPECT_NE(statusz.find("DELEX_HISTORY_RETAIN"), std::string::npos);
  EXPECT_NE(statusz.find("DELEX_DECISION_AUDIT"), std::string::npos);
  // The published last-generation summary and store path.
  EXPECT_NE(statusz.find(history_path), std::string::npos);
  EXPECT_NE(statusz.find("statusz-test"), std::string::npos);
  EXPECT_NE(statusz.find("ST,RU"), std::string::npos);
  EXPECT_NE(statusz.find("cost_drift"), std::string::npos);
  // The label-aware renderer section shows per-shard counters.
  EXPECT_NE(statusz.find("obs_test_statusz_pages_total{shard=&quot;1&quot;}"),
            std::string::npos)
      << statusz;

  std::string varz = HttpGet(port, "/varz");
  EXPECT_NE(varz.find("200"), std::string::npos);
  EXPECT_NE(varz.find("application/json"), std::string::npos);
  JsonValue varz_json = MustParse(HttpBody(varz));
  EXPECT_TRUE(varz_json.Has("uptime_ms"));
  EXPECT_EQ(varz_json.At("counters").At("obs_test.statusz.pages#shard=1")
                .number,
            11);

  // /history serves the published store verbatim: both generations, each
  // line re-parseable with its checksum intact.
  std::string history = HttpGet(port, "/history");
  EXPECT_NE(history.find("200"), std::string::npos);
  EXPECT_NE(history.find("application/x-ndjson"), std::string::npos);
  std::istringstream lines(HttpBody(history));
  std::string line;
  std::vector<int> gens;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    obs::HistoryRecord parsed;
    ASSERT_TRUE(obs::HistoryStore::ParseLine(line, &parsed).ok()) << line;
    gens.push_back(parsed.gen);
  }
  EXPECT_EQ(gens, (std::vector<int>{1, 2}));

  server.Stop();
  std::filesystem::remove(history_path);
  registry.ResetAll();
}

TEST(ExportTest, HistoryEndpointFallsBackToPublishedLine) {
  // When the published store path is unreadable, /history serves the last
  // published framed line instead of failing — the pure-404 arm only
  // applies before any publication (process-global slot, so it can't be
  // re-tested here once the endpoint test above has published).
  obs::HistoryRecord rec;
  rec.gen = 9;
  rec.solution = "Delex";
  std::string line = obs::HistoryStore::FormatLine(rec);
  obs::PublishHistoryForStatus("/nonexistent/delex-history.jsonl", line);

  obs::StatsServer& server = obs::StatsServer::Global();
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  std::string history = HttpGet(server.port(), "/history");
  EXPECT_NE(history.find("200"), std::string::npos) << history;
  EXPECT_NE(HttpBody(history).find(line), std::string::npos);
  server.Stop();
}

TEST(ExportTest, StatsServerSurvivesHangingClient) {
  obs::StatsServer& server = obs::StatsServer::Global();
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  int port = server.port();
  ASSERT_GT(port, 0);

  // A client that connects and then hangs without sending a request. The
  // per-connection read timeout must unblock the accept loop so later
  // clients still get served — without it this test deadlocks (and hits
  // the suite timeout).
  int hang_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(hang_fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(hang_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);

  std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  // The hung connection was closed server-side after the read timeout
  // (the server answers it 404 and hangs up): draining it reaches EOF
  // instead of blocking forever.
  char drain[512];
  ssize_t got;
  while ((got = ::recv(hang_fd, drain, sizeof(drain), 0)) > 0) {
  }
  EXPECT_EQ(got, 0) << "server left the hung connection open";
  ::close(hang_fd);

  server.Stop();
}

TEST(ExportTest, StatsServerConcurrentConnectAndShutdown) {
  // Regression for the Stop()/Serve() teardown races (the accept loop
  // used to read listen_fd_ unlocked while Stop closed it): hammer the
  // server with connects from several threads and stop it mid-flight.
  // Primarily meaningful under the TSan ctest leg; single-threaded builds
  // still verify no crash, no deadlock, and clean restartability.
  obs::StatsServer& server = obs::StatsServer::Global();
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  const int port = server.port();
  ASSERT_GT(port, 0);

  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([port, &done] {
      while (!done.load(std::memory_order_acquire)) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) break;
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        // Mid-shutdown every step may fail (refused connect, reset send,
        // short recv) — all fine, the loop only must not crash or hang.
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          const char request[] = "GET /healthz HTTP/1.1\r\n\r\n";
          (void)::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL);
          char buffer[256];
          while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
          }
        }
        ::close(fd);
      }
    });
  }

  // Let the clients land a few requests, then yank the server out from
  // under them.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);

  // The teardown left the singleton restartable.
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  EXPECT_GT(server.port(), 0);
  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  server.Stop();
}

TEST(ExportTest, MemzAndProfilezEndpoints) {
  obs::StatsServer& server = obs::StatsServer::Global();
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  int port = server.port();
  ASSERT_GT(port, 0);

  std::string memz = HttpGet(port, "/memz");
  EXPECT_NE(memz.find("200"), std::string::npos) << memz;
  EXPECT_NE(memz.find("application/json"), std::string::npos);
  JsonValue doc = MustParse(HttpBody(memz));
  EXPECT_GT(doc.At("rss_bytes").number, 0);
  EXPECT_GE(doc.At("peak_rss_bytes").number, doc.At("rss_bytes").number);
  ASSERT_EQ(doc.At("subsystems").array.size(),
            static_cast<size_t>(obs::kMemTagCount));
  for (const JsonValue& sub : doc.At("subsystems").array) {
    EXPECT_FALSE(sub.At("tag").string.empty());
    EXPECT_GE(sub.At("peak_bytes").number, sub.At("current_bytes").number);
  }

  // Profiler idle: /profilez still answers 200 with a placeholder body.
  std::string profilez = HttpGet(port, "/profilez");
  EXPECT_NE(profilez.find("200"), std::string::npos) << profilez;
  EXPECT_FALSE(HttpBody(profilez).empty());

  server.Stop();
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST(RunReportTest, SchemaV6CarriesResourcesBlock) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::RunReportMeta meta;
  meta.solution = "Delex";
  RunStats stats;
  obs::OptimizerReport optimizer;

  JsonValue line = MustParse(obs::RunReportLine(meta, stats, optimizer));
  ASSERT_TRUE(line.Has("resources"));
  const JsonValue& res = line.At("resources");
  EXPECT_GT(res.At("rss_bytes").number, 0);
  EXPECT_GT(res.At("peak_rss_bytes").number, 0);
  EXPECT_TRUE(res.Has("tracked_bytes"));
  EXPECT_TRUE(res.Has("tracked_peak_bytes"));
  ASSERT_EQ(res.At("subsystems").array.size(),
            static_cast<size_t>(obs::kMemTagCount));
  // One row per MemTag, in enum order, peaks never below currents.
  EXPECT_EQ(res.At("subsystems").array[0].At("tag").string, "snapshot");
  for (const JsonValue& sub : res.At("subsystems").array) {
    EXPECT_GE(sub.At("peak_bytes").number, sub.At("current_bytes").number);
  }
  // No profiler ticks in this process -> the profile sub-block is absent.
  if (obs::SpanProfiler::Global().TotalSamples() == 0) {
    EXPECT_FALSE(res.Has("profile"));
  }
}

TEST(RunReportTest, LineCarriesSchemaPhasesAndOptimizer) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::RunReportMeta meta;
  meta.solution = "Delex";
  meta.tag = "unit-test";
  meta.snapshot_index = 2;
  meta.warmup = false;
  meta.num_threads = 4;
  meta.fast_path_enabled = true;

  RunStats stats;
  stats.pages = 10;
  stats.pages_identical = 3;
  stats.result_tuples = 17;
  stats.units.resize(2);
  stats.units[0].match_us = 100;
  stats.units[0].extract_us = 200;
  stats.units[1].copy_us = 50;
  stats.phases.match_us = 100;
  stats.phases.extract_us = 200;
  stats.phases.copy_us = 50;
  stats.phases.total_us = 400;
  stats.phases.FinalizeDrift();

  obs::OptimizerReport optimizer;
  optimizer.has_optimizer = true;
  optimizer.unit_matchers = {"ST", "RU"};
  optimizer.predicted_unit_us = {123.5, 4.25};
  optimizer.predicted_total_us = 127.75;

  JsonValue line = MustParse(obs::RunReportLine(meta, stats, optimizer));
  EXPECT_EQ(line.At("schema_version").number, obs::kRunReportSchemaVersion);
  EXPECT_EQ(line.At("solution").string, "Delex");
  EXPECT_EQ(line.At("tag").string, "unit-test");
  EXPECT_EQ(line.At("threads").number, 4);
  EXPECT_TRUE(line.At("fast_path").boolean);
  EXPECT_EQ(line.At("pages_identical").number, 3);
  EXPECT_EQ(line.At("phases").At("others_us").number, 50);
  EXPECT_EQ(line.At("phases").At("phase_drift_us").number, 0);
  EXPECT_EQ(line.At("optimizer").At("assignment").string, "ST,RU");
  EXPECT_EQ(line.At("optimizer").At("predicted_total_us").number, 127.75);
  ASSERT_EQ(line.At("units").array.size(), 2u);
  const JsonValue& unit0 = line.At("units").array[0];
  EXPECT_EQ(unit0.At("matcher").string, "ST");
  EXPECT_EQ(unit0.At("predicted_us").number, 123.5);
  EXPECT_EQ(unit0.At("actual_us").number, 300);
  EXPECT_TRUE(line.Has("counters"));
}

TEST(RunReportTest, ShardSummariesEmittedWhenSharded) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::RunReportMeta meta;
  meta.solution = "Delex";
  meta.snapshot_index = 1;
  RunStats stats;
  stats.pages = 8;
  obs::OptimizerReport optimizer;

  // Unsharded: num_shards present (v4) but no shards array.
  JsonValue line = MustParse(obs::RunReportLine(meta, stats, optimizer));
  EXPECT_EQ(line.At("schema_version").number, obs::kRunReportSchemaVersion);
  EXPECT_EQ(line.At("num_shards").number, 1);
  EXPECT_FALSE(line.Has("shards"));

  meta.num_shards = 2;
  meta.shards.resize(2);
  meta.shards[0].shard = 0;
  meta.shards[0].pages = 5;
  meta.shards[0].pages_identical = 2;
  meta.shards[0].result_tuples = 11;
  meta.shards[0].total_us = 900;
  meta.shards[0].assignment = "ST,RU";  // v5: per-shard plan + drift
  meta.shards[0].cost_drift = 0.125;
  meta.shards[1].shard = 1;
  meta.shards[1].pages = 3;
  meta.shards[1].pages_identical = 1;
  meta.shards[1].result_tuples = 7;
  meta.shards[1].total_us = 700;
  meta.shards[1].reuse_corrupt_drops = 2;
  line = MustParse(obs::RunReportLine(meta, stats, optimizer));
  EXPECT_EQ(line.At("num_shards").number, 2);
  ASSERT_EQ(line.At("shards").array.size(), 2u);
  const JsonValue& shard0 = line.At("shards").array[0];
  EXPECT_EQ(shard0.At("shard").number, 0);
  EXPECT_EQ(shard0.At("pages").number, 5);
  EXPECT_EQ(shard0.At("result_tuples").number, 11);
  EXPECT_EQ(shard0.At("assignment").string, "ST,RU");
  EXPECT_EQ(shard0.At("cost_drift").number, 0.125);
  const JsonValue& shard1 = line.At("shards").array[1];
  EXPECT_EQ(shard1.At("total_us").number, 700);
  EXPECT_EQ(shard1.At("reuse_corrupt_drops").number, 2);
  // Unavailable v5 fields are omitted, not emitted as sentinels.
  EXPECT_FALSE(shard1.Has("assignment"));
  EXPECT_FALSE(shard1.Has("cost_drift"));
}

TEST(RunReportTest, WriterAppendsOneParseableLinePerRun) {
  std::string path = TempPath("delex-obs-report.jsonl");
  std::filesystem::remove(path);
  obs::RunReportWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  obs::RunReportMeta meta;
  meta.solution = "No-reuse";
  RunStats stats;
  obs::OptimizerReport no_opt;
  ASSERT_TRUE(writer.Append(meta, stats, no_opt).ok());
  meta.snapshot_index = 2;
  ASSERT_TRUE(writer.Append(meta, stats, no_opt).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::ifstream file(path);
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    JsonValue parsed = MustParse(line);
    EXPECT_FALSE(parsed.Has("optimizer"));  // baseline: no plan chosen
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::filesystem::remove(path);
}

/// Runs the Delex solution over a small series with run reports on,
/// returning the parsed JSONL lines.
std::vector<JsonValue> ReportedSeries(int num_threads, bool fast_path,
                                      const std::string& tag) {
  std::string path = TempPath("delex-obs-series-" + tag + ".jsonl");
  std::filesystem::remove(path);
  SetStatsJsonPath(path);
  obs::MetricsRegistry::Global().ResetAll();

  ProgramSpec spec = []() {
    auto spec = MakeProgram("chair");
    EXPECT_TRUE(spec.ok());
    return std::move(spec).ValueOrDie();
  }();
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 8;
  profile.identical_fraction = 0.7;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 4242);

  DelexSolutionOptions options;
  options.num_threads = num_threads;
  options.disable_page_fast_path = !fast_path;
  auto delex = MakeDelexSolution(spec, FreshDir("series-" + tag), options);
  auto run = RunSeries(delex.get(), series, /*keep_results=*/false, tag);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  SetStatsJsonPath("");

  std::vector<JsonValue> lines;
  std::ifstream file(path);
  std::string line;
  while (std::getline(file, line)) lines.push_back(MustParse(line));
  std::filesystem::remove(path);
  return lines;
}

TEST(RunReportTest, SeriesReportsPredictedAndMeasuredPerUnit) {
  std::vector<JsonValue> lines = ReportedSeries(1, true, "pred");
  ASSERT_EQ(lines.size(), 3u);  // warm-up + 2 reported snapshots
  EXPECT_TRUE(lines[0].At("warmup").boolean);
  EXPECT_FALSE(lines[0].Has("optimizer"));  // no previous snapshot
  for (size_t i = 1; i < lines.size(); ++i) {
    const JsonValue& line = lines[i];
    EXPECT_FALSE(line.At("warmup").boolean);
    EXPECT_EQ(line.At("tag").string, "pred");
    ASSERT_TRUE(line.Has("optimizer"));
    EXPECT_FALSE(line.At("optimizer").At("assignment").string.empty());
    EXPECT_GE(line.At("optimizer").At("predicted_total_us").number, 0);
    ASSERT_GT(line.At("units").array.size(), 0u);
    for (const JsonValue& unit : line.At("units").array) {
      // The acceptance fields: chosen matcher, predicted cost, measured
      // match/extract/copy microseconds — present and finite on every unit.
      EXPECT_FALSE(unit.At("matcher").string.empty());
      ASSERT_TRUE(unit.Has("predicted_us"));
      EXPECT_NE(unit.At("predicted_us").kind, JsonValue::kNull);
      EXPECT_GE(unit.At("predicted_us").number, 0);
      EXPECT_GE(unit.At("match_us").number, 0);
      EXPECT_GE(unit.At("extract_us").number, 0);
      EXPECT_GE(unit.At("copy_us").number, 0);
      EXPECT_GE(unit.At("actual_us").number, 0);
    }
  }
}

/// Timing-independent projection of a report line, for determinism checks.
struct ReportFingerprint {
  double pages = 0;
  double identical = 0;
  double tuples = 0;
  std::vector<std::pair<double, double>> unit_tuples;  // (input, output)

  bool operator==(const ReportFingerprint& other) const = default;
};

ReportFingerprint Fingerprint(const JsonValue& line) {
  ReportFingerprint fp;
  fp.pages = line.At("pages").number;
  fp.identical = line.At("pages_identical").number;
  fp.tuples = line.At("result_tuples").number;
  for (const JsonValue& unit : line.At("units").array) {
    fp.unit_tuples.push_back(
        {unit.At("input_tuples").number, unit.At("output_tuples").number});
  }
  return fp;
}

TEST(RunReportTest, CountersDeterministicAcrossThreadCounts) {
  std::vector<JsonValue> t1 = ReportedSeries(1, true, "t1");
  std::vector<JsonValue> t2 = ReportedSeries(2, true, "t2");
  std::vector<JsonValue> t8 = ReportedSeries(8, true, "t8");
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    ReportFingerprint fp = Fingerprint(t1[i]);
    EXPECT_TRUE(fp == Fingerprint(t2[i])) << "snapshot " << i;
    EXPECT_TRUE(fp == Fingerprint(t8[i])) << "snapshot " << i;
    EXPECT_EQ(t1[i].At("threads").number, 1);
    EXPECT_EQ(t2[i].At("threads").number, 2);
    EXPECT_EQ(t8[i].At("threads").number, 8);
  }
}

TEST(RunReportTest, SchemaV2CarriesLatencyFastPathAndTraceBlocks) {
  obs::MetricsRegistry::Global().ResetAll();
  ASSERT_TRUE(obs::HistogramsEnabled());
  obs::RunReportMeta meta;
  meta.solution = "Delex";
  meta.histograms_enabled = true;

  RunStats stats;
  stats.pages = 4;
  stats.fast_path_demote_result_cache = 2;
  stats.fast_path_demote_missing_group = 1;
  stats.fast_path_decode_copy_groups = 3;
  for (int64_t v : {10, 20, 30, 40}) stats.page_eval_hist.Record(v);
  stats.match_hist[static_cast<size_t>(MatcherKind::kUD)].Record(5);
  stats.match_hist[static_cast<size_t>(MatcherKind::kST)].Record(7);
  stats.match_hist[static_cast<size_t>(MatcherKind::kRU)].Record(9);
  stats.units.resize(1);
  for (int64_t v : {100, 200}) stats.units[0].extract_hist.Record(v);

  obs::OptimizerReport no_opt;
  JsonValue line = MustParse(obs::RunReportLine(meta, stats, no_opt));
  EXPECT_EQ(line.At("schema_version").number, obs::kRunReportSchemaVersion);
  EXPECT_TRUE(line.At("histograms").boolean);

  const JsonValue& fast = line.At("fast_path_counters");
  EXPECT_EQ(fast.At("demote_result_cache").number, 2);
  EXPECT_EQ(fast.At("demote_missing_group").number, 1);
  EXPECT_EQ(fast.At("decode_copy_groups").number, 3);

  // The acceptance block: p50/p90/p99/max for page-eval and per-matcher.
  const JsonValue& latency = line.At("latency");
  const JsonValue& page_eval = latency.At("page_eval_us");
  EXPECT_EQ(page_eval.At("count").number, 4);
  EXPECT_EQ(page_eval.At("mean").number, 25);
  EXPECT_EQ(page_eval.At("p50").number, 20);  // exact: bucket-aligned values
  EXPECT_EQ(page_eval.At("p90").number, 40);
  EXPECT_EQ(page_eval.At("p99").number, 40);
  EXPECT_EQ(page_eval.At("max").number, 40);
  EXPECT_EQ(latency.At("match_ud_us").At("count").number, 1);
  EXPECT_EQ(latency.At("match_ud_us").At("max").number, 5);
  EXPECT_EQ(latency.At("match_st_us").At("max").number, 7);
  EXPECT_EQ(latency.At("match_ru_us").At("max").number, 9);

  const JsonValue& trace = line.At("trace");
  EXPECT_FALSE(trace.At("recording").boolean);
  EXPECT_EQ(trace.At("dropped_events").number, 0);

  ASSERT_EQ(line.At("units").array.size(), 1u);
  const JsonValue& unit = line.At("units").array[0];
  EXPECT_EQ(unit.At("extract_count").number, 2);
  EXPECT_GE(unit.At("extract_p50_us").number, 100);
  EXPECT_LE(unit.At("extract_p50_us").number, 107);  // ≤6.25 % above exact
  EXPECT_EQ(unit.At("extract_max_us").number, 200);
  EXPECT_GE(unit.At("extract_p99_us").number, unit.At("extract_p90_us").number);
}

TEST(RunReportTest, SchemaV2OmitsLatencyWhenHistogramsDisabled) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::RunReportMeta meta;
  meta.solution = "Delex";
  meta.histograms_enabled = false;
  RunStats stats;
  stats.pages = 2;
  stats.units.resize(1);
  obs::OptimizerReport no_opt;
  JsonValue line = MustParse(obs::RunReportLine(meta, stats, no_opt));
  EXPECT_FALSE(line.At("histograms").boolean);
  EXPECT_FALSE(line.Has("latency"));
  // Counter-style blocks stay: they cost nothing to collect.
  EXPECT_TRUE(line.Has("fast_path_counters"));
  EXPECT_TRUE(line.Has("trace"));
  ASSERT_EQ(line.At("units").array.size(), 1u);
  EXPECT_FALSE(line.At("units").array[0].Has("extract_count"));
}

TEST(RunReportTest, LatencyCountsDeterministicAcrossThreadsAndFastPath) {
  ASSERT_TRUE(obs::HistogramsEnabled());
  for (bool fast_path : {true, false}) {
    const std::string fp_tag = fast_path ? "on" : "off";
    std::vector<std::vector<JsonValue>> runs;
    for (int threads : {1, 2, 8}) {
      runs.push_back(ReportedSeries(threads, fast_path,
                                    "lat-" + fp_tag + std::to_string(threads)));
      ASSERT_EQ(runs.back().size(), runs.front().size());
    }
    for (size_t i = 0; i < runs[0].size(); ++i) {
      for (size_t r = 0; r < runs.size(); ++r) {
        const JsonValue& line = runs[r][i];
        ASSERT_TRUE(line.Has("latency")) << "snapshot " << i;
        // EvalPage runs exactly once per non-identical page, on any
        // thread count: the merged histogram count is exact — the
        // cross-thread shard merge loses and invents nothing. (Per-unit
        // extract counts are NOT compared: the optimizer picks matchers
        // from measured timings, so extractor-call counts can legitimately
        // differ run to run even though result tuples never do.)
        const JsonValue& page_eval = line.At("latency").At("page_eval_us");
        EXPECT_EQ(page_eval.At("count").number,
                  line.At("pages").number - line.At("pages_identical").number)
            << "snapshot " << i << " run " << r;
        if (!fast_path) {
          EXPECT_EQ(page_eval.At("count").number, line.At("pages").number);
        }
        EXPECT_LE(page_eval.At("p50").number, page_eval.At("p90").number);
        EXPECT_LE(page_eval.At("p90").number, page_eval.At("p99").number);
        EXPECT_LE(page_eval.At("p99").number, page_eval.At("max").number);
        EXPECT_LE(page_eval.At("mean").number, page_eval.At("max").number);
        for (const JsonValue& unit : line.At("units").array) {
          ASSERT_TRUE(unit.Has("extract_count")) << "snapshot " << i;
          EXPECT_LE(unit.At("extract_p50_us").number,
                    unit.At("extract_p90_us").number);
          EXPECT_LE(unit.At("extract_p90_us").number,
                    unit.At("extract_p99_us").number);
          EXPECT_LE(unit.At("extract_p99_us").number,
                    unit.At("extract_max_us").number);
        }
      }
    }
  }
}

TEST(RunReportTest, ResultCountersMatchAcrossFastPathSettings) {
  std::vector<JsonValue> on = ReportedSeries(1, true, "fp-on");
  std::vector<JsonValue> off = ReportedSeries(1, false, "fp-off");
  ASSERT_EQ(on.size(), off.size());
  bool saw_identical = false;
  for (size_t i = 0; i < on.size(); ++i) {
    // Result counts agree; the fast path only changes who does the work.
    EXPECT_EQ(on[i].At("result_tuples").number,
              off[i].At("result_tuples").number);
    EXPECT_EQ(on[i].At("pages").number, off[i].At("pages").number);
    EXPECT_EQ(off[i].At("pages_identical").number, 0);
    EXPECT_TRUE(on[i].At("fast_path").boolean);
    EXPECT_FALSE(off[i].At("fast_path").boolean);
    if (on[i].At("pages_identical").number > 0) saw_identical = true;
  }
  EXPECT_TRUE(saw_identical);
}

}  // namespace
}  // namespace delex
