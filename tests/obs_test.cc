// Observability-layer tests: trace recorder (JSON well-formedness, span
// pairing/nesting per thread, pipeline span counts, zero-output guarantee
// when disabled), leveled logger (threshold, sink capture, CHECK routing),
// metrics registry, phase-drift accounting, and the versioned run report
// (schema fields, per-unit predicted-vs-actual columns, determinism of
// counters across thread counts and fast-path settings).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "obs/json_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace delex {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser — enough to validate trace files and run-report
// lines without external dependencies. Numbers are doubles; objects keep
// only the last value per key (duplicate keys are a test failure anyway).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return kind == kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue missing;
    auto it = object.find(key);
    return it != object.end() ? it->second : missing;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            *out += '?';  // tests never inspect non-ASCII content
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (ParseLiteral("true")) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return true;
    }
    if (ParseLiteral("false")) {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return true;
    }
    if (ParseLiteral("null")) {
      out->kind = JsonValue::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object[key] = std::move(value);
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&value)) << "invalid JSON: " << text;
  return value;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string FreshDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("delex-obs-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNesting) {
  obs::JsonWriter json;
  json.BeginObject()
      .KV("s", "a\"b\\c\nd\te")
      .KV("i", static_cast<int64_t>(-42))
      .KV("b", true)
      .KV("d", 1.5)
      .Key("arr")
      .BeginArray()
      .Value(1)
      .Value("two")
      .Null()
      .EndArray()
      .Key("nested")
      .BeginObject()
      .KV("x", static_cast<int64_t>(0))
      .EndObject()
      .EndObject();
  JsonValue parsed = MustParse(json.str());
  EXPECT_EQ(parsed.At("s").string, "a\"b\\c\nd\te");
  EXPECT_EQ(parsed.At("i").number, -42);
  EXPECT_TRUE(parsed.At("b").boolean);
  EXPECT_EQ(parsed.At("arr").array.size(), 3u);
  EXPECT_EQ(parsed.At("nested").At("x").number, 0);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter json;
  json.BeginObject()
      .KV("inf", std::numeric_limits<double>::infinity())
      .KV("nan", std::numeric_limits<double>::quiet_NaN())
      .EndObject();
  JsonValue parsed = MustParse(json.str());
  EXPECT_EQ(parsed.At("inf").kind, JsonValue::kNull);
  EXPECT_EQ(parsed.At("nan").kind, JsonValue::kNull);
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

std::vector<std::string>& CapturedLines() {
  static std::vector<std::string> lines;
  return lines;
}

void CaptureSink(obs::LogLevel, const std::string& line) {
  CapturedLines().push_back(line);
}

class LogCapture {
 public:
  LogCapture() {
    CapturedLines().clear();
    obs::SetLogSinkForTesting(&CaptureSink);
  }
  ~LogCapture() { obs::SetLogSinkForTesting(nullptr); }
};

TEST(LogTest, ThresholdFiltersAndOperandsNotEvaluated) {
  LogCapture capture;
  obs::LogLevel saved = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kWARN);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 7;
  };
  DELEX_LOG(DEBUG) << "hidden " << count();
  DELEX_LOG(INFO) << "hidden " << count();
  DELEX_LOG(WARN) << "visible " << count();
  DELEX_LOG(ERROR) << "visible " << count();
  obs::SetLogLevel(saved);
  EXPECT_EQ(evaluations, 2);
  ASSERT_EQ(CapturedLines().size(), 2u);
  EXPECT_NE(CapturedLines()[0].find("visible 7"), std::string::npos);
  EXPECT_EQ(CapturedLines()[0][0], 'W');
  EXPECT_EQ(CapturedLines()[1][0], 'E');
}

TEST(LogTest, LinePrefixCarriesFileAndThread) {
  LogCapture capture;
  obs::LogLevel saved = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kINFO);
  DELEX_LOG(INFO) << "marker";
  obs::SetLogLevel(saved);
  ASSERT_EQ(CapturedLines().size(), 1u);
  const std::string& line = CapturedLines()[0];
  EXPECT_NE(line.find("obs_test.cc:"), std::string::npos) << line;
  EXPECT_NE(line.find(" t"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(LogTest, CheckMacrosStillPass) {
  // DELEX_CHECK semantics preserved: passing checks are silent no-ops.
  LogCapture capture;
  DELEX_CHECK(true);
  DELEX_CHECK_EQ(2 + 2, 4);
  DELEX_CHECK_LE(1, 1);
  DELEX_CHECK_LT(1, 2);
  DELEX_CHECK_GE(2, 2);
  EXPECT_TRUE(CapturedLines().empty());
}

TEST(LogDeathTest, CheckFailureEmitsAndAborts) {
  EXPECT_DEATH({ DELEX_CHECK_MSG(1 == 2, "broken invariant"); },
               "CHECK failed.*broken invariant");
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersAccumulateAndSnapshotSorted) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Counter* b = registry.GetCounter("obs_test.b");
  obs::Counter* a = registry.GetCounter("obs_test.a");
  EXPECT_EQ(registry.GetCounter("obs_test.b"), b);  // stable identity
  a->Increment();
  b->Increment(41);
  b->Increment();
  EXPECT_EQ(a->value(), 1);
  EXPECT_EQ(b->value(), 42);
  auto snapshot = registry.Snapshot();
  std::map<std::string, int64_t> by_name(snapshot.begin(), snapshot.end());
  EXPECT_EQ(by_name["obs_test.a"], 1);
  EXPECT_EQ(by_name["obs_test.b"], 42);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
  registry.ResetAll();
  EXPECT_EQ(a->value(), 0);
  EXPECT_EQ(b->value(), 0);
}

// ---------------------------------------------------------------------------
// Phase drift
// ---------------------------------------------------------------------------

TEST(PhaseDriftTest, OvershootRecordedNotSilentlyClamped) {
  PhaseBreakdown phases;
  phases.match_us = 600;
  phases.extract_us = 500;
  phases.total_us = 1000;  // parallel shards summed past the wall clock
  phases.FinalizeDrift();
  EXPECT_EQ(phases.phase_drift_us, 100);
  EXPECT_EQ(phases.OthersUs(), 0);

  PhaseBreakdown under;
  under.match_us = 300;
  under.total_us = 1000;
  under.FinalizeDrift();
  EXPECT_EQ(under.phase_drift_us, 0);
  EXPECT_EQ(under.OthersUs(), 700);
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledRecorderBuffersAndWritesNothing) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  ASSERT_FALSE(recorder.started());
  recorder.ClearForTesting();
  {
    DELEX_TRACE_SPAN("dead_span", 1);
    DELEX_TRACE_SPAN("dead_span_2");
  }
  EXPECT_EQ(recorder.BufferedEventCount(), 0);
  EXPECT_FALSE(obs::TraceRecorder::enabled());
  // Stop without Start writes no file.
  EXPECT_TRUE(recorder.Stop().ok());
}

TEST(TraceTest, RecordsWellFormedChromeTraceJson) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.ClearForTesting();
  std::string path = TempPath("delex-obs-trace-basic.json");
  std::filesystem::remove(path);
  ASSERT_TRUE(recorder.Start(path).ok());
  // A second Start while recording is rejected (first session wins).
  EXPECT_FALSE(recorder.Start(TempPath("other.json")).ok());
  {
    DELEX_TRACE_SPAN("outer", 7);
    { DELEX_TRACE_SPAN("inner", 8, "io"); }
    { DELEX_TRACE_SPAN("inner", 9, "io"); }
  }
  ASSERT_TRUE(recorder.Stop().ok());

  JsonValue trace = MustParse(ReadFile(path));
  ASSERT_TRUE(trace.Has("traceEvents"));
  const auto& events = trace.At("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);
  int outer_seen = 0;
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.At("ph").string, "X");
    EXPECT_TRUE(event.Has("name"));
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("dur"));
    EXPECT_TRUE(event.Has("pid"));
    EXPECT_TRUE(event.Has("tid"));
    EXPECT_GE(event.At("dur").number, 0);
    if (event.At("name").string == "outer") {
      ++outer_seen;
      EXPECT_EQ(event.At("args").At("id").number, 7);
      EXPECT_EQ(event.At("cat").string, "delex");
    } else {
      EXPECT_EQ(event.At("cat").string, "io");
    }
  }
  EXPECT_EQ(outer_seen, 1);
  EXPECT_EQ(trace.At("otherData").At("dropped_events").number, 0);
  std::filesystem::remove(path);
}

TEST(TraceTest, SpansNestProperlyPerThread) {
  // Complete events from RAII spans on one thread must either nest or be
  // disjoint — a partial overlap would mean broken begin/end pairing.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.ClearForTesting();
  std::string path = TempPath("delex-obs-trace-nest.json");
  ASSERT_TRUE(recorder.Start(path).ok());

  ProgramSpec spec = []() {
    auto spec = MakeProgram("chair");
    EXPECT_TRUE(spec.ok());
    return std::move(spec).ValueOrDie();
  }();
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 6;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 77);
  DelexEngine::Options options;
  options.work_dir = FreshDir("trace-nest");
  options.num_threads = 2;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment st =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
  for (size_t i = 0; i < series.size(); ++i) {
    ASSERT_TRUE(engine
                    .RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                 st, nullptr)
                    .ok());
  }
  ASSERT_TRUE(recorder.Stop().ok());

  JsonValue trace = MustParse(ReadFile(path));
  std::map<double, std::vector<std::pair<double, double>>> by_tid;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    by_tid[event.At("tid").number].push_back(
        {event.At("ts").number,
         event.At("ts").number + event.At("dur").number});
  }
  EXPECT_GE(by_tid.size(), 1u);
  size_t total = 0;
  for (const auto& [tid, spans] : by_tid) {
    total += spans.size();
    for (size_t i = 0; i < spans.size(); ++i) {
      for (size_t j = i + 1; j < spans.size(); ++j) {
        auto [s1, e1] = spans[i];
        auto [s2, e2] = spans[j];
        bool disjoint = e1 <= s2 || e2 <= s1;
        bool nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
        EXPECT_TRUE(disjoint || nested)
            << "partial overlap on tid " << tid << ": [" << s1 << "," << e1
            << ") vs [" << s2 << "," << e2 << ")";
      }
    }
  }
  EXPECT_GT(total, 0u);
  std::filesystem::remove(path);
}

/// Counts events named `name` currently buffered in the recorder.
int64_t CountSpans(const char* name) {
  int64_t count = 0;
  for (const obs::TraceEvent& event :
       obs::TraceRecorder::Global().SnapshotEvents()) {
    if (std::string_view(event.name) == name) ++count;
  }
  return count;
}

TEST(TraceTest, EvalPageSpanCountMatchesNonIdenticalPages) {
  // The acceptance invariant: worker ("eval_page") spans == pages −
  // pages_identical, because the whole-page fast path bypasses EvalPage.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.ClearForTesting();
  std::string path = TempPath("delex-obs-trace-count.json");
  ASSERT_TRUE(recorder.Start(path).ok());

  ProgramSpec spec = []() {
    auto spec = MakeProgram("chair");
    EXPECT_TRUE(spec.ok());
    return std::move(spec).ValueOrDie();
  }();
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 8;
  profile.identical_fraction = 0.8;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 99);
  DelexEngine::Options options;
  options.work_dir = FreshDir("trace-count");
  options.num_threads = 2;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment ud =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kUD);

  int64_t total_pages = 0;
  int64_t total_identical = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    RunStats stats;
    ASSERT_TRUE(engine
                    .RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                 ud, &stats)
                    .ok());
    total_pages += stats.pages;
    total_identical += stats.pages_identical;
  }
  EXPECT_GT(total_identical, 0) << "corpus produced no identical pages";
  EXPECT_EQ(CountSpans("eval_page"), total_pages - total_identical);
  EXPECT_EQ(CountSpans("commit_page"), total_pages);
  EXPECT_EQ(CountSpans("run_snapshot"), static_cast<int64_t>(series.size()));
  ASSERT_TRUE(recorder.Stop().ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST(RunReportTest, LineCarriesSchemaPhasesAndOptimizer) {
  obs::MetricsRegistry::Global().ResetAll();
  obs::RunReportMeta meta;
  meta.solution = "Delex";
  meta.tag = "unit-test";
  meta.snapshot_index = 2;
  meta.warmup = false;
  meta.num_threads = 4;
  meta.fast_path_enabled = true;

  RunStats stats;
  stats.pages = 10;
  stats.pages_identical = 3;
  stats.result_tuples = 17;
  stats.units.resize(2);
  stats.units[0].match_us = 100;
  stats.units[0].extract_us = 200;
  stats.units[1].copy_us = 50;
  stats.phases.match_us = 100;
  stats.phases.extract_us = 200;
  stats.phases.copy_us = 50;
  stats.phases.total_us = 400;
  stats.phases.FinalizeDrift();

  obs::OptimizerReport optimizer;
  optimizer.has_optimizer = true;
  optimizer.unit_matchers = {"ST", "RU"};
  optimizer.predicted_unit_us = {123.5, 4.25};
  optimizer.predicted_total_us = 127.75;

  JsonValue line = MustParse(obs::RunReportLine(meta, stats, optimizer));
  EXPECT_EQ(line.At("schema_version").number, obs::kRunReportSchemaVersion);
  EXPECT_EQ(line.At("solution").string, "Delex");
  EXPECT_EQ(line.At("tag").string, "unit-test");
  EXPECT_EQ(line.At("threads").number, 4);
  EXPECT_TRUE(line.At("fast_path").boolean);
  EXPECT_EQ(line.At("pages_identical").number, 3);
  EXPECT_EQ(line.At("phases").At("others_us").number, 50);
  EXPECT_EQ(line.At("phases").At("phase_drift_us").number, 0);
  EXPECT_EQ(line.At("optimizer").At("assignment").string, "ST,RU");
  EXPECT_EQ(line.At("optimizer").At("predicted_total_us").number, 127.75);
  ASSERT_EQ(line.At("units").array.size(), 2u);
  const JsonValue& unit0 = line.At("units").array[0];
  EXPECT_EQ(unit0.At("matcher").string, "ST");
  EXPECT_EQ(unit0.At("predicted_us").number, 123.5);
  EXPECT_EQ(unit0.At("actual_us").number, 300);
  EXPECT_TRUE(line.Has("counters"));
}

TEST(RunReportTest, WriterAppendsOneParseableLinePerRun) {
  std::string path = TempPath("delex-obs-report.jsonl");
  std::filesystem::remove(path);
  obs::RunReportWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  obs::RunReportMeta meta;
  meta.solution = "No-reuse";
  RunStats stats;
  obs::OptimizerReport no_opt;
  ASSERT_TRUE(writer.Append(meta, stats, no_opt).ok());
  meta.snapshot_index = 2;
  ASSERT_TRUE(writer.Append(meta, stats, no_opt).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::ifstream file(path);
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    JsonValue parsed = MustParse(line);
    EXPECT_FALSE(parsed.Has("optimizer"));  // baseline: no plan chosen
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::filesystem::remove(path);
}

/// Runs the Delex solution over a small series with run reports on,
/// returning the parsed JSONL lines.
std::vector<JsonValue> ReportedSeries(int num_threads, bool fast_path,
                                      const std::string& tag) {
  std::string path = TempPath("delex-obs-series-" + tag + ".jsonl");
  std::filesystem::remove(path);
  SetStatsJsonPath(path);
  obs::MetricsRegistry::Global().ResetAll();

  ProgramSpec spec = []() {
    auto spec = MakeProgram("chair");
    EXPECT_TRUE(spec.ok());
    return std::move(spec).ValueOrDie();
  }();
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 8;
  profile.identical_fraction = 0.7;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 4242);

  DelexSolutionOptions options;
  options.num_threads = num_threads;
  options.disable_page_fast_path = !fast_path;
  auto delex = MakeDelexSolution(spec, FreshDir("series-" + tag), options);
  auto run = RunSeries(delex.get(), series, /*keep_results=*/false, tag);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  SetStatsJsonPath("");

  std::vector<JsonValue> lines;
  std::ifstream file(path);
  std::string line;
  while (std::getline(file, line)) lines.push_back(MustParse(line));
  std::filesystem::remove(path);
  return lines;
}

TEST(RunReportTest, SeriesReportsPredictedAndMeasuredPerUnit) {
  std::vector<JsonValue> lines = ReportedSeries(1, true, "pred");
  ASSERT_EQ(lines.size(), 3u);  // warm-up + 2 reported snapshots
  EXPECT_TRUE(lines[0].At("warmup").boolean);
  EXPECT_FALSE(lines[0].Has("optimizer"));  // no previous snapshot
  for (size_t i = 1; i < lines.size(); ++i) {
    const JsonValue& line = lines[i];
    EXPECT_FALSE(line.At("warmup").boolean);
    EXPECT_EQ(line.At("tag").string, "pred");
    ASSERT_TRUE(line.Has("optimizer"));
    EXPECT_FALSE(line.At("optimizer").At("assignment").string.empty());
    EXPECT_GE(line.At("optimizer").At("predicted_total_us").number, 0);
    ASSERT_GT(line.At("units").array.size(), 0u);
    for (const JsonValue& unit : line.At("units").array) {
      // The acceptance fields: chosen matcher, predicted cost, measured
      // match/extract/copy microseconds — present and finite on every unit.
      EXPECT_FALSE(unit.At("matcher").string.empty());
      ASSERT_TRUE(unit.Has("predicted_us"));
      EXPECT_NE(unit.At("predicted_us").kind, JsonValue::kNull);
      EXPECT_GE(unit.At("predicted_us").number, 0);
      EXPECT_GE(unit.At("match_us").number, 0);
      EXPECT_GE(unit.At("extract_us").number, 0);
      EXPECT_GE(unit.At("copy_us").number, 0);
      EXPECT_GE(unit.At("actual_us").number, 0);
    }
  }
}

/// Timing-independent projection of a report line, for determinism checks.
struct ReportFingerprint {
  double pages = 0;
  double identical = 0;
  double tuples = 0;
  std::vector<std::pair<double, double>> unit_tuples;  // (input, output)

  bool operator==(const ReportFingerprint& other) const = default;
};

ReportFingerprint Fingerprint(const JsonValue& line) {
  ReportFingerprint fp;
  fp.pages = line.At("pages").number;
  fp.identical = line.At("pages_identical").number;
  fp.tuples = line.At("result_tuples").number;
  for (const JsonValue& unit : line.At("units").array) {
    fp.unit_tuples.push_back(
        {unit.At("input_tuples").number, unit.At("output_tuples").number});
  }
  return fp;
}

TEST(RunReportTest, CountersDeterministicAcrossThreadCounts) {
  std::vector<JsonValue> t1 = ReportedSeries(1, true, "t1");
  std::vector<JsonValue> t2 = ReportedSeries(2, true, "t2");
  std::vector<JsonValue> t8 = ReportedSeries(8, true, "t8");
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    ReportFingerprint fp = Fingerprint(t1[i]);
    EXPECT_TRUE(fp == Fingerprint(t2[i])) << "snapshot " << i;
    EXPECT_TRUE(fp == Fingerprint(t8[i])) << "snapshot " << i;
    EXPECT_EQ(t1[i].At("threads").number, 1);
    EXPECT_EQ(t2[i].At("threads").number, 2);
    EXPECT_EQ(t8[i].At("threads").number, 8);
  }
}

TEST(RunReportTest, ResultCountersMatchAcrossFastPathSettings) {
  std::vector<JsonValue> on = ReportedSeries(1, true, "fp-on");
  std::vector<JsonValue> off = ReportedSeries(1, false, "fp-off");
  ASSERT_EQ(on.size(), off.size());
  bool saw_identical = false;
  for (size_t i = 0; i < on.size(); ++i) {
    // Result counts agree; the fast path only changes who does the work.
    EXPECT_EQ(on[i].At("result_tuples").number,
              off[i].At("result_tuples").number);
    EXPECT_EQ(on[i].At("pages").number, off[i].At("pages").number);
    EXPECT_EQ(off[i].At("pages_identical").number, 0);
    EXPECT_TRUE(on[i].At("fast_path").boolean);
    EXPECT_FALSE(off[i].At("fast_path").boolean);
    if (on[i].At("pages_identical").number > 0) saw_identical = true;
  }
  EXPECT_TRUE(saw_identical);
}

}  // namespace
}  // namespace delex
