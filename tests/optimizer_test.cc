// Tests for the optimizer: chain structure, cost-model behaviour
// (formulas (1)-(4)), Algorithm 1's restricted plan space and greedy
// search, exhaustive enumeration, and statistics collection/averaging.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>

#include "harness/experiment.h"
#include "harness/programs.h"
#include "optimizer/optimizer.h"
#include "optimizer/search.h"
#include "optimizer/stats_collector.h"

namespace delex {
namespace {

/// A hand-built CostModelStats for a linear 3-unit chain where matching
/// pays off: exact/ST find most overlap, extraction is expensive.
CostModelStats SyntheticStats(size_t units, double f) {
  CostModelStats stats;
  stats.f = f;
  stats.m = 1000;
  stats.d_blocks = 2000;
  stats.units.resize(units);
  for (UnitCostStats& u : stats.units) {
    u.a = 20;
    u.l = 400;
    u.extract_us_per_char = 0.5;
    u.b_blocks = 10;
    u.c_blocks = 15;
    // DN: only exact matches help a bit.
    u.g[MatcherIndex(MatcherKind::kDN)] = 0.8;
    u.h[MatcherIndex(MatcherKind::kDN)] = 0.2;
    u.s[MatcherIndex(MatcherKind::kDN)] = 0;
    // UD: cheap, finds most overlap.
    u.match_us_per_char[MatcherIndex(MatcherKind::kUD)] = 0.01;
    u.g[MatcherIndex(MatcherKind::kUD)] = 0.2;
    u.h[MatcherIndex(MatcherKind::kUD)] = 1.5;
    u.s[MatcherIndex(MatcherKind::kUD)] = 1;
    // ST: pricier, finds slightly more.
    u.match_us_per_char[MatcherIndex(MatcherKind::kST)] = 0.12;
    u.g[MatcherIndex(MatcherKind::kST)] = 0.15;
    u.h[MatcherIndex(MatcherKind::kST)] = 1.8;
    u.s[MatcherIndex(MatcherKind::kST)] = 1;
    // RU selectivities resolve through the source at costing time.
    u.g[MatcherIndex(MatcherKind::kRU)] = 1.0;
  }
  return stats;
}

ChainStructure LinearChains(const ProgramSpec& spec) {
  auto analysis = AnalyzeUnits(spec.plan);
  EXPECT_TRUE(analysis.ok());
  return ChainStructure::Build(spec.plan, *analysis);
}

TEST(ChainStructureTest, PlayHasRawInputOnlyAtBottomUnit) {
  ProgramSpec spec = *MakeProgram("play");
  ChainStructure chains = LinearChains(spec);
  int raw_count = 0;
  for (bool raw : chains.raw_input) raw_count += raw ? 1 : 0;
  EXPECT_EQ(raw_count, 1);  // only the paragraph unit reads the document
  EXPECT_EQ(chains.chains.size(), 2u);
}

TEST(CostModel, ExtractionDominatesWhenNothingMatches) {
  CostModelStats stats = SyntheticStats(1, 0.9);
  double dn = EstimateUnitCost(stats, 0, MatcherKind::kDN, false);
  double ud = EstimateUnitCost(stats, 0, MatcherKind::kUD, false);
  // With g[UD] far below g[DN], UD should win despite its matching cost.
  EXPECT_LT(ud, dn);
}

TEST(CostModel, NoPreviousVersionsMeansMatchersCannotHelp) {
  CostModelStats stats = SyntheticStats(1, 0.0);  // f = 0
  double dn = EstimateUnitCost(stats, 0, MatcherKind::kDN, false);
  double ud = EstimateUnitCost(stats, 0, MatcherKind::kUD, false);
  double st = EstimateUnitCost(stats, 0, MatcherKind::kST, false);
  // All pay full extraction; DN is cheapest (no match I/O at all).
  EXPECT_LE(dn, ud);
  EXPECT_LE(dn, st);
}

TEST(CostModel, RuPricingDropsMatchCost) {
  CostModelStats stats = SyntheticStats(1, 0.9);
  double st_real = EstimateUnitCost(stats, 0, MatcherKind::kST, false);
  double st_ru = EstimateUnitCost(stats, 0, MatcherKind::kST, true);
  EXPECT_LT(st_ru, st_real);
}

TEST(CostModel, MonotoneInLeftoverFraction) {
  CostModelStats stats = SyntheticStats(1, 0.9);
  double cheap = EstimateUnitCost(stats, 0, MatcherKind::kUD, false);
  stats.units[0].g[MatcherIndex(MatcherKind::kUD)] = 0.9;
  double expensive = EstimateUnitCost(stats, 0, MatcherKind::kUD, false);
  EXPECT_LT(cheap, expensive);
}

TEST(PlanCost, RuResolvesToChainSourceBelow) {
  ProgramSpec spec = *MakeProgram("play");
  ChainStructure chains = LinearChains(spec);
  CostModelStats stats = SyntheticStats(4, 0.9);

  // Bottom unit ST, everything above RU: the RU units are priced at their
  // ST selectivity without matching cost — cheaper than all-DN.
  MatcherAssignment layered = MatcherAssignment::Uniform(4, MatcherKind::kRU);
  // Find the bottom (raw-input) unit.
  for (size_t u = 0; u < 4; ++u) {
    if (chains.raw_input[u]) layered.per_unit[u] = MatcherKind::kST;
  }
  MatcherAssignment all_dn = MatcherAssignment::Uniform(4, MatcherKind::kDN);
  EXPECT_LT(EstimatePlanCost(stats, chains, layered),
            EstimatePlanCost(stats, chains, all_dn));

  // RU with no source anywhere degrades to DN pricing.
  MatcherAssignment all_ru = MatcherAssignment::Uniform(4, MatcherKind::kRU);
  EXPECT_DOUBLE_EQ(EstimatePlanCost(stats, chains, all_ru),
                   EstimatePlanCost(stats, chains, all_dn));
}

TEST(PlanSearch, EnumerationCoversFullSpace) {
  ProgramSpec spec = *MakeProgram("play");
  ChainStructure chains = LinearChains(spec);
  CostModelStats stats = SyntheticStats(4, 0.5);
  PlanSearch search(stats, chains);
  std::vector<MatcherAssignment> all = search.EnumerateAll();
  EXPECT_EQ(all.size(), 256u);
  std::set<std::string> unique;
  for (const MatcherAssignment& a : all) unique.insert(a.ToString());
  EXPECT_EQ(unique.size(), 256u);
}

TEST(PlanSearch, GreedyRespectsRestrictedSpace) {
  // Algorithm 1 plans use at most one ST/UD per chain, RU only above it.
  for (const std::string& name : {"play", "chair", "advise", "award"}) {
    ProgramSpec spec = *MakeProgram(name);
    auto analysis = AnalyzeUnits(spec.plan);
    ASSERT_TRUE(analysis.ok());
    ChainStructure chains = ChainStructure::Build(spec.plan, *analysis);
    CostModelStats stats = SyntheticStats(analysis->units.size(), 0.9);
    PlanSearch search(stats, chains);
    MatcherAssignment plan = search.Greedy();

    for (const IEChain& chain : chains.chains) {
      int expensive = 0;
      bool seen_expensive_from_bottom = false;
      for (size_t pos = chain.units.size(); pos-- > 0;) {
        MatcherKind kind =
            plan.per_unit[static_cast<size_t>(chain.units[pos])];
        if (kind == MatcherKind::kST || kind == MatcherKind::kUD) {
          ++expensive;
          seen_expensive_from_bottom = true;
        }
        if (kind == MatcherKind::kRU && !seen_expensive_from_bottom) {
          // RU below any expensive matcher in its own chain must have a
          // cross-chain source.
          bool cross = false;
          for (const IEChain& other : chains.chains) {
            int bottom = other.units.back();
            MatcherKind bk = plan.per_unit[static_cast<size_t>(bottom)];
            if (chains.raw_input[static_cast<size_t>(bottom)] &&
                (bk == MatcherKind::kST || bk == MatcherKind::kUD)) {
              cross = true;
            }
          }
          EXPECT_TRUE(cross) << name << ": plan " << plan.ToString();
        }
      }
      EXPECT_LE(expensive, 1) << name << ": plan " << plan.ToString();
    }
  }
}

TEST(PlanSearch, GreedyChoosesDnWhenNoOverlapExists) {
  ProgramSpec spec = *MakeProgram("play");
  ChainStructure chains = LinearChains(spec);
  CostModelStats stats = SyntheticStats(4, 0.0);  // no previous versions
  PlanSearch search(stats, chains);
  MatcherAssignment plan = search.Greedy();
  for (MatcherKind kind : plan.per_unit) {
    EXPECT_TRUE(kind == MatcherKind::kDN || kind == MatcherKind::kRU)
        << plan.ToString();
  }
}

TEST(PlanSearch, GreedyNeverWorseThanAllDnByItsOwnModel) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    ProgramSpec spec = *MakeProgram("award");
    auto analysis = AnalyzeUnits(spec.plan);
    ASSERT_TRUE(analysis.ok());
    ChainStructure chains = ChainStructure::Build(spec.plan, *analysis);
    CostModelStats stats =
        SyntheticStats(analysis->units.size(), 0.3 + 0.2 * seed);
    PlanSearch search(stats, chains);
    double greedy_cost = 0;
    search.Greedy(&greedy_cost);
    double dn_cost = search.Cost(
        MatcherAssignment::Uniform(analysis->units.size(), MatcherKind::kDN));
    EXPECT_LE(greedy_cost, dn_cost + 1e-9);
  }
}

TEST(StatsCollector, MeasuresPlausibleParameters) {
  // chair runs on the DBLife profile (97% identical pages), so trial
  // matching should find most overlap.
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 20;
  std::vector<Snapshot> series = GenerateSeries(profile, 2, 9);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  StatsCollectorOptions options;
  options.sample_pages = 8;
  auto stats = CollectStats(spec.plan, *analysis, series[1], series[0],
                            options, 1);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NEAR(stats->f, 1.0, 0.1);  // no churn in two snapshots at rate .003
  EXPECT_EQ(stats->m, 20);
  ASSERT_EQ(stats->units.size(), 3u);
  const UnitCostStats& para = stats->units[0];
  EXPECT_GT(para.a, 0);
  EXPECT_GT(para.l, 0);
  EXPECT_GT(para.extract_us_per_char, 0);
  for (MatcherKind kind : {MatcherKind::kUD, MatcherKind::kST}) {
    double g = para.g[MatcherIndex(kind)];
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
  // On a mostly-identical corpus, matchers should find most content.
  EXPECT_LT(para.g[MatcherIndex(MatcherKind::kST)], 0.5);
}

TEST(StatsCollector, AverageIsElementwiseMean) {
  CostModelStats a = SyntheticStats(1, 0.4);
  CostModelStats b = SyntheticStats(1, 0.8);
  b.units[0].a = 40;
  CostModelStats avg = AverageStats({a, b});
  EXPECT_DOUBLE_EQ(avg.f, 0.6);
  EXPECT_DOUBLE_EQ(avg.units[0].a, 30);
}

TEST(Optimizer, EndToEndChoosesReusefulPlanOnStableCorpus) {
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 40;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 17);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  Optimizer optimizer(spec.plan, *analysis);
  EXPECT_FALSE(optimizer.ChooseAssignment().ok());  // no stats yet
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[1], series[0], 1).ok());
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[2], series[1], 2).ok());
  auto assignment = optimizer.ChooseAssignment();
  ASSERT_TRUE(assignment.ok());
  // On a 97%-identical corpus the chosen plan must exploit reuse somehow —
  // all-DN still benefits from the exact fast path, but the estimate for a
  // reuseful plan should not exceed the all-DN estimate.
  auto chosen_cost = optimizer.EstimateCost(*assignment);
  auto dn_cost = optimizer.EstimateCost(
      MatcherAssignment::Uniform(analysis->units.size(), MatcherKind::kDN));
  ASSERT_TRUE(chosen_cost.ok());
  ASSERT_TRUE(dn_cost.ok());
  EXPECT_LE(*chosen_cost, *dn_cost + 1e-9);
}

TEST(Optimizer, ChooseAssignmentRecordsDecisionAudit) {
  ::unsetenv("DELEX_DECISION_AUDIT");  // default-on
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 40;
  std::vector<Snapshot> series = GenerateSeries(profile, 2, 21);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  Optimizer optimizer(spec.plan, *analysis);
  EXPECT_FALSE(optimizer.LastAudit().valid);  // no choice made yet
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[1], series[0], 1).ok());
  auto assignment = optimizer.ChooseAssignment();
  ASSERT_TRUE(assignment.ok());

  const Optimizer::DecisionAudit& audit = optimizer.LastAudit();
  ASSERT_TRUE(audit.valid);
  ASSERT_EQ(audit.units.size(), assignment->per_unit.size());
  EXPECT_GT(audit.m, 0);
  EXPECT_GE(audit.f, 0);
  EXPECT_EQ(audit.history_window, 1);  // one observed snapshot pair

  // The audit's chosen plan cost is the cost model's own estimate.
  auto chosen_cost = optimizer.EstimateCost(*assignment);
  ASSERT_TRUE(chosen_cost.ok());
  EXPECT_NEAR(audit.chosen_plan_us, *chosen_cost,
              1e-6 * std::max(1.0, *chosen_cost));

  for (size_t u = 0; u < audit.units.size(); ++u) {
    const Optimizer::DecisionAudit::Unit& unit = audit.units[u];
    // The winner column matches the assignment actually returned, and its
    // candidate entry equals the chosen whole-plan cost.
    EXPECT_EQ(unit.winner, assignment->per_unit[u]) << "unit " << u;
    EXPECT_NEAR(unit.candidate_plan_us[MatcherIndex(unit.winner)],
                audit.chosen_plan_us, 1e-6 * std::max(1.0, *chosen_cost));
    // Every candidate was priced, the runner-up differs from the winner,
    // and the margin is exactly runner-up − winner.
    EXPECT_NE(unit.runner_up, unit.winner);
    double best_alt = -1;
    for (MatcherKind kind : kAllMatcherKinds) {
      double cost = unit.candidate_plan_us[MatcherIndex(kind)];
      EXPECT_GE(cost, 0) << "unpriced candidate for unit " << u;
      if (kind == unit.winner) continue;
      if (best_alt < 0 || cost < best_alt) best_alt = cost;
    }
    EXPECT_NEAR(unit.margin_us,
                best_alt - unit.candidate_plan_us[MatcherIndex(unit.winner)],
                1e-6 * std::max(1.0, best_alt));
    // Statistics inputs were captured from the averaged stats.
    EXPECT_GT(unit.l, 0);
    EXPECT_GE(unit.a, 0);
  }
}

TEST(Optimizer, DecisionAuditDisabledByEnv) {
  ::setenv("DELEX_DECISION_AUDIT", "0", 1);
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 30;
  std::vector<Snapshot> series = GenerateSeries(profile, 2, 27);
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  Optimizer optimizer(spec.plan, *analysis);
  ASSERT_TRUE(optimizer.ObserveSnapshotPair(series[1], series[0], 1).ok());
  auto assignment = optimizer.ChooseAssignment();
  ::unsetenv("DELEX_DECISION_AUDIT");
  ASSERT_TRUE(assignment.ok());
  EXPECT_FALSE(optimizer.LastAudit().valid);  // audit skipped, choice kept
  EXPECT_FALSE(assignment->per_unit.empty());
}

}  // namespace
}  // namespace delex
