// DELEX_PARANOID deep checkers: real engine runs must sail through every
// phase-boundary invariant check, the differential oracle must find
// serial == parallel == fast-path-off on real series, and each checker
// must actually fire (abort) on a violated invariant — a checker that
// never fires is worse than none, it certifies garbage.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "delex/engine.h"
#include "delex/paranoid.h"
#include "delex/region_derivation.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "matcher/matcher.h"
#include "shard/sharded_engine.h"
#include "storage/reuse_file.h"

namespace delex {
namespace {

// Flip the deep checks on for this whole test binary, before anything can
// latch paranoid::Enabled()'s once-per-process cache. Runtime env beats
// the compile-time default, so this holds in every build mode.
const bool kParanoidEnv = [] {
  setenv("DELEX_PARANOID", "1", /*overwrite=*/1);
  return true;
}();

std::string FreshDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("delex-paranoid-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ParanoidTest, EnvVarEnablesChecks) {
  ASSERT_TRUE(kParanoidEnv);
  EXPECT_TRUE(paranoid::Enabled());
}

// End-to-end: every paranoid hook in the engine (matcher postconditions,
// derivation checks, copied-mention bounds, reuse ordinals, raw-slice
// re-validation) runs on real evolving data without firing.
TEST(ParanoidTest, EngineRunsCleanUnderDeepChecks) {
  ASSERT_TRUE(paranoid::Enabled());
  for (const char* name : {"talk", "blockbuster"}) {
    auto program = MakeProgram(name);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    DatasetProfile profile = program->Profile();
    profile.num_sources = 8;
    std::vector<Snapshot> series = GenerateSeries(profile, 3, /*seed=*/7);

    DelexEngine::Options options;
    options.work_dir = FreshDir(std::string("engine-") + name);
    DelexEngine engine(program->plan, options);
    ASSERT_TRUE(engine.Init().ok());
    const MatcherAssignment st =
        MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
    for (size_t i = 0; i < series.size(); ++i) {
      auto rows = engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                     st, nullptr);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    }
  }
}

TEST(ParanoidTest, DifferentialOracleAcceptsRealSeries) {
  auto program = MakeProgram("talk");
  ASSERT_TRUE(program.ok());
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 6;
  std::vector<Snapshot> series = GenerateSeries(profile, 2, /*seed=*/21);
  // The oracle builds its own engines; it only needs a full-width
  // assignment, so probe the unit count once up front.
  DelexEngine::Options probe_options;
  probe_options.work_dir = FreshDir("oracle-probe");
  DelexEngine probe(program->plan, probe_options);
  ASSERT_TRUE(probe.Init().ok());
  const MatcherAssignment full =
      MatcherAssignment::Uniform(probe.NumUnits(), MatcherKind::kST);

  Status verdict = paranoid::DifferentialOracle(
      program->plan, series, full, FreshDir("oracle"));
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST(ParanoidTest, ShardedDifferentialOracleAcceptsRealSeries) {
  // The sharded==unsharded leg: 2- and 3-shard runs on a shared pool must
  // be byte-identical (exact row order, not set-equal) to the serial
  // unsharded engine across the series.
  auto program = MakeProgram("chair");
  ASSERT_TRUE(program.ok());
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 8;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, /*seed=*/33);
  DelexEngine::Options probe_options;
  probe_options.work_dir = FreshDir("shard-oracle-probe");
  DelexEngine probe(program->plan, probe_options);
  ASSERT_TRUE(probe.Init().ok());
  const MatcherAssignment full =
      MatcherAssignment::Uniform(probe.NumUnits(), MatcherKind::kST);

  Status verdict = shard::ShardedDifferentialOracle(
      program->plan, series, full, FreshDir("shard-oracle"));
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST(ParanoidTest, CheckSegmentsAcceptsMatcherOutput) {
  // Multi-line (UD diffs whole lines) and with long common runs (ST only
  // reports common substrings >= its minimum match length).
  const std::string q =
      "alpha beta gamma delta epsilon zeta eta theta iota kappa\n"
      "serge abiteboul gives a talk at stanford on friday afternoon\n"
      "nu xi omicron pi rho sigma tau upsilon phi chi psi omega\n";
  std::string p = q;
  p.insert(q.find("serge"), "INSERTED SENTENCE GOES HERE\n");
  const TextSpan p_region(0, static_cast<int64_t>(p.size()));
  const TextSpan q_region(0, static_cast<int64_t>(q.size()));
  for (MatcherKind kind : {MatcherKind::kUD, MatcherKind::kST}) {
    std::vector<MatchSegment> segments =
        GetMatcher(kind).Match(p, p_region, q, q_region, nullptr);
    ASSERT_FALSE(segments.empty());
    paranoid::CheckSegments(p, p_region, q, q_region, segments);  // no abort
  }
}

TEST(ParanoidDeathTest, CheckSegmentsFiresOnMismatchedBytes) {
  const std::string p = "aaaa bbbb";
  const std::string q = "cccc dddd";
  std::vector<MatchSegment> lie = {MatchSegment(TextSpan(0, 4), TextSpan(0, 4))};
  EXPECT_DEATH(paranoid::CheckSegments(p, TextSpan(0, 9), q, TextSpan(0, 9),
                                       lie),
               "segment bytes differ");
}

TEST(ParanoidDeathTest, CheckSegmentsFiresOnEscapedSegment) {
  const std::string p = "aaaa bbbb";
  const std::string q = "aaaa bbbb";
  std::vector<MatchSegment> out_of_region = {
      MatchSegment(TextSpan(5, 9), TextSpan(5, 9))};
  EXPECT_DEATH(paranoid::CheckSegments(p, TextSpan(0, 4), q, TextSpan(0, 9),
                                       out_of_region),
               "escapes p region");
}

TEST(ParanoidTest, CheckDerivationAcceptsDerivedRegions) {
  const std::string q =
      "one two three four five six seven eight nine ten eleven twelve\n"
      "thirteen fourteen fifteen sixteen seventeen eighteen nineteen\n"
      "twentyone twentytwo twentythree twentyfour twentyfive twentysix\n";
  std::string p = q;
  p.erase(8, 6);  // drop "three "
  const TextSpan p_region(0, static_cast<int64_t>(p.size()));
  const TextSpan q_region(0, static_cast<int64_t>(q.size()));
  std::vector<MatchSegment> segments =
      GetMatcher(MatcherKind::kST).Match(p, p_region, q, q_region, nullptr);
  std::vector<TaggedSegment> tagged;
  for (const MatchSegment& seg : segments) tagged.push_back({seg, q_region, 0});
  RegionDerivation derivation =
      DeriveRegionsTagged(p_region, std::move(tagged), /*alpha=*/4, /*beta=*/2);
  paranoid::CheckDerivation(derivation, p_region);  // no abort
}

TEST(ParanoidDeathTest, CheckDerivationFiresOnOverlappingInteriors) {
  RegionDerivation bogus;
  CopyRegion a;
  a.p_interior = TextSpan(0, 10);
  a.q_interior = TextSpan(0, 10);
  CopyRegion b;
  b.p_interior = TextSpan(5, 15);  // overlaps a
  b.q_interior = TextSpan(5, 15);
  bogus.copy_regions = {a, b};
  EXPECT_DEATH(paranoid::CheckDerivation(bogus, TextSpan(0, 20)),
               "overlap or regress");
}

TEST(ParanoidDeathTest, CheckCopiedMentionFiresOnEscapedEnvelope) {
  CopyRegion copy;
  copy.p_interior = TextSpan(10, 20);
  copy.q_interior = TextSpan(10, 20);
  Tuple relocated;
  relocated.push_back(TextSpan(18, 25));  // pokes past the interior
  EXPECT_DEATH(paranoid::CheckCopiedMention(copy, relocated, TextSpan(0, 30)),
               "escapes its safe interior");
}

TEST(ParanoidTest, CheckPageGroupOrdinalsAcceptsDecodedGroups) {
  std::vector<InputTupleRec> inputs(2);
  inputs[0].tid = 0;
  inputs[0].did = 5;
  inputs[1].tid = 1;
  inputs[1].did = 5;
  std::vector<OutputTupleRec> outputs(1);
  outputs[0].itid = 1;
  outputs[0].did = 5;
  paranoid::CheckPageGroupOrdinals(5, inputs, outputs);  // no abort
}

TEST(ParanoidDeathTest, CheckPageGroupOrdinalsFiresOnOrphanedOutput) {
  std::vector<InputTupleRec> inputs(1);
  inputs[0].tid = 0;
  inputs[0].did = 5;
  std::vector<OutputTupleRec> outputs(1);
  outputs[0].itid = 3;  // no such input
  outputs[0].did = 5;
  EXPECT_DEATH(paranoid::CheckPageGroupOrdinals(5, inputs, outputs),
               "names no input");
}

TEST(ParanoidDeathTest, CheckRawSliceFiresOnUndecodableBytes) {
  RawPageSlice garbage;
  garbage.in_bytes = "\x08\x00\x00\x00\x00\x00\x00\x00nonsense";
  garbage.n_inputs = 1;
  EXPECT_DEATH(paranoid::CheckRawSlice(garbage), "raw slice");
}

}  // namespace
}  // namespace delex
