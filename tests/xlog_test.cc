// Tests for the xlog layer: lexer/parser, builtin predicates, translation
// into execution trees, and the from-scratch interpreter.

#include <gtest/gtest.h>

#include "extract/dictionary_extractor.h"
#include "extract/registry.h"
#include "extract/segment_extractor.h"
#include "xlog/builtins.h"
#include "xlog/parser.h"
#include "xlog/plan.h"
#include "xlog/translate.h"

namespace delex {
namespace xlog {
namespace {

// ---------------------------------------------------------------------------
// Parser

TEST(Parser, ParsesRulesTermsAndComments) {
  auto program = ParseProgram(R"(
    # a comment
    titles(d, t) :- docs(d), extractTitle(d, t).
    % another comment style
    good(t) :- titles(d, t), containsStr(t, "relevance feedback"),
               within(t, t, 100).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 2u);
  EXPECT_EQ(program->rules[0].head.predicate, "titles");
  EXPECT_EQ(program->rules[0].body.size(), 2u);
  EXPECT_EQ(program->TargetPredicate(), "good");

  const Atom& contains = program->rules[1].body[1];
  EXPECT_EQ(contains.predicate, "containsStr");
  EXPECT_EQ(contains.args[1].kind, Term::Kind::kString);
  EXPECT_EQ(contains.args[1].text, "relevance feedback");

  const Atom& within = program->rules[1].body[2];
  EXPECT_EQ(within.args[2].kind, Term::Kind::kInt);
  EXPECT_EQ(within.args[2].int_value, 100);
}

TEST(Parser, NegativeIntegerLiterals) {
  auto program = ParseProgram("p(x) :- docs(x), within(x, x, -5).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules[0].body[1].args[2].int_value, -5);
}

struct BadSource {
  std::string name;
  std::string source;
};

class ParserErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserErrors, RejectedWithInvalidArgument) {
  auto program = ParseProgram(GetParam().source);
  EXPECT_FALSE(program.ok());
  EXPECT_TRUE(program.status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadSource{"empty", "   # nothing\n"},
        BadSource{"missing_period", "p(x) :- docs(x)"},
        BadSource{"missing_implies", "p(x) docs(x)."},
        BadSource{"unterminated_string", "p(x) :- q(x, \"abc)."},
        BadSource{"missing_paren", "p(x :- docs(x)."},
        BadSource{"bare_colon", "p(x) : docs(x)."}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Builtins

TEST(Builtins, LookupAndArity) {
  EXPECT_TRUE(IsBuiltin("immBefore"));
  EXPECT_TRUE(IsBuiltin("within"));
  EXPECT_FALSE(IsBuiltin("extractTitle"));
  EXPECT_EQ(BuiltinArity(BuiltinPred::kWithin), 3);
  EXPECT_EQ(BuiltinArity(BuiltinPred::kBefore), 2);
}

TEST(Builtins, SpanPredicateSemantics) {
  std::string page = "irrelevant";
  auto eval = [&](BuiltinPred pred, std::vector<Value> args) {
    auto result = EvalBuiltin(pred, args, page);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  EXPECT_TRUE(eval(BuiltinPred::kBefore, {TextSpan(0, 3), TextSpan(3, 6)}));
  EXPECT_FALSE(eval(BuiltinPred::kBefore, {TextSpan(0, 4), TextSpan(3, 6)}));
  EXPECT_TRUE(eval(BuiltinPred::kImmBefore, {TextSpan(0, 3), TextSpan(4, 6)}));
  EXPECT_FALSE(eval(BuiltinPred::kImmBefore, {TextSpan(0, 3), TextSpan(9, 12)}));
  EXPECT_TRUE(eval(BuiltinPred::kWithin,
                   {TextSpan(0, 3), TextSpan(5, 9), int64_t{10}}));
  EXPECT_FALSE(eval(BuiltinPred::kWithin,
                    {TextSpan(0, 3), TextSpan(5, 9), int64_t{9}}));
  EXPECT_TRUE(eval(BuiltinPred::kContains, {TextSpan(0, 10), TextSpan(2, 5)}));
  EXPECT_FALSE(eval(BuiltinPred::kContains, {TextSpan(2, 5), TextSpan(0, 10)}));
  EXPECT_TRUE(eval(BuiltinPred::kSameSpan, {TextSpan(1, 2), TextSpan(1, 2)}));
}

TEST(Builtins, ContainsStrReadsPageText) {
  std::string page = "the relevance feedback papers";
  auto yes = EvalBuiltin(BuiltinPred::kContainsStr,
                         {TextSpan(0, 29), std::string("relevance feedback")},
                         page);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = EvalBuiltin(BuiltinPred::kContainsStr,
                        {TextSpan(0, 3), std::string("relevance")}, page);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(Builtins, TypeErrorsReported) {
  auto bad = EvalBuiltin(BuiltinPred::kBefore,
                         {Value(int64_t{1}), Value(TextSpan(0, 1))}, "");
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------------
// Translation + execution

ExtractorRegistry TestRegistry() {
  ExtractorRegistry registry;
  SegmentOptions seg;
  seg.delimiter = "\n";
  seg.work_per_char = 0;
  registry.Register(std::make_shared<SegmentExtractor>("extractLine", seg));
  DictionaryOptions dict;
  dict.work_per_char = 0;
  registry.Register(std::make_shared<DictionaryExtractor>(
      "extractName", std::vector<std::string>{"Ann", "Bob"}, dict));
  registry.Register(std::make_shared<DictionaryExtractor>(
      "extractConf", std::vector<std::string>{"SIGMOD", "VLDB"}, dict));
  return registry;
}

TEST(Translate, LinearRuleBuildsChainPlan) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram(
      "r(n) :- docs(d), extractLine(d, l), extractName(l, n).");
  ASSERT_TRUE(program.ok());
  auto plan = TranslateProgram(*program, registry);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind, PlanKind::kProject);
  EXPECT_EQ((*plan)->schema, std::vector<std::string>{"n"});
  EXPECT_EQ(CountIENodes(**plan), 2);
}

TEST(Translate, IntensionalAtomsJoinOnSharedVars) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram(R"(
    names(d, n) :- docs(d), extractName(d, n).
    confs(d, c) :- docs(d), extractConf(d, c).
    pairs(n, c) :- names(d, n), confs(d, c), before(n, c).
  )");
  ASSERT_TRUE(program.ok());
  auto plan = TranslateProgram(*program, registry);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // π over σ over a join of the two subplans.
  bool has_join = false;
  std::vector<PlanNodePtr> nodes;
  CollectPostOrder(*plan, &nodes);
  for (const auto& node : nodes) has_join |= node->kind == PlanKind::kJoin;
  EXPECT_TRUE(has_join);
}

struct TranslateError {
  std::string name;
  std::string source;
};

class TranslateErrors : public ::testing::TestWithParam<TranslateError> {};

TEST_P(TranslateErrors, Rejected) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram(GetParam().source);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(TranslateProgram(*program, registry).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TranslateErrors,
    ::testing::Values(
        TranslateError{"unknown_atom", "p(x) :- docs(d), mystery(d, x)."},
        TranslateError{"unbound_ie_input", "p(x) :- docs(d), extractName(q, x)."},
        TranslateError{"rebound_ie_output",
                       "p(d) :- docs(d), extractName(d, d)."},
        TranslateError{"unbound_head_var", "p(z) :- docs(d), extractName(d, x)."},
        TranslateError{"unbound_builtin_arg",
                       "p(x) :- docs(d), extractName(d, x), before(x, y)."},
        TranslateError{"recursion", "p(x) :- p(x), docs(x)."},
        TranslateError{"wrong_ie_arity",
                       "p(x) :- docs(d), extractName(d, x, x2)."},
        TranslateError{"docs_not_first",
                       "p(x) :- docs(d), extractName(d, x), docs(e)."}),
    [](const auto& info) { return info.param.name; });

TEST(Execute, EndToEndExtractionWithSelection) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram(R"(
    r(n, c) :- docs(d), extractLine(d, line), containsStr(line, "chairs"),
               extractName(line, n), extractConf(line, c), before(n, c).
  )");
  ASSERT_TRUE(program.ok());
  auto plan = TranslateProgram(*program, registry);
  ASSERT_TRUE(plan.ok());

  Page page;
  page.did = 0;
  page.content =
      "Ann chairs SIGMOD\n"
      "Bob attends VLDB\n"
      "VLDB chairs Bob mention\n";
  auto rows = ExecutePlan(**plan, page);
  ASSERT_TRUE(rows.ok());
  // Line 1: Ann before SIGMOD, has "chairs" -> kept.
  // Line 2: no "chairs" -> filtered.
  // Line 3: has "chairs" but Bob is after VLDB -> before() fails.
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<TextSpan>((*rows)[0][0]), TextSpan(0, 3));
  EXPECT_EQ(std::get<TextSpan>((*rows)[0][1]), TextSpan(11, 17));
}

TEST(Execute, JoinCombinesBranches) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram(R"(
    names(d, n) :- docs(d), extractName(d, n).
    confs(d, c) :- docs(d), extractConf(d, c).
    r(n, c) :- names(d, n), confs(d, c).
  )");
  ASSERT_TRUE(program.ok());
  auto plan = TranslateProgram(*program, registry);
  ASSERT_TRUE(plan.ok());
  Page page;
  page.content = "Ann Bob SIGMOD VLDB";
  auto rows = ExecutePlan(**plan, page);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 2 names x 2 confs
}

TEST(Execute, SnapshotExecutionPrefixesDid) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram("r(n) :- docs(d), extractName(d, n).");
  ASSERT_TRUE(program.ok());
  auto plan = TranslateProgram(*program, registry);
  ASSERT_TRUE(plan.ok());
  Snapshot snapshot;
  snapshot.AddPage("u1", "Ann");
  snapshot.AddPage("u2", "Bob Bob");
  auto rows = ExecutePlanOnSnapshot(**plan, snapshot);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 0);
  EXPECT_EQ(std::get<int64_t>((*rows)[1][0]), 1);
  EXPECT_EQ(std::get<int64_t>((*rows)[2][0]), 1);
}

TEST(Plan, ToStringShowsStructure) {
  ExtractorRegistry registry = TestRegistry();
  auto program = ParseProgram("r(n) :- docs(d), extractName(d, n).");
  ASSERT_TRUE(program.ok());
  auto plan = TranslateProgram(*program, registry);
  ASSERT_TRUE(plan.ok());
  std::string rendered = PlanToString(**plan);
  EXPECT_NE(rendered.find("IE[extractName]"), std::string::npos);
  EXPECT_NE(rendered.find("scan[docs]"), std::string::npos);
}

}  // namespace
}  // namespace xlog
}  // namespace delex
