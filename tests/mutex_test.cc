// Tests for the annotated mutex layer (common/mutex.h): Mutex / MutexLock /
// CondVar semantics and the runtime lock-order detector — an induced
// A->B / B->A inversion fires (fatally under DELEX_DEADLOCK=fatal, once
// under warn), consistent ordering stays silent across threads, and a
// disabled detector registers nothing. Each test pins the mode it needs
// with SetDeadlockModeForTesting, so the suite behaves identically under
// the ci/check.sh DELEX_DEADLOCK=fatal leg.

#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

// TSan ships its own lock-order detector, which (correctly) flags the
// inversions these tests induce on purpose. Under TSan the induced-inversion
// tests sit out — the dedicated ci/check.sh LockOrder leg covers them — and
// the consistent-ordering / disabled-mode tests still run.
#if defined(__SANITIZE_THREAD__)
#define DELEX_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DELEX_UNDER_TSAN 1
#endif
#endif
#ifndef DELEX_UNDER_TSAN
#define DELEX_UNDER_TSAN 0
#endif

namespace delex {
namespace {

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu("mutex_test.basic");
  mu.Lock();
  std::thread t([&mu] { EXPECT_FALSE(mu.TryLock()); });
  t.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockExcludesOtherThreads) {
  Mutex mu("mutex_test.scoped");
  int value = 0;
  {
    MutexLock lock(&mu);
    value = 1;
    std::thread t([&mu] {
      EXPECT_FALSE(mu.TryLock());  // held by the main thread
    });
    t.join();
  }
  std::thread t([&mu, &value] {
    MutexLock lock(&mu);
    EXPECT_EQ(value, 1);
    value = 2;
  });
  t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(value, 2);
}

TEST(CondVarTest, PredicateLoopWakes) {
  Mutex mu("mutex_test.cv");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitUntilReportsTimeout) {
  Mutex mu("mutex_test.cv_deadline");
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  bool timed_out = false;
  while (!timed_out) timed_out = cv.WaitUntil(&mu, deadline);
  EXPECT_TRUE(timed_out);
}

#if DELEX_DEADLOCK_DETECTOR

TEST(LockOrderTest, CompiledIn) { EXPECT_TRUE(LockOrderDetectorCompiledIn()); }

#if !DELEX_UNDER_TSAN

// The inversion itself, in a shape every test below reuses: thread-local
// A->B then B->A. Single-threaded on purpose — the detector flags the
// *potential* deadlock from the order graph, no interleaving required.
void InduceInversion(Mutex* a, Mutex* b) {
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
}

TEST(LockOrderDeathTest, InversionAbortsUnderFatal) {
  EXPECT_DEATH(
      {
        SetDeadlockModeForTesting(DeadlockMode::kFatal);
        Mutex a("mutex_test.fatal.a");
        Mutex b("mutex_test.fatal.b");
        InduceInversion(&a, &b);
      },
      "lock-order inversion");
}

TEST(LockOrderTest, WarnModeReportsEachPairOnce) {
  SetDeadlockModeForTesting(DeadlockMode::kWarn);
  const int64_t before = LockOrderInversionCount();
  Mutex a("mutex_test.warn.a");
  Mutex b("mutex_test.warn.b");
  for (int i = 0; i < 3; ++i) InduceInversion(&a, &b);
  EXPECT_EQ(LockOrderInversionCount() - before, 1);
  SetDeadlockModeForTesting(DeadlockMode::kOff);
}

TEST(LockOrderTest, TransitiveInversionDetected) {
  SetDeadlockModeForTesting(DeadlockMode::kWarn);
  const int64_t before = LockOrderInversionCount();
  Mutex a("mutex_test.chain.a");
  Mutex b("mutex_test.chain.b");
  Mutex c("mutex_test.chain.c");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock lc(&c);
  }
  EXPECT_EQ(LockOrderInversionCount() - before, 0);  // a->b->c is consistent
  {
    MutexLock lc(&c);
    MutexLock la(&a);  // closes the cycle a->b->c->a
  }
  EXPECT_EQ(LockOrderInversionCount() - before, 1);
  SetDeadlockModeForTesting(DeadlockMode::kOff);
}

#endif  // !DELEX_UNDER_TSAN

TEST(LockOrderTest, ConsistentOrderSilentAcrossEightThreads) {
  SetDeadlockModeForTesting(DeadlockMode::kWarn);
  const int64_t before = LockOrderInversionCount();
  Mutex a("mutex_test.threads.a");
  Mutex b("mutex_test.threads.b");
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        MutexLock la(&a);
        MutexLock lb(&b);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total.load(), 8 * 200);
  EXPECT_EQ(LockOrderInversionCount() - before, 0);
  SetDeadlockModeForTesting(DeadlockMode::kOff);
}

#if !DELEX_UNDER_TSAN  // nests two instances both ways — TSan would flag it

TEST(LockOrderTest, SameSiteNestingIsNotFlagged) {
  SetDeadlockModeForTesting(DeadlockMode::kWarn);
  const int64_t before = LockOrderInversionCount();
  // Same construction-site name: instances are indistinguishable to the
  // detector, so both nesting directions must stay silent (the documented
  // blind spot — distinct names are required for checked orderings).
  Mutex pool0("mutex_test.same_site");
  Mutex pool1("mutex_test.same_site");
  {
    MutexLock l0(&pool0);
    MutexLock l1(&pool1);
  }
  {
    MutexLock l1(&pool1);
    MutexLock l0(&pool0);
  }
  EXPECT_EQ(LockOrderInversionCount() - before, 0);
  SetDeadlockModeForTesting(DeadlockMode::kOff);
}

#endif  // !DELEX_UNDER_TSAN

TEST(LockOrderTest, DisabledRegistersNoSites) {
  SetDeadlockModeForTesting(DeadlockMode::kOff);
  const int64_t sites_before = LockOrderSiteCount();
  Mutex mu("mutex_test.disabled");
  {
    MutexLock lock(&mu);
  }
  EXPECT_EQ(LockOrderSiteCount(), sites_before);  // untracked: zero overhead
}

#else  // !DELEX_DEADLOCK_DETECTOR

TEST(LockOrderTest, CompiledOut) {
  // Release builds compile the detector away entirely; the API degrades
  // to constants so callers need no #if guards.
  EXPECT_FALSE(LockOrderDetectorCompiledIn());
  SetDeadlockModeForTesting(DeadlockMode::kFatal);
  EXPECT_EQ(DeadlockModeInEffect(), DeadlockMode::kOff);
  EXPECT_EQ(LockOrderInversionCount(), 0);
  EXPECT_EQ(LockOrderSiteCount(), 0);
#if !DELEX_UNDER_TSAN  // the induced inversion below is real locking
  Mutex a("mutex_test.off.a");
  Mutex b("mutex_test.off.b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock la(&a);
  }
  EXPECT_EQ(LockOrderInversionCount(), 0);
#endif
}

#endif  // DELEX_DEADLOCK_DETECTOR

}  // namespace
}  // namespace delex
