// Sharded-engine tests: the hash-partitioned multi-shard engine must be
// invisible to every observer.
//
// Core contracts under test: (1) the partitioning invariants of
// shard/partition.h — stability under page add/delete, disjoint cover,
// order/did preservation; (2) merged result rows byte-identical (same
// rows, same order — not canonicalized) to a single-engine run at every
// shard count × pool width × fast-path setting; (3) per-shard reuse files
// byte-identical to a single engine run over that shard's page subset;
// (4) per-shard coefficient persistence: corrupting one shard's
// coeffs.gen<N> degrades only that shard's learner.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "optimizer/learned_coeffs.h"
#include "shard/partition.h"
#include "shard/sharded_engine.h"

namespace delex {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = (fs::temp_directory_path() / ("delex-shardtest-" + tag))
                        .string();
  fs::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

/// Bytes of every file directly under `dir`, keyed by file name.
std::map<std::string, std::string> DirFileBytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files[entry.path().filename().string()] =
        ReadFileBytes(entry.path().string());
  }
  return files;
}

/// Exact row-sequence equality — order matters, unlike SameResults on
/// canonicalized rows. The merge contract is byte-identical output.
bool ExactRows(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (TupleLess(a[i], b[i]) || TupleLess(b[i], a[i])) return false;
  }
  return true;
}

std::vector<Snapshot> ChurnSeries(int pages, int snapshots, uint64_t seed) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = pages;
  // Heavy churn: every snapshot adds and deletes ~15% of pages, so the
  // stability invariant is exercised hard, not incidentally.
  profile.page_add_rate = 0.15;
  profile.page_delete_rate = 0.15;
  return GenerateSeries(profile, snapshots, seed);
}

// ---------------------------------------------------------------------------
// Partitioning invariants
// ---------------------------------------------------------------------------

TEST(ShardPartitionTest, SplitIsDisjointCoverPreservingOrderAndDids) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 40;
  Snapshot snapshot = GenerateSeries(profile, 1, /*seed=*/7)[0];

  for (int num_shards : {1, 2, 4, 8}) {
    std::vector<Snapshot> parts = shard::SplitSnapshot(snapshot, num_shards);
    ASSERT_EQ(parts.size(), static_cast<size_t>(num_shards));
    size_t total = 0;
    std::set<int64_t> seen_dids;
    for (int k = 0; k < num_shards; ++k) {
      int64_t last_did = -1;
      for (const Page& page : parts[k].pages()) {
        // Routed where the router says, exactly once.
        EXPECT_EQ(shard::ShardOfUrl(page.url, num_shards), k) << page.url;
        EXPECT_TRUE(seen_dids.insert(page.did).second)
            << "did " << page.did << " in two shards";
        // Global dids stay monotone within the shard (order preservation).
        EXPECT_GT(page.did, last_did);
        last_did = page.did;
        // The verbatim copy keeps the content hash.
        const Page& original =
            snapshot.pages()[static_cast<size_t>(page.did)];
        EXPECT_EQ(original.url, page.url);
        EXPECT_EQ(original.content_hash, page.content_hash);
      }
      total += parts[k].NumPages();
    }
    EXPECT_EQ(total, snapshot.NumPages()) << num_shards << " shards";
  }
}

TEST(ShardPartitionTest, AssignmentStableUnderPageAddAndDelete) {
  std::vector<Snapshot> series = ChurnSeries(30, 5, /*seed=*/11);
  const int num_shards = 4;
  // A URL surviving into any later snapshot must stay in its shard, no
  // matter how many pages around it were added or deleted (dids shift;
  // the URL hash does not).
  std::map<std::string, int> first_shard;
  bool churn_happened = false;
  for (size_t i = 0; i < series.size(); ++i) {
    std::vector<Snapshot> parts = shard::SplitSnapshot(series[i], num_shards);
    for (int k = 0; k < num_shards; ++k) {
      for (const Page& page : parts[k].pages()) {
        auto [it, inserted] = first_shard.emplace(page.url, k);
        if (!inserted) {
          EXPECT_EQ(it->second, k) << page.url << " migrated at snapshot "
                                   << i;
        }
      }
    }
    if (i > 0 && series[i].NumPages() != series[i - 1].NumPages()) {
      churn_happened = true;
    }
  }
  // The series must actually have churned, or the test proves nothing.
  EXPECT_TRUE(churn_happened);
  EXPECT_GT(first_shard.size(), series[0].NumPages());
}

// ---------------------------------------------------------------------------
// Merged output identity
// ---------------------------------------------------------------------------

struct ReferenceRun {
  std::vector<std::vector<Tuple>> per_snapshot;  // exact row order
};

ReferenceRun RunSingleEngine(const ProgramSpec& spec,
                             const std::vector<Snapshot>& series,
                             bool disable_fast_path, const std::string& tag) {
  ReferenceRun run;
  DelexEngine::Options options;
  options.work_dir = FreshDir(tag);
  options.disable_page_fast_path = disable_fast_path;
  DelexEngine engine(spec.plan, options);
  EXPECT_TRUE(engine.Init().ok());
  MatcherAssignment assignment =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
  for (size_t i = 0; i < series.size(); ++i) {
    auto rows = engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                   assignment, nullptr);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    run.per_snapshot.push_back(std::move(rows).ValueOrDie());
  }
  return run;
}

TEST(ShardedEngineTest, MergedRowsByteIdenticalAcrossShardGrid) {
  ProgramSpec spec = *MakeProgram("chair");
  std::vector<Snapshot> series = ChurnSeries(24, 4, /*seed=*/42);

  for (bool disable_fast_path : {false, true}) {
    ReferenceRun reference = RunSingleEngine(
        spec, series, disable_fast_path,
        std::string("ref-fp") + (disable_fast_path ? "0" : "1"));
    for (int num_shards : {1, 2, 4, 8}) {
      for (int threads : {1, 3}) {
        shard::ShardedEngine::Options options;
        options.work_dir = FreshDir(
            "grid-s" + std::to_string(num_shards) + "-t" +
            std::to_string(threads) + (disable_fast_path ? "-fp0" : "-fp1"));
        options.num_shards = num_shards;
        options.num_threads = threads;
        options.disable_page_fast_path = disable_fast_path;
        shard::ShardedEngine engine(spec.plan, options);
        ASSERT_TRUE(engine.Init().ok());
        MatcherAssignment assignment =
            MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
        for (size_t i = 0; i < series.size(); ++i) {
          RunStats stats;
          auto rows = engine.RunSnapshot(
              series[i], i > 0 ? &series[i - 1] : nullptr, assignment, &stats);
          ASSERT_TRUE(rows.ok()) << rows.status().ToString();
          EXPECT_TRUE(ExactRows(reference.per_snapshot[i], *rows))
              << "shards=" << num_shards << " threads=" << threads
              << " fast_path_off=" << disable_fast_path << " snapshot=" << i;
          EXPECT_EQ(stats.pages,
                    static_cast<int64_t>(series[i].NumPages()));
        }
      }
    }
  }
}

TEST(ShardedEngineTest, ShardReuseFilesMatchSingleEngineOverSubset) {
  // Each shard's reuse files must be byte-identical to a single engine
  // run over just that shard's page subset — the shard layer adds no
  // bytes of its own, so any shard can be debugged with unsharded tools.
  ProgramSpec spec = *MakeProgram("talk");
  std::vector<Snapshot> series = ChurnSeries(20, 3, /*seed=*/5);
  const int num_shards = 3;

  shard::ShardedEngine::Options options;
  options.work_dir = FreshDir("reuse-bytes");
  options.num_shards = num_shards;
  options.num_threads = 2;
  shard::ShardedEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment assignment =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
  for (size_t i = 0; i < series.size(); ++i) {
    auto rows = engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                   assignment, nullptr);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  }

  std::vector<std::vector<Snapshot>> splits;
  for (const Snapshot& snapshot : series) {
    splits.push_back(shard::SplitSnapshot(snapshot, num_shards));
  }
  for (int k = 0; k < num_shards; ++k) {
    DelexEngine::Options single_options;
    single_options.work_dir = FreshDir("reuse-bytes-ref" + std::to_string(k));
    DelexEngine single(spec.plan, single_options);
    ASSERT_TRUE(single.Init().ok());
    for (size_t i = 0; i < series.size(); ++i) {
      auto rows = single.RunSnapshot(
          splits[i][static_cast<size_t>(k)],
          i > 0 ? &splits[i - 1][static_cast<size_t>(k)] : nullptr, assignment,
          nullptr);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    }
    EXPECT_EQ(DirFileBytes(single_options.work_dir),
              DirFileBytes(engine.ShardWorkDir(k)))
        << "shard " << k;
  }
}

TEST(ShardedEngineTest, ResumeContinuesEachShardAcrossProcesses) {
  ProgramSpec spec = *MakeProgram("talk");
  std::vector<Snapshot> series = ChurnSeries(18, 3, /*seed=*/77);
  const std::string dir = FreshDir("resume");

  shard::ShardedEngine::Options options;
  options.work_dir = dir;
  options.num_shards = 2;
  options.num_threads = 2;
  MatcherAssignment assignment;
  {
    shard::ShardedEngine engine(spec.plan, options);
    ASSERT_TRUE(engine.Init().ok());
    assignment = MatcherAssignment::Uniform(engine.NumUnits(),
                                            MatcherKind::kST);
    ASSERT_TRUE(engine.RunSnapshot(series[0], nullptr, assignment, nullptr)
                    .ok());
    ASSERT_TRUE(
        engine.RunSnapshot(series[1], &series[0], assignment, nullptr).ok());
    EXPECT_EQ(engine.generation(), 2);
  }
  ReferenceRun reference =
      RunSingleEngine(spec, series, /*disable_fast_path=*/false, "resume-ref");
  {
    shard::ShardedEngine engine(spec.plan, options);
    ASSERT_TRUE(engine.Init().ok());
    ASSERT_TRUE(engine.Resume(2).ok());
    auto rows = engine.RunSnapshot(series[2], &series[1], assignment, nullptr);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_TRUE(ExactRows(reference.per_snapshot[2], *rows));
  }
}

// ---------------------------------------------------------------------------
// Per-shard coefficient persistence (harness layer)
// ---------------------------------------------------------------------------

/// The single coeffs.gen<N> path with the largest N in `dir`.
std::string NewestCoeffFile(const std::string& dir) {
  std::string best;
  int best_gen = -1;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string stem = entry.path().filename().string();
    if (stem.rfind("coeffs.gen", 0) != 0) continue;
    int gen = std::atoi(stem.c_str() + std::string("coeffs.gen").size());
    if (gen > best_gen) {
      best_gen = gen;
      best = entry.path().string();
    }
  }
  return best;
}

int64_t TotalSamples(const std::string& coeff_path) {
  CoefficientLearner learner;
  Status loaded = learner.Load(coeff_path);
  if (!loaded.ok()) return -1;
  int64_t total = 0;
  for (MatcherKind kind : kAllMatcherKinds) {
    total += learner.model(kind).samples;
  }
  return total;
}

TEST(ShardedCoefficientsTest, CorruptingOneShardDegradesOnlyThatShard) {
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 30;
  std::vector<Snapshot> series = GenerateSeries(profile, 5, /*seed=*/13);
  const std::string dir = FreshDir("coeffs");
  const int num_shards = 3;

  DelexSolutionOptions options;
  options.num_shards = num_shards;
  options.num_threads = 2;

  // Phase 1: four snapshots of learning; every shard persists its own
  // coeffs.gen<N> in its own subdirectory.
  {
    auto solution = MakeDelexSolution(spec, dir, options);
    const Snapshot* previous = nullptr;
    for (size_t i = 0; i < 4; ++i) {
      RunStats stats;
      ASSERT_TRUE(solution->RunSnapshot(series[i], previous, &stats).ok());
      previous = &series[i];
    }
  }
  std::vector<int64_t> samples_before;
  for (int k = 0; k < num_shards; ++k) {
    std::string path = NewestCoeffFile(dir + "/shard" + std::to_string(k));
    ASSERT_FALSE(path.empty()) << "shard " << k << " persisted no coeffs";
    int64_t samples = TotalSamples(path);
    ASSERT_GT(samples, 0) << path;
    samples_before.push_back(samples);
  }

  // Corrupt shard 1's file: flip one payload digit, leave the checksum.
  {
    std::string path = NewestCoeffFile(dir + "/shard1");
    std::string contents = ReadFileBytes(path);
    size_t digit = contents.find_first_of("0123456789", contents.find('\n'));
    ASSERT_NE(digit, std::string::npos);
    contents[digit] = contents[digit] == '9' ? '8' : '9';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  // Phase 2: a fresh solution over the same work dir. Shards 0 and 2
  // resume their learned state and keep accumulating; shard 1 rejects the
  // corrupt file and restarts from zero — one shard degraded, the rest
  // untouched, and the run itself stays healthy.
  {
    auto solution = MakeDelexSolution(spec, dir, options);
    RunStats stats;
    ASSERT_TRUE(solution->RunSnapshot(series[3], nullptr, &stats).ok());
    stats = RunStats();
    ASSERT_TRUE(solution->RunSnapshot(series[4], &series[3], &stats).ok());
  }
  // Phase 2's fresh engine restarts the generation counter, so its one
  // feedback run persisted coeffs.gen1 (the stale phase-1 coeffs.gen3 is
  // still on disk) — read the new generation explicitly.
  for (int k : {0, 2}) {
    std::string path = dir + "/shard" + std::to_string(k) + "/coeffs.gen1";
    EXPECT_GT(TotalSamples(path), samples_before[static_cast<size_t>(k)])
        << "shard " << k << " did not resume its learned state";
  }
  std::string shard1 = dir + "/shard1/coeffs.gen1";
  int64_t shard1_samples = TotalSamples(shard1);
  ASSERT_GE(shard1_samples, 0) << shard1;
  EXPECT_LT(shard1_samples, samples_before[1])
      << "shard 1 should have restarted from zero after corruption";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace delex
