// Tests for the synthetic evolving-corpus generator: determinism,
// overlap-structure fidelity to the profiles, and incrementality
// (unchanged pages must stay byte-identical — the property all reuse
// machinery feeds on).

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/vocab.h"

namespace delex {
namespace {

TEST(CorpusGenerator, DeterministicForSameSeed) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 20;
  CorpusGenerator a(profile, 7);
  CorpusGenerator b(profile, 7);
  Snapshot sa = a.Initial();
  Snapshot sb = b.Initial();
  ASSERT_EQ(sa.NumPages(), sb.NumPages());
  for (size_t i = 0; i < sa.NumPages(); ++i) {
    EXPECT_EQ(sa.pages()[i].url, sb.pages()[i].url);
    EXPECT_EQ(sa.pages()[i].content, sb.pages()[i].content);
  }
  Snapshot ea = a.Evolve(sa);
  Snapshot eb = b.Evolve(sb);
  for (size_t i = 0; i < ea.NumPages(); ++i) {
    EXPECT_EQ(ea.pages()[i].content, eb.pages()[i].content);
  }
}

TEST(CorpusGenerator, DifferentSeedsDiffer) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 5;
  Snapshot a = CorpusGenerator(profile, 1).Initial();
  Snapshot b = CorpusGenerator(profile, 2).Initial();
  EXPECT_NE(a.pages()[0].content, b.pages()[0].content);
}

class ProfileFidelity : public ::testing::TestWithParam<bool> {};

TEST_P(ProfileFidelity, IdenticalFractionTracksProfile) {
  const bool wiki = GetParam();
  DatasetProfile profile =
      wiki ? DatasetProfile::Wikipedia() : DatasetProfile::DBLife();
  profile.num_sources = 300;
  CorpusGenerator generator(profile, 99);
  Snapshot prev = generator.Initial();
  double identical_sum = 0;
  int pairs = 4;
  for (int i = 0; i < pairs; ++i) {
    Snapshot next = generator.Evolve(prev);
    int64_t identical = 0;
    int64_t survivors = 0;
    for (const Page& page : next.pages()) {
      auto idx = prev.FindByUrl(page.url);
      if (!idx) continue;
      ++survivors;
      if (prev.pages()[*idx].content == page.content) ++identical;
    }
    identical_sum +=
        static_cast<double>(identical) / static_cast<double>(survivors);
    prev = std::move(next);
  }
  double fraction = identical_sum / pairs;
  EXPECT_NEAR(fraction, profile.identical_fraction, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileFidelity, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Wikipedia" : "DBLife";
                         });

TEST(CorpusGenerator, ChangedPagesShareMostContent) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 50;
  profile.identical_fraction = 0.0;  // force edits everywhere
  CorpusGenerator generator(profile, 5);
  Snapshot first = generator.Initial();
  Snapshot second = generator.Evolve(first);
  for (const Page& page : second.pages()) {
    auto idx = first.FindByUrl(page.url);
    if (!idx) continue;
    const std::string& before = first.pages()[*idx].content;
    // Paragraph-granularity edits: most paragraphs survive verbatim.
    size_t shared = 0;
    size_t start = 0;
    size_t total = 0;
    while (start <= before.size()) {
      size_t hit = before.find("\n\n", start);
      std::string paragraph = before.substr(
          start, hit == std::string::npos ? std::string::npos : hit - start);
      ++total;
      if (page.content.find(paragraph) != std::string::npos) ++shared;
      if (hit == std::string::npos) break;
      start = hit + 2;
    }
    EXPECT_GT(shared, total / 2) << page.url;
  }
}

TEST(CorpusGenerator, PageSizesInCrawlRange) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 30;
  Snapshot snapshot = CorpusGenerator(profile, 3).Initial();
  for (const Page& page : snapshot.pages()) {
    EXPECT_GT(page.content.size(), 3000u);
    EXPECT_LT(page.content.size(), 40000u);
  }
}

TEST(CorpusGenerator, NewPagesGetFreshUrls) {
  DatasetProfile profile = DatasetProfile::DBLife();
  profile.num_sources = 50;
  profile.page_add_rate = 1.0;  // guarantee additions
  profile.page_delete_rate = 0.0;
  CorpusGenerator generator(profile, 8);
  Snapshot first = generator.Initial();
  Snapshot second = generator.Evolve(first);
  EXPECT_GT(second.NumPages(), first.NumPages());
  // Added URLs never collide with existing ones.
  for (const Page& page : second.pages()) {
    size_t count = 0;
    for (const Page& other : second.pages()) {
      if (other.url == page.url) ++count;
    }
    EXPECT_EQ(count, 1u) << page.url;
  }
}

TEST(CorpusGenerator, EntitySentencesAppearInBothStyles) {
  for (bool wiki : {false, true}) {
    DatasetProfile profile =
        wiki ? DatasetProfile::Wikipedia() : DatasetProfile::DBLife();
    profile.num_sources = 10;
    Snapshot snapshot = CorpusGenerator(profile, 11).Initial();
    std::string all;
    for (const Page& page : snapshot.pages()) all += page.content;
    if (wiki) {
      EXPECT_NE(all.find("starred in"), std::string::npos);
      EXPECT_NE(all.find("grossed"), std::string::npos);
      EXPECT_NE(all.find("won the"), std::string::npos);
    } else {
      EXPECT_NE(all.find("Talk: "), std::string::npos);
      EXPECT_NE(all.find("advises"), std::string::npos);
      EXPECT_NE(all.find("chair of"), std::string::npos);
    }
  }
}

TEST(Vocab, PoolsNonEmptyAndStable) {
  EXPECT_GE(vocab::Researchers().size(), 50u);
  EXPECT_GE(vocab::Actors().size(), 50u);
  EXPECT_FALSE(vocab::Movies().empty());
  EXPECT_FALSE(vocab::Awards().empty());
  // Stable references (memoized).
  EXPECT_EQ(&vocab::Researchers(), &vocab::Researchers());
}

TEST(Vocab, RandomTimeMatchesTalkRegexShape) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    std::string t = vocab::RandomTime(&rng);
    EXPECT_TRUE(t.find("am") != std::string::npos ||
                t.find("pm") != std::string::npos)
        << t;
    EXPECT_TRUE(isdigit(static_cast<unsigned char>(t[0]))) << t;
  }
}

}  // namespace
}  // namespace delex
