// Engine-level tests: that Delex actually *reuses* (not just stays
// correct), that page churn and ordering perturbations degrade gracefully,
// that capture works across generations, and that the ablation switches
// (exact path off, folding off) and randomized matcher assignments all
// preserve Theorem 1.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"

namespace delex {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("delex-engine-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

DatasetProfile Small(DatasetProfile profile, int pages) {
  profile.num_sources = pages;
  return profile;
}

TEST(Engine, RequiresInitAndCaptureBeforeReuse) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  DelexEngine::Options options;
  options.work_dir = FreshDir("init");
  DelexEngine engine(spec.plan, options);

  Snapshot snapshot;
  snapshot.AddPage("u", "text\n\nmore");
  MatcherAssignment none;
  EXPECT_FALSE(engine.RunSnapshot(snapshot, nullptr, none, nullptr).ok());
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_FALSE(engine.Init().ok());  // double init rejected
  // Reuse before any capture is rejected.
  EXPECT_FALSE(engine.RunSnapshot(snapshot, &snapshot, none, nullptr).ok());
  EXPECT_TRUE(engine.RunSnapshot(snapshot, nullptr, none, nullptr).ok());
  EXPECT_EQ(engine.generation(), 1);
}

TEST(Engine, ReuseActuallyHappensOnStableCorpus) {
  ProgramSpec spec = *MakeProgram("chair");
  std::vector<Snapshot> series =
      GenerateSeries(Small(spec.Profile(), 30), 3, 21);
  DelexEngine::Options options;
  options.work_dir = FreshDir("reuse");
  // This test is about *region-level* reuse (copied_tuples); the whole-page
  // fast path would skip evaluation of identical pages entirely and hide it.
  options.disable_page_fast_path = true;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment st =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);

  RunStats first;
  ASSERT_TRUE(engine.RunSnapshot(series[0], nullptr, st, &first).ok());
  int64_t scratch_chars = 0;
  for (const UnitRunStats& u : first.units) scratch_chars += u.chars_extracted;

  RunStats second;
  ASSERT_TRUE(engine.RunSnapshot(series[1], &series[0], st, &second).ok());
  int64_t reused_chars = 0;
  int64_t copied = 0;
  for (const UnitRunStats& u : second.units) {
    reused_chars += u.chars_extracted;
    copied += u.copied_tuples;
  }
  EXPECT_GT(copied, 0);
  // On a 97%-identical corpus, re-extraction must collapse.
  EXPECT_LT(reused_chars, scratch_chars / 5);
  EXPECT_GT(second.pages_with_previous, 0);
}

TEST(Engine, ExactFastPathHitsOnIdenticalPages) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  Snapshot snapshot;
  snapshot.AddPage("u", "Movie paragraph about \"Silent Harbor\" here.\n\n"
                        "Another paragraph entirely.");
  DelexEngine::Options options;
  options.work_dir = FreshDir("exact");
  // Exercise the exact-*region* path: with the whole-page fast path on, an
  // identical page never reaches region matching at all.
  options.disable_page_fast_path = true;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment dn =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kDN);
  ASSERT_TRUE(engine.RunSnapshot(snapshot, nullptr, dn, nullptr).ok());
  RunStats stats;
  ASSERT_TRUE(engine.RunSnapshot(snapshot, &snapshot, dn, &stats).ok());
  int64_t exact = 0;
  int64_t extracted_chars = 0;
  for (const UnitRunStats& u : stats.units) {
    exact += u.exact_region_hits;
    extracted_chars += u.chars_extracted;
  }
  EXPECT_GT(exact, 0);
  EXPECT_EQ(extracted_chars, 0);  // everything copied, nothing re-run
}

TEST(Engine, PageChurnHandled) {
  // Deleted, added, and renamed pages must all flow through.
  ProgramSpec spec = *MakeProgram("blockbuster");
  Snapshot first;
  std::string content =
      "The film \"Glass Mountain\" grossed 500 million dollars worldwide.";
  first.AddPage("a", content);
  first.AddPage("b", content);
  first.AddPage("c", content);
  Snapshot second;
  second.AddPage("a", content);      // unchanged
  second.AddPage("d", content);      // new page
  // "b" and "c" deleted.

  DelexEngine::Options options;
  options.work_dir = FreshDir("churn");
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment ud =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kUD);
  ASSERT_TRUE(engine.RunSnapshot(first, nullptr, ud, nullptr).ok());
  auto result = engine.RunSnapshot(second, &first, ud, nullptr);
  ASSERT_TRUE(result.ok());
  // Identical program output per page: 1 blockbuster row each.
  EXPECT_EQ(result->size(), 2u);
}

TEST(Engine, ReuseFilesCleanedAfterConsumption) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  std::vector<Snapshot> series =
      GenerateSeries(Small(spec.Profile(), 5), 3, 3);
  std::string dir = FreshDir("cleanup");
  DelexEngine::Options options;
  options.work_dir = dir;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment dn =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kDN);
  ASSERT_TRUE(engine.RunSnapshot(series[0], nullptr, dn, nullptr).ok());
  ASSERT_TRUE(engine.RunSnapshot(series[1], &series[0], dn, nullptr).ok());
  ASSERT_TRUE(engine.RunSnapshot(series[2], &series[1], dn, nullptr).ok());
  // Only the latest generation remains on disk: per unit .in/.out/.idx,
  // plus the page result cache.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().string().find("gen2"), std::string::npos)
        << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 3u * engine.NumUnits() + 1u);
}

TEST(Engine, CapturedResultsSurviveAcrossGenerations) {
  // Reuse in generation 3 still matches from-scratch (files round-trip
  // across generations, tids/itids stay aligned).
  ProgramSpec spec = *MakeProgram("chair");
  std::vector<Snapshot> series =
      GenerateSeries(Small(spec.Profile(), 15), 5, 77);
  auto delex = MakeDelexSolution(spec, FreshDir("gen"));
  auto no_reuse = MakeNoReuseSolution(spec);
  auto delex_run = RunSeries(delex.get(), series, true);
  auto base_run = RunSeries(no_reuse.get(), series, true);
  ASSERT_TRUE(delex_run.ok());
  ASSERT_TRUE(base_run.ok());
  for (size_t i = 0; i < base_run->results.size(); ++i) {
    EXPECT_TRUE(SameResults(base_run->results[i], delex_run->results[i]))
        << "generation " << i + 1;
  }
}

/// Property: random per-unit matcher assignments (mixing all four kinds)
/// preserve Theorem 1 on a fast-changing corpus.
class RandomAssignment : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAssignment, MixedMatchersPreserveResults) {
  ProgramSpec spec = *MakeProgram("play");
  DatasetProfile profile = Small(spec.Profile(), 15);
  std::vector<Snapshot> series = GenerateSeries(profile, 4, GetParam());

  Rng rng(GetParam() * 17);
  DelexSolutionOptions options;
  options.forced_assignment.per_unit.resize(4);
  for (auto& kind : options.forced_assignment.per_unit) {
    kind = kAllMatcherKinds[rng.Uniform(4)];
  }
  auto delex = MakeDelexSolution(
      spec, FreshDir("rand" + std::to_string(GetParam())), options);
  auto no_reuse = MakeNoReuseSolution(spec);
  auto delex_run = RunSeries(delex.get(), series, true);
  auto base_run = RunSeries(no_reuse.get(), series, true);
  ASSERT_TRUE(delex_run.ok());
  ASSERT_TRUE(base_run.ok());
  for (size_t i = 0; i < base_run->results.size(); ++i) {
    EXPECT_TRUE(SameResults(base_run->results[i], delex_run->results[i]))
        << "assignment " << options.forced_assignment.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssignment,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Engine, AblationSwitchesPreserveResults) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  std::vector<Snapshot> series =
      GenerateSeries(Small(spec.Profile(), 15), 3, 55);
  auto no_reuse = MakeNoReuseSolution(spec);
  auto base_run = RunSeries(no_reuse.get(), series, true);
  ASSERT_TRUE(base_run.ok());

  for (int variant = 0; variant < 2; ++variant) {
    DelexSolutionOptions options;
    if (variant == 0) options.disable_exact_fast_path = true;
    if (variant == 1) options.fold_unit_operators = false;
    auto delex = MakeDelexSolution(
        spec, FreshDir("abl" + std::to_string(variant)), options);
    auto run = RunSeries(delex.get(), series, true);
    ASSERT_TRUE(run.ok());
    for (size_t i = 0; i < base_run->results.size(); ++i) {
      EXPECT_TRUE(SameResults(base_run->results[i], run->results[i]))
          << "variant " << variant;
    }
  }
}

TEST(Engine, FoldingShrinksCapturedOutputs) {
  // σ folding captures post-selection tuples: the .out reuse files of the
  // folded engine must be smaller (§4's storage argument).
  ProgramSpec spec = *MakeProgram("blockbuster");
  std::vector<Snapshot> series =
      GenerateSeries(Small(spec.Profile(), 20), 2, 31);

  auto run_variant = [&](bool fold) {
    DelexEngine::Options options;
    options.work_dir = FreshDir(fold ? "foldon" : "foldoff");
    options.fold_unit_operators = fold;
    DelexEngine engine(spec.plan, options);
    EXPECT_TRUE(engine.Init().ok());
    MatcherAssignment dn =
        MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kDN);
    RunStats stats;
    EXPECT_TRUE(engine.RunSnapshot(series[0], nullptr, dn, &stats).ok());
    return stats.reuse_write_io.bytes_written;
  };
  int64_t folded_bytes = run_variant(true);
  int64_t unfolded_bytes = run_variant(false);
  EXPECT_LT(folded_bytes, unfolded_bytes);
}

TEST(Engine, ResumeContinuesAcrossProcessRestart) {
  // Simulate a daily cron job: each snapshot is handled by a fresh engine
  // instance that resumes from the reuse files the previous one left.
  ProgramSpec spec = *MakeProgram("chair");
  std::vector<Snapshot> series =
      GenerateSeries(Small(spec.Profile(), 12), 3, 202);
  std::string dir = FreshDir("resume");

  auto no_reuse = MakeNoReuseSolution(spec);
  auto base_run = RunSeries(no_reuse.get(), series, true);
  ASSERT_TRUE(base_run.ok());

  std::vector<std::vector<Tuple>> results;
  for (size_t i = 0; i < series.size(); ++i) {
    DelexEngine::Options options;
    options.work_dir = dir;
    DelexEngine engine(spec.plan, options);  // a fresh "process"
    ASSERT_TRUE(engine.Init().ok());
    if (i > 0) {
      ASSERT_TRUE(engine.Resume(static_cast<int>(i)).ok());
    }
    MatcherAssignment ud =
        MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kUD);
    RunStats stats;
    auto rows = engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                   ud, &stats);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    if (i > 0) {
      results.push_back(Canonicalize(std::move(rows).ValueOrDie()));
      // The resumed engine must still reuse, not silently start over —
      // either region-level copies or whole-page fast-path hits.
      int64_t copied = 0;
      for (const UnitRunStats& u : stats.units) copied += u.copied_tuples;
      EXPECT_GT(copied + stats.pages_identical, 0) << "generation " << i;
    }
  }
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(SameResults(base_run->results[i], results[i]));
  }
}

TEST(Engine, ResumeValidatesPreconditions) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  DelexEngine::Options options;
  options.work_dir = FreshDir("resume-bad");
  DelexEngine engine(spec.plan, options);
  EXPECT_FALSE(engine.Resume(1).ok());  // before Init
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_FALSE(engine.Resume(0).ok());  // nonsense generation
  EXPECT_FALSE(engine.Resume(1).ok());  // no files on disk
  Snapshot snapshot;
  snapshot.AddPage("u", "x\n\ny");
  MatcherAssignment dn =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kDN);
  ASSERT_TRUE(engine.RunSnapshot(snapshot, nullptr, dn, nullptr).ok());
  EXPECT_FALSE(engine.Resume(1).ok());  // already ran in this process
}

TEST(Engine, AssignmentSizeValidated) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  Snapshot snapshot;
  snapshot.AddPage("u", "x\n\ny");
  DelexEngine::Options options;
  options.work_dir = FreshDir("size");
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment dn = MatcherAssignment::Uniform(2, MatcherKind::kDN);
  ASSERT_TRUE(engine.RunSnapshot(snapshot, nullptr, dn, nullptr).ok());
  MatcherAssignment wrong = MatcherAssignment::Uniform(1, MatcherKind::kDN);
  EXPECT_FALSE(engine.RunSnapshot(snapshot, &snapshot, wrong, nullptr).ok());
}

}  // namespace
}  // namespace delex
