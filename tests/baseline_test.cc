// Tests for the baselines: the whole-program blackbox wrapper that gives
// Cyclex semantics, the Shortcut page-cache runner, and No-reuse.

#include <gtest/gtest.h>

#include "baseline/plan_extractor.h"
#include "baseline/runners.h"
#include "delex/ie_unit.h"
#include "harness/experiment.h"
#include "harness/programs.h"

namespace delex {
namespace {

TEST(PlanExtractorTest, WrappedPlanMatchesDirectExecution) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  Page page;
  page.did = 0;
  page.content =
      "The film \"Broken Compass\" grossed 321 million dollars worldwide.\n\n"
      "Unrelated paragraph without revenue.";

  auto direct = xlog::ExecutePlan(*spec.plan, page);
  ASSERT_TRUE(direct.ok());

  PlanExtractor wrapped("whole", spec.plan, spec.whole_alpha, spec.whole_beta);
  auto via_blackbox = wrapped.Extract(page.content, 0, {});
  ASSERT_EQ(via_blackbox.size(), direct->size());
  for (size_t i = 0; i < via_blackbox.size(); ++i) {
    EXPECT_FALSE(TupleLess(via_blackbox[i], (*direct)[i]) ||
                 TupleLess((*direct)[i], via_blackbox[i]));
  }
  EXPECT_EQ(wrapped.OutputArity(),
            static_cast<int64_t>(spec.plan->schema.size()));
}

TEST(PlanExtractorTest, TranslationInvariant) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  std::string text =
      "The film \"Broken Compass\" grossed 321 million dollars worldwide.";
  PlanExtractor wrapped("whole", spec.plan, spec.whole_alpha, spec.whole_beta);
  auto at_zero = wrapped.Extract(text, 0, {});
  auto at_base = wrapped.Extract(text, 777, {});
  ASSERT_EQ(at_zero.size(), at_base.size());
  for (size_t i = 0; i < at_zero.size(); ++i) {
    Tuple shifted = at_zero[i];
    ShiftSpans(&shifted, 777);
    EXPECT_FALSE(TupleLess(shifted, at_base[i]) ||
                 TupleLess(at_base[i], shifted));
  }
}

TEST(PlanExtractorTest, WrapProducesSingleUnitTree) {
  ProgramSpec spec = *MakeProgram("advise");  // 5 blackboxes inside
  xlog::PlanNodePtr wrapped = WrapWholeProgram(spec.plan, "whole", 1000, 10);
  auto analysis = AnalyzeUnits(wrapped);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->units.size(), 1u);  // Cyclex sees one blackbox
  EXPECT_EQ(analysis->units[0].alpha, 1000);
  EXPECT_EQ(analysis->units[0].beta, 10);
}

TEST(ShortcutRunnerTest, CopiesOnlyIdenticalPages) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  ShortcutRunner runner(spec.plan);

  Snapshot first;
  std::string hit_page =
      "The film \"Winter Protocol\" grossed 640 million dollars worldwide.";
  first.AddPage("a", hit_page);
  first.AddPage("b", "nothing here\n\nat all");
  RunStats stats;
  auto rows1 = runner.RunSnapshot(first, &stats);
  ASSERT_TRUE(rows1.ok());
  EXPECT_EQ(runner.identical_pages_last_run(), 0);

  Snapshot second;
  second.AddPage("a", hit_page);                      // identical
  second.AddPage("b", "changed text\n\nentirely so");  // changed
  auto rows2 = runner.RunSnapshot(second, &stats);
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(runner.identical_pages_last_run(), 1);
  EXPECT_EQ(rows2->size(), rows1->size());
  EXPECT_GT(stats.phases.copy_us + stats.phases.extract_us, 0);
}

TEST(ShortcutRunnerTest, CacheKeyedByUrlNotPosition) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  ShortcutRunner runner(spec.plan);
  Snapshot first;
  first.AddPage("x", "page one\n\ncontent");
  first.AddPage("y", "page two\n\ncontent");
  RunStats stats;
  ASSERT_TRUE(runner.RunSnapshot(first, &stats).ok());
  // Same pages, swapped order: both should hit.
  Snapshot second;
  second.AddPage("y", "page two\n\ncontent");
  second.AddPage("x", "page one\n\ncontent");
  ASSERT_TRUE(runner.RunSnapshot(second, &stats).ok());
  EXPECT_EQ(runner.identical_pages_last_run(), 2);
}

TEST(NoReuseRunnerTest, StatsReportPagesAndTuples) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  NoReuseRunner runner(spec.plan);
  Snapshot snapshot;
  snapshot.AddPage(
      "a", "The film \"Silent Harbor\" grossed 900 million dollars worldwide.");
  RunStats stats;
  auto rows = runner.RunSnapshot(snapshot, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(stats.pages, 1);
  EXPECT_EQ(stats.result_tuples, static_cast<int64_t>(rows->size()));
  EXPECT_GT(stats.phases.extract_us, 0);
}

}  // namespace
}  // namespace delex
