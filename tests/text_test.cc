// Tests for the text substrate: interval algebra, the Myers-diff matcher
// (UD) and the suffix-automaton matcher (ST). Property suites check the
// guarantees region derivation relies on: matched segments are
// byte-identical, within bounds, and (for ST) disjoint per side.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "corpus/generator.h"
#include "text/diff.h"
#include "text/interval_set.h"
#include "text/suffix_matcher.h"

namespace delex {
namespace {

// ---------------------------------------------------------------------------
// IntervalSet

TEST(IntervalSet, NormalizesOverlapsAndEmpties) {
  // Overlapping and touching intervals merge; empties vanish.
  IntervalSet set({{5, 10}, {1, 3}, {9, 12}, {4, 4}, {3, 5}});
  ASSERT_EQ(set.spans().size(), 1u);
  EXPECT_EQ(set.spans()[0], TextSpan(1, 12));
  EXPECT_EQ(set.TotalLength(), 11);

  IntervalSet gapped({{8, 10}, {1, 3}});
  ASSERT_EQ(gapped.spans().size(), 2u);
  EXPECT_EQ(gapped.spans()[0], TextSpan(1, 3));
  EXPECT_EQ(gapped.spans()[1], TextSpan(8, 10));
}

TEST(IntervalSet, ContainsWithinOneRequiresSingleInterval) {
  IntervalSet set({{0, 10}, {20, 30}});
  EXPECT_TRUE(set.ContainsWithinOne(TextSpan(2, 8)));
  EXPECT_TRUE(set.ContainsWithinOne(TextSpan(20, 30)));
  EXPECT_FALSE(set.ContainsWithinOne(TextSpan(8, 22)));  // straddles gap
  EXPECT_FALSE(set.ContainsWithinOne(TextSpan(9, 11)));
  EXPECT_TRUE(set.ContainsPoint(25));
  EXPECT_FALSE(set.ContainsPoint(15));
}

TEST(IntervalSet, ComplementWithinBounds) {
  IntervalSet set({{2, 4}, {6, 8}});
  IntervalSet complement = set.ComplementWithin(TextSpan(0, 10));
  ASSERT_EQ(complement.spans().size(), 3u);
  EXPECT_EQ(complement.spans()[0], TextSpan(0, 2));
  EXPECT_EQ(complement.spans()[1], TextSpan(4, 6));
  EXPECT_EQ(complement.spans()[2], TextSpan(8, 10));
  EXPECT_TRUE(IntervalSet({{0, 10}}).ComplementWithin(TextSpan(0, 10)).Empty());
}

TEST(IntervalSet, ExpandMergesNeighbours) {
  IntervalSet set({{10, 12}, {15, 17}});
  IntervalSet grown = set.Expand(2, TextSpan(0, 100));
  ASSERT_EQ(grown.spans().size(), 1u);
  EXPECT_EQ(grown.spans()[0], TextSpan(8, 19));
}

TEST(IntervalSet, IntersectAndUnion) {
  IntervalSet a({{0, 10}, {20, 30}});
  IntervalSet b({{5, 25}});
  IntervalSet cross = a.Intersect(b);
  ASSERT_EQ(cross.spans().size(), 2u);
  EXPECT_EQ(cross.spans()[0], TextSpan(5, 10));
  EXPECT_EQ(cross.spans()[1], TextSpan(20, 25));
  EXPECT_EQ(a.Union(b).spans().size(), 1u);
  EXPECT_EQ(a.Union(b).TotalLength(), 30);
}

/// Property: set operations agree with a brute-force bitmap model.
class IntervalSetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetProperty, MatchesBitmapModel) {
  Rng rng(GetParam());
  constexpr int64_t kUniverse = 200;
  for (int round = 0; round < 20; ++round) {
    std::vector<TextSpan> spans;
    std::vector<bool> bitmap(kUniverse, false);
    for (int i = 0; i < 8; ++i) {
      int64_t start = rng.UniformRange(0, kUniverse - 1);
      int64_t end = std::min<int64_t>(kUniverse, start + rng.UniformRange(0, 40));
      spans.emplace_back(start, end);
      for (int64_t p = start; p < end; ++p) bitmap[static_cast<size_t>(p)] = true;
    }
    IntervalSet set(spans);

    int64_t expected_length = 0;
    for (bool b : bitmap) expected_length += b ? 1 : 0;
    EXPECT_EQ(set.TotalLength(), expected_length);

    IntervalSet complement = set.ComplementWithin(TextSpan(0, kUniverse));
    for (int64_t p = 0; p < kUniverse; ++p) {
      EXPECT_EQ(complement.ContainsPoint(p), !bitmap[static_cast<size_t>(p)])
          << "at " << p;
    }
    // Spans are disjoint, sorted, non-empty.
    const auto& normalized = set.spans();
    for (size_t i = 0; i < normalized.size(); ++i) {
      EXPECT_FALSE(normalized[i].empty());
      if (i > 0) EXPECT_GT(normalized[i].start, normalized[i - 1].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// SplitLines

TEST(SplitLines, HandlesTrailingAndEmpty) {
  EXPECT_TRUE(SplitLines("").empty());
  auto lines = SplitLines("ab\ncd");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], TextSpan(0, 3));
  EXPECT_EQ(lines[1], TextSpan(3, 5));
  auto with_trailing = SplitLines("ab\n");
  ASSERT_EQ(with_trailing.size(), 1u);
  EXPECT_EQ(with_trailing[0], TextSpan(0, 3));
}

// ---------------------------------------------------------------------------
// DiffMatch (UD)

void ExpectSegmentsValid(const std::vector<MatchSegment>& segments,
                         std::string_view p, std::string_view q,
                         bool require_in_order) {
  int64_t last_p = -1;
  int64_t last_q = -1;
  for (const MatchSegment& seg : segments) {
    ASSERT_EQ(seg.p.length(), seg.q.length());
    ASSERT_GE(seg.p.start, 0);
    ASSERT_LE(seg.p.end, static_cast<int64_t>(p.size()));
    ASSERT_GE(seg.q.start, 0);
    ASSERT_LE(seg.q.end, static_cast<int64_t>(q.size()));
    EXPECT_EQ(p.substr(static_cast<size_t>(seg.p.start),
                       static_cast<size_t>(seg.p.length())),
              q.substr(static_cast<size_t>(seg.q.start),
                       static_cast<size_t>(seg.q.length())));
    if (require_in_order) {
      EXPECT_GE(seg.p.start, last_p);
      EXPECT_GE(seg.q.start, last_q);
      last_p = seg.p.end;
      last_q = seg.q.end;
    }
  }
}

TEST(DiffMatch, IdenticalTextsFullyMatched) {
  std::string text = "line one\nline two\nline three\n";
  auto segments = DiffMatch(text, 0, text, 0);
  EXPECT_EQ(TotalMatchedLength(segments), static_cast<int64_t>(text.size()));
  ExpectSegmentsValid(segments, text, text, true);
}

TEST(DiffMatch, MiddleEditPreservesFlanks) {
  std::string q = "aaa\nbbb\nccc\nddd\n";
  std::string p = "aaa\nXXX\nccc\nddd\n";
  auto segments = DiffMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, true);
  EXPECT_EQ(TotalMatchedLength(segments), 12);  // all but "XXX\n"
}

TEST(DiffMatch, InsertionShiftsTail) {
  std::string q = "aaa\nbbb\n";
  std::string p = "aaa\nNEW\nbbb\n";
  auto segments = DiffMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, true);
  EXPECT_EQ(TotalMatchedLength(segments), 8);
}

TEST(DiffMatch, DisjointTextsMatchNothing) {
  auto segments = DiffMatch("aaa\nbbb\n", 0, "xxx\nyyy\n", 0);
  EXPECT_EQ(TotalMatchedLength(segments), 0);
}

TEST(DiffMatch, BasesOffsetAbsolutePositions) {
  std::string text = "one\ntwo\n";
  auto segments = DiffMatch(text, 100, text, 500);
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().p.start, 100);
  EXPECT_EQ(segments.front().q.start, 500);
}

TEST(DiffMatch, RelocatedBlockNotFound) {
  // UD is order-bound: a moved block is reported at most once.
  std::string q = "AAA\nBBB\nCCC\n";
  std::string p = "CCC\nAAA\nBBB\n";
  auto segments = DiffMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, true);
  EXPECT_LT(TotalMatchedLength(segments), 12);
}

// Edge shapes aimed at the vectorized prefix/suffix trim: empty inputs,
// single lines, fully-identical pages, overlapping prefix/suffix claims
// on repetitive texts, and bytes outside ASCII through the trim loops.

TEST(DiffMatch, EmptyPages) {
  EXPECT_TRUE(DiffMatch("", 0, "", 0).empty());
  EXPECT_TRUE(DiffMatch("", 0, "aaa\nbbb\n", 0).empty());
  EXPECT_TRUE(DiffMatch("aaa\nbbb\n", 0, "", 0).empty());
}

TEST(DiffMatch, SingleLineShapes) {
  // Terminated, equal.
  auto eq = DiffMatch("hello\n", 0, "hello\n", 0);
  EXPECT_EQ(TotalMatchedLength(eq), 6);
  ExpectSegmentsValid(eq, "hello\n", "hello\n", true);
  // Unterminated, equal.
  auto bare = DiffMatch("hello", 0, "hello", 0);
  EXPECT_EQ(TotalMatchedLength(bare), 5);
  // Terminated vs unterminated: different lines, no match.
  EXPECT_EQ(TotalMatchedLength(DiffMatch("hello\n", 0, "hello", 0)), 0);
  // Unequal single lines.
  EXPECT_EQ(TotalMatchedLength(DiffMatch("hello\n", 0, "world\n", 0)), 0);
}

TEST(DiffMatch, AllIdenticalPageIsOneCoalescedSegment) {
  std::string text;
  for (int i = 0; i < 64; ++i) text += "row " + std::to_string(i) + "\n";
  auto segments = DiffMatch(text, 0, text, 0);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].p, TextSpan(0, static_cast<int64_t>(text.size())));
  EXPECT_EQ(segments[0].q, TextSpan(0, static_cast<int64_t>(text.size())));
}

TEST(DiffMatch, RepetitiveTextWherePrefixAndSuffixClaimsOverlap) {
  // Every line identical: the byte prefix and byte suffix each cover the
  // shorter side entirely, so the trim bounds must not double-count.
  std::string q = "aaa\naaa\naaa\n";
  std::string p = "aaa\naaa\naaa\naaa\naaa\n";
  auto segments = DiffMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, true);
  EXPECT_EQ(TotalMatchedLength(segments), static_cast<int64_t>(q.size()));
  // And symmetrically with the longer page as q.
  auto reversed = DiffMatch(q, 0, p, 0);
  ExpectSegmentsValid(reversed, q, p, true);
  EXPECT_EQ(TotalMatchedLength(reversed), static_cast<int64_t>(q.size()));
}

TEST(DiffMatch, SharedPrefixAndSuffixAroundMiddleEdit) {
  // Long shared flanks (exercising full SIMD blocks + scalar tails around
  // the 16/32-byte boundaries) with a one-line middle edit.
  std::string flank_top;
  std::string flank_bottom;
  for (int i = 0; i < 40; ++i) {
    flank_top += "top line with some padding " + std::to_string(i) + "\n";
    flank_bottom += "bottom line with padding " + std::to_string(i) + "\n";
  }
  std::string q = flank_top + "OLD MIDDLE\n" + flank_bottom;
  std::string p = flank_top + "NEW MIDDLE LINE\n" + flank_bottom;
  auto segments = DiffMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, true);
  EXPECT_EQ(TotalMatchedLength(segments),
            static_cast<int64_t>(flank_top.size() + flank_bottom.size()));
}

TEST(DiffMatch, NonAsciiAndNulBytesThroughTrimLoops) {
  std::string line1 = "caf\xc3\xa9 na\xc3\xafve\n";
  std::string line2 = std::string("nul\0byte\x80\xff\n", 11);
  std::string line3 = "\xe2\x82\xac euro line \x7f\n";
  std::string q = line1 + line2 + line3;
  std::string p = line1 + "edited \xc2\xa9 middle\n" + line3;
  auto segments = DiffMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, true);
  EXPECT_EQ(TotalMatchedLength(segments),
            static_cast<int64_t>(line1.size() + line3.size()));
  // Identical high-bit-heavy pages still fully match.
  auto same = DiffMatch(q, 0, q, 0);
  EXPECT_EQ(TotalMatchedLength(same), static_cast<int64_t>(q.size()));
}

TEST(SplitLines, NonAsciiAndNulBytes) {
  std::string text = std::string("a\0b\n", 4) + "\xc3\xa9\n" + "\n";
  auto lines = SplitLines(text);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], TextSpan(0, 4));
  EXPECT_EQ(lines[1], TextSpan(4, 7));
  EXPECT_EQ(lines[2], TextSpan(7, 8));
}

class DiffProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiffProperty, RandomEditsYieldValidInOrderSegments) {
  CorpusGenerator generator(DatasetProfile::DBLife(), GetParam());
  Rng rng(GetParam() * 31 + 1);
  for (int round = 0; round < 8; ++round) {
    std::string q = generator.GeneratePageText(&rng);
    // Random paragraph-level edit via the generator's own mutator would be
    // ideal; emulate with splices.
    std::string p = q;
    for (int e = 0; e < 3; ++e) {
      size_t pos = static_cast<size_t>(rng.Uniform(p.size()));
      if (rng.Chance(0.5)) {
        p.insert(pos, "\nINSERTED LINE " + std::to_string(e) + "\n");
      } else {
        p.erase(pos, std::min<size_t>(p.size() - pos, 40));
      }
    }
    auto segments = DiffMatch(p, 0, q, 0);
    ExpectSegmentsValid(segments, p, q, true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Values(10, 20, 30));

// ---------------------------------------------------------------------------
// SuffixAutomaton / SuffixMatch (ST)

TEST(SuffixAutomaton, LongestCommonSubstringAgainstBruteForce) {
  Rng rng(99);
  const std::string alphabet = "abcab";
  for (int round = 0; round < 30; ++round) {
    std::string s;
    std::string t;
    for (int i = 0; i < 40; ++i) {
      s += alphabet[rng.Uniform(alphabet.size())];
      t += alphabet[rng.Uniform(alphabet.size())];
    }
    SuffixAutomaton automaton(s);
    int64_t got = automaton.LongestCommonSubstring(t);
    int64_t expected = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      for (size_t len = 1; i + len <= t.size(); ++len) {
        if (s.find(t.substr(i, len)) != std::string::npos) {
          expected = std::max<int64_t>(expected, static_cast<int64_t>(len));
        } else {
          break;
        }
      }
    }
    ASSERT_EQ(got, expected) << "s=" << s << " t=" << t;
  }
}

TEST(SuffixMatch, FindsRelocatedBlocks) {
  std::string block_a(200, 'x');
  std::string block_b(200, 'y');
  for (size_t i = 0; i < block_a.size(); i += 3) block_a[i] = 'z';
  for (size_t i = 0; i < block_b.size(); i += 7) block_b[i] = 'w';
  std::string q = block_a + "----" + block_b;
  std::string p = block_b + "====" + block_a;  // swapped order
  auto segments = SuffixMatch(p, 0, q, 0);
  // ST must recover both blocks despite the reordering.
  EXPECT_GE(TotalMatchedLength(segments), 380);
  ExpectSegmentsValid(segments, p, q, false);
}

TEST(SuffixMatch, RespectsMinMatchLength) {
  SuffixMatchOptions options;
  options.min_match_length = 50;
  auto segments = SuffixMatch("short shared run", 0, "short shared run x", 0,
                              options);
  EXPECT_TRUE(segments.empty());
}

TEST(SuffixMatch, SegmentsDisjointPerSide) {
  CorpusGenerator generator(DatasetProfile::Wikipedia(), 3);
  Rng rng(4);
  std::string q = generator.GeneratePageText(&rng);
  std::string p = q;
  p.insert(p.size() / 2, generator.GenerateParagraph(&rng));
  auto segments = SuffixMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, false);
  // Pairwise disjoint on each side.
  for (size_t i = 0; i < segments.size(); ++i) {
    for (size_t j = i + 1; j < segments.size(); ++j) {
      EXPECT_FALSE(segments[i].p.Overlaps(segments[j].p));
      EXPECT_FALSE(segments[i].q.Overlaps(segments[j].q));
    }
  }
}

class SuffixMatchProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuffixMatchProperty, CoversMostOfLightlyEditedPages) {
  CorpusGenerator generator(DatasetProfile::DBLife(), GetParam());
  Rng rng(GetParam() + 500);
  std::string q = generator.GeneratePageText(&rng);
  std::string p = q;
  p.insert(0, generator.GenerateParagraph(&rng) + "\n\n");
  auto segments = SuffixMatch(p, 0, q, 0);
  ExpectSegmentsValid(segments, p, q, false);
  EXPECT_GT(TotalMatchedLength(segments),
            static_cast<int64_t>(q.size() * 9 / 10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixMatchProperty,
                         ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace delex
