// Tests for the Delex core internals: IE-unit identification with the
// σ/π folding rules (§4), IE-chain partitioning (Definition 6), region
// derivation under (α, β) (§5.3), and the four matchers (§5.4).

#include <gtest/gtest.h>

#include "delex/ie_unit.h"
#include "delex/region_derivation.h"
#include "harness/programs.h"
#include "matcher/matcher.h"
#include "xlog/parser.h"
#include "xlog/translate.h"

namespace delex {
namespace {

// ---------------------------------------------------------------------------
// IE-unit identification

TEST(IEUnits, SigmaOnBlackboxOutputFoldsSigmaOnInputDoesNot) {
  // blockbuster: containsStr(para, "grossed") reads the paragraph
  // blackbox's own output -> folds into the paragraph unit. play:
  // within(actor, movie, 150) reads actor (input to the movie unit) ->
  // must NOT fold into the movie unit.
  ProgramSpec blockbuster = *MakeProgram("blockbuster");
  auto analysis = AnalyzeUnits(blockbuster.plan);
  ASSERT_TRUE(analysis.ok());
  ASSERT_EQ(analysis->units.size(), 2u);
  // The paragraph unit's chain includes the containsStr σ.
  const IEUnit& para_unit = analysis->units[0];
  bool folded_sigma = false;
  for (const auto& node : para_unit.chain) {
    folded_sigma |= node->kind == xlog::PlanKind::kSelect;
  }
  EXPECT_TRUE(folded_sigma);

  ProgramSpec play = *MakeProgram("play");
  auto play_analysis = AnalyzeUnits(play.plan);
  ASSERT_TRUE(play_analysis.ok());
  ASSERT_EQ(play_analysis->units.size(), 4u);
  const IEUnit& movie_unit = play_analysis->units.back();
  for (const auto& node : movie_unit.chain) {
    EXPECT_NE(node->kind, xlog::PlanKind::kSelect)
        << "σ reading a unit-input column must stay outside the unit";
  }
}

TEST(IEUnits, AlphaBetaTransferWholesaleFromBlackbox) {
  ProgramSpec spec = *MakeProgram("play");
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  for (const IEUnit& unit : analysis->units) {
    EXPECT_EQ(unit.alpha, unit.ie_node->extractor->Scope());
    EXPECT_EQ(unit.beta, unit.ie_node->extractor->ContextWidth());
  }
}

TEST(IEUnits, UnitCountsMatchProgramStructure) {
  // (program, expected units in the translated tree)
  const std::vector<std::pair<std::string, size_t>> expected = {
      {"talk", 1}, {"chair", 3},  {"advise", 5},
      {"blockbuster", 2}, {"play", 4},
      // award duplicates the awardsent subtree across the join's branches.
      {"award", 7},
      // infobox runs a second segmenter pass for the roles chain.
      {"infobox", 6}};
  for (const auto& [name, units] : expected) {
    ProgramSpec spec = *MakeProgram(name);
    auto analysis = AnalyzeUnits(spec.plan);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis->units.size(), units) << name;
  }
}

TEST(IEUnits, NoFoldModeLeavesBareBlackboxes) {
  ProgramSpec spec = *MakeProgram("blockbuster");
  auto analysis = AnalyzeUnits(spec.plan, /*fold_operators=*/false);
  ASSERT_TRUE(analysis.ok());
  for (const IEUnit& unit : analysis->units) {
    EXPECT_EQ(unit.chain.size(), 1u);
    EXPECT_EQ(unit.top, unit.ie_node);
  }
}

TEST(IEChains, LinearProgramFormsOneChainPlusBranch) {
  ProgramSpec spec = *MakeProgram("play");
  auto analysis = AnalyzeUnits(spec.plan);
  ASSERT_TRUE(analysis.ok());
  auto chains = PartitionChains(spec.plan, *analysis);
  // paragraphs <- sentences <- {actor, movie}: one chain takes three units,
  // the other unit forms its own chain.
  ASSERT_EQ(chains.size(), 2u);
  size_t total = 0;
  for (const IEChain& chain : chains) total += chain.units.size();
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(std::max(chains[0].units.size(), chains[1].units.size()), 3u);
}

TEST(IEChains, EveryUnitInExactlyOneChain) {
  for (const std::string& name : AllProgramNames()) {
    ProgramSpec spec = *MakeProgram(name);
    auto analysis = AnalyzeUnits(spec.plan);
    ASSERT_TRUE(analysis.ok());
    auto chains = PartitionChains(spec.plan, *analysis);
    std::vector<int> seen(analysis->units.size(), 0);
    for (const IEChain& chain : chains) {
      for (int u : chain.units) ++seen[static_cast<size_t>(u)];
    }
    for (size_t u = 0; u < seen.size(); ++u) {
      EXPECT_EQ(seen[u], 1) << name << " unit " << u;
    }
  }
}

// ---------------------------------------------------------------------------
// Region derivation

TEST(RegionDerivation, NoSegmentsMeansFullExtraction) {
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 100), {}, 10, 2);
  EXPECT_TRUE(d.copy_regions.empty());
  ASSERT_EQ(d.extraction_regions.spans().size(), 1u);
  EXPECT_EQ(d.extraction_regions.spans()[0], TextSpan(0, 100));
}

TEST(RegionDerivation, FullAlignedMatchCopiesEverything) {
  std::vector<MatchSegment> segments = {
      {TextSpan(0, 100), TextSpan(0, 100)}};
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 100), segments, 10, 2);
  ASSERT_EQ(d.copy_regions.size(), 1u);
  // Both edges aligned: no shrink at all.
  EXPECT_EQ(d.copy_regions[0].q_interior, TextSpan(0, 100));
  EXPECT_TRUE(d.extraction_regions.Empty());
}

TEST(RegionDerivation, InteriorShrinksByBetaOnUnalignedSides) {
  // Segment in the middle of both regions: shrink β on both sides.
  std::vector<MatchSegment> segments = {{TextSpan(20, 60), TextSpan(30, 70)}};
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 110), segments, 10, 3);
  ASSERT_EQ(d.copy_regions.size(), 1u);
  EXPECT_EQ(d.copy_regions[0].q_interior, TextSpan(33, 67));
  EXPECT_EQ(d.copy_regions[0].p_interior, TextSpan(23, 57));
  EXPECT_EQ(d.copy_regions[0].delta, -10);
}

TEST(RegionDerivation, EdgeAlignedSideKeepsFullWidth) {
  // Segment starts at the start of BOTH regions: left unshrunk.
  std::vector<MatchSegment> segments = {{TextSpan(0, 50), TextSpan(0, 50)}};
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 120), segments, 10, 5);
  ASSERT_EQ(d.copy_regions.size(), 1u);
  EXPECT_EQ(d.copy_regions[0].q_interior, TextSpan(0, 45));
}

TEST(RegionDerivation, MisalignedEdgeStillShrinks) {
  // Segment touches p's start but not q's start: treated as unaligned.
  std::vector<MatchSegment> segments = {{TextSpan(0, 50), TextSpan(10, 60)}};
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 120), segments, 10, 5);
  ASSERT_EQ(d.copy_regions.size(), 1u);
  EXPECT_EQ(d.copy_regions[0].q_interior, TextSpan(15, 55));
}

TEST(RegionDerivation, ExtractionExpandsComplementByAlphaPlusBeta) {
  std::vector<MatchSegment> segments = {{TextSpan(0, 40), TextSpan(0, 40)},
                                        {TextSpan(60, 100), TextSpan(60, 100)}};
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 100), segments, 7, 2);
  // Interiors: [0,38) and [62,100). Complement: [38,62). Expanded by 9:
  // [29,71).
  ASSERT_EQ(d.extraction_regions.spans().size(), 1u);
  EXPECT_EQ(d.extraction_regions.spans()[0], TextSpan(29, 71));
}

TEST(RegionDerivation, OverlappingSegmentsMadeDisjoint) {
  std::vector<MatchSegment> segments = {{TextSpan(0, 50), TextSpan(0, 50)},
                                        {TextSpan(40, 90), TextSpan(45, 95)}};
  RegionDerivation d =
      DeriveRegions(TextSpan(0, 100), TextSpan(0, 100), segments, 5, 1);
  // The p sides of the surviving copy regions must not overlap.
  for (size_t i = 0; i < d.copy_regions.size(); ++i) {
    for (size_t j = i + 1; j < d.copy_regions.size(); ++j) {
      EXPECT_FALSE(
          d.copy_regions[i].p_interior.Overlaps(d.copy_regions[j].p_interior));
    }
  }
}

TEST(RegionDerivation, EnvelopeCopyableChecksInterior) {
  CopyRegion copy;
  copy.q_interior = TextSpan(10, 50);
  copy.delta = 5;
  copy.p_interior = TextSpan(15, 55);
  EXPECT_TRUE(EnvelopeCopyable(copy, TextSpan(10, 50), TextSpan(0, 100)));
  EXPECT_TRUE(EnvelopeCopyable(copy, TextSpan(20, 30), TextSpan(0, 100)));
  EXPECT_FALSE(EnvelopeCopyable(copy, TextSpan(9, 30), TextSpan(0, 100)));
  EXPECT_FALSE(EnvelopeCopyable(copy, TextSpan(45, 51), TextSpan(0, 100)));
  // Spanless tuple: needs the interior to cover the whole old region.
  EXPECT_FALSE(EnvelopeCopyable(copy, TextSpan(), TextSpan(0, 100)));
  CopyRegion full;
  full.q_interior = TextSpan(0, 100);
  EXPECT_TRUE(EnvelopeCopyable(full, TextSpan(), TextSpan(0, 100)));
}

/// Property: every position of the new region is either inside a copy-safe
/// interior or inside an extraction region — no mention can fall through.
class DerivationCoverage : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DerivationCoverage, InteriorsAndExtractionCoverRegion) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    TextSpan p_region(0, 500);
    TextSpan q_region(0, 480);
    std::vector<MatchSegment> segments;
    int64_t p_cursor = rng.UniformRange(0, 60);
    int64_t q_cursor = rng.UniformRange(0, 60);
    while (p_cursor < 480 && q_cursor < 460) {
      int64_t len = rng.UniformRange(5, 80);
      len = std::min({len, 500 - p_cursor, 480 - q_cursor});
      segments.emplace_back(TextSpan(p_cursor, p_cursor + len),
                            TextSpan(q_cursor, q_cursor + len));
      p_cursor += len + rng.UniformRange(0, 50);
      q_cursor += len + rng.UniformRange(0, 50);
    }
    int64_t alpha = rng.UniformRange(2, 40);
    int64_t beta = rng.UniformRange(0, 8);
    RegionDerivation d =
        DeriveRegions(p_region, q_region, segments, alpha, beta);

    // A hypothetical mention anywhere in p_region with length < alpha must
    // be coverable: either its envelope is inside one interior (copied) or
    // it intersects the complement, and then its whole β-window must lie
    // inside one extraction span.
    for (int trial = 0; trial < 40; ++trial) {
      int64_t len = rng.UniformRange(1, alpha - 1);
      int64_t start = rng.UniformRange(0, 500 - len);
      TextSpan mention(start, start + len);
      bool copy_safe = d.p_safe.ContainsWithinOne(mention);
      if (copy_safe) continue;
      TextSpan window = mention.Expand(beta, p_region);
      EXPECT_TRUE(d.extraction_regions.ContainsWithinOne(window))
          << "mention " << mention.ToString() << " (alpha " << alpha
          << ", beta " << beta << ") neither copyable nor extractable";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivationCoverage,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Matchers

TEST(Matchers, DnReturnsNothing) {
  auto segments = GetMatcher(MatcherKind::kDN)
                      .Match("abc", TextSpan(0, 3), "abc", TextSpan(0, 3),
                             nullptr);
  EXPECT_TRUE(segments.empty());
}

TEST(Matchers, UdAndStRecordIntoContext) {
  std::string text = "line a\nline b\nline c\n";
  MatchContext ctx;
  GetMatcher(MatcherKind::kUD)
      .Match(text, TextSpan(0, 21), text, TextSpan(0, 21), &ctx);
  EXPECT_EQ(ctx.entries().size(), 1u);
  GetMatcher(MatcherKind::kST)
      .Match(text, TextSpan(0, 21), text, TextSpan(0, 21), &ctx);
  EXPECT_EQ(ctx.entries().size(), 2u);
}

TEST(Matchers, RuClipsRecordedSegmentsToQuery) {
  MatchContext ctx;
  // Recorded: p[100,200) matches q[300,400).
  ctx.Record(TextSpan(0, 1000), TextSpan(0, 1000),
             {MatchSegment(TextSpan(100, 200), TextSpan(300, 400))});
  auto segments = GetMatcher(MatcherKind::kRU)
                      .Match("", TextSpan(150, 500), "", TextSpan(320, 360),
                             &ctx);
  ASSERT_EQ(segments.size(), 1u);
  // p clip: [150,200) -> q [350,400) -> q clip [350,360) -> p [150,160).
  EXPECT_EQ(segments[0].q, TextSpan(350, 360));
  EXPECT_EQ(segments[0].p, TextSpan(150, 160));
}

TEST(Matchers, RuWithoutContextFindsNothing) {
  auto segments = GetMatcher(MatcherKind::kRU)
                      .Match("x", TextSpan(0, 1), "x", TextSpan(0, 1), nullptr);
  EXPECT_TRUE(segments.empty());
  MatchContext empty;
  segments = GetMatcher(MatcherKind::kRU)
                 .Match("x", TextSpan(0, 1), "x", TextSpan(0, 1), &empty);
  EXPECT_TRUE(segments.empty());
}

TEST(Matchers, KindNamesStable) {
  EXPECT_STREQ(MatcherKindName(MatcherKind::kDN), "DN");
  EXPECT_STREQ(MatcherKindName(MatcherKind::kUD), "UD");
  EXPECT_STREQ(MatcherKindName(MatcherKind::kST), "ST");
  EXPECT_STREQ(MatcherKindName(MatcherKind::kRU), "RU");
}

}  // namespace
}  // namespace delex
