// Identical-page fast-path equivalence: with the whole-page fast path on,
// every observer that matters — the result multiset per snapshot and the
// *decoded* reuse records captured for the next generation — must equal
// the fast-path-off run, across both dataset profiles × all four matchers
// × serial and parallel execution. File bytes are NOT compared across
// on/off: the copy path may order a group's outputs differently than a
// fresh capture; the decoded-record multiset is the format's meaning.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "storage/reuse_file.h"

namespace delex {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("delex-fastpath-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// One page's reuse records in an order- and ordinal-independent form:
/// inputs keyed by (region, hash, context), outputs keyed by (producing
/// input's region + context, payload). itids are ordinals, so they are
/// compared via the input they name, not by value.
std::vector<std::string> CanonicalPageRecords(
    const std::vector<InputTupleRec>& inputs,
    const std::vector<OutputTupleRec>& outputs) {
  std::vector<std::string> keys;
  std::vector<std::string> input_key(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::string key;
    key += std::to_string(inputs[i].region.start) + ":" +
           std::to_string(inputs[i].region.end) + ":" +
           std::to_string(inputs[i].region_hash) + ":";
    EncodeTuple(inputs[i].context, &key);
    input_key[i] = key;
    keys.push_back("I " + key);
  }
  for (const OutputTupleRec& out : outputs) {
    std::string key = "O ";
    EXPECT_GE(out.itid, 0);
    EXPECT_LT(static_cast<size_t>(out.itid), inputs.size());
    key += input_key[static_cast<size_t>(out.itid)] + " -> ";
    EncodeTuple(out.payload, &key);
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Decoded, canonicalized reuse records of every unit file under `dir`:
/// unit file name -> per-page sorted record keys.
std::map<std::string, std::vector<std::vector<std::string>>> DecodeReuseFiles(
    const std::string& dir, int num_pages) {
  std::map<std::string, std::vector<std::vector<std::string>>> decoded;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.size() < 3 || name.substr(name.size() - 3) != ".in") continue;
    std::string prefix = entry.path().string();
    prefix.resize(prefix.size() - 3);
    UnitReuseReader reader;
    EXPECT_TRUE(reader.Open(prefix).ok()) << prefix;
    auto& pages = decoded[name.substr(0, name.size() - 3)];
    for (int did = 0; did < num_pages; ++did) {
      std::vector<InputTupleRec> inputs;
      std::vector<OutputTupleRec> outputs;
      EXPECT_TRUE(reader.SeekPage(did, &inputs, &outputs).ok());
      pages.push_back(CanonicalPageRecords(inputs, outputs));
    }
    EXPECT_TRUE(reader.Close().ok());
  }
  return decoded;
}

struct EngineRun {
  std::vector<std::vector<Tuple>> per_snapshot;  // canonicalized results
  std::vector<RunStats> stats;                   // one per snapshot
  std::map<std::string, std::vector<std::vector<std::string>>> reuse_records;
};

EngineRun RunEngine(const ProgramSpec& spec,
                    const std::vector<Snapshot>& series, MatcherKind matcher,
                    int num_threads, bool fast_path, const std::string& tag) {
  EngineRun run;
  DelexEngine::Options options;
  options.work_dir = FreshDir(tag);
  options.num_threads = num_threads;
  options.disable_page_fast_path = !fast_path;
  DelexEngine engine(spec.plan, options);
  EXPECT_TRUE(engine.Init().ok());
  MatcherAssignment assignment =
      MatcherAssignment::Uniform(engine.NumUnits(), matcher);
  for (size_t i = 0; i < series.size(); ++i) {
    RunStats stats;
    auto rows = engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                   assignment, &stats);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    run.per_snapshot.push_back(Canonicalize(std::move(rows).ValueOrDie()));
    run.stats.push_back(std::move(stats));
  }
  run.reuse_records = DecodeReuseFiles(
      options.work_dir, static_cast<int>(series.back().NumPages()));
  return run;
}

struct Case {
  const char* program;  // chair → DBLife profile, play → Wikipedia
  MatcherKind matcher;
};

class FastPathEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(FastPathEquivalence, OnOffAgreeAtEveryThreadCount) {
  const Case& c = GetParam();
  ProgramSpec spec = *MakeProgram(c.program);
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 14;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 41);
  const bool dblife = profile.identical_fraction >= 0.9;

  std::string tag_base = std::string(c.program) + "-" +
                         MatcherKindName(c.matcher) + "-t";
  for (int threads : {1, 2, 8}) {
    std::string tag = tag_base + std::to_string(threads);
    EngineRun off =
        RunEngine(spec, series, c.matcher, threads, false, tag + "-off");
    EngineRun on =
        RunEngine(spec, series, c.matcher, threads, true, tag + "-on");

    // Theorem-1 equivalence: identical result tuples per snapshot.
    ASSERT_EQ(off.per_snapshot.size(), on.per_snapshot.size());
    for (size_t i = 0; i < off.per_snapshot.size(); ++i) {
      EXPECT_TRUE(SameResults(off.per_snapshot[i], on.per_snapshot[i]))
          << c.program << " " << MatcherKindName(c.matcher)
          << " threads=" << threads << " snapshot=" << i;
    }

    // The next generation's reuse records must decode identically — the
    // raw passthrough relocated, never altered.
    ASSERT_EQ(off.reuse_records.size(), on.reuse_records.size());
    for (const auto& [unit, off_pages] : off.reuse_records) {
      auto it = on.reuse_records.find(unit);
      ASSERT_NE(it, on.reuse_records.end()) << unit;
      ASSERT_EQ(off_pages.size(), it->second.size()) << unit;
      for (size_t p = 0; p < off_pages.size(); ++p) {
        EXPECT_EQ(off_pages[p], it->second[p])
            << unit << " page " << p << " threads=" << threads;
      }
    }

    // The fast path actually fired where the corpus makes it possible.
    int64_t pages_identical = 0;
    int64_t raw_bytes = 0;
    int64_t skipped = 0;
    for (const RunStats& s : on.stats) {
      pages_identical += s.pages_identical;
      raw_bytes += s.raw_bytes_copied;
      skipped += s.records_decoded_skipped;
    }
    if (dblife) {
      EXPECT_GT(pages_identical, 0) << "threads=" << threads;
      EXPECT_GT(raw_bytes, 0) << "threads=" << threads;
      EXPECT_GE(skipped, 0);
    }
    for (const RunStats& s : off.stats) {
      EXPECT_EQ(s.pages_identical, 0);
      EXPECT_EQ(s.raw_bytes_copied, 0);
    }
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.program) + "_" +
         MatcherKindName(info.param.matcher);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndMatchers, FastPathEquivalence,
    ::testing::Values(Case{"chair", MatcherKind::kDN},   // DBLife profile
                      Case{"chair", MatcherKind::kUD},
                      Case{"chair", MatcherKind::kST},
                      Case{"chair", MatcherKind::kRU},
                      Case{"play", MatcherKind::kDN},    // Wikipedia profile
                      Case{"play", MatcherKind::kUD},
                      Case{"play", MatcherKind::kST},
                      Case{"play", MatcherKind::kRU}),
    CaseName);

TEST(FastPath, ThreadCountsAgreeByteForByteWithFastPathOn) {
  // PR 1's determinism contract must survive the fast path: for a fixed
  // fast-path setting, every thread count produces byte-identical reuse
  // files (including .idx and the result cache).
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 14;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 43);

  auto run_files = [&](int threads) {
    DelexEngine::Options options;
    options.work_dir = FreshDir("bytes-t" + std::to_string(threads));
    options.num_threads = threads;
    DelexEngine engine(spec.plan, options);
    EXPECT_TRUE(engine.Init().ok());
    MatcherAssignment assignment =
        MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
    for (size_t i = 0; i < series.size(); ++i) {
      RunStats stats;
      auto rows = engine.RunSnapshot(
          series[i], i > 0 ? &series[i - 1] : nullptr, assignment, &stats);
      EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    }
    std::map<std::string, std::string> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(options.work_dir)) {
      std::ifstream in(entry.path(), std::ios::binary);
      files[entry.path().filename().string()] =
          std::string((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    }
    return files;
  };

  auto serial = run_files(1);
  EXPECT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    auto parallel = run_files(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(FastPath, StaleWorkDirDegradesToFullEvaluation) {
  // A result cache from a different corpus generation must not poison the
  // run: digests disagree, so the fast path demotes and results stay
  // correct. (The engine keys everything on the previous snapshot the
  // caller passes, so "stale" here means a prior series in the same dir.)
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 10;
  std::vector<Snapshot> series_a = GenerateSeries(profile, 2, 7);
  std::vector<Snapshot> series_b = GenerateSeries(profile, 2, 8);

  std::string dir = FreshDir("stale");
  DelexEngine::Options options;
  options.work_dir = dir;
  DelexEngine engine(spec.plan, options);
  ASSERT_TRUE(engine.Init().ok());
  MatcherAssignment assignment =
      MatcherAssignment::Uniform(engine.NumUnits(), MatcherKind::kST);
  RunStats stats;
  // Warm the dir with series A...
  ASSERT_TRUE(
      engine.RunSnapshot(series_a[0], nullptr, assignment, &stats).ok());
  // ...then feed series B, claiming A's snapshot as the previous. Pages
  // differ from what the cached generation was captured over.
  auto rows =
      engine.RunSnapshot(series_b[1], &series_a[0], assignment, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  // Ground truth: from-scratch evaluation of B[1].
  DelexEngine::Options fresh_options;
  fresh_options.work_dir = FreshDir("stale-fresh");
  DelexEngine fresh(spec.plan, fresh_options);
  ASSERT_TRUE(fresh.Init().ok());
  RunStats fresh_stats;
  auto expected =
      fresh.RunSnapshot(series_b[1], nullptr, assignment, &fresh_stats);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(SameResults(Canonicalize(std::move(rows).ValueOrDie()),
                          Canonicalize(std::move(expected).ValueOrDie())));
}

}  // namespace
}  // namespace delex
