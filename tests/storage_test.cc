// Tests for the storage substrate: block-buffered record files, snapshot
// persistence, and the reuse files with their single-forward-scan page
// seek semantics (§5.2).

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/record_file.h"
#include "storage/reuse_file.h"
#include "storage/snapshot.h"

namespace delex {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("delex-storage-" + name))
      .string();
}

// ---------------------------------------------------------------------------
// RecordWriter / RecordReader

TEST(RecordFile, RoundTripsRecordsOfManySizes) {
  std::string path = TempPath("roundtrip");
  std::vector<std::string> records;
  records.push_back("");
  records.push_back("x");
  records.push_back(std::string(100, 'a'));
  records.push_back(std::string(kBlockSize - 1, 'b'));   // straddles a block
  records.push_back(std::string(3 * kBlockSize, 'c'));   // multi-block
  records.push_back("tail");

  RecordWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (const std::string& r : records) ASSERT_TRUE(writer.Append(r).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.stats().records_written, 6);

  RecordReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  for (const std::string& expected : records) {
    std::string got;
    bool at_end = true;
    ASSERT_TRUE(reader.Next(&got, &at_end).ok());
    ASSERT_FALSE(at_end);
    EXPECT_EQ(got, expected);
  }
  std::string extra;
  bool at_end = false;
  ASSERT_TRUE(reader.Next(&extra, &at_end).ok());
  EXPECT_TRUE(at_end);
  EXPECT_EQ(reader.stats().records_read, 6);
}

TEST(RecordFile, EmptyFileReadsAsEnd) {
  std::string path = TempPath("empty");
  RecordWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Close().ok());
  RecordReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::string record;
  bool at_end = false;
  ASSERT_TRUE(reader.Next(&record, &at_end).ok());
  EXPECT_TRUE(at_end);
}

TEST(RecordFile, TruncatedBodyReportsCorruption) {
  std::string path = TempPath("corrupt");
  {
    RecordWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append(std::string(500, 'z')).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::filesystem::resize_file(path, 100);
  RecordReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::string record;
  bool at_end = false;
  EXPECT_TRUE(reader.Next(&record, &at_end).IsCorruption());
}

TEST(RecordFile, OpenMissingFileFails) {
  RecordReader reader;
  EXPECT_TRUE(reader.Open("/nonexistent/dir/x").IsIOError());
}

TEST(RecordFile, StatsCountBlocks) {
  std::string path = TempPath("blocks");
  RecordWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(std::string(2 * kBlockSize, 'q')).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_GE(writer.stats().BlocksWritten(), 2);
}

// ---------------------------------------------------------------------------
// Snapshot persistence

TEST(Snapshot, AddAndFindByUrl) {
  Snapshot snapshot;
  snapshot.AddPage("http://a", "content a");
  snapshot.AddPage("http://b", "content bb");
  EXPECT_EQ(snapshot.NumPages(), 2u);
  EXPECT_EQ(snapshot.TotalBytes(), 19);
  ASSERT_TRUE(snapshot.FindByUrl("http://b").has_value());
  EXPECT_EQ(*snapshot.FindByUrl("http://b"), 1u);
  EXPECT_FALSE(snapshot.FindByUrl("http://c").has_value());
  EXPECT_EQ(snapshot.pages()[0].did, 0);
  EXPECT_EQ(snapshot.pages()[1].did, 1);
}

TEST(Snapshot, WriteReadRoundTrip) {
  Snapshot snapshot;
  snapshot.AddPage("http://x", "alpha\nbeta");
  snapshot.AddPage("http://y", std::string(10000, 'k'));
  std::string path = TempPath("snapshot");
  ASSERT_TRUE(WriteSnapshot(snapshot, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumPages(), 2u);
  EXPECT_EQ(loaded->pages()[0].url, "http://x");
  EXPECT_EQ(loaded->pages()[0].content, "alpha\nbeta");
  EXPECT_EQ(loaded->pages()[1].content.size(), 10000u);
  EXPECT_TRUE(loaded->FindByUrl("http://y").has_value());
}

// ---------------------------------------------------------------------------
// Reuse files

TEST(ReuseFile, TupleCodecsRoundTrip) {
  InputTupleRec in;
  in.tid = 7;
  in.did = 3;
  in.region = TextSpan(100, 250);
  in.region_hash = 0xDEADBEEFCAFEBABEULL;
  in.context = {int64_t{9}, std::string("ctx")};
  std::string buffer;
  EncodeInputTuple(in, &buffer);
  auto decoded = DecodeInputTuple(buffer);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tid, 7);
  EXPECT_EQ(decoded->did, 3);
  EXPECT_EQ(decoded->region, TextSpan(100, 250));
  EXPECT_EQ(decoded->region_hash, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(decoded->context.size(), 2u);

  OutputTupleRec out;
  out.tid = 1;
  out.itid = 7;
  out.did = 3;
  out.payload = {TextSpan(120, 130), std::string("m")};
  buffer.clear();
  EncodeOutputTuple(out, &buffer);
  auto decoded_out = DecodeOutputTuple(buffer);
  ASSERT_TRUE(decoded_out.ok());
  EXPECT_EQ(decoded_out->itid, 7);
  EXPECT_EQ(std::get<TextSpan>(decoded_out->payload[0]), TextSpan(120, 130));
}

class ReuseFilesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = TempPath("reuse");
    UnitReuseWriter writer;
    ASSERT_TRUE(writer.Open(prefix_).ok());
    // Page 0: two regions, outputs on the first.
    int64_t tid = 0;
    ASSERT_TRUE(writer.AppendInput(0, TextSpan(0, 50), 11, {}, &tid).ok());
    ASSERT_TRUE(writer.AppendOutput(tid, 0, {TextSpan(5, 9)}).ok());
    ASSERT_TRUE(writer.AppendOutput(tid, 0, {TextSpan(20, 30)}).ok());
    ASSERT_TRUE(writer.AppendInput(0, TextSpan(50, 80), 12, {}, &tid).ok());
    // Page 2 (page 1 has no tuples at all): one region, one output.
    ASSERT_TRUE(writer.AppendInput(2, TextSpan(0, 40), 13, {}, &tid).ok());
    ASSERT_TRUE(writer.AppendOutput(tid, 2, {TextSpan(1, 2)}).ok());
    // Page 5.
    ASSERT_TRUE(writer.AppendInput(5, TextSpan(0, 10), 14, {}, &tid).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  std::string prefix_;
};

TEST_F(ReuseFilesFixture, SequentialSeekReturnsPerPageGroups) {
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;

  ASSERT_TRUE(reader.SeekPage(0, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 2u);
  EXPECT_EQ(outputs.size(), 2u);
  EXPECT_EQ(inputs[0].region, TextSpan(0, 50));
  EXPECT_EQ(outputs[0].itid, inputs[0].tid);

  ASSERT_TRUE(reader.SeekPage(1, &inputs, &outputs).ok());
  EXPECT_TRUE(inputs.empty());
  EXPECT_TRUE(outputs.empty());

  ASSERT_TRUE(reader.SeekPage(2, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
  EXPECT_EQ(outputs.size(), 1u);

  ASSERT_TRUE(reader.SeekPage(5, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
  EXPECT_TRUE(outputs.empty());
}

TEST_F(ReuseFilesFixture, SkippedGroupsAreConsumed) {
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  // Jump straight to page 5; pages 0 and 2 are skipped irrecoverably.
  ASSERT_TRUE(reader.SeekPage(5, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
}

TEST_F(ReuseFilesFixture, BackwardSeekDegradesToEmpty) {
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  ASSERT_TRUE(reader.SeekPage(2, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
  // Page 0's group was passed: an out-of-order request yields an empty
  // group (reuse degrades, correctness doesn't).
  ASSERT_TRUE(reader.SeekPage(0, &inputs, &outputs).ok());
  EXPECT_TRUE(inputs.empty());
  EXPECT_TRUE(outputs.empty());
  // Forward progress is unaffected.
  ASSERT_TRUE(reader.SeekPage(5, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
}

TEST(ReuseFile, WriterAssignsMonotonicTids) {
  std::string prefix = TempPath("tids");
  UnitReuseWriter writer;
  ASSERT_TRUE(writer.Open(prefix).ok());
  int64_t first = -1;
  int64_t second = -1;
  ASSERT_TRUE(writer.AppendInput(0, TextSpan(0, 1), 0, {}, &first).ok());
  ASSERT_TRUE(writer.AppendInput(0, TextSpan(1, 2), 0, {}, &second).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace delex
