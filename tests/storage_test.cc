// Tests for the storage substrate: block-buffered record files, snapshot
// persistence, and the reuse files with their single-forward-scan page
// seek semantics (§5.2).

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/record_file.h"
#include "storage/reuse_file.h"
#include "storage/snapshot.h"

namespace delex {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("delex-storage-" + name))
      .string();
}

// ---------------------------------------------------------------------------
// RecordWriter / RecordReader

TEST(RecordFile, RoundTripsRecordsOfManySizes) {
  std::string path = TempPath("roundtrip");
  std::vector<std::string> records;
  records.push_back("");
  records.push_back("x");
  records.push_back(std::string(100, 'a'));
  records.push_back(std::string(kBlockSize - 1, 'b'));   // straddles a block
  records.push_back(std::string(3 * kBlockSize, 'c'));   // multi-block
  records.push_back("tail");

  RecordWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (const std::string& r : records) ASSERT_TRUE(writer.Append(r).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.stats().records_written, 6);

  RecordReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  for (const std::string& expected : records) {
    std::string got;
    bool at_end = true;
    ASSERT_TRUE(reader.Next(&got, &at_end).ok());
    ASSERT_FALSE(at_end);
    EXPECT_EQ(got, expected);
  }
  std::string extra;
  bool at_end = false;
  ASSERT_TRUE(reader.Next(&extra, &at_end).ok());
  EXPECT_TRUE(at_end);
  EXPECT_EQ(reader.stats().records_read, 6);
}

TEST(RecordFile, EmptyFileReadsAsEnd) {
  std::string path = TempPath("empty");
  RecordWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Close().ok());
  RecordReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::string record;
  bool at_end = false;
  ASSERT_TRUE(reader.Next(&record, &at_end).ok());
  EXPECT_TRUE(at_end);
}

TEST(RecordFile, TruncatedBodyReportsCorruption) {
  std::string path = TempPath("corrupt");
  {
    RecordWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append(std::string(500, 'z')).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::filesystem::resize_file(path, 100);
  RecordReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::string record;
  bool at_end = false;
  EXPECT_TRUE(reader.Next(&record, &at_end).IsCorruption());
}

TEST(RecordFile, OpenMissingFileFails) {
  RecordReader reader;
  EXPECT_TRUE(reader.Open("/nonexistent/dir/x").IsIOError());
}

TEST(RecordFile, StatsCountBlocks) {
  std::string path = TempPath("blocks");
  RecordWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(std::string(2 * kBlockSize, 'q')).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_GE(writer.stats().BlocksWritten(), 2);
}

// ---------------------------------------------------------------------------
// Snapshot persistence

TEST(Snapshot, AddAndFindByUrl) {
  Snapshot snapshot;
  snapshot.AddPage("http://a", "content a");
  snapshot.AddPage("http://b", "content bb");
  EXPECT_EQ(snapshot.NumPages(), 2u);
  EXPECT_EQ(snapshot.TotalBytes(), 19);
  ASSERT_TRUE(snapshot.FindByUrl("http://b").has_value());
  EXPECT_EQ(*snapshot.FindByUrl("http://b"), 1u);
  EXPECT_FALSE(snapshot.FindByUrl("http://c").has_value());
  EXPECT_EQ(snapshot.pages()[0].did, 0);
  EXPECT_EQ(snapshot.pages()[1].did, 1);
}

TEST(Snapshot, WriteReadRoundTrip) {
  Snapshot snapshot;
  snapshot.AddPage("http://x", "alpha\nbeta");
  snapshot.AddPage("http://y", std::string(10000, 'k'));
  std::string path = TempPath("snapshot");
  ASSERT_TRUE(WriteSnapshot(snapshot, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumPages(), 2u);
  EXPECT_EQ(loaded->pages()[0].url, "http://x");
  EXPECT_EQ(loaded->pages()[0].content, "alpha\nbeta");
  EXPECT_EQ(loaded->pages()[1].content.size(), 10000u);
  EXPECT_TRUE(loaded->FindByUrl("http://y").has_value());
}

// ---------------------------------------------------------------------------
// Reuse files

TEST(ReuseFile, TupleCodecsRoundTrip) {
  // Format v2 records carry no tid/did — the decoder leaves them zero for
  // the reader to synthesize from the page header.
  InputTupleRec in;
  in.region = TextSpan(100, 250);
  in.region_hash = 0xDEADBEEFCAFEBABEULL;
  in.context = {int64_t{9}, std::string("ctx")};
  std::string buffer;
  EncodeInputTuple(in, &buffer);
  auto decoded = DecodeInputTuple(buffer);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tid, 0);
  EXPECT_EQ(decoded->did, 0);
  EXPECT_EQ(decoded->region, TextSpan(100, 250));
  EXPECT_EQ(decoded->region_hash, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(decoded->context.size(), 2u);

  OutputTupleRec out;
  out.itid = 7;
  out.payload = {TextSpan(120, 130), std::string("m")};
  buffer.clear();
  EncodeOutputTuple(out, &buffer);
  auto decoded_out = DecodeOutputTuple(buffer);
  ASSERT_TRUE(decoded_out.ok());
  EXPECT_EQ(decoded_out->itid, 7);
  EXPECT_EQ(std::get<TextSpan>(decoded_out->payload[0]), TextSpan(120, 130));
}

TEST(ReuseFile, PageIndexEntryCodecRoundTrips) {
  PageIndexEntry entry;
  entry.did = 42;
  entry.page_digest = 0x0123456789ABCDEFULL;
  entry.in_offset = 100;
  entry.in_bytes = 250;
  entry.n_inputs = 3;
  entry.out_offset = 64;
  entry.out_bytes = 90;
  entry.n_outputs = 2;
  std::string buffer;
  EncodePageIndexEntry(entry, &buffer);
  auto decoded = DecodePageIndexEntry(buffer);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->did, 42);
  EXPECT_EQ(decoded->page_digest, 0x0123456789ABCDEFULL);
  EXPECT_EQ(decoded->in_offset, 100);
  EXPECT_EQ(decoded->in_bytes, 250);
  EXPECT_EQ(decoded->n_inputs, 3);
  EXPECT_EQ(decoded->out_offset, 64);
  EXPECT_EQ(decoded->out_bytes, 90);
  EXPECT_EQ(decoded->n_outputs, 2);
  // Truncated entries are corruption, not garbage.
  EXPECT_TRUE(DecodePageIndexEntry(
                  std::string_view(buffer).substr(0, buffer.size() - 1))
                  .status()
                  .IsCorruption());
}

PageCapture MakeCapture(
    std::vector<std::pair<TextSpan, std::vector<Tuple>>> groups,
    uint64_t base_hash) {
  PageCapture capture;
  for (size_t i = 0; i < groups.size(); ++i) {
    PageCapture::Group& g = capture.groups.emplace_back();
    g.region = groups[i].first;
    g.region_hash = base_hash + i;
    g.outputs = std::move(groups[i].second);
  }
  return capture;
}

class ReuseFilesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = TempPath("reuse");
    UnitReuseWriter writer;
    ASSERT_TRUE(writer.Open(prefix_).ok());
    // Page 0: two regions, outputs on the first.
    ASSERT_TRUE(
        writer
            .CommitPage(0, /*page_digest=*/1000,
                        MakeCapture({{TextSpan(0, 50),
                                      {{TextSpan(5, 9)}, {TextSpan(20, 30)}}},
                                     {TextSpan(50, 80), {}}},
                                    11))
            .ok());
    // Page 1 has no tuples at all (but still gets a header + index entry).
    ASSERT_TRUE(writer.CommitPage(1, 1001, PageCapture()).ok());
    // Page 2: one region, one output.
    ASSERT_TRUE(writer
                    .CommitPage(2, 1002,
                                MakeCapture({{TextSpan(0, 40),
                                              {{TextSpan(1, 2)}}}},
                                            13))
                    .ok());
    ASSERT_TRUE(writer.CommitPage(3, 1003, PageCapture()).ok());
    ASSERT_TRUE(writer.CommitPage(4, 1004, PageCapture()).ok());
    // Page 5: one region, no outputs.
    ASSERT_TRUE(
        writer.CommitPage(5, 1005, MakeCapture({{TextSpan(0, 10), {}}}, 14))
            .ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  std::string prefix_;
};

TEST_F(ReuseFilesFixture, SequentialSeekReturnsPerPageGroups) {
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;

  ASSERT_TRUE(reader.SeekPage(0, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 2u);
  EXPECT_EQ(outputs.size(), 2u);
  EXPECT_EQ(inputs[0].region, TextSpan(0, 50));
  EXPECT_EQ(outputs[0].itid, inputs[0].tid);

  ASSERT_TRUE(reader.SeekPage(1, &inputs, &outputs).ok());
  EXPECT_TRUE(inputs.empty());
  EXPECT_TRUE(outputs.empty());

  ASSERT_TRUE(reader.SeekPage(2, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
  EXPECT_EQ(outputs.size(), 1u);

  ASSERT_TRUE(reader.SeekPage(5, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
  EXPECT_TRUE(outputs.empty());
}

TEST_F(ReuseFilesFixture, SkippedGroupsAreConsumed) {
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  // Jump straight to page 5; pages 0 and 2 are skipped irrecoverably.
  ASSERT_TRUE(reader.SeekPage(5, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
}

TEST_F(ReuseFilesFixture, BackwardSeekDegradesToEmpty) {
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  ASSERT_TRUE(reader.SeekPage(2, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
  // Page 0's group was passed: an out-of-order request yields an empty
  // group (reuse degrades, correctness doesn't).
  ASSERT_TRUE(reader.SeekPage(0, &inputs, &outputs).ok());
  EXPECT_TRUE(inputs.empty());
  EXPECT_TRUE(outputs.empty());
  // Forward progress is unaffected.
  ASSERT_TRUE(reader.SeekPage(5, &inputs, &outputs).ok());
  EXPECT_EQ(inputs.size(), 1u);
}

TEST_F(ReuseFilesFixture, ReaderSynthesizesPageLocalOrdinals) {
  // v2 records carry no tid/did on disk; the reader stamps did from the
  // page header and tid as the ordinal within the page, restarting at 0
  // for every page (that restart is what makes raw page copies legal).
  UnitReuseReader reader;
  ASSERT_TRUE(reader.Open(prefix_).ok());
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;

  ASSERT_TRUE(reader.SeekPage(0, &inputs, &outputs).ok());
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0].tid, 0);
  EXPECT_EQ(inputs[1].tid, 1);
  EXPECT_EQ(inputs[0].did, 0);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0].itid, 0);
  EXPECT_EQ(outputs[1].itid, 0);
  EXPECT_EQ(outputs[0].did, 0);

  ASSERT_TRUE(reader.SeekPage(2, &inputs, &outputs).ok());
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].tid, 0);  // ordinals restart per page
  EXPECT_EQ(inputs[0].did, 2);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].itid, 0);
  EXPECT_EQ(outputs[0].did, 2);
}

TEST_F(ReuseFilesFixture, VersionOneFilesAreRejected) {
  // A file without the v2 magic record must fail loudly at Open, not
  // misparse its first record as a page header.
  std::string prefix = TempPath("reuse-v1");
  for (const char* suffix : {".in", ".out"}) {
    RecordWriter writer;
    ASSERT_TRUE(writer.Open(prefix + suffix).ok());
    ASSERT_TRUE(writer.Append("not a magic record").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  UnitReuseReader reader;
  EXPECT_TRUE(reader.Open(prefix).IsCorruption());
}

}  // namespace
}  // namespace delex
