// Theorem 1 (§7): Delex applied to snapshot P_{n+1} produces exactly the
// mentions that running the IE program from scratch produces — for every
// program, every matcher assignment, and both dataset profiles. These are
// the load-bearing tests of the whole reproduction: any violation of the
// (α, β) safety rules, capture format, or streaming reuse logic shows up
// here as a result mismatch.

#include <gtest/gtest.h>

#include <filesystem>

#include "harness/experiment.h"
#include "harness/programs.h"

namespace delex {
namespace {

std::string TempWorkDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("delex-test-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Shrinks a profile for test speed.
DatasetProfile SmallProfile(DatasetProfile profile, int pages) {
  profile.num_sources = pages;
  return profile;
}

class ProgramCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(ProgramCorrectness, DelexMatchesFromScratchAcrossSnapshots) {
  const std::string program_name = GetParam();
  auto spec_or = MakeProgram(program_name);
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();

  // infobox's CRFs are expensive; use fewer pages there.
  const int pages = program_name == "infobox" ? 12 : 25;
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), pages), 4, /*seed=*/7);

  auto no_reuse = MakeNoReuseSolution(spec);
  auto delex = MakeDelexSolution(spec, TempWorkDir("dx-" + program_name));

  auto baseline_run = RunSeries(no_reuse.get(), series, /*keep_results=*/true);
  ASSERT_TRUE(baseline_run.ok()) << baseline_run.status().ToString();
  auto delex_run = RunSeries(delex.get(), series, /*keep_results=*/true);
  ASSERT_TRUE(delex_run.ok()) << delex_run.status().ToString();

  ASSERT_EQ(baseline_run->results.size(), delex_run->results.size());
  for (size_t i = 0; i < baseline_run->results.size(); ++i) {
    EXPECT_TRUE(SameResults(baseline_run->results[i], delex_run->results[i]))
        << program_name << ": snapshot " << i + 2 << " differs ("
        << baseline_run->results[i].size() << " vs "
        << delex_run->results[i].size() << " tuples)";
  }
}

TEST_P(ProgramCorrectness, CyclexMatchesFromScratch) {
  const std::string program_name = GetParam();
  auto spec_or = MakeProgram(program_name);
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();

  const int pages = program_name == "infobox" ? 8 : 15;
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), pages), 3, /*seed=*/11);

  auto no_reuse = MakeNoReuseSolution(spec);
  auto cyclex = MakeCyclexSolution(spec, TempWorkDir("cy-" + program_name));

  auto baseline_run = RunSeries(no_reuse.get(), series, /*keep_results=*/true);
  ASSERT_TRUE(baseline_run.ok()) << baseline_run.status().ToString();
  auto cyclex_run = RunSeries(cyclex.get(), series, /*keep_results=*/true);
  ASSERT_TRUE(cyclex_run.ok()) << cyclex_run.status().ToString();

  for (size_t i = 0; i < baseline_run->results.size(); ++i) {
    EXPECT_TRUE(SameResults(baseline_run->results[i], cyclex_run->results[i]))
        << program_name << ": snapshot " << i + 2 << " differs";
  }
}

TEST_P(ProgramCorrectness, ShortcutMatchesFromScratch) {
  const std::string program_name = GetParam();
  auto spec_or = MakeProgram(program_name);
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  ProgramSpec spec = std::move(spec_or).ValueOrDie();

  const int pages = program_name == "infobox" ? 8 : 15;
  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), pages), 3, /*seed=*/13);

  auto no_reuse = MakeNoReuseSolution(spec);
  auto shortcut = MakeShortcutSolution(spec);

  auto baseline_run = RunSeries(no_reuse.get(), series, /*keep_results=*/true);
  ASSERT_TRUE(baseline_run.ok()) << baseline_run.status().ToString();
  auto shortcut_run = RunSeries(shortcut.get(), series, /*keep_results=*/true);
  ASSERT_TRUE(shortcut_run.ok()) << shortcut_run.status().ToString();

  for (size_t i = 0; i < baseline_run->results.size(); ++i) {
    EXPECT_TRUE(SameResults(baseline_run->results[i], shortcut_run->results[i]))
        << program_name << ": snapshot " << i + 2 << " differs";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ProgramCorrectness,
                         ::testing::Values("talk", "chair", "advise",
                                           "blockbuster", "play", "award",
                                           "infobox"),
                         [](const auto& info) { return info.param; });

/// Every fixed matcher assignment must preserve correctness — the
/// optimizer only affects speed, never results (§6).
class AssignmentCorrectness : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(AssignmentCorrectness, UniformAssignmentPreservesResults) {
  auto spec_or = MakeProgram("play");
  ASSERT_TRUE(spec_or.ok());
  ProgramSpec spec = std::move(spec_or).ValueOrDie();

  std::vector<Snapshot> series =
      GenerateSeries(SmallProfile(spec.Profile(), 20), 3, /*seed=*/17);

  auto no_reuse = MakeNoReuseSolution(spec);
  auto baseline_run = RunSeries(no_reuse.get(), series, true);
  ASSERT_TRUE(baseline_run.ok());

  DelexSolutionOptions options;
  options.forced_assignment = MatcherAssignment::Uniform(4, GetParam());
  auto delex = MakeDelexSolution(
      spec,
      TempWorkDir(std::string("asg-") + MatcherKindName(GetParam())),
      options);
  auto delex_run = RunSeries(delex.get(), series, true);
  ASSERT_TRUE(delex_run.ok()) << delex_run.status().ToString();

  for (size_t i = 0; i < baseline_run->results.size(); ++i) {
    EXPECT_TRUE(SameResults(baseline_run->results[i], delex_run->results[i]))
        << "assignment " << MatcherKindName(GetParam()) << ", snapshot "
        << i + 2;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, AssignmentCorrectness,
                         ::testing::Values(MatcherKind::kDN, MatcherKind::kUD,
                                           MatcherKind::kST, MatcherKind::kRU),
                         [](const auto& info) {
                           return MatcherKindName(info.param);
                         });

}  // namespace
}  // namespace delex
