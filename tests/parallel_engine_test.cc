// Parallel-engine tests: Theorem-1 equivalence under page parallelism.
//
// The page pipeline (reader prefetch → concurrent per-page plan walks →
// ordered write-back) must be invisible to every observer: for any thread
// count, the result multiset, the per-snapshot sorted tuples, and the
// *bytes* of the captured next-generation reuse files must equal the
// serial (num_threads=1, legacy-path) run. Both dataset profiles × all
// four matchers are exercised, plus the ThreadPool's error contract.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"

namespace delex {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("delex-parallel-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

/// Bytes of every reuse file under `dir`, keyed by file name.
std::map<std::string, std::string> ReuseFileBytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files[entry.path().filename().string()] =
        ReadFileBytes(entry.path().string());
  }
  return files;
}

struct EngineRun {
  std::vector<std::vector<Tuple>> per_snapshot;  // canonicalized results
  std::map<std::string, std::string> reuse_files;  // final generation bytes
  RunStats last_stats;
};

/// Runs `series` through a fresh engine at `num_threads`, uniform
/// `matcher` assignment, collecting per-snapshot canonical results and the
/// final captured reuse files.
EngineRun RunEngine(const ProgramSpec& spec, const std::vector<Snapshot>& series,
                    MatcherKind matcher, int num_threads,
                    const std::string& tag) {
  EngineRun run;
  DelexEngine::Options options;
  options.work_dir = FreshDir(tag);
  options.num_threads = num_threads;
  DelexEngine engine(spec.plan, options);
  EXPECT_TRUE(engine.Init().ok());
  MatcherAssignment assignment =
      MatcherAssignment::Uniform(engine.NumUnits(), matcher);
  for (size_t i = 0; i < series.size(); ++i) {
    auto rows = engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                                   assignment, &run.last_stats);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    run.per_snapshot.push_back(Canonicalize(std::move(rows).ValueOrDie()));
  }
  run.reuse_files = ReuseFileBytes(options.work_dir);
  return run;
}

/// Profile tag × matcher: the full determinism matrix of the issue.
struct Case {
  const char* program;  // chair → DBLife profile, play → Wikipedia
  MatcherKind matcher;
};

class ParallelDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelDeterminism, ThreadCountsAgreeByteForByte) {
  const Case& c = GetParam();
  ProgramSpec spec = *MakeProgram(c.program);
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 15;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 97);

  std::string tag_base = std::string(c.program) + "-" +
                         MatcherKindName(c.matcher) + "-t";
  EngineRun serial = RunEngine(spec, series, c.matcher, 1, tag_base + "1");
  for (int threads : {2, 8}) {
    EngineRun parallel = RunEngine(spec, series, c.matcher, threads,
                                   tag_base + std::to_string(threads));
    ASSERT_EQ(serial.per_snapshot.size(), parallel.per_snapshot.size());
    for (size_t i = 0; i < serial.per_snapshot.size(); ++i) {
      EXPECT_TRUE(SameResults(serial.per_snapshot[i], parallel.per_snapshot[i]))
          << c.program << " " << MatcherKindName(c.matcher) << " threads="
          << threads << " snapshot=" << i;
    }
    // Next-generation reuse files must be byte-identical: the ordered
    // write-back stage preserves page order and tid monotonicity exactly.
    ASSERT_EQ(serial.reuse_files.size(), parallel.reuse_files.size());
    for (const auto& [name, bytes] : serial.reuse_files) {
      auto it = parallel.reuse_files.find(name);
      ASSERT_NE(it, parallel.reuse_files.end()) << name;
      EXPECT_EQ(bytes, it->second)
          << name << " differs at threads=" << threads;
    }
    // Deterministic counters (not timers) must also agree: the per-page
    // shards merge to the same totals regardless of scheduling.
    ASSERT_EQ(serial.last_stats.units.size(), parallel.last_stats.units.size());
    for (size_t u = 0; u < serial.last_stats.units.size(); ++u) {
      EXPECT_EQ(serial.last_stats.units[u].input_tuples,
                parallel.last_stats.units[u].input_tuples);
      EXPECT_EQ(serial.last_stats.units[u].output_tuples,
                parallel.last_stats.units[u].output_tuples);
      EXPECT_EQ(serial.last_stats.units[u].copied_tuples,
                parallel.last_stats.units[u].copied_tuples);
      EXPECT_EQ(serial.last_stats.units[u].extracted_tuples,
                parallel.last_stats.units[u].extracted_tuples);
      EXPECT_EQ(serial.last_stats.units[u].chars_extracted,
                parallel.last_stats.units[u].chars_extracted);
      EXPECT_EQ(serial.last_stats.units[u].exact_region_hits,
                parallel.last_stats.units[u].exact_region_hits);
    }
    EXPECT_EQ(serial.last_stats.pages, parallel.last_stats.pages);
    EXPECT_EQ(serial.last_stats.pages_with_previous,
              parallel.last_stats.pages_with_previous);
    EXPECT_EQ(serial.last_stats.reuse_write_io.bytes_written,
              parallel.last_stats.reuse_write_io.bytes_written);
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.program) + "_" +
         MatcherKindName(info.param.matcher);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndMatchers, ParallelDeterminism,
    ::testing::Values(Case{"chair", MatcherKind::kDN},   // DBLife profile
                      Case{"chair", MatcherKind::kUD},
                      Case{"chair", MatcherKind::kST},
                      Case{"chair", MatcherKind::kRU},
                      Case{"play", MatcherKind::kDN},    // Wikipedia profile
                      Case{"play", MatcherKind::kUD},
                      Case{"play", MatcherKind::kST},
                      Case{"play", MatcherKind::kRU}),
    CaseName);

TEST(ParallelEngine, HardwareConcurrencyOptionRuns) {
  // num_threads = 0 resolves to hardware_concurrency and must behave like
  // any other thread count.
  ProgramSpec spec = *MakeProgram("blockbuster");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 10;
  std::vector<Snapshot> series = GenerateSeries(profile, 2, 11);
  EngineRun serial = RunEngine(spec, series, MatcherKind::kST, 1, "hw-serial");
  EngineRun hw = RunEngine(spec, series, MatcherKind::kST, 0, "hw-auto");
  for (size_t i = 0; i < serial.per_snapshot.size(); ++i) {
    EXPECT_TRUE(SameResults(serial.per_snapshot[i], hw.per_snapshot[i]));
  }
  for (const auto& [name, bytes] : serial.reuse_files) {
    EXPECT_EQ(bytes, hw.reuse_files[name]) << name;
  }
}

TEST(ParallelEngine, OptimizerDrivenSolutionMatchesAcrossThreadCounts) {
  // End-to-end through the harness (optimizer choosing assignments per
  // snapshot): parallel Delex must equal serial Delex and from-scratch.
  ProgramSpec spec = *MakeProgram("chair");
  DatasetProfile profile = spec.Profile();
  profile.num_sources = 15;
  std::vector<Snapshot> series = GenerateSeries(profile, 3, 33);

  auto no_reuse = MakeNoReuseSolution(spec);
  auto base_run = RunSeries(no_reuse.get(), series, true);
  ASSERT_TRUE(base_run.ok());

  for (int threads : {1, 4}) {
    DelexSolutionOptions options;
    options.num_threads = threads;
    auto delex = MakeDelexSolution(
        spec, FreshDir("opt-t" + std::to_string(threads)), options);
    auto run = RunSeries(delex.get(), series, true);
    ASSERT_TRUE(run.ok());
    for (size_t i = 0; i < base_run->results.size(); ++i) {
      EXPECT_TRUE(SameResults(base_run->results[i], run->results[i]))
          << "threads=" << threads << " snapshot=" << i;
    }
  }
}

TEST(ThreadPool, RunsAllTasksAcrossThreads) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count]() {
      count.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, FirstErrorWinsAndLaterTasksStillRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&ran]() {
    ran.fetch_add(1);
    return Status::IOError("disk gone");
  });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran]() {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  Status status = pool.Wait();
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(ran.load(), 11);  // error does not cancel queued work
  // The error is consumed; the pool is reusable.
  pool.Submit([]() { return Status::OK(); });
  EXPECT_TRUE(pool.Wait().ok());
}

TEST(ThreadPool, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  pool.Submit([]() -> Status { throw std::runtime_error("boom"); });
  Status status = pool.Wait();
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace delex
