// Corrupt-artifact degradation: a work dir whose previous-generation
// files were truncated, bit-flipped, or version-skewed must never fail a
// run or change its results — the engine drops the corrupt artifact,
// re-extracts the affected pages from scratch, and the final result
// multiset is identical to a clean run ("degrade, never miscompute").
//
// Several corruption shapes here reproduce fuzzer findings against the
// decoders (giant length prefix, truncated page header); committing them
// as tests keeps the fixes regression-locked at the engine level too.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "delex/engine.h"
#include "harness/experiment.h"
#include "harness/programs.h"
#include "shard/sharded_engine.h"

namespace delex {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("delex-corrupt-" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

class CorruptInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetProfile profile = DatasetProfile::DBLife();
    profile.num_sources = 10;
    series_ = GenerateSeries(profile, 2, /*seed=*/1234);
    auto program = MakeProgram("talk");
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    plan_ = program->plan;

    // Clean reference: both generations in a pristine work dir.
    const std::string dir = FreshDir("baseline");
    DelexEngine::Options options;
    options.work_dir = dir;
    DelexEngine engine(plan_, options);
    ASSERT_TRUE(engine.Init().ok());
    num_units_ = engine.NumUnits();
    auto rows0 = engine.RunSnapshot(series_[0], nullptr, Assignment(), nullptr);
    ASSERT_TRUE(rows0.ok()) << rows0.status().ToString();
    auto rows1 = engine.RunSnapshot(series_[1], &series_[0], Assignment(),
                                    nullptr);
    ASSERT_TRUE(rows1.ok()) << rows1.status().ToString();
    baseline_ = Canonicalize(std::move(*rows1));
  }

  MatcherAssignment Assignment() const {
    return MatcherAssignment::Uniform(num_units_, MatcherKind::kST);
  }

  /// Runs generation 0 into a fresh work dir, lets `corrupt` damage the
  /// captured artifacts, then resumes with a new engine instance and runs
  /// generation 1. Returns the (canonicalized) generation-1 results.
  std::vector<Tuple> RunWithCorruption(
      const std::string& tag,
      const std::function<void(const std::string& dir)>& corrupt,
      RunStats* stats) {
    const std::string dir = FreshDir(tag);
    {
      DelexEngine::Options options;
      options.work_dir = dir;
      DelexEngine engine(plan_, options);
      EXPECT_TRUE(engine.Init().ok());
      auto rows0 =
          engine.RunSnapshot(series_[0], nullptr, Assignment(), nullptr);
      EXPECT_TRUE(rows0.ok()) << rows0.status().ToString();
    }
    corrupt(dir);
    DelexEngine::Options options;
    options.work_dir = dir;
    DelexEngine engine(plan_, options);
    EXPECT_TRUE(engine.Init().ok());
    EXPECT_TRUE(engine.Resume(1).ok());
    auto rows1 =
        engine.RunSnapshot(series_[1], &series_[0], Assignment(), stats);
    EXPECT_TRUE(rows1.ok()) << rows1.status().ToString();
    if (!rows1.ok()) return {};
    return Canonicalize(std::move(*rows1));
  }

  std::vector<Snapshot> series_;
  xlog::PlanNodePtr plan_;
  size_t num_units_ = 0;
  std::vector<Tuple> baseline_;
};

TEST_F(CorruptInputTest, TruncatedInputFileDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "trunc-in",
      [&](const std::string& dir) {
        const std::string path = dir + "/unit0.gen0.in";
        std::string bytes = ReadFile(path);
        WriteFile(path, bytes.substr(0, bytes.size() / 2));
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  EXPECT_GT(stats.reuse_corrupt_drops, 0);
}

TEST_F(CorruptInputTest, TruncatedOutputFileDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "trunc-out",
      [&](const std::string& dir) {
        const std::string path = dir + "/unit0.gen0.out";
        std::string bytes = ReadFile(path);
        WriteFile(path, bytes.substr(0, bytes.size() / 3));
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  EXPECT_GT(stats.reuse_corrupt_drops, 0);
}

TEST_F(CorruptInputTest, MagicVersionSkewDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "magic-skew",
      [&](const std::string& dir) {
        // "DLXRV2IN" -> "DLXRV1IN": an older/newer format generation must
        // be rejected wholesale at open, not half-parsed.
        const std::string path = dir + "/unit0.gen0.in";
        std::string bytes = ReadFile(path);
        const size_t at = bytes.find("DLXRV2IN");
        ASSERT_NE(at, std::string::npos);
        bytes[at + 5] = '1';
        WriteFile(path, bytes);
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  EXPECT_GT(stats.reuse_corrupt_drops, 0);
}

TEST_F(CorruptInputTest, GiantLengthPrefixDegradesToCleanResults) {
  // Fuzzer regression: an all-ones length prefix once overflowed the
  // reader's `8 + length` buffer math; it must now be a clean Corruption
  // at the storage layer and a degraded unit at the engine layer.
  RunStats stats;
  auto rows = RunWithCorruption(
      "giant-length",
      [&](const std::string& dir) {
        const std::string path = dir + "/unit0.gen0.in";
        std::string bytes = ReadFile(path);
        for (size_t i = 0; i < 8 && i < bytes.size(); ++i) bytes[i] = '\xff';
        WriteFile(path, bytes);
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  EXPECT_GT(stats.reuse_corrupt_drops, 0);
}

TEST_F(CorruptInputTest, BitFlippedRecordBodyDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "bit-flip-in",
      [&](const std::string& dir) {
        // Flip one bit deep in the record stream (past the magic), where
        // it lands in a length prefix or an encoded payload.
        const std::string path = dir + "/unit0.gen0.in";
        std::string bytes = ReadFile(path);
        ASSERT_GT(bytes.size(), 40u);
        bytes[40] = static_cast<char>(bytes[40] ^ 0x80);
        WriteFile(path, bytes);
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  // A mid-body flip may corrupt a decoded value without breaking framing
  // (then matching simply finds nothing to reuse) or break the scan (then
  // the unit is dropped) — either way results above stay identical, so no
  // drop-count assertion here.
}

TEST_F(CorruptInputTest, CorruptIndexSidecarDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "bit-flip-idx",
      [&](const std::string& dir) {
        const std::string path = dir + "/unit0.gen0.idx";
        std::string bytes = ReadFile(path);
        ASSERT_GT(bytes.size(), 24u);
        bytes[24] = static_cast<char>(bytes[24] ^ 0x40);
        WriteFile(path, bytes);
      },
      &stats);
  // A bad index never even costs reuse: the raw tier falls back to the
  // decode-copy tier (or the decode path), results identical.
  EXPECT_EQ(rows, baseline_);
  EXPECT_EQ(stats.reuse_corrupt_drops, 0);
}

TEST_F(CorruptInputTest, MissingIndexSidecarDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "missing-idx",
      [&](const std::string& dir) {
        std::filesystem::remove(dir + "/unit0.gen0.idx");
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  EXPECT_EQ(stats.reuse_corrupt_drops, 0);
}

TEST_F(CorruptInputTest, TruncatedResultCacheDegradesToCleanResults) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "trunc-results",
      [&](const std::string& dir) {
        const std::string path = dir + "/results.gen0";
        std::string bytes = ReadFile(path);
        WriteFile(path, bytes.substr(0, bytes.size() / 2));
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  // The truncation either hits mid-scan (cache dropped, counted) or the
  // damaged tail is never reached; identical pages demote either way.
}

TEST_F(CorruptInputTest, ResultCacheMagicSwapDisablesFastPath) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "results-magic",
      [&](const std::string& dir) {
        // Swap in a *reuse-file* magic: right family, wrong file kind.
        const std::string path = dir + "/results.gen0";
        std::string bytes = ReadFile(path);
        const size_t at = bytes.find("DLXRV2RS");
        ASSERT_NE(at, std::string::npos);
        bytes.replace(at, 8, "DLXRV2IN");
        WriteFile(path, bytes);
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  // Open rejects the cache, so no page takes the identical fast path.
  EXPECT_EQ(stats.pages_identical, 0);
}

TEST_F(CorruptInputTest, TornShardReuseFileDegradesOnlyThatShard) {
  // Sharded run with one shard's reuse file torn mid-record (a crash
  // during capture): the damaged shard drops its reuse and recomputes;
  // the OTHER shards' files are untouched and the merged results still
  // equal the clean baseline.
  const std::string dir = FreshDir("torn-shard");
  const int num_shards = 3;
  shard::ShardedEngine::Options options;
  options.work_dir = dir;
  options.num_shards = num_shards;
  options.num_threads = 2;
  {
    shard::ShardedEngine engine(plan_, options);
    ASSERT_TRUE(engine.Init().ok());
    ASSERT_TRUE(
        engine.RunSnapshot(series_[0], nullptr, Assignment(), nullptr).ok());
  }
  // Tear shard 1's unit reuse input mid-record.
  const std::string torn_path = dir + "/shard1/unit0.gen0.in";
  std::string torn_bytes = ReadFile(torn_path);
  ASSERT_GT(torn_bytes.size(), 2u);
  WriteFile(torn_path, torn_bytes.substr(0, torn_bytes.size() / 2));

  shard::ShardedEngine engine(plan_, options);
  ASSERT_TRUE(engine.Init().ok());
  ASSERT_TRUE(engine.Resume(1).ok());
  RunStats stats;
  shard::ShardedEngine::ShardRunStats shard_stats;
  std::vector<MatcherAssignment> assignments(
      static_cast<size_t>(num_shards), Assignment());
  auto rows = engine.RunSnapshot(series_[1], &series_[0], assignments, &stats,
                                 &shard_stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(Canonicalize(std::move(*rows)), baseline_);
  // Only the torn shard registered corruption; the others reused cleanly.
  ASSERT_EQ(shard_stats.per_shard.size(), static_cast<size_t>(num_shards));
  EXPECT_GT(shard_stats.per_shard[1].reuse_corrupt_drops, 0);
  EXPECT_EQ(shard_stats.per_shard[0].reuse_corrupt_drops, 0);
  EXPECT_EQ(shard_stats.per_shard[2].reuse_corrupt_drops, 0);
  EXPECT_GT(stats.reuse_corrupt_drops, 0);  // merged view folds the drop in
}

TEST_F(CorruptInputTest, EveryArtifactCorruptSimultaneously) {
  RunStats stats;
  auto rows = RunWithCorruption(
      "all-corrupt",
      [&](const std::string& dir) {
        // 10 bytes cannot even hold the magic record (8-byte length
        // prefix + 8 magic bytes), so every open-time check trips.
        for (const char* name :
             {"/unit0.gen0.in", "/unit0.gen0.out", "/unit0.gen0.idx",
              "/results.gen0"}) {
          const std::string path = dir + name;
          std::string bytes = ReadFile(path);
          WriteFile(path, bytes.substr(0, 10));
        }
      },
      &stats);
  EXPECT_EQ(rows, baseline_);
  EXPECT_GT(stats.reuse_corrupt_drops, 0);
  // Nothing identical can survive without a result cache.
  EXPECT_EQ(stats.pages_identical, 0);
}

}  // namespace
}  // namespace delex
