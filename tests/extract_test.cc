// Unit and property tests for the IE blackbox library. The crown jewel is
// the (α, β)-honesty property suite: for every shipped extractor, every
// mention it produces must (a) have an envelope shorter than the declared
// scope α, and (b) survive arbitrary perturbation of the text outside its
// β-context window (Definitions 2-3) — the two promises the entire reuse
// machinery stands on.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "common/random.h"
#include "corpus/vocab.h"
#include "corpus/generator.h"
#include "extract/crf_extractor.h"
#include "extract/dictionary_extractor.h"
#include "extract/pair_extractor.h"
#include "extract/regex_extractor.h"
#include "extract/registry.h"
#include "extract/repeat_extractor.h"
#include "extract/segment_extractor.h"
#include "extract/sentence_segmenter.h"

namespace delex {
namespace {

// ---------------------------------------------------------------------------
// DictionaryExtractor

TEST(DictionaryExtractor, FindsAllOccurrencesWithWordBoundaries) {
  DictionaryExtractor dict("d", {"Ann Chen", "SIGMOD"});
  std::string text = "Ann Chen chaired SIGMOD. SIGMODx is not SIGMOD.";
  auto out = dict.Extract(text, 0, {});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]), TextSpan(0, 8));
  EXPECT_EQ(std::get<TextSpan>(out[1][0]), TextSpan(17, 23));
  // "SIGMODx" rejected; trailing "SIGMOD." accepted (dot is a boundary).
  EXPECT_EQ(std::get<TextSpan>(out[2][0]), TextSpan(40, 46));
}

TEST(DictionaryExtractor, OverlappingTermsAllReported) {
  DictionaryExtractor dict("d", {"data", "database", "base"},
                           {.require_word_boundaries = false,
                            .emit_term = true,
                            .work_per_char = 0});
  auto out = dict.Extract("database", 0, {});
  std::multiset<std::string> terms;
  for (const Tuple& t : out) terms.insert(std::get<std::string>(t[1]));
  EXPECT_EQ(terms, (std::multiset<std::string>{"data", "database", "base"}));
}

TEST(DictionaryExtractor, AbsolutePositionsUseRegionBase) {
  DictionaryExtractor dict("d", {"xyz"});
  auto out = dict.Extract("a xyz b", 1000, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]), TextSpan(1002, 1005));
}

TEST(DictionaryExtractor, DuplicateTermsDeduplicated) {
  DictionaryExtractor dict("d", {"abc", "abc", "abc"});
  auto out = dict.Extract("abc", 0, {});
  EXPECT_EQ(out.size(), 1u);
}

TEST(DictionaryExtractor, ScopeBoundsLongestTerm) {
  DictionaryExtractor dict("d", {"ab", "abcdef"});
  EXPECT_EQ(dict.Scope(), 7);
  EXPECT_EQ(dict.ContextWidth(), 1);
}

TEST(DictionaryExtractor, EmptyRegionYieldsNothing) {
  DictionaryExtractor dict("d", {"x"});
  EXPECT_TRUE(dict.Extract("", 0, {}).empty());
}

TEST(DictionaryExtractor, StatsAccumulate) {
  DictionaryExtractor dict("d", {"ab"});
  dict.Extract("ab ab", 0, {});
  dict.Extract("zz", 5, {});
  EXPECT_EQ(dict.stats().calls, 2);
  EXPECT_EQ(dict.stats().chars_processed, 7);
  EXPECT_EQ(dict.stats().mentions_emitted, 2);
}

// ---------------------------------------------------------------------------
// RegexExtractor

TEST(RegexExtractor, EmitsOverlappingStartPositions) {
  // Every start position is probed independently (required for honesty).
  RegexOptions opts;
  opts.scope = 10;
  opts.work_per_char = 0;
  RegexExtractor re("r", "aa", opts);
  auto out = re.Extract("aaa", 0, {});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]), TextSpan(0, 2));
  EXPECT_EQ(std::get<TextSpan>(out[1][0]), TextSpan(1, 3));
}

TEST(RegexExtractor, ScopeFilterDropsLongMatches) {
  RegexOptions opts;
  opts.scope = 4;
  opts.work_per_char = 0;
  RegexExtractor re("r", "a+", opts);
  auto out = re.Extract("aaaaaaa aaa", 0, {});
  // The long run (len 7 >= 4) is dropped at its head positions but suffix
  // starts under the scope are kept, as is the short run.
  for (const Tuple& t : out) {
    EXPECT_LT(std::get<TextSpan>(t[0]).length(), 4);
  }
}

TEST(RegexExtractor, FirstCharsSkipIsTransparent) {
  RegexOptions with;
  with.scope = 16;
  with.first_chars = "0123456789";
  with.work_per_char = 0;
  RegexOptions without = with;
  without.first_chars.clear();
  RegexExtractor fast("f", R"(\d+ pm)", with);
  RegexExtractor slow("s", R"(\d+ pm)", without);
  std::string text = "meet at 3 pm or 11 pm sharp";
  auto a = fast.Extract(text, 0, {});
  auto b = slow.Extract(text, 0, {});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::get<TextSpan>(a[i][0]), std::get<TextSpan>(b[i][0]));
  }
}

// ---------------------------------------------------------------------------
// SegmentExtractor

TEST(SegmentExtractor, SplitsOnDelimiter) {
  SegmentOptions opts;
  opts.delimiter = "\n\n";
  opts.work_per_char = 0;
  SegmentExtractor seg("s", opts);
  auto out = seg.Extract("one\n\ntwo\n\nthree", 0, {});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]), TextSpan(0, 3));
  EXPECT_EQ(std::get<TextSpan>(out[1][0]), TextSpan(5, 8));
  EXPECT_EQ(std::get<TextSpan>(out[2][0]), TextSpan(10, 15));
}

TEST(SegmentExtractor, OverlongSegmentTruncatedNotChunked) {
  SegmentOptions opts;
  opts.delimiter = "\n\n";
  opts.max_segment_length = 5;
  opts.work_per_char = 0;
  SegmentExtractor seg("s", opts);
  auto out = seg.Extract("abcdefghij\n\nxy", 0, {});
  // The long segment contributes exactly one α-1 chunk; no follow-ups
  // (those would be β-dishonest).
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]), TextSpan(0, 4));
  EXPECT_EQ(std::get<TextSpan>(out[1][0]), TextSpan(12, 14));
}

TEST(SegmentExtractor, RequiredPrefixFilters) {
  SegmentOptions opts;
  opts.delimiter = "\n";
  opts.required_prefix = "Talk:";
  opts.work_per_char = 0;
  SegmentExtractor seg("s", opts);
  auto out = seg.Extract("Talk: A\nNews: B\nTalk: C", 0, {});
  ASSERT_EQ(out.size(), 2u);
}

// ---------------------------------------------------------------------------
// PairExtractor

TEST(PairExtractor, PairsWithinWindowOnly) {
  auto left = std::make_shared<DictionaryExtractor>(
      "l", std::vector<std::string>{"Ann"},
      DictionaryOptions{.require_word_boundaries = true,
                        .emit_term = false,
                        .work_per_char = 0});
  RegexOptions ropts;
  ropts.scope = 8;
  ropts.work_per_char = 0;
  auto right = std::make_shared<RegexExtractor>("r", R"(\d pm)", ropts);
  PairExtractor pair("p", left, right, /*window=*/20);

  auto out = pair.Extract("Ann meets at 3 pm", 0, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]), TextSpan(0, 3));
  EXPECT_EQ(std::get<TextSpan>(out[0][1]), TextSpan(13, 17));

  auto far = pair.Extract("Ann sat. Later, much later on, at 3 pm", 0, {});
  EXPECT_TRUE(far.empty());  // envelope 38 >= window 20
}

TEST(PairExtractor, ScopeIsWindow) {
  auto left = std::make_shared<DictionaryExtractor>(
      "l", std::vector<std::string>{"a"});
  auto right = std::make_shared<DictionaryExtractor>(
      "r", std::vector<std::string>{"b"});
  PairExtractor pair("p", left, right, 77);
  EXPECT_EQ(pair.Scope(), 77);
  EXPECT_EQ(pair.OutputArity(), 2);
}

// ---------------------------------------------------------------------------
// SentenceSegmenter

TEST(SentenceSegmenter, SplitsAtRealBoundaries) {
  SentenceSegmenterOptions opts;
  opts.work_per_char = 0;
  SentenceSegmenter seg("s", opts);
  auto out =
      seg.Extract("First sentence. Second one here! A third?", 0, {});
  ASSERT_EQ(out.size(), 3u);
}

TEST(SentenceSegmenter, AbbreviationsAndDecimalsNotBoundaries) {
  SentenceSegmenterOptions opts;
  opts.work_per_char = 0;
  SentenceSegmenter seg("s", opts);
  auto out = seg.Extract("Dr. Chen paid 3.50 dollars. Then left.", 0, {});
  ASSERT_EQ(out.size(), 2u);
  // First sentence spans through "Dr." and "3.50".
  EXPECT_EQ(std::get<TextSpan>(out[0][0]).start, 0);
  EXPECT_EQ(std::get<TextSpan>(out[0][0]).end, 27);
}

TEST(SentenceSegmenter, InitialsNotBoundaries) {
  SentenceSegmenterOptions opts;
  opts.work_per_char = 0;
  SentenceSegmenter seg("s", opts);
  auto out = seg.Extract("F. Chen wrote it. Done.", 0, {});
  ASSERT_EQ(out.size(), 2u);
}

// ---------------------------------------------------------------------------
// CrfExtractor

TEST(CrfExtractor, DecodesDictionaryNamesAsMentions) {
  CrfModel model = CrfModel::Default();
  model.dictionary = {"Alice", "Chen"};
  CrfOptions opts;
  opts.work_per_char = 0;
  CrfExtractor crf("c", model, opts);
  auto out = crf.Extract("the actor Alice Chen appeared often", 0, {});
  ASSERT_EQ(out.size(), 1u);
  TextSpan mention = std::get<TextSpan>(out[0][0]);
  EXPECT_EQ(mention, TextSpan(10, 20));  // "Alice Chen"
}

TEST(CrfExtractor, TriggerBoostsFollowingToken) {
  CrfModel model = CrfModel::Default();
  model.triggers = {"played"};
  CrfOptions opts;
  opts.work_per_char = 0;
  CrfExtractor crf("c", model, opts);
  auto with = crf.Extract("she played Marston yesterday", 0, {});
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(std::get<TextSpan>(with[0][0]), TextSpan(11, 18));
}

TEST(CrfExtractor, IllegalTransitionsNeverDecoded) {
  CrfModel model = CrfModel::Default();
  model.dictionary = {"Alice"};
  CrfOptions opts;
  opts.work_per_char = 0;
  CrfExtractor crf("c", model, opts);
  std::vector<TextSpan> tokens;
  std::vector<int> labels = crf.Decode("lower case words Alice more", &tokens);
  // No I may follow O, and the chain may not start with I.
  ASSERT_FALSE(labels.empty());
  EXPECT_NE(labels.front(), kLabelI);
  for (size_t i = 1; i < labels.size(); ++i) {
    if (labels[i] == kLabelI) EXPECT_NE(labels[i - 1], kLabelO);
  }
}

TEST(CrfExtractor, OverlongRegionDecodesLeadingWindowOnly) {
  CrfModel model = CrfModel::Default();
  model.dictionary = {"Zed"};
  CrfOptions opts;
  opts.max_input_length = 16;
  opts.work_per_char = 0;
  CrfExtractor crf("c", model, opts);
  // "Zed" appears beyond the 15-char window: not extracted.
  auto out = crf.Extract("aaaa bbbb cccc ddd Zed", 0, {});
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// RepeatExtractor

TEST(RepeatExtractor, MultipliesMentionsAndKeepsName) {
  auto inner = std::make_shared<DictionaryExtractor>(
      "inner", std::vector<std::string>{"ab"});
  RepeatExtractor repeat(inner, 3);
  EXPECT_EQ(repeat.Name(), "inner");
  auto out = repeat.Extract("ab", 0, {});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(repeat.Scope(), inner->Scope());
}

// ---------------------------------------------------------------------------
// Registry

TEST(ExtractorRegistry, RegisterLookupReplace) {
  ExtractorRegistry registry;
  EXPECT_FALSE(registry.Contains("d"));
  EXPECT_TRUE(registry.Lookup("d").status().IsNotFound());
  registry.Register(std::make_shared<DictionaryExtractor>(
      "d", std::vector<std::string>{"x"}));
  ASSERT_TRUE(registry.Contains("d"));
  EXPECT_EQ((*registry.Lookup("d"))->Scope(), 2);
  registry.Register(std::make_shared<DictionaryExtractor>(
      "d", std::vector<std::string>{"xyzw"}));
  EXPECT_EQ((*registry.Lookup("d"))->Scope(), 5);
  EXPECT_EQ(registry.Size(), 1u);
}

// ---------------------------------------------------------------------------
// The honesty property suite (Definitions 2-3).
//
// For each extractor: extract from a generated text, then perturb the text
// OUTSIDE a randomly chosen mention's β-window (splice in / delete /
// replace characters), re-extract, and require the mention to reappear at
// the correspondingly shifted position. Also require every envelope < α.

struct HonestyCase {
  std::string name;
  std::function<ExtractorPtr()> make;
  bool wiki_corpus;
};

class ExtractorHonesty : public ::testing::TestWithParam<HonestyCase> {};

ExtractorPtr MakeHonestDict() {
  DictionaryOptions opts;
  opts.work_per_char = 0;
  return std::make_shared<DictionaryExtractor>(
      "hd", vocab::Researchers(), opts);
}

ExtractorPtr MakeHonestRegex() {
  RegexOptions opts;
  opts.scope = 16;
  opts.context_width = 1;
  opts.require_word_boundaries = true;
  opts.first_chars = "0123456789";
  opts.work_per_char = 0;
  return std::make_shared<RegexExtractor>("hr", R"(\d{1,2}(:\d{2})? ?(am|pm))",
                                          opts);
}

ExtractorPtr MakeHonestSegment() {
  SegmentOptions opts;
  opts.delimiter = "\n\n";
  opts.max_segment_length = 2400;
  opts.work_per_char = 0;
  return std::make_shared<SegmentExtractor>("hs", opts);
}

ExtractorPtr MakeHonestSentences() {
  SentenceSegmenterOptions opts;
  opts.work_per_char = 0;
  return std::make_shared<SentenceSegmenter>("hsent", opts);
}

ExtractorPtr MakeHonestPair() {
  DictionaryOptions dopts;
  dopts.work_per_char = 0;
  RegexOptions ropts;
  ropts.scope = 16;
  ropts.context_width = 1;
  ropts.require_word_boundaries = true;
  ropts.first_chars = "0123456789";
  ropts.work_per_char = 0;
  return std::make_shared<PairExtractor>(
      "hp",
      std::make_shared<DictionaryExtractor>("hpl", vocab::Researchers(), dopts),
      std::make_shared<RegexExtractor>("hpr", R"(\d{1,2}(:\d{2})? ?(am|pm))",
                                       ropts),
      155);
}

ExtractorPtr MakeHonestCrf() {
  CrfModel model = CrfModel::Default();
  for (const std::string& f : vocab::FirstNames()) model.dictionary.insert(f);
  for (const std::string& l : vocab::LastNames()) model.dictionary.insert(l);
  CrfOptions opts;
  opts.max_input_length = 400;
  opts.work_per_char = 0;
  return std::make_shared<CrfExtractor>("hc", model, opts);
}

TEST_P(ExtractorHonesty, ScopeAndContextAreHonest) {
  const HonestyCase& test_case = GetParam();
  ExtractorPtr extractor = test_case.make();
  const int64_t alpha = extractor->Scope();
  const int64_t beta = extractor->ContextWidth();

  DatasetProfile profile = test_case.wiki_corpus
                               ? DatasetProfile::Wikipedia()
                               : DatasetProfile::DBLife();
  CorpusGenerator generator(profile, 77);
  Rng rng(123);

  int verified_mentions = 0;
  for (int round = 0; round < 12; ++round) {
    std::string text = generator.GeneratePageText(&rng);
    std::vector<Tuple> mentions = extractor->Extract(text, 0, {});
    for (const Tuple& m : mentions) {
      TextSpan envelope = SpanEnvelope(m);
      ASSERT_LT(envelope.length(), alpha) << "scope violation";
    }
    if (mentions.empty()) continue;

    // Pick one mention; perturb outside its β-window.
    const Tuple& target = mentions[rng.Uniform(mentions.size())];
    TextSpan envelope = SpanEnvelope(target);
    int64_t window_start = std::max<int64_t>(0, envelope.start - beta);
    int64_t window_end =
        std::min<int64_t>(static_cast<int64_t>(text.size()), envelope.end + beta);

    std::string perturbed = text;
    int64_t delta = 0;  // shift applied to the mention position
    if (window_start > 2 && rng.Chance(0.7)) {
      // Splice random content strictly before the window.
      int64_t pos = rng.UniformRange(0, window_start - 1);
      std::string junk = " spliced " + std::to_string(rng.Next() % 1000) + " ";
      if (rng.Chance(0.5)) {
        perturbed.insert(static_cast<size_t>(pos), junk);
        delta = static_cast<int64_t>(junk.size());
      } else {
        int64_t del = std::min<int64_t>(window_start - pos - 1, 5);
        if (del > 0) {
          perturbed.erase(static_cast<size_t>(pos), static_cast<size_t>(del));
          delta = -del;
        }
      }
    } else if (window_end + 2 < static_cast<int64_t>(text.size())) {
      // Splice strictly after the window (no shift).
      int64_t pos = rng.UniformRange(window_end + 1,
                                     static_cast<int64_t>(text.size()) - 1);
      perturbed.insert(static_cast<size_t>(pos), " tail noise ");
    } else {
      continue;
    }

    std::vector<Tuple> after = extractor->Extract(perturbed, 0, {});
    Tuple expected = target;
    ShiftSpans(&expected, delta);
    bool found = false;
    for (const Tuple& m : after) {
      if (!TupleLess(m, expected) && !TupleLess(expected, m)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << test_case.name
                       << ": mention at " << envelope.ToString()
                       << " lost after perturbation outside its beta-window "
                          "(delta "
                       << delta << ")";
    ++verified_mentions;
  }
  EXPECT_GT(verified_mentions, 3) << "test exercised too few mentions";
}

INSTANTIATE_TEST_SUITE_P(
    AllExtractors, ExtractorHonesty,
    ::testing::Values(
        HonestyCase{"dictionary", &MakeHonestDict, false},
        HonestyCase{"regex", &MakeHonestRegex, false},
        HonestyCase{"segment", &MakeHonestSegment, false},
        HonestyCase{"sentences", &MakeHonestSentences, true},
        HonestyCase{"pair", &MakeHonestPair, false},
        HonestyCase{"crf", &MakeHonestCrf, true}),
    [](const auto& info) { return info.param.name; });

// Translation invariance: Extract(text, base) == Extract(text, 0) shifted.
class ExtractorTranslation : public ::testing::TestWithParam<HonestyCase> {};

TEST_P(ExtractorTranslation, RegionBaseOnlyShiftsSpans) {
  ExtractorPtr extractor = GetParam().make();
  DatasetProfile profile = GetParam().wiki_corpus
                               ? DatasetProfile::Wikipedia()
                               : DatasetProfile::DBLife();
  CorpusGenerator generator(profile, 5);
  Rng rng(9);
  std::string text = generator.GenerateParagraph(&rng);
  auto at_zero = extractor->Extract(text, 0, {});
  auto at_base = extractor->Extract(text, 5000, {});
  ASSERT_EQ(at_zero.size(), at_base.size());
  for (size_t i = 0; i < at_zero.size(); ++i) {
    Tuple shifted = at_zero[i];
    ShiftSpans(&shifted, 5000);
    EXPECT_FALSE(TupleLess(shifted, at_base[i]) ||
                 TupleLess(at_base[i], shifted));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExtractors, ExtractorTranslation,
    ::testing::Values(
        HonestyCase{"dictionary", &MakeHonestDict, false},
        HonestyCase{"regex", &MakeHonestRegex, false},
        HonestyCase{"segment", &MakeHonestSegment, false},
        HonestyCase{"sentences", &MakeHonestSentences, true},
        HonestyCase{"pair", &MakeHonestPair, false},
        HonestyCase{"crf", &MakeHonestCrf, true}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace delex
