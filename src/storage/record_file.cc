#include "storage/record_file.h"

#include <cstring>

namespace delex {
namespace {

void PutLength(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

uint64_t GetLength(const char* data) {
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (8 * i);
  }
  return out;
}

}  // namespace

RecordWriter::~RecordWriter() {
  if (file_ != nullptr) Close().ok();
}

Status RecordWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return Status::IOError("cannot create " + path);
  path_ = path;
  buffer_.clear();
  buffer_.reserve(static_cast<size_t>(kBlockSize) * 2);
  logical_size_ = 0;
  stats_ = IoStats();
  return Status::OK();
}

Status RecordWriter::Append(std::string_view record) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  PutLength(record.size(), &buffer_);
  buffer_.append(record);
  logical_size_ += 8 + static_cast<int64_t>(record.size());
  ++stats_.records_written;
  if (buffer_.size() >= static_cast<size_t>(kBlockSize)) {
    return FlushBuffer();
  }
  return Status::OK();
}

Status RecordWriter::AppendRaw(std::string_view framed, int64_t record_count) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  buffer_.append(framed);
  logical_size_ += static_cast<int64_t>(framed.size());
  stats_.records_written += record_count;
  if (buffer_.size() >= static_cast<size_t>(kBlockSize)) {
    return FlushBuffer();
  }
  return Status::OK();
}

Status RecordWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  if (written != buffer_.size()) {
    return Status::IOError("short write to " + path_);
  }
  stats_.bytes_written += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
  return Status::OK();
}

Status RecordWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = FlushBuffer();
  if (std::fclose(file_) != 0 && st.ok()) {
    st = Status::IOError("close failed for " + path_);
  }
  file_ = nullptr;
  return st;
}

RecordReader::~RecordReader() {
  if (file_ != nullptr) Close().ok();
}

Status RecordReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("reader already open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return Status::IOError("cannot open " + path);
  path_ = path;
  buffer_.clear();
  buffer_pos_ = 0;
  hit_eof_ = false;
  stats_ = IoStats();
  return Status::OK();
}

Status RecordReader::FillBuffer(size_t need) {
  // Compact consumed bytes, then read block-aligned chunks until `need`
  // bytes are available or EOF.
  if (buffer_pos_ > 0) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  while (buffer_.size() < need && !hit_eof_) {
    char chunk[kBlockSize];
    size_t got = std::fread(chunk, 1, sizeof(chunk), file_);
    if (got < sizeof(chunk)) {
      if (std::ferror(file_) != 0) {
        return Status::IOError("read failed for " + path_);
      }
      hit_eof_ = true;
    }
    buffer_.append(chunk, got);
    stats_.bytes_read += static_cast<int64_t>(got);
  }
  return Status::OK();
}

Status RecordReader::Next(std::string* record, bool* at_end) {
  if (file_ == nullptr) return Status::InvalidArgument("reader not open");
  *at_end = false;
  if (buffer_.size() - buffer_pos_ < 8) {
    DELEX_RETURN_NOT_OK(FillBuffer(8));
  }
  size_t available = buffer_.size() - buffer_pos_;
  if (available == 0) {
    *at_end = true;
    return Status::OK();
  }
  if (available < 8) {
    return Status::Corruption("truncated record header in " + path_);
  }
  uint64_t length = GetLength(buffer_.data() + buffer_pos_);
  // Untrusted length prefix: reject absurd values before any allocation.
  // Without the cap, a corrupt prefix near UINT64_MAX overflows `8 +
  // length` (wrapping the bounds checks below) and a merely-huge one turns
  // into a failed multi-gigabyte buffer resize instead of a clean error.
  if (length > kMaxRecordLength) {
    return Status::Corruption("record length " + std::to_string(length) +
                              " exceeds limit in " + path_);
  }
  if (buffer_.size() - buffer_pos_ < 8 + length) {
    DELEX_RETURN_NOT_OK(FillBuffer(8 + static_cast<size_t>(length)));
    if (buffer_.size() < 8 + length) {
      return Status::Corruption("truncated record body in " + path_);
    }
  }
  record->assign(buffer_, buffer_pos_ + 8, length);
  buffer_pos_ += 8 + length;
  ++stats_.records_read;
  return Status::OK();
}

Status RecordReader::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = Status::OK();
  if (std::fclose(file_) != 0) st = Status::IOError("close failed for " + path_);
  file_ = nullptr;
  return st;
}

}  // namespace delex
