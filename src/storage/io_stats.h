#ifndef DELEX_STORAGE_IO_STATS_H_
#define DELEX_STORAGE_IO_STATS_H_

#include <cstdint>

namespace delex {

/// Logical block size used for all cost accounting (the paper reasons about
/// reuse-file and snapshot sizes in blocks).
inline constexpr int64_t kBlockSize = 4096;

/// \brief Byte/record counters for one file or one aggregated run.
struct IoStats {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t records_read = 0;
  int64_t records_written = 0;

  int64_t BlocksRead() const { return (bytes_read + kBlockSize - 1) / kBlockSize; }
  int64_t BlocksWritten() const {
    return (bytes_written + kBlockSize - 1) / kBlockSize;
  }

  IoStats& operator+=(const IoStats& other) {
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    records_read += other.records_read;
    records_written += other.records_written;
    return *this;
  }
};

}  // namespace delex

#endif  // DELEX_STORAGE_IO_STATS_H_
