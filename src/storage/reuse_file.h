#ifndef DELEX_STORAGE_REUSE_FILE_H_
#define DELEX_STORAGE_REUSE_FILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/value.h"
#include "obs/mem.h"
#include "storage/io_stats.h"
#include "storage/record_file.h"

namespace delex {

/// \brief One row of I_U^n: a text region that IE unit U operated on.
///
/// (tid, did, s, e, c) of §4 — `context` carries the "rest of the input
/// parameter values" c; matching only reuses tuples whose context equals
/// the new input's context.
///
/// Reuse format v2 stores *page-local ordinals* instead of the v1
/// file-global monotone tids: on disk an input record carries no tid and
/// no did at all — its ordinal is its position inside the page group, and
/// the group's did lives in the page header record. The reader synthesizes
/// `tid` (= ordinal) and `did` (= the sought page) on decode, so engine
/// code sees the same shape as before. This is the relocatability
/// invariant: a page group's record bytes mention nothing outside the
/// page, so an identical page's bytes can be copied raw into the next
/// generation under a fresh did without decode or re-encode.
struct InputTupleRec {
  int64_t tid = 0;  ///< page-local ordinal (synthesized on decode)
  int64_t did = 0;  ///< synthesized on decode from the page header
  TextSpan region;
  /// FNV-1a of the region's text, computed at capture time (the content is
  /// in memory then); spares the next run from re-hashing every old region
  /// for the exact-content fast path.
  ///
  /// Contract: `region_hash` covers the region's *bytes only* — never the
  /// context. Matching may only reuse a tuple whose context equals the new
  /// input's context (§4), so the exact-content fast path consults the
  /// hash exclusively for tuples with an *empty* context on both sides;
  /// tuples carrying a non-empty context must take the matcher path, where
  /// context equality is checked explicitly. Consumers indexing old inputs
  /// by hash must skip non-empty-context records for the same reason.
  uint64_t region_hash = 0;
  Tuple context;
};

/// \brief One row of O_U^n: a tuple U produced, with the input tuple that
/// yielded it.
///
/// (tid, itid, m, c') of §4 — `payload` is the full output tuple; its span
/// values are the mention m (plus any extra span attributes), everything
/// else is c'. In format v2 `itid` is the page-local ordinal of the input
/// group that produced the output; `tid`/`did` are synthesized on decode
/// like InputTupleRec's.
struct OutputTupleRec {
  int64_t tid = 0;   ///< page-local ordinal (synthesized on decode)
  int64_t itid = 0;  ///< page-local ordinal of the producing input
  int64_t did = 0;   ///< synthesized on decode from the page header
  Tuple payload;
};

/// \brief Buffered capture of one page's reuse records for one IE unit.
///
/// Parallel page evaluation cannot append to the unit's reuse files
/// mid-evaluation: appends must land in snapshot page order (dids
/// monotone) or the next generation's strictly-forward §5.2 scan would
/// skip groups. Workers therefore record each page's capture into a
/// PageCapture — one Group per distinct input region, in processing
/// order, with the group's σ-surviving outputs attached — and an ordered
/// write-back stage commits whole pages in snapshot order via
/// UnitReuseWriter::CommitPage. Ordinals are positional, so the files a
/// buffered run produces are byte-identical to serial execution.
struct PageCapture {
  struct Group {
    TextSpan region;
    uint64_t region_hash = 0;
    Tuple context;
    std::vector<Tuple> outputs;  ///< σ-surviving payloads for this region
  };
  std::vector<Group> groups;
};

/// \brief One page group lifted out of a unit's reuse files *without*
/// decoding: the framed record bytes plus their counts and the digest of
/// the page they were captured over.
///
/// Produced by UnitReuseReader::ReadPageRaw, consumed by
/// UnitReuseWriter::CommitPageRaw — the zero-decode passthrough for
/// byte-identical pages. `in_bytes`/`out_bytes` hold whole framed records
/// (8-byte length prefix + payload each), exactly as they sit in the
/// files.
struct RawPageSlice {
  uint64_t page_digest = 0;
  std::string in_bytes;
  int64_t n_inputs = 0;
  std::string out_bytes;
  int64_t n_outputs = 0;

  int64_t TotalBytes() const {
    return static_cast<int64_t>(in_bytes.size() + out_bytes.size());
  }
};

/// \brief One page's entry in the per-unit sidecar page index (`.idx`).
///
/// Byte ranges are logical file offsets (RecordWriter::logical_size
/// coordinates) of the page's framed group records, *excluding* the page
/// header record. `page_digest` is the FNV-1a of the page content the
/// records were captured over: the raw passthrough only fires when the
/// digest equals the new run's old-page digest, so a work dir that drifted
/// out of sync with the corpus degrades to the decode path instead of
/// relocating stale records.
struct PageIndexEntry {
  int64_t did = 0;
  uint64_t page_digest = 0;
  int64_t in_offset = 0;
  int64_t in_bytes = 0;
  int64_t n_inputs = 0;
  int64_t out_offset = 0;
  int64_t out_bytes = 0;
  int64_t n_outputs = 0;
};

/// \brief Writer for one IE unit's reuse file triple (I_U, O_U, index).
///
/// Format v2, per file:
///   <prefix>.in   magic record, then per page: header record {did,
///                 n_groups} followed by n_groups input records
///                 {region, region_hash, context}
///   <prefix>.out  magic record, then per page: header record {did,
///                 n_outputs} followed by n_outputs records {iord,
///                 payload} — iord is the producing input's ordinal
///   <prefix>.idx  magic record, then one PageIndexEntry record per page
///
/// Every page gets a header (and an index entry) even when it produced no
/// tuples, so the reader's forward scan can distinguish "page had nothing"
/// from "page group missing". Appends are buffered one block per file
/// (§4). Commits must arrive in snapshot page order.
class UnitReuseWriter {
 public:
  UnitReuseWriter() = default;

  /// Creates `<path_prefix>.in`, `<path_prefix>.out`, `<path_prefix>.idx`.
  Status Open(const std::string& path_prefix);

  /// Appends one page's buffered capture: page headers, then one input
  /// record per group in order (ordinal = position), then each group's
  /// outputs tagged with the group ordinal. `page_digest` is the FNV-1a of
  /// the page content the capture was taken over (recorded in the index).
  Status CommitPage(int64_t did, uint64_t page_digest,
                    const PageCapture& capture);

  /// Appends one page's records verbatim from `raw` (no decode, no
  /// re-encode): fresh page headers under the new `did`, then the framed
  /// bytes. Given a RawPageSlice read from an equivalent capture, the
  /// resulting files are byte-identical to CommitPage's output.
  Status CommitPageRaw(int64_t did, const RawPageSlice& raw);

  Status Close();

  IoStats CombinedStats() const;

 private:
  RecordWriter input_writer_;
  RecordWriter output_writer_;
  RecordWriter index_writer_;
  std::string scratch_;
};

/// \brief Sequential reader over one IE unit's reuse files.
///
/// §5.2 guarantees per-page tuple groups appear in processing order, so a
/// single forward scan serves all pages; SeekPage/ReadPageRaw never
/// rewind. A did whose group has already been passed (possible only if the
/// snapshot order was perturbed) yields an empty group, which degrades
/// reuse but never correctness.
///
/// The sidecar index is loaded wholesale at Open. A missing, truncated, or
/// corrupt index never fails Open: `has_page_index()` turns false and
/// ReadPageRaw reports `index_valid = false`, pushing callers onto the
/// decode path — degrade, never miscompute.
class UnitReuseReader {
 public:
  UnitReuseReader() = default;

  /// Opens `<path_prefix>.in` / `.out` (failure here is an error) and
  /// `<path_prefix>.idx` (failure here just disables the index).
  Status Open(const std::string& path_prefix);

  /// True when the sidecar page index loaded cleanly.
  bool has_page_index() const { return index_ok_; }

  /// Index entry for `did`, or nullptr (also when the index is disabled).
  const PageIndexEntry* FindIndexEntry(int64_t did) const;

  /// Scans forward to page `did`, filling that page's input and output
  /// tuples (empty if the page has none or was already passed). Decoded
  /// records carry synthesized page-local ordinals as tids.
  Status SeekPage(int64_t did, std::vector<InputTupleRec>* inputs,
                  std::vector<OutputTupleRec>* outputs);

  /// Scans forward to page `did`, capturing the page's framed record bytes
  /// without decoding them. `*found` reports whether the page group was
  /// reached. `*index_valid` is true only when the sidecar index has an
  /// entry for `did` whose digest equals `expected_digest` and whose
  /// offsets/lengths/counts agree with the scan — the precondition for
  /// committing the slice raw. On `found && !index_valid` callers can
  /// still decode the slice (DecodeRawPageSlice) instead of re-seeking.
  Status ReadPageRaw(int64_t did, uint64_t expected_digest,
                     RawPageSlice* slice, bool* found, bool* index_valid);

  Status Close();

  IoStats CombinedStats() const;

 private:
  /// Forward-scan cursor over one record file of page groups.
  struct PageCursor {
    RecordReader reader;
    bool done = false;
    bool header_pending = false;
    int64_t pending_did = 0;
    int64_t pending_count = 0;
    int64_t pos = 0;  ///< logical byte offset just past the last record read
  };

  /// Reads the next record into scratch_, advancing cursor.pos. Sets
  /// *at_end at EOF.
  Status NextRecord(PageCursor* cursor, bool* at_end);

  /// Advances `cursor` to page `did`'s header, skipping earlier groups
  /// without decoding them. On return *found tells whether the header for
  /// `did` is pending (its records not yet consumed).
  Status AdvanceTo(PageCursor* cursor, int64_t did, bool* found);

  Status CheckMagic(PageCursor* cursor, std::string_view magic);
  Status LoadIndex(const std::string& path);
  /// Re-states the reader's reuse_reader memory charge (index + scratch).
  void UpdateMemCharge();

  PageCursor input_;
  PageCursor output_;
  std::unordered_map<int64_t, PageIndexEntry> index_;
  bool index_ok_ = false;
  IoStats index_io_;
  std::string scratch_;
  obs::ScopedMemCharge mem_{obs::MemTag::kReuseReader};
};

/// Encoding helpers (exposed for tests). Format v2: input/output records
/// carry no tid/did — DecodeInputTuple/DecodeOutputTuple leave those
/// fields zero for the caller to synthesize.
void EncodeInputTuple(const InputTupleRec& rec, std::string* out);
void EncodeOutputTuple(const OutputTupleRec& rec, std::string* out);
Result<InputTupleRec> DecodeInputTuple(std::string_view data);
Result<OutputTupleRec> DecodeOutputTuple(std::string_view data);
void EncodePageIndexEntry(const PageIndexEntry& entry, std::string* out);
Result<PageIndexEntry> DecodePageIndexEntry(std::string_view data);

/// \brief Decodes a RawPageSlice into the records SeekPage would have
/// produced for page `did` — the fallback when a slice was captured but
/// its index entry failed validation.
Status DecodeRawPageSlice(const RawPageSlice& slice, int64_t did,
                          std::vector<InputTupleRec>* inputs,
                          std::vector<OutputTupleRec>* outputs);

/// \brief Rebuilds the PageCapture whose CommitPage would reproduce
/// `slice` byte for byte. Used for the decode-copy tier of the
/// identical-page fast path: the page didn't change, so its new capture
/// *is* its old records.
Status CaptureFromRawSlice(const RawPageSlice& slice, PageCapture* capture);

}  // namespace delex

#endif  // DELEX_STORAGE_REUSE_FILE_H_
