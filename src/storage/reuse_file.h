#ifndef DELEX_STORAGE_REUSE_FILE_H_
#define DELEX_STORAGE_REUSE_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/io_stats.h"
#include "storage/record_file.h"

namespace delex {

/// \brief One row of I_U^n: a text region that IE unit U operated on.
///
/// (tid, did, s, e, c) of §4 — `context` carries the "rest of the input
/// parameter values" c; matching only reuses tuples whose context equals
/// the new input's context.
struct InputTupleRec {
  int64_t tid = 0;
  int64_t did = 0;
  TextSpan region;
  /// FNV-1a of the region's text, computed at capture time (the content is
  /// in memory then); spares the next run from re-hashing every old region
  /// for the exact-content fast path.
  ///
  /// Contract: `region_hash` covers the region's *bytes only* — never the
  /// context. Matching may only reuse a tuple whose context equals the new
  /// input's context (§4), so the exact-content fast path consults the
  /// hash exclusively for tuples with an *empty* context on both sides;
  /// tuples carrying a non-empty context must take the matcher path, where
  /// context equality is checked explicitly. Consumers indexing old inputs
  /// by hash must skip non-empty-context records for the same reason.
  uint64_t region_hash = 0;
  Tuple context;
};

/// \brief One row of O_U^n: a tuple U produced, with the input tuple that
/// yielded it.
///
/// (tid, itid, m, c') of §4 — `payload` is the full output tuple; its span
/// values are the mention m (plus any extra span attributes), everything
/// else is c'. `did` is stored redundantly for per-page grouping.
struct OutputTupleRec {
  int64_t tid = 0;
  int64_t itid = 0;
  int64_t did = 0;
  Tuple payload;
};

/// \brief Buffered capture of one page's reuse records for one IE unit.
///
/// Parallel page evaluation cannot append to the unit's reuse files
/// mid-evaluation: appends must land in snapshot page order (dids
/// monotone, tids monotone) or the next generation's strictly-forward
/// §5.2 scan would skip groups. Workers therefore record each page's
/// capture into a PageCapture — one Group per distinct input region, in
/// processing order, with the group's σ-surviving outputs attached — and
/// an ordered write-back stage commits whole pages in snapshot order via
/// UnitReuseWriter::CommitPage. Tids are assigned at commit time, so the
/// files a buffered run produces are byte-identical to mid-evaluation
/// appends.
struct PageCapture {
  struct Group {
    TextSpan region;
    uint64_t region_hash = 0;
    Tuple context;
    std::vector<Tuple> outputs;  ///< σ-surviving payloads for this region
  };
  std::vector<Group> groups;
};

/// \brief Writer for one IE unit's pair of reuse files (I_U, O_U).
///
/// Appends are buffered one block per file (§4). Tuple ids are assigned
/// monotonically by the writer.
class UnitReuseWriter {
 public:
  UnitReuseWriter() = default;

  /// Creates `<path_prefix>.in` and `<path_prefix>.out`.
  Status Open(const std::string& path_prefix);

  /// Appends an input tuple; `region_hash` is the FNV-1a of the region's
  /// text. Returns the assigned tid via `*tid`.
  Status AppendInput(int64_t did, const TextSpan& region, uint64_t region_hash,
                     const Tuple& context, int64_t* tid);

  /// Appends an output tuple produced from input tuple `itid`.
  Status AppendOutput(int64_t itid, int64_t did, const Tuple& payload);

  /// Appends one page's buffered capture: for each group in order, the
  /// input tuple (tid assigned here) followed by its outputs (itid = that
  /// tid). Record-for-record identical to interleaved AppendInput /
  /// AppendOutput calls during evaluation.
  Status CommitPage(int64_t did, const PageCapture& capture);

  Status Close();

  IoStats CombinedStats() const;

 private:
  RecordWriter input_writer_;
  RecordWriter output_writer_;
  int64_t next_input_tid_ = 0;
  int64_t next_output_tid_ = 0;
  std::string scratch_;
};

/// \brief Sequential reader over one IE unit's reuse files.
///
/// §5.2 guarantees per-page tuple groups appear in processing order, so a
/// single forward scan serves all pages; SeekPage never rewinds. A did
/// whose group has already been passed (possible only if the snapshot
/// order was perturbed) yields an empty group, which degrades reuse but
/// never correctness.
class UnitReuseReader {
 public:
  UnitReuseReader() = default;

  /// Opens `<path_prefix>.in` and `<path_prefix>.out`.
  Status Open(const std::string& path_prefix);

  /// Scans forward to page `did`, filling that page's input and output
  /// tuples (empty if the page has none or was already passed).
  Status SeekPage(int64_t did, std::vector<InputTupleRec>* inputs,
                  std::vector<OutputTupleRec>* outputs);

  Status Close();

  IoStats CombinedStats() const;

 private:
  Status NextInput(bool* at_end);
  Status NextOutput(bool* at_end);

  RecordReader input_reader_;
  RecordReader output_reader_;
  // One-record lookahead per file.
  bool input_pending_ = false;
  bool input_done_ = false;
  InputTupleRec pending_input_;
  bool output_pending_ = false;
  bool output_done_ = false;
  OutputTupleRec pending_output_;
  std::string scratch_;
};

/// Encoding helpers (exposed for tests).
void EncodeInputTuple(const InputTupleRec& rec, std::string* out);
void EncodeOutputTuple(const OutputTupleRec& rec, std::string* out);
Result<InputTupleRec> DecodeInputTuple(std::string_view data);
Result<OutputTupleRec> DecodeOutputTuple(std::string_view data);

}  // namespace delex

#endif  // DELEX_STORAGE_REUSE_FILE_H_
