#include "storage/snapshot.h"

#include "common/hash.h"
#include "common/value.h"
#include "storage/record_file.h"

namespace delex {

namespace {
int64_t PageFootprint(const Page& page) {
  return static_cast<int64_t>(sizeof(Page) + page.url.size() +
                              page.content.size());
}
}  // namespace

Page& Snapshot::AddPage(std::string url, std::string content) {
  Page page;
  page.did = static_cast<int64_t>(pages_.size());
  page.url = std::move(url);
  page.content = std::move(content);
  page.content_hash = Fnv1a64(page.content);
  by_url_[page.url] = pages_.size();
  mem_.Add(PageFootprint(page));
  pages_.push_back(std::move(page));
  return pages_.back();
}

Page& Snapshot::AddExistingPage(const Page& page) {
  by_url_[page.url] = pages_.size();
  mem_.Add(PageFootprint(page));
  pages_.push_back(page);
  return pages_.back();
}

int64_t Snapshot::TotalBytes() const {
  int64_t total = 0;
  for (const Page& p : pages_) total += static_cast<int64_t>(p.content.size());
  return total;
}

std::optional<size_t> Snapshot::FindByUrl(const std::string& url) const {
  auto it = by_url_.find(url);
  if (it == by_url_.end()) return std::nullopt;
  return it->second;
}

void Snapshot::ReindexUrls() {
  by_url_.clear();
  int64_t footprint = 0;
  for (size_t i = 0; i < pages_.size(); ++i) {
    by_url_[pages_[i].url] = i;
    pages_[i].content_hash = Fnv1a64(pages_[i].content);
    footprint += PageFootprint(pages_[i]);
  }
  mem_.Set(footprint);
}

Status WriteSnapshot(const Snapshot& snapshot, const std::string& path,
                     IoStats* stats) {
  RecordWriter writer;
  DELEX_RETURN_NOT_OK(writer.Open(path));
  std::string record;
  for (const Page& page : snapshot.pages()) {
    record.clear();
    EncodeTuple({page.did, page.url, page.content}, &record);
    DELEX_RETURN_NOT_OK(writer.Append(record));
  }
  DELEX_RETURN_NOT_OK(writer.Close());
  if (stats != nullptr) *stats += writer.stats();
  return Status::OK();
}

Result<Snapshot> ReadSnapshot(const std::string& path, IoStats* stats) {
  RecordReader reader;
  DELEX_RETURN_NOT_OK(reader.Open(path));
  Snapshot snapshot;
  std::string record;
  while (true) {
    bool at_end = false;
    DELEX_RETURN_NOT_OK(reader.Next(&record, &at_end));
    if (at_end) break;
    size_t offset = 0;
    DELEX_ASSIGN_OR_RETURN(Tuple tuple, DecodeTuple(record, &offset));
    // Shape *and* kind checks: a corrupt record whose count survived can
    // still carry the wrong value kinds, and std::get on the wrong
    // alternative throws instead of returning a Status.
    if (tuple.size() != 3 || !std::holds_alternative<int64_t>(tuple[0]) ||
        !std::holds_alternative<std::string>(tuple[1]) ||
        !std::holds_alternative<std::string>(tuple[2])) {
      return Status::Corruption("bad page record");
    }
    Page& page = snapshot.AddPage(std::move(std::get<std::string>(tuple[1])),
                                  std::move(std::get<std::string>(tuple[2])));
    page.did = std::get<int64_t>(tuple[0]);
  }
  DELEX_RETURN_NOT_OK(reader.Close());
  if (stats != nullptr) *stats += reader.stats();
  return snapshot;
}

}  // namespace delex
