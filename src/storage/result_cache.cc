#include "storage/result_cache.h"

#include <algorithm>

#include "obs/trace.h"

namespace delex {

namespace {

constexpr std::string_view kResultMagic = "DLXRV2RS";

void PutFixed(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

bool GetFixed(std::string_view data, size_t* offset, int64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(
               data[*offset + static_cast<size_t>(i)]))
           << (8 * i);
  }
  *offset += 8;
  *v = static_cast<int64_t>(out);
  return true;
}

}  // namespace

Status ResultCacheWriter::Open(const std::string& path) {
  DELEX_RETURN_NOT_OK(writer_.Open(path));
  return writer_.Append(kResultMagic);
}

Status ResultCacheWriter::CommitPage(int64_t did,
                                     const std::vector<Tuple>& rows_with_did) {
  DELEX_TRACE_SPAN("result_commit_page", did, "io");
  scratch_.clear();
  PutFixed(static_cast<uint64_t>(did), &scratch_);
  PutFixed(rows_with_did.size(), &scratch_);
  DELEX_RETURN_NOT_OK(writer_.Append(scratch_));
  Tuple stripped;
  for (const Tuple& row : rows_with_did) {
    if (row.empty() || !std::holds_alternative<int64_t>(row[0]) ||
        std::get<int64_t>(row[0]) != did) {
      return Status::InvalidArgument("result row does not start with its did");
    }
    stripped.assign(row.begin() + 1, row.end());
    scratch_.clear();
    EncodeTuple(stripped, &scratch_);
    DELEX_RETURN_NOT_OK(writer_.Append(scratch_));
  }
  mem_.Set(static_cast<int64_t>(scratch_.capacity()));
  return Status::OK();
}

Status ResultCacheWriter::CommitPageRaw(int64_t did,
                                        const ResultPageSlice& raw) {
  DELEX_TRACE_SPAN("result_commit_page_raw", did, "io");
  scratch_.clear();
  PutFixed(static_cast<uint64_t>(did), &scratch_);
  PutFixed(static_cast<uint64_t>(raw.n_rows), &scratch_);
  DELEX_RETURN_NOT_OK(writer_.Append(scratch_));
  return writer_.AppendRaw(raw.bytes, raw.n_rows);
}

Status ResultCacheWriter::Close() { return writer_.Close(); }

Status ResultCacheReader::Open(const std::string& path) {
  DELEX_RETURN_NOT_OK(reader_.Open(path));
  bool at_end = false;
  DELEX_RETURN_NOT_OK(reader_.Next(&scratch_, &at_end));
  if (at_end || scratch_ != kResultMagic) {
    return Status::Corruption("bad result cache magic " + path);
  }
  return Status::OK();
}

Status ResultCacheReader::ReadPage(int64_t did, ResultPageSlice* slice,
                                   bool* found) {
  DELEX_TRACE_SPAN("result_read_page", did, "io");
  *found = false;
  slice->bytes.clear();
  slice->n_rows = 0;
  while (!done_) {
    if (!header_pending_) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(reader_.Next(&scratch_, &at_end));
      if (at_end) {
        done_ = true;
        return Status::OK();
      }
      size_t offset = 0;
      if (!GetFixed(scratch_, &offset, &pending_did_) ||
          !GetFixed(scratch_, &offset, &pending_count_) ||
          offset != scratch_.size() || pending_did_ < 0 ||
          pending_count_ < 0) {
        return Status::Corruption("bad result cache page header");
      }
      header_pending_ = true;
    }
    if (pending_did_ < did) {
      for (int64_t i = 0; i < pending_count_; ++i) {
        bool at_end = false;
        DELEX_RETURN_NOT_OK(reader_.Next(&scratch_, &at_end));
        if (at_end) return Status::Corruption("truncated result cache page");
      }
      header_pending_ = false;
      continue;
    }
    if (pending_did_ > did) return Status::OK();  // header stays pending
    slice->n_rows = pending_count_;
    for (int64_t i = 0; i < pending_count_; ++i) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(reader_.Next(&scratch_, &at_end));
      if (at_end) return Status::Corruption("truncated result cache page");
      PutFixed(scratch_.size(), &slice->bytes);
      slice->bytes.append(scratch_);
    }
    header_pending_ = false;
    *found = true;
    mem_.Set(static_cast<int64_t>(scratch_.capacity()));
    return Status::OK();
  }
  return Status::OK();
}

Status ResultCacheReader::Close() { return reader_.Close(); }

Status DecodeResultSlice(const ResultPageSlice& slice, int64_t did,
                         std::vector<Tuple>* rows) {
  rows->clear();
  // n_rows is untrusted (it rode in on a page header); each row costs at
  // least 8 framing bytes, so bound the reservation by the bytes present.
  rows->reserve(static_cast<size_t>(std::min<int64_t>(
      std::max<int64_t>(slice.n_rows, 0),
      static_cast<int64_t>(slice.bytes.size() / 8 + 1))));
  size_t offset = 0;
  const std::string_view data = slice.bytes;
  while (offset < data.size()) {
    int64_t length = 0;
    if (!GetFixed(data, &offset, &length) || length < 0 ||
        offset + static_cast<size_t>(length) > data.size()) {
      return Status::Corruption("bad result slice framing");
    }
    size_t body = 0;
    std::string_view record = data.substr(offset, static_cast<size_t>(length));
    DELEX_ASSIGN_OR_RETURN(Tuple stripped, DecodeTuple(record, &body));
    if (body != record.size()) {
      return Status::Corruption("trailing bytes in result row");
    }
    Tuple row;
    row.reserve(stripped.size() + 1);
    row.push_back(did);
    for (Value& v : stripped) row.push_back(std::move(v));
    rows->push_back(std::move(row));
    offset += static_cast<size_t>(length);
  }
  if (static_cast<int64_t>(rows->size()) != slice.n_rows) {
    return Status::Corruption("result slice row count mismatch");
  }
  return Status::OK();
}

}  // namespace delex
