#include "storage/reuse_file.h"

namespace delex {

namespace {

// Fixed-width little-endian header fields; the hot path decodes one record
// per region group per page, so this codec avoids tuple-machinery allocs.
void PutFixed(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

bool GetFixed(std::string_view data, size_t* offset, int64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(
               data[*offset + static_cast<size_t>(i)]))
           << (8 * i);
  }
  *offset += 8;
  *v = static_cast<int64_t>(out);
  return true;
}

}  // namespace

void EncodeInputTuple(const InputTupleRec& rec, std::string* out) {
  PutFixed(static_cast<uint64_t>(rec.tid), out);
  PutFixed(static_cast<uint64_t>(rec.did), out);
  PutFixed(static_cast<uint64_t>(rec.region.start), out);
  PutFixed(static_cast<uint64_t>(rec.region.end), out);
  PutFixed(rec.region_hash, out);
  EncodeTuple(rec.context, out);
}

void EncodeOutputTuple(const OutputTupleRec& rec, std::string* out) {
  PutFixed(static_cast<uint64_t>(rec.tid), out);
  PutFixed(static_cast<uint64_t>(rec.itid), out);
  PutFixed(static_cast<uint64_t>(rec.did), out);
  EncodeTuple(rec.payload, out);
}

Result<InputTupleRec> DecodeInputTuple(std::string_view data) {
  size_t offset = 0;
  InputTupleRec rec;
  int64_t hash_bits = 0;
  if (!GetFixed(data, &offset, &rec.tid) ||
      !GetFixed(data, &offset, &rec.did) ||
      !GetFixed(data, &offset, &rec.region.start) ||
      !GetFixed(data, &offset, &rec.region.end) ||
      !GetFixed(data, &offset, &hash_bits)) {
    return Status::Corruption("bad input tuple header");
  }
  rec.region_hash = static_cast<uint64_t>(hash_bits);
  DELEX_ASSIGN_OR_RETURN(rec.context, DecodeTuple(data, &offset));
  return rec;
}

Result<OutputTupleRec> DecodeOutputTuple(std::string_view data) {
  size_t offset = 0;
  OutputTupleRec rec;
  if (!GetFixed(data, &offset, &rec.tid) ||
      !GetFixed(data, &offset, &rec.itid) ||
      !GetFixed(data, &offset, &rec.did)) {
    return Status::Corruption("bad output tuple header");
  }
  DELEX_ASSIGN_OR_RETURN(rec.payload, DecodeTuple(data, &offset));
  return rec;
}

Status UnitReuseWriter::Open(const std::string& path_prefix) {
  DELEX_RETURN_NOT_OK(input_writer_.Open(path_prefix + ".in"));
  DELEX_RETURN_NOT_OK(output_writer_.Open(path_prefix + ".out"));
  next_input_tid_ = 0;
  next_output_tid_ = 0;
  return Status::OK();
}

Status UnitReuseWriter::AppendInput(int64_t did, const TextSpan& region,
                                    uint64_t region_hash, const Tuple& context,
                                    int64_t* tid) {
  InputTupleRec rec;
  rec.tid = next_input_tid_++;
  rec.did = did;
  rec.region = region;
  rec.region_hash = region_hash;
  rec.context = context;
  scratch_.clear();
  EncodeInputTuple(rec, &scratch_);
  DELEX_RETURN_NOT_OK(input_writer_.Append(scratch_));
  if (tid != nullptr) *tid = rec.tid;
  return Status::OK();
}

Status UnitReuseWriter::AppendOutput(int64_t itid, int64_t did,
                                     const Tuple& payload) {
  OutputTupleRec rec;
  rec.tid = next_output_tid_++;
  rec.itid = itid;
  rec.did = did;
  rec.payload = payload;
  scratch_.clear();
  EncodeOutputTuple(rec, &scratch_);
  return output_writer_.Append(scratch_);
}

Status UnitReuseWriter::CommitPage(int64_t did, const PageCapture& capture) {
  for (const PageCapture::Group& group : capture.groups) {
    int64_t tid = 0;
    DELEX_RETURN_NOT_OK(
        AppendInput(did, group.region, group.region_hash, group.context, &tid));
    for (const Tuple& payload : group.outputs) {
      DELEX_RETURN_NOT_OK(AppendOutput(tid, did, payload));
    }
  }
  return Status::OK();
}

Status UnitReuseWriter::Close() {
  DELEX_RETURN_NOT_OK(input_writer_.Close());
  return output_writer_.Close();
}

IoStats UnitReuseWriter::CombinedStats() const {
  IoStats stats = input_writer_.stats();
  stats += output_writer_.stats();
  return stats;
}

Status UnitReuseReader::Open(const std::string& path_prefix) {
  DELEX_RETURN_NOT_OK(input_reader_.Open(path_prefix + ".in"));
  DELEX_RETURN_NOT_OK(output_reader_.Open(path_prefix + ".out"));
  input_pending_ = input_done_ = false;
  output_pending_ = output_done_ = false;
  return Status::OK();
}

Status UnitReuseReader::NextInput(bool* at_end) {
  bool eof = false;
  DELEX_RETURN_NOT_OK(input_reader_.Next(&scratch_, &eof));
  if (eof) {
    *at_end = true;
    return Status::OK();
  }
  DELEX_ASSIGN_OR_RETURN(pending_input_, DecodeInputTuple(scratch_));
  *at_end = false;
  return Status::OK();
}

Status UnitReuseReader::NextOutput(bool* at_end) {
  bool eof = false;
  DELEX_RETURN_NOT_OK(output_reader_.Next(&scratch_, &eof));
  if (eof) {
    *at_end = true;
    return Status::OK();
  }
  DELEX_ASSIGN_OR_RETURN(pending_output_, DecodeOutputTuple(scratch_));
  *at_end = false;
  return Status::OK();
}

Status UnitReuseReader::SeekPage(int64_t did, std::vector<InputTupleRec>* inputs,
                                 std::vector<OutputTupleRec>* outputs) {
  inputs->clear();
  outputs->clear();

  // Advance the input cursor to did's group, skipping earlier groups
  // (pages that were deleted or had no matching page in the new snapshot).
  while (!input_done_) {
    if (!input_pending_) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(NextInput(&at_end));
      if (at_end) {
        input_done_ = true;
        break;
      }
      input_pending_ = true;
    }
    if (pending_input_.did < did) {
      input_pending_ = false;  // skip a passed group
      continue;
    }
    if (pending_input_.did > did) break;  // group absent
    inputs->push_back(std::move(pending_input_));
    input_pending_ = false;
  }

  while (!output_done_) {
    if (!output_pending_) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(NextOutput(&at_end));
      if (at_end) {
        output_done_ = true;
        break;
      }
      output_pending_ = true;
    }
    if (pending_output_.did < did) {
      output_pending_ = false;
      continue;
    }
    if (pending_output_.did > did) break;
    outputs->push_back(std::move(pending_output_));
    output_pending_ = false;
  }
  return Status::OK();
}

Status UnitReuseReader::Close() {
  DELEX_RETURN_NOT_OK(input_reader_.Close());
  return output_reader_.Close();
}

IoStats UnitReuseReader::CombinedStats() const {
  IoStats stats = input_reader_.stats();
  stats += output_reader_.stats();
  return stats;
}

}  // namespace delex
