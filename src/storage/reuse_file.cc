#include "storage/reuse_file.h"

#include <algorithm>

#include "obs/trace.h"

namespace delex {

namespace {

// File magics double as format-version stamps: a v1 work dir (no magic,
// different record shapes) fails the magic check loudly instead of being
// misread as page groups.
constexpr std::string_view kInputMagic = "DLXRV2IN";
constexpr std::string_view kOutputMagic = "DLXRV2OU";
constexpr std::string_view kIndexMagic = "DLXRV2IX";

// Fixed-width little-endian header fields; the hot path decodes one record
// per region group per page, so this codec avoids tuple-machinery allocs.
void PutFixed(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

bool GetFixed(std::string_view data, size_t* offset, int64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(
               data[*offset + static_cast<size_t>(i)]))
           << (8 * i);
  }
  *offset += 8;
  *v = static_cast<int64_t>(out);
  return true;
}

// Page header record shared by .in and .out: {did, record count}.
void EncodePageHeader(int64_t did, int64_t count, std::string* out) {
  PutFixed(static_cast<uint64_t>(did), out);
  PutFixed(static_cast<uint64_t>(count), out);
}

bool DecodePageHeader(std::string_view data, int64_t* did, int64_t* count) {
  size_t offset = 0;
  // Negative fields can only come from corrupt bytes; letting them through
  // would turn into huge size_t casts at the reserve/skip sites.
  return GetFixed(data, &offset, did) && GetFixed(data, &offset, count) &&
         offset == data.size() && *did >= 0 && *count >= 0;
}

/// Clamp an untrusted record count to a sane reservation: each record
/// costs ≥ 8 framing bytes, so a count beyond this bound is necessarily a
/// truncation error waiting to surface — never pre-allocate for it.
size_t ClampedReserve(int64_t count) {
  constexpr int64_t kMaxReserve = 1 << 20;
  return static_cast<size_t>(std::min<int64_t>(count, kMaxReserve));
}

// Re-frames one record exactly as RecordWriter::Append lays it out, so a
// RawPageSlice can be replayed through AppendRaw byte for byte.
void AppendFramed(std::string_view record, std::string* out) {
  PutFixed(record.size(), out);
  out->append(record);
}

}  // namespace

void EncodeInputTuple(const InputTupleRec& rec, std::string* out) {
  PutFixed(static_cast<uint64_t>(rec.region.start), out);
  PutFixed(static_cast<uint64_t>(rec.region.end), out);
  PutFixed(rec.region_hash, out);
  EncodeTuple(rec.context, out);
}

void EncodeOutputTuple(const OutputTupleRec& rec, std::string* out) {
  PutFixed(static_cast<uint64_t>(rec.itid), out);
  EncodeTuple(rec.payload, out);
}

Result<InputTupleRec> DecodeInputTuple(std::string_view data) {
  size_t offset = 0;
  InputTupleRec rec;
  int64_t hash_bits = 0;
  if (!GetFixed(data, &offset, &rec.region.start) ||
      !GetFixed(data, &offset, &rec.region.end) ||
      !GetFixed(data, &offset, &hash_bits)) {
    return Status::Corruption("bad input tuple header");
  }
  rec.region_hash = static_cast<uint64_t>(hash_bits);
  DELEX_ASSIGN_OR_RETURN(rec.context, DecodeTuple(data, &offset));
  return rec;
}

Result<OutputTupleRec> DecodeOutputTuple(std::string_view data) {
  size_t offset = 0;
  OutputTupleRec rec;
  if (!GetFixed(data, &offset, &rec.itid)) {
    return Status::Corruption("bad output tuple header");
  }
  DELEX_ASSIGN_OR_RETURN(rec.payload, DecodeTuple(data, &offset));
  return rec;
}

void EncodePageIndexEntry(const PageIndexEntry& entry, std::string* out) {
  PutFixed(static_cast<uint64_t>(entry.did), out);
  PutFixed(entry.page_digest, out);
  PutFixed(static_cast<uint64_t>(entry.in_offset), out);
  PutFixed(static_cast<uint64_t>(entry.in_bytes), out);
  PutFixed(static_cast<uint64_t>(entry.n_inputs), out);
  PutFixed(static_cast<uint64_t>(entry.out_offset), out);
  PutFixed(static_cast<uint64_t>(entry.out_bytes), out);
  PutFixed(static_cast<uint64_t>(entry.n_outputs), out);
}

Result<PageIndexEntry> DecodePageIndexEntry(std::string_view data) {
  size_t offset = 0;
  PageIndexEntry entry;
  int64_t digest_bits = 0;
  if (!GetFixed(data, &offset, &entry.did) ||
      !GetFixed(data, &offset, &digest_bits) ||
      !GetFixed(data, &offset, &entry.in_offset) ||
      !GetFixed(data, &offset, &entry.in_bytes) ||
      !GetFixed(data, &offset, &entry.n_inputs) ||
      !GetFixed(data, &offset, &entry.out_offset) ||
      !GetFixed(data, &offset, &entry.out_bytes) ||
      !GetFixed(data, &offset, &entry.n_outputs) || offset != data.size()) {
    return Status::Corruption("bad page index entry");
  }
  // Index entries gate the raw byte-range passthrough, so every field the
  // relocation arithmetic touches must be range-checked here — an entry
  // with a negative offset or count must never survive to ReadPageRaw's
  // offset comparison.
  if (entry.did < 0 || entry.in_offset < 0 || entry.in_bytes < 0 ||
      entry.n_inputs < 0 || entry.out_offset < 0 || entry.out_bytes < 0 ||
      entry.n_outputs < 0) {
    return Status::Corruption("page index entry out of range");
  }
  entry.page_digest = static_cast<uint64_t>(digest_bits);
  return entry;
}

Status UnitReuseWriter::Open(const std::string& path_prefix) {
  DELEX_RETURN_NOT_OK(input_writer_.Open(path_prefix + ".in"));
  DELEX_RETURN_NOT_OK(output_writer_.Open(path_prefix + ".out"));
  DELEX_RETURN_NOT_OK(index_writer_.Open(path_prefix + ".idx"));
  DELEX_RETURN_NOT_OK(input_writer_.Append(kInputMagic));
  DELEX_RETURN_NOT_OK(output_writer_.Append(kOutputMagic));
  return index_writer_.Append(kIndexMagic);
}

Status UnitReuseWriter::CommitPage(int64_t did, uint64_t page_digest,
                                   const PageCapture& capture) {
  DELEX_TRACE_SPAN("reuse_commit_page", did, "io");
  PageIndexEntry entry;
  entry.did = did;
  entry.page_digest = page_digest;
  entry.n_inputs = static_cast<int64_t>(capture.groups.size());
  for (const PageCapture::Group& group : capture.groups) {
    entry.n_outputs += static_cast<int64_t>(group.outputs.size());
  }

  scratch_.clear();
  EncodePageHeader(did, entry.n_inputs, &scratch_);
  DELEX_RETURN_NOT_OK(input_writer_.Append(scratch_));
  entry.in_offset = input_writer_.logical_size();
  for (const PageCapture::Group& group : capture.groups) {
    InputTupleRec rec;
    rec.region = group.region;
    rec.region_hash = group.region_hash;
    rec.context = group.context;
    scratch_.clear();
    EncodeInputTuple(rec, &scratch_);
    DELEX_RETURN_NOT_OK(input_writer_.Append(scratch_));
  }
  entry.in_bytes = input_writer_.logical_size() - entry.in_offset;

  scratch_.clear();
  EncodePageHeader(did, entry.n_outputs, &scratch_);
  DELEX_RETURN_NOT_OK(output_writer_.Append(scratch_));
  entry.out_offset = output_writer_.logical_size();
  for (size_t iord = 0; iord < capture.groups.size(); ++iord) {
    for (const Tuple& payload : capture.groups[iord].outputs) {
      OutputTupleRec rec;
      rec.itid = static_cast<int64_t>(iord);
      rec.payload = payload;
      scratch_.clear();
      EncodeOutputTuple(rec, &scratch_);
      DELEX_RETURN_NOT_OK(output_writer_.Append(scratch_));
    }
  }
  entry.out_bytes = output_writer_.logical_size() - entry.out_offset;

  scratch_.clear();
  EncodePageIndexEntry(entry, &scratch_);
  return index_writer_.Append(scratch_);
}

Status UnitReuseWriter::CommitPageRaw(int64_t did, const RawPageSlice& raw) {
  DELEX_TRACE_SPAN("reuse_commit_page_raw", did, "io");
  PageIndexEntry entry;
  entry.did = did;
  entry.page_digest = raw.page_digest;
  entry.n_inputs = raw.n_inputs;
  entry.n_outputs = raw.n_outputs;

  scratch_.clear();
  EncodePageHeader(did, raw.n_inputs, &scratch_);
  DELEX_RETURN_NOT_OK(input_writer_.Append(scratch_));
  entry.in_offset = input_writer_.logical_size();
  DELEX_RETURN_NOT_OK(input_writer_.AppendRaw(raw.in_bytes, raw.n_inputs));
  entry.in_bytes = input_writer_.logical_size() - entry.in_offset;

  scratch_.clear();
  EncodePageHeader(did, raw.n_outputs, &scratch_);
  DELEX_RETURN_NOT_OK(output_writer_.Append(scratch_));
  entry.out_offset = output_writer_.logical_size();
  DELEX_RETURN_NOT_OK(output_writer_.AppendRaw(raw.out_bytes, raw.n_outputs));
  entry.out_bytes = output_writer_.logical_size() - entry.out_offset;

  scratch_.clear();
  EncodePageIndexEntry(entry, &scratch_);
  return index_writer_.Append(scratch_);
}

Status UnitReuseWriter::Close() {
  Status st = input_writer_.Close();
  Status st_out = output_writer_.Close();
  Status st_idx = index_writer_.Close();
  if (!st.ok()) return st;
  if (!st_out.ok()) return st_out;
  return st_idx;
}

IoStats UnitReuseWriter::CombinedStats() const {
  IoStats stats = input_writer_.stats();
  stats += output_writer_.stats();
  stats += index_writer_.stats();
  return stats;
}

Status UnitReuseReader::Open(const std::string& path_prefix) {
  DELEX_RETURN_NOT_OK(input_.reader.Open(path_prefix + ".in"));
  DELEX_RETURN_NOT_OK(output_.reader.Open(path_prefix + ".out"));
  DELEX_RETURN_NOT_OK(CheckMagic(&input_, kInputMagic));
  DELEX_RETURN_NOT_OK(CheckMagic(&output_, kOutputMagic));
  LoadIndex(path_prefix + ".idx").ok();  // failure just disables the index
  return Status::OK();
}

Status UnitReuseReader::NextRecord(PageCursor* cursor, bool* at_end) {
  DELEX_RETURN_NOT_OK(cursor->reader.Next(&scratch_, at_end));
  if (!*at_end) cursor->pos += 8 + static_cast<int64_t>(scratch_.size());
  return Status::OK();
}

Status UnitReuseReader::CheckMagic(PageCursor* cursor, std::string_view magic) {
  bool at_end = false;
  DELEX_RETURN_NOT_OK(NextRecord(cursor, &at_end));
  if (at_end || scratch_ != magic) {
    return Status::Corruption("bad reuse file magic (expected format v2)");
  }
  return Status::OK();
}

Status UnitReuseReader::LoadIndex(const std::string& path) {
  index_.clear();
  index_ok_ = false;
  RecordReader reader;
  Status st = reader.Open(path);
  if (!st.ok()) return st;
  std::string record;
  bool at_end = false;
  st = reader.Next(&record, &at_end);
  bool ok = st.ok() && !at_end && record == kIndexMagic;
  while (ok) {
    st = reader.Next(&record, &at_end);
    if (!st.ok()) {
      ok = false;
      break;
    }
    if (at_end) break;
    Result<PageIndexEntry> entry = DecodePageIndexEntry(record);
    if (!entry.ok()) {
      ok = false;
      break;
    }
    // A duplicate did means the index is internally inconsistent; treat
    // the whole sidecar as corrupt rather than guessing which entry wins.
    if (!index_.emplace(entry->did, *entry).second) {
      ok = false;
      break;
    }
  }
  index_io_ += reader.stats();
  reader.Close().ok();
  if (!ok) {
    index_.clear();
    return st.ok() ? Status::Corruption("bad page index " + path) : st;
  }
  index_ok_ = true;
  UpdateMemCharge();
  return Status::OK();
}

void UnitReuseReader::UpdateMemCharge() {
  // The index map dominates (one entry per page); the shared scratch
  // record buffer is the only other footprint that grows with input.
  constexpr int64_t kEntryOverhead =
      static_cast<int64_t>(sizeof(PageIndexEntry)) + 32;  // bucket + links
  mem_.Set(static_cast<int64_t>(index_.size()) * kEntryOverhead +
           static_cast<int64_t>(scratch_.capacity()));
}

const PageIndexEntry* UnitReuseReader::FindIndexEntry(int64_t did) const {
  if (!index_ok_) return nullptr;
  auto it = index_.find(did);
  return it == index_.end() ? nullptr : &it->second;
}

Status UnitReuseReader::AdvanceTo(PageCursor* cursor, int64_t did,
                                  bool* found) {
  *found = false;
  while (!cursor->done) {
    if (!cursor->header_pending) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(NextRecord(cursor, &at_end));
      if (at_end) {
        cursor->done = true;
        return Status::OK();
      }
      if (!DecodePageHeader(scratch_, &cursor->pending_did,
                            &cursor->pending_count)) {
        return Status::Corruption("bad reuse page header");
      }
      cursor->header_pending = true;
    }
    if (cursor->pending_did < did) {
      // Skip a passed group (deleted page / no matching page in the new
      // snapshot) without decoding its records.
      for (int64_t i = 0; i < cursor->pending_count; ++i) {
        bool at_end = false;
        DELEX_RETURN_NOT_OK(NextRecord(cursor, &at_end));
        if (at_end) return Status::Corruption("truncated reuse page group");
      }
      cursor->header_pending = false;
      continue;
    }
    if (cursor->pending_did == did) *found = true;
    return Status::OK();  // header for did (or a later page) stays pending
  }
  return Status::OK();
}

Status UnitReuseReader::SeekPage(int64_t did,
                                 std::vector<InputTupleRec>* inputs,
                                 std::vector<OutputTupleRec>* outputs) {
  DELEX_TRACE_SPAN("reuse_seek_page", did, "io");
  inputs->clear();
  outputs->clear();

  bool found = false;
  DELEX_RETURN_NOT_OK(AdvanceTo(&input_, did, &found));
  if (found) {
    inputs->reserve(ClampedReserve(input_.pending_count));
    for (int64_t ord = 0; ord < input_.pending_count; ++ord) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(NextRecord(&input_, &at_end));
      if (at_end) return Status::Corruption("truncated reuse page group");
      DELEX_ASSIGN_OR_RETURN(InputTupleRec rec, DecodeInputTuple(scratch_));
      rec.tid = ord;
      rec.did = did;
      inputs->push_back(std::move(rec));
    }
    input_.header_pending = false;
  }

  DELEX_RETURN_NOT_OK(AdvanceTo(&output_, did, &found));
  if (found) {
    outputs->reserve(ClampedReserve(output_.pending_count));
    for (int64_t ord = 0; ord < output_.pending_count; ++ord) {
      bool at_end = false;
      DELEX_RETURN_NOT_OK(NextRecord(&output_, &at_end));
      if (at_end) return Status::Corruption("truncated reuse page group");
      DELEX_ASSIGN_OR_RETURN(OutputTupleRec rec, DecodeOutputTuple(scratch_));
      if (rec.itid < 0 || rec.itid >= static_cast<int64_t>(inputs->size())) {
        // An output must name an input of its own page; anything else is
        // corrupt bytes, rejected here so downstream consumers (and the
        // paranoid ordinal checker) only ever see page-local references.
        return Status::Corruption("reuse output record names no input");
      }
      rec.tid = ord;
      rec.did = did;
      outputs->push_back(std::move(rec));
    }
    output_.header_pending = false;
  }
  UpdateMemCharge();
  return Status::OK();
}

Status UnitReuseReader::ReadPageRaw(int64_t did, uint64_t expected_digest,
                                    RawPageSlice* slice, bool* found,
                                    bool* index_valid) {
  DELEX_TRACE_SPAN("reuse_read_page_raw", did, "io");
  *found = false;
  *index_valid = false;
  slice->page_digest = 0;
  slice->in_bytes.clear();
  slice->out_bytes.clear();
  slice->n_inputs = 0;
  slice->n_outputs = 0;

  bool found_in = false;
  bool found_out = false;
  DELEX_RETURN_NOT_OK(AdvanceTo(&input_, did, &found_in));
  DELEX_RETURN_NOT_OK(AdvanceTo(&output_, did, &found_out));
  if (found_in != found_out) {
    return Status::Corruption("reuse files out of sync at page group");
  }
  if (!found_in) return Status::OK();

  int64_t in_start = input_.pos;
  slice->n_inputs = input_.pending_count;
  for (int64_t i = 0; i < slice->n_inputs; ++i) {
    bool at_end = false;
    DELEX_RETURN_NOT_OK(NextRecord(&input_, &at_end));
    if (at_end) return Status::Corruption("truncated reuse page group");
    AppendFramed(scratch_, &slice->in_bytes);
  }
  input_.header_pending = false;
  int64_t in_len = input_.pos - in_start;

  int64_t out_start = output_.pos;
  slice->n_outputs = output_.pending_count;
  for (int64_t i = 0; i < slice->n_outputs; ++i) {
    bool at_end = false;
    DELEX_RETURN_NOT_OK(NextRecord(&output_, &at_end));
    if (at_end) return Status::Corruption("truncated reuse page group");
    AppendFramed(scratch_, &slice->out_bytes);
  }
  output_.header_pending = false;
  int64_t out_len = output_.pos - out_start;

  *found = true;

  const PageIndexEntry* entry = FindIndexEntry(did);
  if (entry != nullptr && entry->page_digest == expected_digest &&
      entry->in_offset == in_start && entry->in_bytes == in_len &&
      entry->n_inputs == slice->n_inputs && entry->out_offset == out_start &&
      entry->out_bytes == out_len && entry->n_outputs == slice->n_outputs) {
    slice->page_digest = entry->page_digest;
    *index_valid = true;
  }
  UpdateMemCharge();
  return Status::OK();
}

Status UnitReuseReader::Close() {
  Status st = input_.reader.Close();
  Status st_out = output_.reader.Close();
  index_.clear();
  index_ok_ = false;
  UpdateMemCharge();
  if (!st.ok()) return st;
  return st_out;
}

IoStats UnitReuseReader::CombinedStats() const {
  IoStats stats = input_.reader.stats();
  stats += output_.reader.stats();
  stats += index_io_;
  return stats;
}

Status DecodeRawPageSlice(const RawPageSlice& slice, int64_t did,
                          std::vector<InputTupleRec>* inputs,
                          std::vector<OutputTupleRec>* outputs) {
  inputs->clear();
  outputs->clear();

  auto walk = [](const std::string& framed, int64_t expect_count,
                 auto&& per_record) -> Status {
    size_t offset = 0;
    int64_t count = 0;
    while (offset < framed.size()) {
      int64_t length = 0;
      if (!GetFixed(framed, &offset, &length) || length < 0 ||
          offset + static_cast<size_t>(length) > framed.size()) {
        return Status::Corruption("bad raw page slice framing");
      }
      DELEX_RETURN_NOT_OK(per_record(
          std::string_view(framed.data() + offset,
                           static_cast<size_t>(length)),
          count));
      offset += static_cast<size_t>(length);
      ++count;
    }
    if (count != expect_count) {
      return Status::Corruption("raw page slice record count mismatch");
    }
    return Status::OK();
  };

  DELEX_RETURN_NOT_OK(walk(
      slice.in_bytes, slice.n_inputs,
      [&](std::string_view record, int64_t ord) -> Status {
        DELEX_ASSIGN_OR_RETURN(InputTupleRec rec, DecodeInputTuple(record));
        rec.tid = ord;
        rec.did = did;
        inputs->push_back(std::move(rec));
        return Status::OK();
      }));
  return walk(slice.out_bytes, slice.n_outputs,
              [&](std::string_view record, int64_t ord) -> Status {
                DELEX_ASSIGN_OR_RETURN(OutputTupleRec rec,
                                       DecodeOutputTuple(record));
                rec.tid = ord;
                rec.did = did;
                outputs->push_back(std::move(rec));
                return Status::OK();
              });
}

Status CaptureFromRawSlice(const RawPageSlice& slice, PageCapture* capture) {
  capture->groups.clear();
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  DELEX_RETURN_NOT_OK(DecodeRawPageSlice(slice, /*did=*/0, &inputs, &outputs));
  capture->groups.reserve(inputs.size());
  for (InputTupleRec& in : inputs) {
    PageCapture::Group group;
    group.region = in.region;
    group.region_hash = in.region_hash;
    group.context = std::move(in.context);
    capture->groups.push_back(std::move(group));
  }
  for (OutputTupleRec& out : outputs) {
    if (out.itid < 0 ||
        out.itid >= static_cast<int64_t>(capture->groups.size())) {
      return Status::Corruption("raw page slice output orphaned");
    }
    capture->groups[static_cast<size_t>(out.itid)].outputs.push_back(
        std::move(out.payload));
  }
  return Status::OK();
}

}  // namespace delex
