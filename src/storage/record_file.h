#ifndef DELEX_STORAGE_RECORD_FILE_H_
#define DELEX_STORAGE_RECORD_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/io_stats.h"

namespace delex {

/// Upper bound on a single record's payload size. Record files are
/// untrusted bytes (a work dir can be truncated, bit-flipped, or swapped
/// for a different format), so the reader refuses length prefixes beyond
/// this bound instead of attempting a multi-gigabyte allocation — a
/// corrupt 8-byte length field must degrade to Status::Corruption, never
/// to OOM or to size_t overflow in buffer arithmetic. The largest real
/// records (whole-page framed slices stay per-record small; page contents
/// in snapshots are the biggest payloads) sit far below this.
inline constexpr uint64_t kMaxRecordLength = uint64_t{1} << 30;  // 1 GiB

/// \brief Append-only file of length-prefixed records with block-sized
/// write buffering.
///
/// This is the substrate for reuse files (§4): "we use one block of memory
/// per reuse file to buffer the writes; whenever a block fills up, we flush
/// the buffered tuples to the end of the corresponding reuse file."
class RecordWriter {
 public:
  RecordWriter() = default;
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Creates/truncates the file at `path`.
  Status Open(const std::string& path);

  /// Buffers one record; flushes whole blocks as the buffer fills.
  Status Append(std::string_view record);

  /// Buffers `record_count` already-framed records (each 8-byte length
  /// prefix + payload, exactly as this writer lays them out). This is the
  /// zero-re-encode passthrough used by the reuse-file raw page copy: the
  /// bytes land in the file verbatim, indistinguishable from the same
  /// records appended one by one through Append.
  Status AppendRaw(std::string_view framed, int64_t record_count);

  /// Flushes the partial tail block and closes the file.
  Status Close();

  bool IsOpen() const { return file_ != nullptr; }
  const IoStats& stats() const { return stats_; }

  /// Total framed bytes appended since Open (flushed + still buffered).
  /// Reuse-file page indexes record byte ranges in this coordinate.
  int64_t logical_size() const { return logical_size_; }

 private:
  Status FlushBuffer();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string buffer_;
  int64_t logical_size_ = 0;
  IoStats stats_;
};

/// \brief Sequential reader over a RecordWriter file.
///
/// Supports exactly the access pattern §5.2 requires: one front-to-back
/// scan; no random probes.
class RecordReader {
 public:
  RecordReader() = default;
  ~RecordReader();

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  Status Open(const std::string& path);

  /// Reads the next record into `*record`. Sets `*at_end` when the file is
  /// exhausted (then `*record` is untouched).
  Status Next(std::string* record, bool* at_end);

  Status Close();

  bool IsOpen() const { return file_ != nullptr; }
  const IoStats& stats() const { return stats_; }

 private:
  Status FillBuffer(size_t need);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  bool hit_eof_ = false;
  IoStats stats_;
};

}  // namespace delex

#endif  // DELEX_STORAGE_RECORD_FILE_H_
