#ifndef DELEX_STORAGE_RESULT_CACHE_H_
#define DELEX_STORAGE_RESULT_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "obs/mem.h"
#include "storage/io_stats.h"
#include "storage/record_file.h"

namespace delex {

/// \brief One page's cached final result rows, framed but not decoded.
///
/// `bytes` holds whole framed records (8-byte length prefix + encoded
/// did-stripped row each), exactly as they sit in the cache file — the
/// unit of the zero-re-encode passthrough between generations.
struct ResultPageSlice {
  std::string bytes;
  int64_t n_rows = 0;
};

/// \brief Writer for the per-generation page result cache
/// (`results.gen<N>`).
///
/// The identical-page fast path skips plan evaluation entirely, so the
/// final result rows a page contributed must themselves be recoverable
/// from the previous generation. This file stores, per page in snapshot
/// order, the page's final rows with the leading did stripped: rows are
/// did-free (spans are page-local already), so a byte-identical page's
/// cached rows are valid verbatim in the next generation — copied raw and
/// re-prefixed with the new did on decode.
///
/// Layout mirrors the reuse files (format v2): magic record, then per page
/// a header record {did, n_rows} followed by n_rows encoded rows. Every
/// page gets a header even with zero rows, so a forward scan can tell
/// "page produced nothing" from "page group missing".
class ResultCacheWriter {
 public:
  ResultCacheWriter() = default;

  Status Open(const std::string& path);

  /// Appends one page's rows. Each row must carry the page's did as its
  /// first value (the shape RunSnapshot returns); the did is stripped on
  /// encode to keep the stored bytes relocatable.
  Status CommitPage(int64_t did, const std::vector<Tuple>& rows_with_did);

  /// Appends one page's rows verbatim from a slice read off the previous
  /// generation — no decode, no re-encode; only the header is fresh.
  Status CommitPageRaw(int64_t did, const ResultPageSlice& raw);

  Status Close();

  const IoStats& stats() const { return writer_.stats(); }

 private:
  RecordWriter writer_;
  std::string scratch_;
  obs::ScopedMemCharge mem_{obs::MemTag::kResultCache};
};

/// \brief Forward-scan reader over a ResultCacheWriter file.
///
/// Same discipline as UnitReuseReader: pages are requested in snapshot
/// order, the scan never rewinds, and a passed or absent page simply
/// reports `*found = false` (callers then fall back to full evaluation —
/// degrade, never miscompute).
class ResultCacheReader {
 public:
  ResultCacheReader() = default;

  /// Opens the cache and checks its magic record.
  Status Open(const std::string& path);

  /// Scans forward to page `did`, capturing its framed rows undecoded.
  Status ReadPage(int64_t did, ResultPageSlice* slice, bool* found);

  Status Close();

  const IoStats& stats() const { return reader_.stats(); }

 private:
  RecordReader reader_;
  bool done_ = false;
  bool header_pending_ = false;
  int64_t pending_did_ = 0;
  int64_t pending_count_ = 0;
  std::string scratch_;
  obs::ScopedMemCharge mem_{obs::MemTag::kResultCache};
};

/// \brief Decodes a slice into result rows, prefixing each with `did` —
/// the recovery step that turns a previous generation's cached bytes into
/// this generation's result tuples.
Status DecodeResultSlice(const ResultPageSlice& slice, int64_t did,
                         std::vector<Tuple>* rows);

}  // namespace delex

#endif  // DELEX_STORAGE_RESULT_CACHE_H_
