#ifndef DELEX_STORAGE_SNAPSHOT_H_
#define DELEX_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/mem.h"
#include "storage/io_stats.h"

namespace delex {

/// \brief One retrieved data page: a URL plus its text content.
///
/// `did` is the document id, unique within a snapshot; pages at the same
/// URL in different snapshots generally have different dids.
///
/// `content_hash` is the FNV-1a digest of `content`, computed once when
/// the page enters a Snapshot (AddPage / ReadSnapshot). The engine's
/// whole-page fast path compares digests of consecutive versions of a URL
/// before falling back to a byte compare, so the 96–98 % of DBLife pages
/// that are byte-identical between snapshots are detected in O(1) per
/// page pair instead of O(page) hashing on every run.
struct Page {
  int64_t did = 0;
  std::string url;
  std::string content;
  uint64_t content_hash = 0;
};

/// \brief One corpus snapshot P_i: the ordered set of pages retrieved at
/// crawl time i.
///
/// Order matters: §5.2's single-pass algorithm processes snapshot n+1 in
/// exactly the page order of snapshot n, so reuse files are scanned
/// strictly sequentially.
class Snapshot {
 public:
  Snapshot() = default;

  /// Appends a page, assigning it the next document id.
  Page& AddPage(std::string url, std::string content);

  /// Appends a verbatim copy of `page`, keeping its did and content hash.
  /// The shard router uses this to build per-shard sub-snapshots that
  /// carry *global* dids: reuse files only require dids to be monotone in
  /// append order, and a hash-partitioned subsequence of an ordered
  /// snapshot stays ordered — so per-shard output rows come out carrying
  /// the same dids an unsharded run would assign.
  Page& AddExistingPage(const Page& page);

  const std::vector<Page>& pages() const { return pages_; }
  std::vector<Page>& mutable_pages() { return pages_; }
  size_t NumPages() const { return pages_.size(); }

  /// Total content bytes across pages.
  int64_t TotalBytes() const;
  int64_t TotalBlocks() const { return (TotalBytes() + kBlockSize - 1) / kBlockSize; }

  /// Index of the page at `url`, if present.
  std::optional<size_t> FindByUrl(const std::string& url) const;

  /// Rebuilds the url index and page content digests (call after mutating
  /// pages in place).
  void ReindexUrls();

 private:
  // Memory accounting (obs layer 4): page text + urls, re-stated on every
  // append and on ReindexUrls. In-place edits via mutable_pages() drift
  // until the next ReindexUrls — the same call that already repairs the
  // url index and digests.
  obs::ScopedMemCharge mem_{obs::MemTag::kSnapshot};
  std::vector<Page> pages_;
  std::unordered_map<std::string, size_t> by_url_;
};

/// \brief Writes a snapshot to a record file at `path`.
Status WriteSnapshot(const Snapshot& snapshot, const std::string& path,
                     IoStats* stats = nullptr);

/// \brief Reads a snapshot back from `path`.
Result<Snapshot> ReadSnapshot(const std::string& path, IoStats* stats = nullptr);

}  // namespace delex

#endif  // DELEX_STORAGE_SNAPSHOT_H_
