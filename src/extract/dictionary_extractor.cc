#include "extract/dictionary_extractor.h"

#include <algorithm>
#include <cctype>
#include <deque>

namespace delex {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

DictionaryExtractor::DictionaryExtractor(std::string name,
                                         std::vector<std::string> terms,
                                         DictionaryOptions options)
    : name_(std::move(name)), options_(options) {
  for (const std::string& t : terms) {
    max_term_length_ =
        std::max(max_term_length_, static_cast<int64_t>(t.size()));
  }
  BuildAutomaton(terms);
}

int32_t DictionaryExtractor::Child(int32_t node, unsigned char c) const {
  for (const auto& [ch, to] : nodes_[static_cast<size_t>(node)].next) {
    if (ch == c) return to;
  }
  return -1;
}

void DictionaryExtractor::BuildAutomaton(std::vector<std::string> terms) {
  nodes_.clear();
  nodes_.emplace_back();  // root
  // Duplicate terms would emit duplicate mentions; dictionaries are sets.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (const std::string& term : terms) {
    if (term.empty()) continue;
    int32_t node = 0;
    for (char c : term) {
      auto uc = static_cast<unsigned char>(c);
      int32_t child = Child(node, uc);
      if (child < 0) {
        child = static_cast<int32_t>(nodes_.size());
        nodes_[static_cast<size_t>(node)].next.emplace_back(uc, child);
        nodes_.emplace_back();
      }
      node = child;
    }
    nodes_[static_cast<size_t>(node)].term_lengths.push_back(
        static_cast<int32_t>(term.size()));
  }
  // BFS to set fail links and merge output sets.
  std::deque<int32_t> queue;
  for (const auto& [c, child] : nodes_[0].next) {
    (void)c;
    nodes_[static_cast<size_t>(child)].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int32_t node = queue.front();
    queue.pop_front();
    for (const auto& [c, child] : nodes_[static_cast<size_t>(node)].next) {
      int32_t f = nodes_[static_cast<size_t>(node)].fail;
      while (f != 0 && Child(f, c) < 0) f = nodes_[static_cast<size_t>(f)].fail;
      int32_t target = Child(f, c);
      if (target < 0 || target == child) target = 0;
      nodes_[static_cast<size_t>(child)].fail = target;
      const auto& inherited =
          nodes_[static_cast<size_t>(target)].term_lengths;
      auto& own = nodes_[static_cast<size_t>(child)].term_lengths;
      own.insert(own.end(), inherited.begin(), inherited.end());
      queue.push_back(child);
    }
  }
}

int32_t DictionaryExtractor::Step(int32_t node, unsigned char c) const {
  while (true) {
    int32_t child = Child(node, c);
    if (child >= 0) return child;
    if (node == 0) return 0;
    node = nodes_[static_cast<size_t>(node)].fail;
  }
}

std::vector<Tuple> DictionaryExtractor::Extract(std::string_view region_text,
                                                int64_t region_base,
                                                const Tuple& context) const {
  (void)context;
  std::vector<Tuple> out;
  int32_t node = 0;
  const int64_t n = static_cast<int64_t>(region_text.size());
  uint64_t burn_guard = 0;
  for (int64_t i = 0; i < n; ++i) {
    burn_guard ^= BurnWork(options_.work_per_char);
    node = Step(node, static_cast<unsigned char>(region_text[static_cast<size_t>(i)]));
    for (int32_t len : nodes_[static_cast<size_t>(node)].term_lengths) {
      int64_t start = i - len + 1;
      if (options_.require_word_boundaries) {
        bool left_ok = start == 0 || !IsWordChar(region_text[static_cast<size_t>(start - 1)]);
        bool right_ok = i + 1 == n || !IsWordChar(region_text[static_cast<size_t>(i + 1)]);
        if (!left_ok || !right_ok) continue;
      }
      Tuple tuple;
      tuple.emplace_back(TextSpan(region_base + start, region_base + i + 1));
      if (options_.emit_term) {
        tuple.emplace_back(std::string(
            region_text.substr(static_cast<size_t>(start), static_cast<size_t>(len))));
      }
      out.push_back(std::move(tuple));
    }
  }
  (void)burn_guard;
  Account(n, static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace delex
