#ifndef DELEX_EXTRACT_REPEAT_EXTRACTOR_H_
#define DELEX_EXTRACT_REPEAT_EXTRACTOR_H_

#include <string>
#include <utility>

#include "extract/extractor.h"

namespace delex {

/// \brief Wraps a blackbox so each of its output tuples is emitted
/// `repeat` times.
///
/// This is the instrument of the paper's Figure 14 experiment ("we changed
/// the code of each IE blackbox ... so that a mention extracted by the IE
/// blackbox is output multiple times"): it scales the number of mentions —
/// and therefore the volume of captured and copied IE results — without
/// changing extraction cost or corpus content. Duplicated tuples are
/// identical, so (α, β) honesty carries over from the inner blackbox.
class RepeatExtractor : public Extractor {
 public:
  /// The wrapper keeps the inner blackbox's name so it can transparently
  /// replace the original binding in an ExtractorRegistry.
  RepeatExtractor(ExtractorPtr inner, int repeat)
      : inner_(std::move(inner)), repeat_(repeat), name_(inner_->Name()) {}

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override {
    std::vector<Tuple> base = inner_->Extract(region_text, region_base, context);
    std::vector<Tuple> out;
    out.reserve(base.size() * static_cast<size_t>(repeat_));
    for (const Tuple& t : base) {
      for (int i = 0; i < repeat_; ++i) out.push_back(t);
    }
    Account(0, static_cast<int64_t>(out.size()));
    return out;
  }

  int64_t Scope() const override { return inner_->Scope(); }
  int64_t ContextWidth() const override { return inner_->ContextWidth(); }
  int64_t OutputArity() const override { return inner_->OutputArity(); }
  const std::string& Name() const override { return name_; }

 private:
  ExtractorPtr inner_;
  int repeat_;
  std::string name_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_REPEAT_EXTRACTOR_H_
