#include "extract/registry.h"

namespace delex {

void ExtractorRegistry::Register(ExtractorPtr extractor) {
  extractors_[extractor->Name()] = std::move(extractor);
}

Result<ExtractorPtr> ExtractorRegistry::Lookup(const std::string& name) const {
  auto it = extractors_.find(name);
  if (it == extractors_.end()) {
    return Status::NotFound("no extractor registered for IE predicate '" +
                            name + "'");
  }
  return it->second;
}

}  // namespace delex
