#include "extract/sentence_segmenter.h"

#include <algorithm>
#include <cctype>

namespace delex {
namespace {

bool IsBoundaryChar(char c) { return c == '.' || c == '!' || c == '?'; }

}  // namespace

SentenceSegmenter::SentenceSegmenter(std::string name,
                                     SentenceSegmenterOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

double SentenceSegmenter::ScoreBoundary(std::string_view text,
                                        int64_t pos) const {
  const int64_t n = static_cast<int64_t>(text.size());
  const int64_t w = options_.feature_window;
  double score = 0.5;  // bias: most '.' are boundaries

  // Feature: next non-space character within the window is uppercase or
  // end-of-region.
  int64_t next = pos + 1;
  while (next < n && next <= pos + w &&
         std::isspace(static_cast<unsigned char>(text[static_cast<size_t>(next)]))) {
    ++next;
  }
  if (next >= n || next > pos + w) {
    score += 1.0;  // trailing boundary
  } else {
    char c = text[static_cast<size_t>(next)];
    if (std::isupper(static_cast<unsigned char>(c))) {
      score += 1.5;
    } else if (std::islower(static_cast<unsigned char>(c))) {
      score -= 2.0;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      score -= 0.5;
    }
  }

  // Feature: no whitespace right after the '.' (e.g., "3.14", "e.g.x").
  if (pos + 1 < n &&
      !std::isspace(static_cast<unsigned char>(text[static_cast<size_t>(pos + 1)]))) {
    score -= 1.5;
  }

  // Feature: decimal context — digits on both sides.
  if (pos > 0 && pos + 1 < n &&
      std::isdigit(static_cast<unsigned char>(text[static_cast<size_t>(pos - 1)])) &&
      std::isdigit(static_cast<unsigned char>(text[static_cast<size_t>(pos + 1)]))) {
    score -= 3.0;
  }

  // Feature: token before the '.' is a known abbreviation (looked up within
  // the window only, so the receptive field stays bounded).
  int64_t tok_end = pos;
  int64_t tok_start = pos;
  while (tok_start > 0 && tok_start > pos - w &&
         std::isalpha(static_cast<unsigned char>(
             text[static_cast<size_t>(tok_start - 1)]))) {
    --tok_start;
  }
  if (tok_start < tok_end) {
    std::string_view token = text.substr(static_cast<size_t>(tok_start),
                                         static_cast<size_t>(tok_end - tok_start));
    for (const std::string& abbr : options_.abbreviations) {
      if (token == abbr) {
        score -= 4.0;
        break;
      }
    }
    // Single capital letter ("F. Chen") is an initial, not a boundary.
    if (tok_end - tok_start == 1 &&
        std::isupper(static_cast<unsigned char>(
            text[static_cast<size_t>(tok_start)]))) {
      score -= 3.0;
    }
  }

  return score;
}

std::vector<Tuple> SentenceSegmenter::Extract(std::string_view region_text,
                                              int64_t region_base,
                                              const Tuple& context) const {
  (void)context;
  std::vector<Tuple> out;
  const int64_t n = static_cast<int64_t>(region_text.size());
  uint64_t burn_guard = BurnWork(options_.work_per_char * n);

  // Accepted boundary positions (position of the delimiter character; the
  // sentence includes it).
  std::vector<int64_t> cuts;
  for (int64_t i = 0; i < n; ++i) {
    if (!IsBoundaryChar(region_text[static_cast<size_t>(i)])) continue;
    burn_guard ^= BurnWork(options_.work_per_char * options_.feature_window);
    if (ScoreBoundary(region_text, i) > options_.threshold) cuts.push_back(i);
  }

  int64_t start = 0;
  auto emit = [&](int64_t s, int64_t e) {
    // Trim leading whitespace, but never more than the feature window:
    // an unbounded trim would put the accepting boundary farther from the
    // mention than the declared β.
    int64_t trimmed = 0;
    while (s < e && trimmed < options_.feature_window &&
           std::isspace(static_cast<unsigned char>(region_text[static_cast<size_t>(s)]))) {
      ++s;
      ++trimmed;
    }
    if (trimmed == options_.feature_window) s -= trimmed;  // give up the trim
    TextSpan sentence(s, e);
    if (sentence.length() >= options_.max_sentence_length) {
      sentence.end = sentence.start + options_.max_sentence_length - 1;
    }
    if (!sentence.empty()) {
      out.push_back({Value(TextSpan(region_base + sentence.start,
                                    region_base + sentence.end))});
    }
  };
  for (int64_t cut : cuts) {
    emit(start, cut + 1);
    start = cut + 1;
  }
  if (start < n) emit(start, n);

  (void)burn_guard;
  Account(n, static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace delex
