#ifndef DELEX_EXTRACT_BOUNDS_OVERRIDE_EXTRACTOR_H_
#define DELEX_EXTRACT_BOUNDS_OVERRIDE_EXTRACTOR_H_

#include <string>
#include <utility>

#include "common/logging.h"
#include "extract/extractor.h"

namespace delex {

/// \brief Wraps a blackbox, overriding only its *declared* (α, β).
///
/// The instrument of the paper's α/β sensitivity study: the behaviour is
/// untouched, but Delex must honour looser declared bounds, which shrinks
/// copy-safe interiors and widens extraction expansions. Overrides must be
/// at least as large as the inner declarations — tighter values would be
/// dishonest — and that is enforced at construction.
class BoundsOverrideExtractor : public Extractor {
 public:
  BoundsOverrideExtractor(ExtractorPtr inner, int64_t alpha, int64_t beta)
      : inner_(std::move(inner)),
        alpha_(alpha),
        beta_(beta),
        name_(inner_->Name()) {
    DELEX_CHECK_GE(alpha_, inner_->Scope());
    DELEX_CHECK_GE(beta_, inner_->ContextWidth());
  }

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override {
    return inner_->Extract(region_text, region_base, context);
  }

  int64_t Scope() const override { return alpha_; }
  int64_t ContextWidth() const override { return beta_; }
  int64_t OutputArity() const override { return inner_->OutputArity(); }
  const std::string& Name() const override { return name_; }

 private:
  ExtractorPtr inner_;
  int64_t alpha_;
  int64_t beta_;
  std::string name_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_BOUNDS_OVERRIDE_EXTRACTOR_H_
