#include "extract/pair_extractor.h"

#include <algorithm>

#include "common/logging.h"

namespace delex {

PairExtractor::PairExtractor(std::string name, ExtractorPtr left,
                             ExtractorPtr right, int64_t window)
    : name_(std::move(name)),
      left_(std::move(left)),
      right_(std::move(right)),
      window_(window) {
  DELEX_CHECK(left_ != nullptr && right_ != nullptr);
  DELEX_CHECK_MSG(left_->OutputArity() == 1 && right_->OutputArity() == 1,
                  "PairExtractor composes single-span extractors");
}

int64_t PairExtractor::ContextWidth() const {
  // A pair is emitted iff both inner mentions are (each governed by its
  // own β, and both lie inside the pair's envelope) and their distance
  // fits the window — which is determined by the envelope itself.
  return std::max(left_->ContextWidth(), right_->ContextWidth());
}

std::vector<Tuple> PairExtractor::Extract(std::string_view region_text,
                                          int64_t region_base,
                                          const Tuple& context) const {
  std::vector<Tuple> lefts = left_->Extract(region_text, region_base, context);
  std::vector<Tuple> rights =
      right_->Extract(region_text, region_base, context);

  std::vector<Tuple> out;
  for (const Tuple& l : lefts) {
    const TextSpan& ls = std::get<TextSpan>(l[0]);
    for (const Tuple& r : rights) {
      const TextSpan& rs = std::get<TextSpan>(r[0]);
      int64_t envelope =
          std::max(ls.end, rs.end) - std::min(ls.start, rs.start);
      if (envelope < window_) {
        out.push_back({Value(ls), Value(rs)});
      }
    }
  }
  Account(static_cast<int64_t>(region_text.size()),
          static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace delex
