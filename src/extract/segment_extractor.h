#ifndef DELEX_EXTRACT_SEGMENT_EXTRACTOR_H_
#define DELEX_EXTRACT_SEGMENT_EXTRACTOR_H_

#include <string>

#include "extract/extractor.h"

namespace delex {

/// \brief Options for SegmentExtractor.
struct SegmentOptions {
  /// Delimiter string separating records (e.g., "\n\n" for paragraphs,
  /// "== " for wiki sections).
  std::string delimiter = "\n\n";

  /// Only emit segments whose first characters start with this marker
  /// (empty = all segments). Lets one blackbox pick out, say, abstract
  /// paragraphs.
  std::string required_prefix;

  /// Declared scope α: segments are emitted only if strictly shorter, so
  /// the declaration is honest by construction. A segment running past
  /// α - 1 characters without hitting a delimiter is truncated to α - 1
  /// (the truncation decision only reads the segment body + β window).
  int64_t max_segment_length = 8192;

  bool truncate_overlong = true;

  /// Calibrated per-character CPU cost (see BurnWork).
  int64_t work_per_char = 10;
};

/// \brief Rule-based blackbox that extracts structural regions
/// (paragraphs, sections, list items) as spans.
///
/// This is the archetype of the *lower* blackbox in an IE chain
/// (extractAbstract in Figure 2): it produces large spans that later units
/// extract fine-grained mentions from. Its α is large (the longest
/// paragraph), which is exactly why reuse at whole-program granularity is
/// poor and per-unit reuse (Delex) wins.
///
/// β = delimiter length: whether [a, b) is emitted depends on the
/// delimiter immediately before a, the delimiter (or truncation rule)
/// at b, and the absence of delimiters inside — all within the mention
/// plus a delimiter-width window.
class SegmentExtractor : public Extractor {
 public:
  SegmentExtractor(std::string name, SegmentOptions options = SegmentOptions());

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return options_.max_segment_length; }
  // +1: the truncation decision ("no delimiter within the next α chars")
  // reads one character past the truncated mention's β-window.
  int64_t ContextWidth() const override {
    return static_cast<int64_t>(options_.delimiter.size()) + 1;
  }
  int64_t OutputArity() const override { return 1; }
  const std::string& Name() const override { return name_; }

 private:
  std::string name_;
  SegmentOptions options_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_SEGMENT_EXTRACTOR_H_
