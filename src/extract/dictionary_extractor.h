#ifndef DELEX_EXTRACT_DICTIONARY_EXTRACTOR_H_
#define DELEX_EXTRACT_DICTIONARY_EXTRACTOR_H_

#include <string>
#include <vector>

#include "extract/extractor.h"

namespace delex {

/// \brief Options for DictionaryExtractor.
struct DictionaryOptions {
  /// Require non-word characters (or region edge) around each match — the
  /// usual behaviour of entity dictionaries.
  bool require_word_boundaries = true;

  /// Also emit the matched term as a second (string) attribute.
  bool emit_term = false;

  /// Calibrated per-character CPU cost (see BurnWork).
  int64_t work_per_char = 20;
};

/// \brief Rule-based blackbox: finds occurrences of dictionary terms.
///
/// The pervasive IE primitive of DBLife-style systems ("find mentions of
/// known researcher / conference / course names"). Matching is a single
/// Aho–Corasick pass, so cost is linear in the region length — exactly the
/// cost profile the Delex cost model assumes for extraction.
///
/// α = longest term + 1; β = 1 (the two boundary characters).
class DictionaryExtractor : public Extractor {
 public:
  DictionaryExtractor(std::string name, std::vector<std::string> terms,
                      DictionaryOptions options = DictionaryOptions());

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return max_term_length_ + 1; }
  int64_t ContextWidth() const override {
    return options_.require_word_boundaries ? 1 : 0;
  }
  int64_t OutputArity() const override { return options_.emit_term ? 2 : 1; }
  const std::string& Name() const override { return name_; }

 private:
  struct Node {
    std::vector<std::pair<unsigned char, int32_t>> next;
    int32_t fail = 0;
    // Lengths of dictionary terms ending at this node (via output links).
    std::vector<int32_t> term_lengths;
  };

  void BuildAutomaton(std::vector<std::string> terms);
  int32_t Step(int32_t node, unsigned char c) const;
  int32_t Child(int32_t node, unsigned char c) const;

  std::string name_;
  DictionaryOptions options_;
  int64_t max_term_length_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_DICTIONARY_EXTRACTOR_H_
