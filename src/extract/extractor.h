#ifndef DELEX_EXTRACT_EXTRACTOR_H_
#define DELEX_EXTRACT_EXTRACTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace delex {

/// \brief Aggregate work counters for one extractor instance.
///
/// `chars_processed` is the deterministic cost proxy used by tests and the
/// cost model (wall-clock is used for the figures; counters make invariants
/// assertable without timing flakiness).
struct ExtractStats {
  int64_t calls = 0;
  int64_t chars_processed = 0;
  int64_t mentions_emitted = 0;

  void Reset() { *this = ExtractStats(); }
  ExtractStats& operator+=(const ExtractStats& other) {
    calls += other.calls;
    chars_processed += other.chars_processed;
    mentions_emitted += other.mentions_emitted;
    return *this;
  }
};

/// \brief An IE blackbox (Definition 1 / Definition 4).
///
/// Contract required for recycling correctness (Theorem 1):
///  - **Per-region purity**: the output depends only on `region_text` and
///    `context` — never on global state, the page outside the region, or
///    the absolute position (`region_base` is used only to emit absolute
///    span coordinates).
///  - **Translation invariance**: Extract(t, b, c) equals Extract(t, 0, c)
///    with every span shifted by b.
///  - **Honest scope α** (Definition 2): every output tuple's span envelope
///    is shorter than `scope()` characters.
///  - **Honest context β** (Definition 3): whether a mention is produced
///    depends only on the text within `context_width()` characters of the
///    mention's span envelope (plus `context`).
///
/// Violating honesty does not crash Delex, it silently breaks Theorem 1 —
/// which is exactly why the test suite re-verifies Delex output against
/// from-scratch output for every extractor shipped here.
class Extractor {
 public:
  virtual ~Extractor() = default;

  /// Applies the blackbox to `region_text`, the page substring starting at
  /// absolute offset `region_base`. Returns the (b_1 ... b_m) output parts;
  /// span values are absolute page coordinates.
  virtual std::vector<Tuple> Extract(std::string_view region_text,
                                     int64_t region_base,
                                     const Tuple& context) const = 0;

  /// Scope α in characters (Definition 2).
  virtual int64_t Scope() const = 0;

  /// Context β in characters (Definition 3).
  virtual int64_t ContextWidth() const = 0;

  /// Number of output attributes (m in Definition 4).
  virtual int64_t OutputArity() const = 0;

  virtual const std::string& Name() const = 0;

  ExtractStats& stats() const { return stats_; }

 protected:
  /// Subclasses call this once per Extract to account their work.
  ///
  /// One extractor instance is shared by every page-evaluation worker, so
  /// the counters are bumped with relaxed atomics: exact totals without
  /// serializing Extract. Readers (tests, the cost model's calibration)
  /// only look at the counters while no extraction is in flight.
  void Account(int64_t chars, int64_t mentions) const {
    std::atomic_ref<int64_t>(stats_.calls)
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<int64_t>(stats_.chars_processed)
        .fetch_add(chars, std::memory_order_relaxed);
    std::atomic_ref<int64_t>(stats_.mentions_emitted)
        .fetch_add(mentions, std::memory_order_relaxed);
  }

 private:
  mutable ExtractStats stats_;
};

using ExtractorPtr = std::shared_ptr<const Extractor>;

/// \brief Deterministic CPU burner: performs `units` rounds of integer
/// hashing.
///
/// Real IE blackboxes (CRF inference, deep rule cascades) cost far more per
/// character than our synthetic rules; BurnWork lets each extractor carry a
/// calibrated per-character cost so speedup *shapes* match the paper's
/// measurements at laptop scale. Returns a value that must be consumed to
/// defeat dead-code elimination.
uint64_t BurnWork(int64_t units);

}  // namespace delex

#endif  // DELEX_EXTRACT_EXTRACTOR_H_
