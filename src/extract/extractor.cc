#include "extract/extractor.h"

namespace delex {

uint64_t BurnWork(int64_t units) {
  // xorshift-style mixing; the data dependence chain prevents the compiler
  // from collapsing the loop.
  volatile uint64_t sink = 0x9E3779B97F4A7C15ULL;
  uint64_t h = sink;
  for (int64_t i = 0; i < units; ++i) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 29;
  }
  sink = h;
  return sink;
}

}  // namespace delex
