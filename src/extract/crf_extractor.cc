#include "extract/crf_extractor.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <limits>

namespace delex {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<TextSpan> Tokenize(std::string_view text) {
  std::vector<TextSpan> tokens;
  const int64_t n = static_cast<int64_t>(text.size());
  int64_t i = 0;
  while (i < n) {
    while (i < n &&
           std::isspace(static_cast<unsigned char>(text[static_cast<size_t>(i)]))) {
      ++i;
    }
    if (i >= n) break;
    int64_t start = i;
    while (i < n &&
           !std::isspace(static_cast<unsigned char>(text[static_cast<size_t>(i)]))) {
      ++i;
    }
    tokens.emplace_back(start, i);
  }
  return tokens;
}

std::string StripPunct(std::string_view token) {
  size_t begin = 0;
  size_t end = token.size();
  while (begin < end &&
         std::ispunct(static_cast<unsigned char>(token[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::ispunct(static_cast<unsigned char>(token[end - 1]))) {
    --end;
  }
  return std::string(token.substr(begin, end - begin));
}

}  // namespace

CrfModel CrfModel::Default() {
  CrfModel m;
  // Emissions: rows are features, columns are labels (O, B, I).
  m.emission[kFeatBias][kLabelO] = 1.0;
  m.emission[kFeatCapitalized][kLabelB] = 1.2;
  m.emission[kFeatCapitalized][kLabelI] = 1.0;
  m.emission[kFeatAllCaps][kLabelB] = 0.4;
  m.emission[kFeatAllDigits][kLabelO] = 0.4;
  m.emission[kFeatHasDigit][kLabelO] = 0.3;
  m.emission[kFeatInDictionary][kLabelB] = 2.4;
  m.emission[kFeatInDictionary][kLabelI] = 1.4;
  m.emission[kFeatQuoted][kLabelB] = 1.1;
  m.emission[kFeatQuoted][kLabelI] = 1.1;
  m.emission[kFeatShort][kLabelO] = 0.2;
  m.emission[kFeatAfterTrigger][kLabelB] = 2.2;
  // Transitions.
  m.transition[kLabelO][kLabelO] = 0.8;
  m.transition[kLabelO][kLabelB] = 0.0;
  m.transition[kLabelO][kLabelI] = -1e9;  // O -> I is illegal
  m.transition[kLabelB][kLabelI] = 1.0;
  m.transition[kLabelB][kLabelO] = 0.2;
  m.transition[kLabelB][kLabelB] = -0.4;
  m.transition[kLabelI][kLabelI] = 0.6;
  m.transition[kLabelI][kLabelO] = 0.2;
  m.transition[kLabelI][kLabelB] = -0.4;
  m.initial[kLabelO] = 0.5;
  m.initial[kLabelB] = 0.0;
  m.initial[kLabelI] = -1e9;  // chains cannot start inside a mention
  return m;
}

CrfExtractor::CrfExtractor(std::string name, CrfModel model, CrfOptions options)
    : name_(std::move(name)), model_(std::move(model)), options_(options) {}

double CrfExtractor::EmissionScore(std::string_view text, const TextSpan& token,
                                   bool after_trigger, int label) const {
  std::string_view raw = text.substr(static_cast<size_t>(token.start),
                                     static_cast<size_t>(token.length()));
  std::string word = StripPunct(raw);

  bool capitalized = false;
  bool all_caps = !word.empty();
  bool all_digits = !word.empty();
  bool has_digit = false;
  for (size_t i = 0; i < word.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(word[i]);
    if (i == 0) capitalized = std::isupper(c) != 0;
    if (!std::isupper(c)) all_caps = false;
    if (!std::isdigit(c)) all_digits = false;
    if (std::isdigit(c)) has_digit = true;
  }
  bool quoted = raw.size() >= 2 && (raw.front() == '"' || raw.front() == '\'') ;
  bool in_dict = model_.dictionary.contains(word);
  bool is_short = word.size() < 4;

  double score = model_.emission[kFeatBias][label];
  if (capitalized) score += model_.emission[kFeatCapitalized][label];
  if (all_caps && word.size() > 1) score += model_.emission[kFeatAllCaps][label];
  if (all_digits) score += model_.emission[kFeatAllDigits][label];
  if (has_digit) score += model_.emission[kFeatHasDigit][label];
  if (in_dict) score += model_.emission[kFeatInDictionary][label];
  if (quoted) score += model_.emission[kFeatQuoted][label];
  if (is_short) score += model_.emission[kFeatShort][label];
  if (after_trigger) score += model_.emission[kFeatAfterTrigger][label];
  return score;
}

std::vector<int> CrfExtractor::Decode(std::string_view text,
                                      std::vector<TextSpan>* token_spans) const {
  std::vector<TextSpan> tokens = Tokenize(text);
  const size_t n = tokens.size();
  std::vector<int> labels(n, kLabelO);
  if (n == 0) {
    if (token_spans != nullptr) token_spans->clear();
    return labels;
  }

  std::vector<std::array<double, kNumCrfLabels>> score(n);
  std::vector<std::array<int, kNumCrfLabels>> back(n);

  bool prev_trigger = false;
  for (size_t t = 0; t < n; ++t) {
    std::string word = StripPunct(
        text.substr(static_cast<size_t>(tokens[t].start),
                    static_cast<size_t>(tokens[t].length())));
    for (int label = 0; label < kNumCrfLabels; ++label) {
      double emit = EmissionScore(text, tokens[t], prev_trigger, label);
      if (t == 0) {
        score[t][static_cast<size_t>(label)] = model_.initial[label] + emit;
        back[t][static_cast<size_t>(label)] = -1;
      } else {
        double best = kNegInf;
        int best_prev = 0;
        for (int prev = 0; prev < kNumCrfLabels; ++prev) {
          double candidate = score[t - 1][static_cast<size_t>(prev)] +
                             model_.transition[prev][label];
          if (candidate > best) {
            best = candidate;
            best_prev = prev;
          }
        }
        score[t][static_cast<size_t>(label)] = best + emit;
        back[t][static_cast<size_t>(label)] = best_prev;
      }
    }
    prev_trigger = model_.triggers.contains(word);
  }

  int best_label = 0;
  for (int label = 1; label < kNumCrfLabels; ++label) {
    if (score[n - 1][static_cast<size_t>(label)] >
        score[n - 1][static_cast<size_t>(best_label)]) {
      best_label = label;
    }
  }
  for (size_t t = n; t-- > 0;) {
    labels[t] = best_label;
    best_label = back[t][static_cast<size_t>(best_label)];
  }

  if (token_spans != nullptr) *token_spans = std::move(tokens);
  return labels;
}

std::vector<Tuple> CrfExtractor::Extract(std::string_view region_text,
                                         int64_t region_base,
                                         const Tuple& context) const {
  (void)context;
  // Enforce the declared α by decoding only the leading window of an
  // overlong region.
  std::string_view text = region_text;
  if (static_cast<int64_t>(text.size()) >= options_.max_input_length) {
    text = text.substr(0, static_cast<size_t>(options_.max_input_length - 1));
  }
  uint64_t burn_guard =
      BurnWork(options_.work_per_char * static_cast<int64_t>(text.size()));

  std::vector<TextSpan> tokens;
  std::vector<int> labels = Decode(text, &tokens);

  std::vector<Tuple> out;
  size_t i = 0;
  while (i < labels.size()) {
    if (labels[i] == kLabelB) {
      size_t j = i + 1;
      while (j < labels.size() && labels[j] == kLabelI) ++j;
      out.push_back({Value(TextSpan(region_base + tokens[i].start,
                                    region_base + tokens[j - 1].end))});
      i = j;
    } else {
      ++i;
    }
  }
  (void)burn_guard;
  Account(static_cast<int64_t>(text.size()), static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace delex
