#include "extract/segment_extractor.h"

#include "common/logging.h"

namespace delex {

SegmentExtractor::SegmentExtractor(std::string name, SegmentOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  DELEX_CHECK_MSG(!options_.delimiter.empty(), "delimiter must be non-empty");
}

std::vector<Tuple> SegmentExtractor::Extract(std::string_view region_text,
                                             int64_t region_base,
                                             const Tuple& context) const {
  (void)context;
  std::vector<Tuple> out;
  const int64_t n = static_cast<int64_t>(region_text.size());
  const std::string& delim = options_.delimiter;
  uint64_t burn_guard = BurnWork(options_.work_per_char * n);

  int64_t start = 0;
  while (start < n) {
    size_t hit = region_text.find(delim, static_cast<size_t>(start));
    int64_t end = hit == std::string_view::npos ? n : static_cast<int64_t>(hit);
    int64_t next = hit == std::string_view::npos
                       ? n
                       : end + static_cast<int64_t>(delim.size());
    TextSpan segment(start, end);
    // Enforce the declared α. An overlong segment contributes only its
    // first α-1 characters (or nothing) — never follow-up chunks, whose
    // existence would depend on text α characters away (dishonest β).
    if (segment.length() >= options_.max_segment_length) {
      if (options_.truncate_overlong) {
        segment.end = segment.start + options_.max_segment_length - 1;
      } else {
        segment = TextSpan();
      }
    }
    if (!segment.empty()) {
      bool prefix_ok =
          options_.required_prefix.empty() ||
          region_text.substr(static_cast<size_t>(segment.start))
                  .substr(0, options_.required_prefix.size()) ==
              options_.required_prefix;
      if (prefix_ok) {
        out.push_back({Value(TextSpan(region_base + segment.start,
                                      region_base + segment.end))});
      }
    }
    start = next;
  }
  (void)burn_guard;
  Account(n, static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace delex
