#ifndef DELEX_EXTRACT_CRF_EXTRACTOR_H_
#define DELEX_EXTRACT_CRF_EXTRACTOR_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "extract/extractor.h"

namespace delex {

/// Token-level features evaluated by the CRF. Indexes into
/// CrfModel::emission.
enum CrfFeature : int {
  kFeatBias = 0,
  kFeatCapitalized,
  kFeatAllCaps,
  kFeatAllDigits,
  kFeatHasDigit,
  kFeatInDictionary,
  kFeatQuoted,
  kFeatShort,
  kFeatAfterTrigger,  // previous token is in the trigger dictionary
  kNumCrfFeatures,
};

/// BIO labels of the linear chain.
enum CrfLabel : int { kLabelO = 0, kLabelB = 1, kLabelI = 2, kNumCrfLabels };

/// \brief A hand-parameterised linear-chain CRF: emission weights per
/// (feature, label) and transition weights per (label, label).
///
/// The reproduction ships four instances (name, birth name, birth date,
/// notable roles) mirroring the Wu & Weld infobox models the paper uses in
/// Figure 15. Decoding is exact Viterbi, so the per-sentence cost profile
/// (feature evaluation × labels² dynamic program) matches real CRF
/// inference.
struct CrfModel {
  double emission[kNumCrfFeatures][kNumCrfLabels] = {};
  double transition[kNumCrfLabels][kNumCrfLabels] = {};
  double initial[kNumCrfLabels] = {};

  /// Entity dictionary feeding kFeatInDictionary (e.g., first names).
  std::unordered_set<std::string> dictionary;

  /// Trigger words feeding kFeatAfterTrigger (e.g., "born", "starred").
  std::unordered_set<std::string> triggers;

  /// A reasonable generic starting point: B/I favoured for capitalized,
  /// in-dictionary and post-trigger tokens; transitions discourage O→I.
  static CrfModel Default();
};

/// \brief Options for CrfExtractor.
struct CrfOptions {
  /// Declared α and β. The Viterbi decode is a *global* optimisation over
  /// the input region, so the honest context is the whole region; the
  /// paper sets α = β = the longest input sentence and so do we.
  int64_t max_input_length = 400;

  /// Calibrated per-character CPU cost (see BurnWork).
  int64_t work_per_char = 60;
};

/// \brief Learning-based blackbox: linear-chain CRF over the tokens of an
/// input region, emitting each decoded B-I* run as a mention span.
///
/// Input regions longer than max_input_length are processed only on their
/// leading max_input_length - 1 characters (mirrors the truncation rule of
/// the rule-based extractors, keeping α honest).
class CrfExtractor : public Extractor {
 public:
  CrfExtractor(std::string name, CrfModel model,
               CrfOptions options = CrfOptions());

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return options_.max_input_length; }
  int64_t ContextWidth() const override { return options_.max_input_length; }
  int64_t OutputArity() const override { return 1; }
  const std::string& Name() const override { return name_; }

  /// Viterbi decode over `text`; returns one label per token (exposed for
  /// tests).
  std::vector<int> Decode(std::string_view text,
                          std::vector<TextSpan>* token_spans) const;

 private:
  double EmissionScore(std::string_view text, const TextSpan& token,
                       bool after_trigger, int label) const;

  std::string name_;
  CrfModel model_;
  CrfOptions options_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_CRF_EXTRACTOR_H_
