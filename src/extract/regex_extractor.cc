#include "extract/regex_extractor.h"

#include <cctype>

namespace delex {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

RegexExtractor::RegexExtractor(std::string name, const std::string& pattern,
                               RegexOptions options)
    : name_(std::move(name)),
      options_(options),
      regex_(pattern, std::regex::ECMAScript | std::regex::optimize) {}

std::vector<Tuple> RegexExtractor::Extract(std::string_view region_text,
                                           int64_t region_base,
                                           const Tuple& context) const {
  (void)context;
  std::vector<Tuple> out;
  const int64_t n = static_cast<int64_t>(region_text.size());
  uint64_t burn_guard = 0;

  // Matching is attempted *at every start position* (match_continuous)
  // rather than with a non-overlapping scan: whether a mention starts at i
  // must depend only on text near i, never on where a previous match
  // happened to end — that locality is what makes the declared β honest.
  for (int64_t i = 0; i < n; ++i) {
    burn_guard ^= BurnWork(options_.work_per_char);
    if (!options_.first_chars.empty() &&
        options_.first_chars.find(region_text[static_cast<size_t>(i)]) ==
            std::string::npos) {
      continue;
    }
    std::cmatch match;
    const char* begin = region_text.data() + i;
    const char* end = region_text.data() + n;
    if (!std::regex_search(begin, end, match, regex_,
                           std::regex_constants::match_continuous)) {
      continue;
    }
    int64_t length = static_cast<int64_t>(match.length(0));
    if (length == 0 || length >= options_.scope) continue;
    if (options_.require_word_boundaries) {
      bool left_ok =
          i == 0 || !IsWordChar(region_text[static_cast<size_t>(i - 1)]);
      bool right_ok = i + length == n ||
                      !IsWordChar(region_text[static_cast<size_t>(i + length)]);
      if (!left_ok || !right_ok) continue;
    }
    out.push_back(
        {Value(TextSpan(region_base + i, region_base + i + length))});
  }
  (void)burn_guard;
  Account(n, static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace delex
