#ifndef DELEX_EXTRACT_REGISTRY_H_
#define DELEX_EXTRACT_REGISTRY_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "extract/extractor.h"

namespace delex {

/// \brief Binds IE-predicate names appearing in an xlog program to
/// Extractor implementations.
///
/// A program text references blackboxes by name (extractTitle, ...); the
/// registry supplies the procedure g of each p-predicate (§3).
class ExtractorRegistry {
 public:
  /// Registers `extractor` under its Name(). Re-registering a name
  /// replaces the binding.
  void Register(ExtractorPtr extractor);

  /// Looks up a blackbox; NotFound if the name is unbound.
  Result<ExtractorPtr> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return extractors_.contains(name);
  }

  size_t Size() const { return extractors_.size(); }

  const std::unordered_map<std::string, ExtractorPtr>& extractors() const {
    return extractors_;
  }

 private:
  std::unordered_map<std::string, ExtractorPtr> extractors_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_REGISTRY_H_
