#ifndef DELEX_EXTRACT_SENTENCE_SEGMENTER_H_
#define DELEX_EXTRACT_SENTENCE_SEGMENTER_H_

#include <string>
#include <vector>

#include "extract/extractor.h"

namespace delex {

/// \brief Options for SentenceSegmenter.
struct SentenceSegmenterOptions {
  /// Character window examined on each side of a candidate delimiter —
  /// this is the classifier's receptive field, hence the declared β
  /// (16 in the paper's ME experiment).
  int64_t feature_window = 16;

  /// Declared α: the longest sentence (321 in the paper's experiment).
  /// Overlong sentences contribute a truncated leading chunk, as in
  /// SegmentExtractor.
  int64_t max_sentence_length = 321;

  /// Decision threshold of the classifier.
  double threshold = 0.0;

  /// Abbreviations whose trailing '.' is not a boundary.
  std::vector<std::string> abbreviations = {"Dr", "Mr", "Mrs", "Ms",  "Prof",
                                            "vs", "etc", "Jr",  "Sr", "St"};

  /// Calibrated per-character CPU cost (see BurnWork).
  int64_t work_per_char = 25;
};

/// \brief Learning-style blackbox: a maximum-entropy-like sentence-boundary
/// classifier (the ME blackbox of the paper's Figure 15 program).
///
/// Each '.', '!' or '?' is scored by a weighted feature sum over its
/// ±feature_window characters (following capital, abbreviation before,
/// decimal context, quote handling); positions scoring above the threshold
/// are boundaries, and the emitted mentions are the sentence spans between
/// accepted boundaries.
class SentenceSegmenter : public Extractor {
 public:
  explicit SentenceSegmenter(std::string name,
                             SentenceSegmenterOptions options =
                                 SentenceSegmenterOptions());

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return options_.max_sentence_length; }
  int64_t ContextWidth() const override { return options_.feature_window + 1; }
  int64_t OutputArity() const override { return 1; }
  const std::string& Name() const override { return name_; }

  /// Classifier score for the candidate boundary at `pos` (exposed for
  /// unit tests).
  double ScoreBoundary(std::string_view text, int64_t pos) const;

 private:
  std::string name_;
  SentenceSegmenterOptions options_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_SENTENCE_SEGMENTER_H_
