#ifndef DELEX_EXTRACT_PAIR_EXTRACTOR_H_
#define DELEX_EXTRACT_PAIR_EXTRACTOR_H_

#include <string>

#include "extract/extractor.h"

namespace delex {

/// \brief Rule-based blackbox that pairs the mentions of two inner
/// extractors occurring within a proximity window.
///
/// The paper's running example ("extract locations, extract times, keep
/// pairs spanning at most 100 characters" — Example 2, where the whole
/// pairing blackbox has α = 100). The inner extractors are part of the
/// blackbox: from the outside this is one opaque IE predicate with two
/// span outputs.
class PairExtractor : public Extractor {
 public:
  /// `window` is the maximum envelope (α) of an emitted pair; pairs whose
  /// combined extent reaches `window` characters are dropped.
  PairExtractor(std::string name, ExtractorPtr left, ExtractorPtr right,
                int64_t window);

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return window_; }
  int64_t ContextWidth() const override;
  int64_t OutputArity() const override { return 2; }
  const std::string& Name() const override { return name_; }

 private:
  std::string name_;
  ExtractorPtr left_;
  ExtractorPtr right_;
  int64_t window_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_PAIR_EXTRACTOR_H_
