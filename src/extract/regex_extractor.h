#ifndef DELEX_EXTRACT_REGEX_EXTRACTOR_H_
#define DELEX_EXTRACT_REGEX_EXTRACTOR_H_

#include <regex>
#include <string>

#include "extract/extractor.h"

namespace delex {

/// \brief Options for RegexExtractor.
struct RegexOptions {
  /// Declared scope α. Matches at least this long are *discarded*, which
  /// keeps the declaration honest regardless of the pattern.
  int64_t scope = 256;

  /// Declared context β. Must be >= the lookaround the pattern effectively
  /// performs; 0 is honest for patterns without anchors or boundaries, 1
  /// covers \b-style boundary behaviour emulated below.
  int64_t context_width = 1;

  /// Require non-word characters (or region edge) around each match.
  bool require_word_boundaries = false;

  /// If non-empty, the set of characters a match can start with; positions
  /// holding other characters are skipped without invoking the regex
  /// engine. Purely an optimization — the caller promises the pattern
  /// cannot match at skipped positions, so results are unchanged.
  std::string first_chars;

  /// Calibrated per-character CPU cost (see BurnWork).
  int64_t work_per_char = 20;
};

/// \brief Rule-based blackbox: emits every non-overlapping match of an ECMA
/// regular expression as a span.
///
/// Implements the other classic IE rule form ("course numbers look like
/// CS\d{3}", "times look like \d{1,2}\s*pm"). The caller declares (α, β);
/// α is enforced by filtering, β is the caller's promise about the pattern
/// (documented per program in programs.cc).
class RegexExtractor : public Extractor {
 public:
  RegexExtractor(std::string name, const std::string& pattern,
                 RegexOptions options = RegexOptions());

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return options_.scope; }
  int64_t ContextWidth() const override { return options_.context_width; }
  int64_t OutputArity() const override { return 1; }
  const std::string& Name() const override { return name_; }

 private:
  std::string name_;
  RegexOptions options_;
  std::regex regex_;
};

}  // namespace delex

#endif  // DELEX_EXTRACT_REGEX_EXTRACTOR_H_
