#include "baseline/runners.h"

#include "common/hash.h"
#include "common/stopwatch.h"

namespace delex {
namespace {

void AppendWithDid(int64_t did, std::vector<Tuple> rows,
                   std::vector<Tuple>* out) {
  for (Tuple& row : rows) {
    Tuple with_did;
    with_did.reserve(row.size() + 1);
    with_did.push_back(did);
    for (Value& v : row) with_did.push_back(std::move(v));
    out->push_back(std::move(with_did));
  }
}

}  // namespace

Result<std::vector<Tuple>> NoReuseRunner::RunSnapshot(const Snapshot& current,
                                                      RunStats* stats) {
  RunStats local;
  if (stats == nullptr) stats = &local;
  *stats = RunStats();
  Stopwatch total;
  std::vector<Tuple> results;
  for (const Page& page : current.pages()) {
    ++stats->pages;
    std::vector<Tuple> rows;
    {
      ScopedTimer extract_timer(&stats->phases.extract_us);
      DELEX_ASSIGN_OR_RETURN(rows, xlog::ExecutePlan(*plan_, page));
    }
    AppendWithDid(page.did, std::move(rows), &results);
  }
  stats->result_tuples = static_cast<int64_t>(results.size());
  stats->phases.total_us = total.ElapsedMicros();
  stats->phases.FinalizeDrift();
  return results;
}

Result<std::vector<Tuple>> ShortcutRunner::RunSnapshot(const Snapshot& current,
                                                       RunStats* stats) {
  RunStats local;
  if (stats == nullptr) stats = &local;
  *stats = RunStats();
  Stopwatch total;
  identical_pages_ = 0;

  std::unordered_map<std::string, CacheEntry> next_cache;
  std::vector<Tuple> results;
  for (const Page& page : current.pages()) {
    ++stats->pages;
    uint64_t hash = Fnv1a64(page.content);
    std::vector<Tuple> rows;
    auto it = cache_.find(page.url);
    bool hit = it != cache_.end() && it->second.content_hash == hash &&
               it->second.content_size ==
                   static_cast<int64_t>(page.content.size());
    if (hit) {
      ScopedTimer copy_timer(&stats->phases.copy_us);
      ++identical_pages_;
      ++stats->pages_with_previous;
      rows = it->second.rows;
    } else {
      ScopedTimer extract_timer(&stats->phases.extract_us);
      DELEX_ASSIGN_OR_RETURN(rows, xlog::ExecutePlan(*plan_, page));
    }
    CacheEntry entry;
    entry.content_hash = hash;
    entry.content_size = static_cast<int64_t>(page.content.size());
    entry.rows = rows;
    next_cache.emplace(page.url, std::move(entry));
    AppendWithDid(page.did, std::move(rows), &results);
  }
  cache_ = std::move(next_cache);
  stats->result_tuples = static_cast<int64_t>(results.size());
  stats->phases.total_us = total.ElapsedMicros();
  stats->phases.FinalizeDrift();
  return results;
}

}  // namespace delex
