#include "baseline/plan_extractor.h"

#include "common/logging.h"

namespace delex {

PlanExtractor::PlanExtractor(std::string name, xlog::PlanNodePtr plan,
                             int64_t alpha, int64_t beta)
    : name_(std::move(name)),
      plan_(std::move(plan)),
      alpha_(alpha),
      beta_(beta) {}

std::vector<Tuple> PlanExtractor::Extract(std::string_view region_text,
                                          int64_t region_base,
                                          const Tuple& context) const {
  (void)context;
  Page region_page;
  region_page.did = 0;
  region_page.content.assign(region_text);
  Result<std::vector<Tuple>> rows = xlog::ExecutePlan(*plan_, region_page);
  DELEX_CHECK_MSG(rows.ok(), rows.status().ToString());
  std::vector<Tuple> out = std::move(rows).ValueOrDie();
  for (Tuple& row : out) ShiftSpans(&row, region_base);
  Account(static_cast<int64_t>(region_text.size()),
          static_cast<int64_t>(out.size()));
  return out;
}

xlog::PlanNodePtr WrapWholeProgram(const xlog::PlanNodePtr& plan,
                                   const std::string& name, int64_t alpha,
                                   int64_t beta) {
  auto scan = std::make_shared<xlog::PlanNode>();
  scan->kind = xlog::PlanKind::kScan;
  scan->schema = {"d"};

  auto ie = std::make_shared<xlog::PlanNode>();
  ie->kind = xlog::PlanKind::kIE;
  ie->extractor = std::make_shared<PlanExtractor>(name, plan, alpha, beta);
  ie->input_col = 0;
  ie->children.push_back(scan);
  ie->schema = {"d"};
  for (const std::string& col : plan->schema) {
    ie->schema.push_back(col);
  }

  auto project = std::make_shared<xlog::PlanNode>();
  project->kind = xlog::PlanKind::kProject;
  project->children.push_back(ie);
  for (size_t i = 0; i < plan->schema.size(); ++i) {
    project->columns.push_back(static_cast<int>(i + 1));
    project->schema.push_back(plan->schema[i]);
  }

  AssignIds(project);
  return project;
}

}  // namespace delex
