#ifndef DELEX_BASELINE_RUNNERS_H_
#define DELEX_BASELINE_RUNNERS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "delex/run_stats.h"
#include "storage/snapshot.h"
#include "xlog/plan.h"

namespace delex {

/// \brief Baseline 1 (§8): re-executes the IE program from scratch on
/// every page of every snapshot.
class NoReuseRunner {
 public:
  explicit NoReuseRunner(xlog::PlanNodePtr plan) : plan_(std::move(plan)) {}

  /// Output tuples are did-prefixed, like DelexEngine::RunSnapshot.
  Result<std::vector<Tuple>> RunSnapshot(const Snapshot& current,
                                         RunStats* stats);

 private:
  xlog::PlanNodePtr plan_;
};

/// \brief Baseline 2 (§8): detects byte-identical pages (same URL, same
/// content) and reuses the previous snapshot's result tuples on those;
/// everything else runs from scratch.
///
/// Prior results are retained in memory between snapshots keyed by URL —
/// final result relations are tiny compared to the corpus, so this mirrors
/// the obvious implementation.
class ShortcutRunner {
 public:
  explicit ShortcutRunner(xlog::PlanNodePtr plan) : plan_(std::move(plan)) {}

  Result<std::vector<Tuple>> RunSnapshot(const Snapshot& current,
                                         RunStats* stats);

  int64_t identical_pages_last_run() const { return identical_pages_; }

 private:
  struct CacheEntry {
    uint64_t content_hash = 0;
    int64_t content_size = 0;
    std::vector<Tuple> rows;  // without the did prefix
  };

  xlog::PlanNodePtr plan_;
  std::unordered_map<std::string, CacheEntry> cache_;
  int64_t identical_pages_ = 0;
};

}  // namespace delex

#endif  // DELEX_BASELINE_RUNNERS_H_
