#ifndef DELEX_BASELINE_PLAN_EXTRACTOR_H_
#define DELEX_BASELINE_PLAN_EXTRACTOR_H_

#include <string>

#include "extract/extractor.h"
#include "xlog/plan.h"

namespace delex {

/// \brief Wraps an entire execution tree as one opaque IE blackbox — the
/// reuse-at-whole-program-level strategy (Cyclex applied to a
/// multi-blackbox program, §3).
///
/// Extracting from a region executes the full plan from scratch on that
/// region's text. The caller supplies the *program-level* (α, β); as the
/// paper stresses, tight values are very hard to obtain for a whole
/// program, so these are typically large (e.g. bounded by the biggest
/// structural region any component extracts), which is precisely what
/// strangles Cyclex's reuse on multi-blackbox programs.
class PlanExtractor : public Extractor {
 public:
  PlanExtractor(std::string name, xlog::PlanNodePtr plan, int64_t alpha,
                int64_t beta);

  std::vector<Tuple> Extract(std::string_view region_text, int64_t region_base,
                             const Tuple& context) const override;
  int64_t Scope() const override { return alpha_; }
  int64_t ContextWidth() const override { return beta_; }
  int64_t OutputArity() const override {
    return static_cast<int64_t>(plan_->schema.size());
  }
  const std::string& Name() const override { return name_; }

 private:
  std::string name_;
  xlog::PlanNodePtr plan_;
  int64_t alpha_;
  int64_t beta_;
};

/// \brief Builds the single-blackbox plan `π(wholeProgram(docs))` around
/// `plan`, giving Cyclex semantics under the unchanged Delex engine.
///
/// The returned tree has exactly one IE unit; running DelexEngine over it
/// IS Cyclex (one blackbox, one matcher choice) — the engine degenerates
/// to the single-blackbox algorithm of [6].
xlog::PlanNodePtr WrapWholeProgram(const xlog::PlanNodePtr& plan,
                                   const std::string& name, int64_t alpha,
                                   int64_t beta);

}  // namespace delex

#endif  // DELEX_BASELINE_PLAN_EXTRACTOR_H_
