#include "obs/run_report.h"

#include "obs/histogram.h"
#include "obs/json_writer.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace delex {
namespace obs {

namespace {

void WriteIoStats(const char* key, const IoStats& io, JsonWriter* json) {
  json->Key(key)
      .BeginObject()
      .KV("bytes_read", io.bytes_read)
      .KV("bytes_written", io.bytes_written)
      .KV("records_read", io.records_read)
      .KV("records_written", io.records_written)
      .EndObject();
}

void WriteLatencySummary(const char* key, const LocalHistogram& hist,
                         JsonWriter* json) {
  json->Key(key)
      .BeginObject()
      .KV("count", hist.count())
      .KV("mean", hist.Mean())
      .KV("p50", hist.Percentile(50))
      .KV("p90", hist.Percentile(90))
      .KV("p99", hist.Percentile(99))
      .KV("max", hist.max())
      .EndObject();
}

}  // namespace

void WriteLearnedCoefficient(const OptimizerReport::LearnedCoefficient& row,
                             JsonWriter* json) {
  json->BeginObject()
      .KV("matcher", row.matcher)
      .KV("gain", row.gain)
      .KV("bias", row.bias)
      .KV("drift", row.drift)
      .KV("samples", row.samples)
      .EndObject();
}

void WriteUnitDecision(const OptimizerReport::UnitDecision& d,
                       JsonWriter* json) {
  json->BeginObject()
      .KV("unit", d.unit)
      .KV("winner", d.winner)
      .KV("runner_up", d.runner_up)
      .KV("margin_us", d.margin_us);
  json->Key("candidates").BeginObject();
  for (const auto& [matcher, est_us] : d.candidate_us) {
    json->KV(matcher, est_us);
  }
  json->EndObject();
  json->Key("inputs")
      .BeginObject()
      .KV("f", d.f)
      .KV("m", d.m)
      .KV("a", d.a)
      .KV("l", d.l)
      .KV("gain", d.gain)
      .KV("bias", d.bias)
      .KV("samples", d.samples)
      .KV("history", d.history_window)
      .EndObject();
  json->EndObject();
}

std::string RunReportLine(const RunReportMeta& meta, const RunStats& stats,
                          const OptimizerReport& optimizer) {
  JsonWriter json;
  json.BeginObject();
  json.KV("schema_version", kRunReportSchemaVersion);
  json.KV("solution", meta.solution);
  if (!meta.tag.empty()) json.KV("tag", meta.tag);
  json.KV("snapshot", meta.snapshot_index);
  json.KV("warmup", meta.warmup);
  json.KV("threads", meta.num_threads);
  json.KV("fast_path", meta.fast_path_enabled);
  json.KV("histograms", meta.histograms_enabled);
  json.KV("num_shards", meta.num_shards);
  if (meta.generation >= 0) json.KV("generation", meta.generation);
  if (meta.num_shards > 1 && !meta.shards.empty()) {
    json.Key("shards").BeginArray();
    for (const RunReportMeta::ShardSummary& shard : meta.shards) {
      json.BeginObject()
          .KV("shard", shard.shard)
          .KV("pages", shard.pages)
          .KV("pages_identical", shard.pages_identical)
          .KV("result_tuples", shard.result_tuples)
          .KV("total_us", shard.total_us)
          .KV("reuse_corrupt_drops", shard.reuse_corrupt_drops);
      if (!shard.assignment.empty()) json.KV("assignment", shard.assignment);
      if (shard.cost_drift >= 0) json.KV("cost_drift", shard.cost_drift);
      json.EndObject();
    }
    json.EndArray();
  }

  json.KV("pages", stats.pages);
  json.KV("pages_with_previous", stats.pages_with_previous);
  json.KV("pages_identical", stats.pages_identical);
  json.KV("result_tuples", stats.result_tuples);
  json.KV("raw_bytes_copied", stats.raw_bytes_copied);
  json.KV("records_decoded_skipped", stats.records_decoded_skipped);

  const PhaseBreakdown& phases = stats.phases;
  json.Key("phases")
      .BeginObject()
      .KV("match_us", phases.match_us)
      .KV("extract_us", phases.extract_us)
      .KV("copy_us", phases.copy_us)
      .KV("opt_us", phases.opt_us)
      .KV("capture_us", phases.capture_us)
      .KV("total_us", phases.total_us)
      .KV("others_us", phases.OthersUs())
      .KV("phase_drift_us", phases.phase_drift_us)
      .EndObject();

  json.Key("io").BeginObject();
  WriteIoStats("reuse_read", stats.reuse_read_io, &json);
  WriteIoStats("reuse_write", stats.reuse_write_io, &json);
  json.EndObject();

  json.Key("fast_path_counters")
      .BeginObject()
      .KV("demote_result_cache", stats.fast_path_demote_result_cache)
      .KV("demote_missing_group", stats.fast_path_demote_missing_group)
      .KV("decode_copy_groups", stats.fast_path_decode_copy_groups)
      .KV("reuse_corrupt_drops", stats.reuse_corrupt_drops)
      .EndObject();

  if (meta.histograms_enabled) {
    json.Key("latency").BeginObject();
    WriteLatencySummary("page_eval_us", stats.page_eval_hist, &json);
    WriteLatencySummary(
        "match_ud_us",
        stats.match_hist[static_cast<size_t>(MatcherKind::kUD)], &json);
    WriteLatencySummary(
        "match_st_us",
        stats.match_hist[static_cast<size_t>(MatcherKind::kST)], &json);
    WriteLatencySummary(
        "match_ru_us",
        stats.match_hist[static_cast<size_t>(MatcherKind::kRU)], &json);
    json.EndObject();
  }

  {
    TraceRecorder& recorder = TraceRecorder::Global();
    json.Key("trace")
        .BeginObject()
        .KV("recording", recorder.started())
        .KV("dropped_events", recorder.DroppedEventCount())
        .EndObject();
  }

  {
    // v6: resource view at report time (process RSS is sampled fresh, the
    // tagged peaks are whole-run high-water marks).
    ResourceUsage usage = CollectResourceUsage();
    json.Key("resources").BeginObject();
    json.KV("rss_bytes", usage.rss_bytes);
    json.KV("vm_bytes", usage.vm_bytes);
    json.KV("peak_rss_bytes", usage.peak_rss_bytes);
    json.KV("tracked_bytes", usage.tracked_bytes);
    json.KV("tracked_peak_bytes", usage.tracked_peak_bytes);
    json.Key("subsystems").BeginArray();
    for (const ResourceUsage::Subsystem& sub : usage.subsystems) {
      json.BeginObject()
          .KV("tag", sub.tag)
          .KV("current_bytes", sub.current_bytes)
          .KV("peak_bytes", sub.peak_bytes)
          .EndObject();
    }
    json.EndArray();
    SpanProfiler& profiler = SpanProfiler::Global();
    if (profiler.TotalSamples() > 0) {
      json.Key("profile").BeginObject();
      json.KV("total_samples", profiler.TotalSamples());
      json.KV("lost_samples", profiler.LostSamples());
      json.Key("top_spans").BeginArray();
      for (const SpanSelfSample& sample : profiler.TopSelfSamples(10)) {
        json.BeginObject()
            .KV("span", sample.span)
            .KV("self_samples", sample.self_samples)
            .EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndObject();
  }

  if (optimizer.has_optimizer) {
    json.Key("optimizer").BeginObject();
    std::string assignment;
    for (size_t u = 0; u < optimizer.unit_matchers.size(); ++u) {
      if (u > 0) assignment += ",";
      assignment += optimizer.unit_matchers[u];
    }
    json.KV("assignment", assignment);
    json.KV("opt_us", phases.opt_us);
    if (optimizer.predicted_total_us >= 0) {
      json.KV("predicted_total_us", optimizer.predicted_total_us);
    }
    json.KV("learning", optimizer.learning_enabled);
    if (optimizer.cost_drift >= 0) {
      json.KV("cost_drift", optimizer.cost_drift);
    }
    if (!optimizer.learned.empty()) {
      json.Key("coeffs").BeginArray();
      for (const OptimizerReport::LearnedCoefficient& row : optimizer.learned) {
        WriteLearnedCoefficient(row, &json);
      }
      json.EndArray();
    }
    if (!optimizer.decisions.empty()) {
      json.Key("decisions").BeginArray();
      for (const OptimizerReport::UnitDecision& d : optimizer.decisions) {
        WriteUnitDecision(d, &json);
      }
      json.EndArray();
    }
    json.EndObject();
  }

  json.Key("units").BeginArray();
  for (size_t u = 0; u < stats.units.size(); ++u) {
    const UnitRunStats& unit = stats.units[u];
    json.BeginObject();
    json.KV("unit", static_cast<int64_t>(u));
    if (u < optimizer.unit_matchers.size()) {
      json.KV("matcher", optimizer.unit_matchers[u]);
    }
    if (u < optimizer.predicted_unit_us.size()) {
      json.KV("predicted_us", optimizer.predicted_unit_us[u]);
    }
    json.KV("actual_us",
            unit.match_us + unit.extract_us + unit.copy_us + unit.capture_us);
    json.KV("match_us", unit.match_us);
    json.KV("extract_us", unit.extract_us);
    json.KV("copy_us", unit.copy_us);
    json.KV("capture_us", unit.capture_us);
    json.KV("input_tuples", unit.input_tuples);
    json.KV("output_tuples", unit.output_tuples);
    json.KV("copied_tuples", unit.copied_tuples);
    json.KV("extracted_tuples", unit.extracted_tuples);
    json.KV("matcher_calls", unit.matcher_calls);
    json.KV("exact_region_hits", unit.exact_region_hits);
    json.KV("chars_extracted", unit.chars_extracted);
    if (meta.histograms_enabled) {
      json.KV("extract_count", unit.extract_hist.count());
      json.KV("extract_p50_us", unit.extract_hist.Percentile(50));
      json.KV("extract_p90_us", unit.extract_hist.Percentile(90));
      json.KV("extract_p99_us", unit.extract_hist.Percentile(99));
      json.KV("extract_max_us", unit.extract_hist.max());
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("counters").BeginObject();
  for (const auto& [name, value] : MetricsRegistry::Global().Snapshot()) {
    json.KV(name, value);
  }
  json.EndObject();

  json.EndObject();
  return json.TakeString();
}

RunReportWriter::~RunReportWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RunReportWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("run report writer already open");
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open run report file " + path);
  }
  path_ = path;
  return Status::OK();
}

Status RunReportWriter::Append(const RunReportMeta& meta, const RunStats& stats,
                               const OptimizerReport& optimizer) {
  if (file_ == nullptr) {
    return Status::InvalidArgument("run report writer not open");
  }
  std::string line = RunReportLine(meta, stats, optimizer);
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IOError("short write to run report file " + path_);
  }
  std::fflush(file_);
  return Status::OK();
}

Status RunReportWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("close failed for run report file " + path_);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace delex
