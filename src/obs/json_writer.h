#ifndef DELEX_OBS_JSON_WRITER_H_
#define DELEX_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace delex {
namespace obs {

/// Appends `s` to `*out` with JSON string escaping (quotes not included).
inline void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// \brief Minimal streaming JSON emitter shared by the trace writer, the
/// run-report writer, and the bench metadata headers.
///
/// No DOM, no allocation beyond the output string; the caller drives the
/// structure (Begin/End must balance — unbalanced use is a programming
/// error and produces invalid JSON rather than aborting). Non-finite
/// doubles are emitted as null so the output always parses.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separate();
    out_ += '{';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    fresh_.pop_back();
    return *this;
  }
  JsonWriter& BeginArray() {
    Separate();
    out_ += '[';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    fresh_.pop_back();
    return *this;
  }

  JsonWriter& Key(std::string_view key) {
    Separate();
    out_ += '"';
    AppendJsonEscaped(key, &out_);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view v) {
    Separate();
    out_ += '"';
    AppendJsonEscaped(v, &out_);
    out_ += '"';
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v) {
    Separate();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Value(int64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(uint64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(double v) {
    Separate();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& Null() {
    Separate();
    out_ += "null";
    return *this;
  }

  /// Key/value in one call, for flat objects.
  template <typename T>
  JsonWriter& KV(std::string_view key, T v) {
    Key(key);
    return Value(v);
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  /// Emits the separating comma before a sibling element; a value that
  /// follows its own key never separates.
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (fresh_.empty()) return;
    if (fresh_.back()) {
      fresh_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> fresh_;     // per open container: no element emitted yet
  bool pending_value_ = false;  // a Key was just written
};

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_JSON_WRITER_H_
