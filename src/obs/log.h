#ifndef DELEX_OBS_LOG_H_
#define DELEX_OBS_LOG_H_

// Leveled, thread-safe structured logger — the observability layer's
// replacement for the old abort-only common/logging.h (whose DELEX_CHECK
// macros survive unchanged and now route their failure line through this
// sink before aborting).
//
//   DELEX_LOG(INFO) << "snapshot " << gen << " done";
//
// Levels: DEBUG < INFO < WARN < ERROR. The threshold comes from the
// DELEX_LOG_LEVEL environment variable ("debug", "info", "warn", "error",
// "off", or the corresponding integer 0-4; default "warn" so library code
// stays quiet under benches and tests) and can be overridden at runtime
// with SetLogLevel(). A disabled statement costs one threshold load and
// never evaluates its stream operands.
//
// Header-only on purpose: every layer (including the base storage and
// matcher libraries) can log without a link-time dependency on the obs
// library.

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sstream>
#include <string>
#include <string_view>

#include "common/mutex.h"

namespace delex {
namespace obs {

enum class LogLevel : int {
  kDEBUG = 0,
  kINFO = 1,
  kWARN = 2,
  kERROR = 3,
  kOFF = 4,
};

inline char LogLevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDEBUG:
      return 'D';
    case LogLevel::kINFO:
      return 'I';
    case LogLevel::kWARN:
      return 'W';
    case LogLevel::kERROR:
      return 'E';
    case LogLevel::kOFF:
      return '-';
  }
  return '?';
}

/// Small dense thread id (1, 2, 3, ... in first-use order) — stable for a
/// thread's lifetime and far more readable in logs and traces than the
/// platform handle.
inline uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace log_internal {

inline int ParseLogLevelEnv() {
  const char* value = std::getenv("DELEX_LOG_LEVEL");
  if (value == nullptr || *value == '\0') {
    return static_cast<int>(LogLevel::kWARN);
  }
  if (std::isdigit(static_cast<unsigned char>(value[0]))) {
    int v = std::atoi(value);
    if (v < 0) v = 0;
    if (v > static_cast<int>(LogLevel::kOFF)) {
      v = static_cast<int>(LogLevel::kOFF);
    }
    return v;
  }
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug") return static_cast<int>(LogLevel::kDEBUG);
  if (lower == "info") return static_cast<int>(LogLevel::kINFO);
  if (lower == "warn" || lower == "warning") {
    return static_cast<int>(LogLevel::kWARN);
  }
  if (lower == "error") return static_cast<int>(LogLevel::kERROR);
  if (lower == "off" || lower == "none") {
    return static_cast<int>(LogLevel::kOFF);
  }
  return static_cast<int>(LogLevel::kWARN);
}

inline std::atomic<int>& ThresholdStorage() {
  static std::atomic<int> threshold{ParseLogLevelEnv()};
  return threshold;
}

inline ::delex::Mutex& SinkMutex() {
  static ::delex::Mutex mu{"obs.log.sink"};
  return mu;
}

/// Optional sink override (tests capture lines instead of spamming
/// stderr). Called with the fully formatted line, under the sink mutex.
using LogSinkFn = void (*)(LogLevel level, const std::string& line);
inline std::atomic<LogSinkFn>& SinkHook() {
  static std::atomic<LogSinkFn> hook{nullptr};
  return hook;
}

/// Formats and emits one log line. `level` may be past the threshold —
/// check failures use this directly so they are never filtered out.
inline void EmitLogLine(LogLevel level, const char* file, int line,
                        const std::string& message) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;

  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  int64_t micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       now.time_since_epoch())
                       .count() %
                   1000000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &seconds);
#else
  localtime_r(&seconds, &tm_buf);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%m%d %H:%M:%S", &tm_buf);

  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "%c%s.%06lld t%u %s:%d] ",
                LogLevelLetter(level), stamp,
                static_cast<long long>(micros), CurrentThreadId(), base, line);

  std::string full = prefix;
  full += message;
  full += '\n';

  ::delex::MutexLock lock(&SinkMutex());
  LogSinkFn hook = SinkHook().load(std::memory_order_acquire);
  if (hook != nullptr) {
    hook(level, full);
  } else {
    std::fwrite(full.data(), 1, full.size(), stderr);
    std::fflush(stderr);
  }
}

/// Swallows the ostream in DELEX_LOG's ternary (the glog idiom); `&` binds
/// looser than `<<` so the whole chained expression becomes the operand.
struct Voidify {
  void operator&(std::ostream&) {}
};

// ---- Crash-flush hooks -------------------------------------------------
//
// Observability sinks that buffer in memory (trace ring buffers, the
// metrics snapshot writer) register a flush function here; the
// DELEX_CHECK failure path runs every hook before aborting so a crash
// does not lose the buffers. Function pointers keep this header-only:
// layers below the obs library (storage, text) use DELEX_CHECK without
// linking the sinks' translation units.

using CrashFlushFn = void (*)();
inline constexpr int kMaxCrashFlushHooks = 8;

inline std::atomic<CrashFlushFn>* CrashFlushSlots() {
  static std::atomic<CrashFlushFn> slots[kMaxCrashFlushHooks] = {};
  return slots;
}

/// Registers a hook (idempotent; silently dropped once all slots fill).
inline void RegisterCrashFlushHook(CrashFlushFn fn) {
  if (fn == nullptr) return;
  std::atomic<CrashFlushFn>* slots = CrashFlushSlots();
  for (int i = 0; i < kMaxCrashFlushHooks; ++i) {
    CrashFlushFn seen = slots[i].load(std::memory_order_acquire);
    if (seen == fn) return;  // already registered
    if (seen == nullptr) {
      CrashFlushFn expected = nullptr;
      if (slots[i].compare_exchange_strong(expected, fn,
                                           std::memory_order_acq_rel)) {
        return;
      }
      if (expected == fn) return;  // lost the race to ourselves
    }
  }
}

/// Runs every registered hook once. Reentrancy-guarded: a hook that
/// itself CHECK-fails will not recurse into the hook list.
inline void RunCrashFlushHooks() {
  static std::atomic<bool> running{false};
  bool expected = false;
  if (!running.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return;
  }
  std::atomic<CrashFlushFn>* slots = CrashFlushSlots();
  for (int i = 0; i < kMaxCrashFlushHooks; ++i) {
    CrashFlushFn fn = slots[i].load(std::memory_order_acquire);
    if (fn != nullptr) fn();
  }
  running.store(false, std::memory_order_release);
}

}  // namespace log_internal

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         log_internal::ThresholdStorage().load(std::memory_order_relaxed);
}

inline void SetLogLevel(LogLevel level) {
  log_internal::ThresholdStorage().store(static_cast<int>(level),
                                         std::memory_order_relaxed);
}

inline LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      log_internal::ThresholdStorage().load(std::memory_order_relaxed));
}

/// Installs (or clears, with nullptr) a process-wide capture hook for
/// formatted log lines. Test-only; not intended for concurrent install.
inline void SetLogSinkForTesting(log_internal::LogSinkFn hook) {
  log_internal::SinkHook().store(hook, std::memory_order_release);
}

/// Registers a flush function the DELEX_CHECK failure path runs before
/// aborting (idempotent — safe to call on every sink start).
inline void RegisterCrashFlushHook(log_internal::CrashFlushFn fn) {
  log_internal::RegisterCrashFlushHook(fn);
}

/// \brief One log statement: buffers the streamed message, emits it on
/// destruction (one atomic line per statement, safe across threads).
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level)
      : file_(file), line_(line), level_(level) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    log_internal::EmitLogLine(level_, file_, line_, stream_.str());
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace obs
}  // namespace delex

/// Leveled log statement: DELEX_LOG(INFO) << "message" << value;
/// Operands are not evaluated when the level is below the threshold.
#define DELEX_LOG(severity)                                              \
  (!::delex::obs::LogEnabled(::delex::obs::LogLevel::k##severity))       \
      ? (void)0                                                          \
      : ::delex::obs::log_internal::Voidify() &                          \
            ::delex::obs::LogMessage(__FILE__, __LINE__,                 \
                                     ::delex::obs::LogLevel::k##severity) \
                .stream()

#endif  // DELEX_OBS_LOG_H_
