#include "obs/mem.h"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/json_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace delex {
namespace obs {

namespace {

// /proc/self/statm reports pages: "size resident shared text lib data dt".
// Returns false (leaving the outputs at 0) on non-Linux or a read failure —
// tracked accounting still works, only the process columns go dark.
bool ReadStatm(int64_t* vm_bytes, int64_t* rss_bytes) {
  *vm_bytes = 0;
  *rss_bytes = 0;
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) return false;
  long size_pages = 0;
  long resident_pages = 0;
  int fields = std::fscanf(f, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(f);
  if (fields != 2) return false;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  *vm_bytes = static_cast<int64_t>(size_pages) * page;
  *rss_bytes = static_cast<int64_t>(resident_pages) * page;
  return true;
}

// ru_maxrss is kilobytes on Linux.
int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

struct SamplerState {
  Mutex mu{"obs.mem.sampler"};
  CondVar cv;
  std::thread thread DELEX_GUARDED_BY(mu);  // moved out under mu, joined outside
  bool running DELEX_GUARDED_BY(mu) = false;
  bool stop_requested DELEX_GUARDED_BY(mu) = false;
  bool atexit_registered DELEX_GUARDED_BY(mu) = false;
  std::atomic<int64_t> samples{0};
};

SamplerState& State() {
  // Leaked: worker threads may outlive static destruction in crashing
  // processes; Stop() is the orderly path (registered via atexit).
  static SamplerState* state = new SamplerState;
  return *state;
}

}  // namespace

ResourceUsage CollectResourceUsage() {
  ResourceUsage usage;
  usage.subsystems.reserve(kMemTagCount);
  for (int i = 0; i < kMemTagCount; ++i) {
    MemTag tag = static_cast<MemTag>(i);
    ResourceUsage::Subsystem sub;
    sub.tag = MemTagName(tag);
    sub.current_bytes = MemCurrent(tag);
    sub.peak_bytes = MemPeak(tag);
    usage.subsystems.push_back(std::move(sub));
  }
  usage.tracked_bytes = MemTrackedCurrent();
  usage.tracked_peak_bytes = MemTrackedPeak();
  ReadStatm(&usage.vm_bytes, &usage.rss_bytes);
  // getrusage and statm read different kernel accounting (per-thread rss
  // counters are batched), so the reported peak can trail the live value
  // by a few pages — clamp so peak >= current always holds for readers.
  usage.peak_rss_bytes = std::max(PeakRssBytes(), usage.rss_bytes);

  // Refresh the mem.* gauges so /metrics, /varz and snapshot JSONL all
  // see the same numbers this collection saw. Pointers are cached —
  // registration cost is paid once.
  static Gauge* rss = MetricsRegistry::Global().GetGauge("mem.rss_bytes");
  static Gauge* vm = MetricsRegistry::Global().GetGauge("mem.vm_bytes");
  static Gauge* peak_rss =
      MetricsRegistry::Global().GetGauge("mem.peak_rss_bytes");
  static Gauge* tracked =
      MetricsRegistry::Global().GetGauge("mem.tracked_bytes");
  static Gauge* tracked_peak =
      MetricsRegistry::Global().GetGauge("mem.tracked_peak_bytes");
  rss->Set(usage.rss_bytes);
  vm->Set(usage.vm_bytes);
  peak_rss->Set(usage.peak_rss_bytes);
  tracked->Set(usage.tracked_bytes);
  tracked_peak->Set(usage.tracked_peak_bytes);
  static Gauge* sub_gauges[kMemTagCount][2] = {};
  for (int i = 0; i < kMemTagCount; ++i) {
    if (sub_gauges[i][0] == nullptr) {
      std::string base = std::string("mem.subsystem.");
      std::string label = std::string("#tag=") +
                          MemTagName(static_cast<MemTag>(i));
      sub_gauges[i][0] = MetricsRegistry::Global().GetGauge(
          base + "current_bytes" + label);
      sub_gauges[i][1] =
          MetricsRegistry::Global().GetGauge(base + "peak_bytes" + label);
    }
    sub_gauges[i][0]->Set(usage.subsystems[i].current_bytes);
    sub_gauges[i][1]->Set(usage.subsystems[i].peak_bytes);
  }
  return usage;
}

MemSampler& MemSampler::Global() {
  static MemSampler sampler;
  return sampler;
}

void MemSampler::Start(int interval_ms) {
  if (interval_ms < 1) interval_ms = 1;
  SamplerState& state = State();
  MutexLock lock(&state.mu);
  if (state.running) return;
  state.stop_requested = false;
  state.running = true;
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit([] { MemSampler::Global().Stop(); });
  }
  state.thread = std::thread([interval_ms] {
    SamplerState& s = State();
    for (;;) {
      // Collect with the lock dropped — gauge refreshes take the metrics
      // registry lock and must not nest under the sampler's.
      (void)CollectResourceUsage();
      s.samples.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(&s.mu);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(interval_ms);
      bool timed_out = false;
      while (!s.stop_requested && !timed_out) {
        timed_out = s.cv.WaitUntil(&s.mu, deadline);
      }
      if (s.stop_requested) return;
    }
  });
}

void MemSampler::Stop() {
  SamplerState& state = State();
  std::thread to_join;
  {
    MutexLock lock(&state.mu);
    if (!state.running) return;
    state.stop_requested = true;
    state.running = false;
    to_join = std::move(state.thread);
  }
  state.cv.NotifyAll();
  if (to_join.joinable()) to_join.join();
}

bool MemSampler::running() const {
  SamplerState& state = State();
  MutexLock lock(&state.mu);
  return state.running;
}

int64_t MemSampler::sample_count() const {
  return State().samples.load(std::memory_order_relaxed);
}

void MaybeStartMemSamplerFromEnv() {
  const char* value = std::getenv("DELEX_MEM_SAMPLE_MS");
  if (value == nullptr || *value == '\0') return;
  int interval_ms = std::atoi(value);
  if (interval_ms <= 0) return;
  MemSampler::Global().Start(interval_ms);
  DELEX_LOG(INFO) << "memory sampler started (every " << interval_ms
                  << " ms)";
}

std::string MemzJson() {
  ResourceUsage usage = CollectResourceUsage();
  JsonWriter json;
  json.BeginObject();
  json.KV("rss_bytes", usage.rss_bytes);
  json.KV("vm_bytes", usage.vm_bytes);
  json.KV("peak_rss_bytes", usage.peak_rss_bytes);
  json.KV("tracked_bytes", usage.tracked_bytes);
  json.KV("tracked_peak_bytes", usage.tracked_peak_bytes);
  json.KV("sampler_running", MemSampler::Global().running());
  json.KV("sampler_samples", MemSampler::Global().sample_count());
  json.Key("subsystems").BeginArray();
  for (const ResourceUsage::Subsystem& sub : usage.subsystems) {
    json.BeginObject();
    json.KV("tag", sub.tag);
    json.KV("current_bytes", sub.current_bytes);
    json.KV("peak_bytes", sub.peak_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::string out = json.TakeString();
  out += '\n';
  return out;
}

}  // namespace obs
}  // namespace delex
