#ifndef DELEX_OBS_HISTOGRAM_H_
#define DELEX_OBS_HISTOGRAM_H_

// Log-bucketed (HDR-style) latency histograms, observability layer 2.
//
// Bucket scheme (shared by every histogram in the process):
//   - values are non-negative int64 microseconds (negatives clamp to 0),
//   - values 0..15 get one exact bucket each (16 linear buckets),
//   - above that, each power-of-two octave is split into 16 sub-buckets,
//     so any recorded value lands in a bucket whose width is at most
//     1/16 of its lower bound — every percentile estimate carries at
//     most ~6.25 % relative error,
//   - 36 octaves cover [16, 2^40) µs ≈ 12.7 days; larger values clamp
//     into the last bucket. 16 + 36*16 = 592 buckets total.
//
// Two concrete histogram types share the scheme:
//   - LocalHistogram: plain (non-atomic) counts, single writer. These are
//     the per-thread shards: each per-page RunStats owns LocalHistograms
//     and the engine folds them together through RunStats::MergeFrom, so
//     the hot path never touches shared cache lines. Buckets allocate
//     lazily on the first Record — an empty histogram is a null vector.
//   - Histogram: relaxed-atomic counts, lives in the MetricsRegistry for
//     process-wide series (exporters scrape it). Lock-free: Record is a
//     handful of relaxed fetch_adds; merged run shards are folded in
//     once per run via MergeFrom(LocalHistogram).
//
// Recording is gated on HistogramsEnabled() (env DELEX_HISTOGRAMS,
// default on). Call sites should skip the clock reads entirely when the
// gate is off — use ScopedLatencyTimer, which compiles to one relaxed
// load and a predicted branch when disabled.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace delex {
namespace obs {

namespace hist {

inline constexpr int kLinearBuckets = 16;    // values 0..15, exact
inline constexpr int kSubBuckets = 16;       // per octave above that
inline constexpr int kOctaves = 36;          // [16, 2^40) µs
inline constexpr int kBucketCount = kLinearBuckets + kOctaves * kSubBuckets;

/// Bucket index for a value (negatives clamp to 0, huge values into the
/// last bucket).
inline int BucketIndex(int64_t value) {
  if (value < kLinearBuckets) return value < 0 ? 0 : static_cast<int>(value);
  int msb = 63 - std::countl_zero(static_cast<uint64_t>(value));
  int octave = msb - 4;  // 4 == log2(kLinearBuckets)
  if (octave >= kOctaves) return kBucketCount - 1;
  int sub = static_cast<int>((static_cast<uint64_t>(value) >> (msb - 4)) & 15u);
  return kLinearBuckets + octave * kSubBuckets + sub;
}

/// Smallest value that lands in bucket `index`.
inline int64_t BucketLowerBound(int index) {
  if (index < kLinearBuckets) return index;
  int octave = (index - kLinearBuckets) / kSubBuckets;
  int sub = (index - kLinearBuckets) % kSubBuckets;
  return static_cast<int64_t>(kLinearBuckets + sub) << octave;
}

/// Largest value that lands in bucket `index` (inclusive).
inline int64_t BucketUpperBound(int index) {
  if (index < kLinearBuckets) return index;
  if (index >= kBucketCount - 1) return INT64_MAX;  // clamp catch-all
  int octave = (index - kLinearBuckets) / kSubBuckets;
  return BucketLowerBound(index) + (static_cast<int64_t>(1) << octave) - 1;
}

}  // namespace hist

namespace hist_internal {
inline bool EnabledFromEnv() {
  const char* env = std::getenv("DELEX_HISTOGRAMS");
  return env == nullptr || *env == '\0' || std::atoi(env) != 0;
}
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}
}  // namespace hist_internal

/// Global histogram gate (DELEX_HISTOGRAMS=0 disables all recording).
inline bool HistogramsEnabled() {
  return hist_internal::EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetHistogramsEnabled(bool on) {
  hist_internal::EnabledFlag().store(on, std::memory_order_relaxed);
}

/// \brief Single-writer histogram shard; also the snapshot/summary type
/// every exporter consumes (Histogram::Snapshot returns one).
class LocalHistogram {
 public:
  void Record(int64_t value_us) {
    if (value_us < 0) value_us = 0;
    EnsureBuckets();
    ++buckets_[hist::BucketIndex(value_us)];
    ++count_;
    sum_ += value_us;
    if (value_us > max_) max_ = value_us;
  }

  void MergeFrom(const LocalHistogram& other) {
    if (other.count_ == 0) return;
    EnsureBuckets();
    for (int i = 0; i < hist::kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }
  double Mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / count_ : 0.0;
  }

  /// Bucket-resolution percentile estimate, p in [0,100]: the upper bound
  /// of the bucket holding the rank-⌈p/100·count⌉ observation (capped by
  /// the exact max). Never below the exact percentile; at most ~6.25 %
  /// above it. Returns 0 on an empty histogram.
  int64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    double want = std::ceil(p / 100.0 * static_cast<double>(count_));
    int64_t rank = static_cast<int64_t>(want);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    int64_t cumulative = 0;
    for (int i = 0; i < hist::kBucketCount; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= rank) {
        int64_t upper = hist::BucketUpperBound(i);
        return upper < max_ ? upper : max_;
      }
    }
    return max_;  // unreachable: cumulative == count_ after the loop
  }

  /// Observations known to be ≤ bound (sums buckets wholly below it) —
  /// the cumulative count a Prometheus `le` bucket reports. Never
  /// overcounts; by construction monotone in `bound`.
  int64_t CumulativeLE(int64_t bound) const {
    if (buckets_.empty()) return 0;  // lazy vector: nothing recorded yet
    int64_t cumulative = 0;
    for (int i = 0; i < hist::kBucketCount; ++i) {
      if (hist::BucketUpperBound(i) > bound) break;
      cumulative += buckets_[i];
    }
    return cumulative;
  }

  /// Raw bucket counts (empty vector until the first Record).
  const std::vector<int64_t>& buckets() const { return buckets_; }

  void Reset() {
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
  }

 private:
  friend class Histogram;  // Snapshot() loads atomics straight into a shard

  void EnsureBuckets() {
    if (buckets_.empty()) buckets_.assign(hist::kBucketCount, 0);
  }

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

/// \brief Lock-free process-wide histogram. Lifetime: owned by the
/// MetricsRegistry, valid until process exit — cache the pointer.
class Histogram {
 public:
  void Record(int64_t value_us) {
    if (value_us < 0) value_us = 0;
    buckets_[hist::BucketIndex(value_us)].fetch_add(1,
                                                    std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value_us, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value_us > seen &&
           !max_.compare_exchange_weak(seen, value_us,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Folds a merged run shard in — one bulk add per run instead of an
  /// atomic RMW per sample on the hot path.
  void MergeFrom(const LocalHistogram& shard) {
    if (shard.count() == 0) return;
    const std::vector<int64_t>& counts = shard.buckets();
    for (int i = 0; i < hist::kBucketCount; ++i) {
      if (counts[i] != 0) {
        buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(shard.count(), std::memory_order_relaxed);
    sum_.fetch_add(shard.sum(), std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (shard.max() > seen &&
           !max_.compare_exchange_weak(seen, shard.max(),
                                       std::memory_order_relaxed)) {
    }
  }

  /// Consistent-enough copy for exporters (concurrent Records may land in
  /// some buckets and not the totals or vice versa; each value is atomic).
  LocalHistogram Snapshot() const {
    LocalHistogram out;
    if (count_.load(std::memory_order_relaxed) == 0) return out;
    out.EnsureBuckets();
    for (int i = 0; i < hist::kBucketCount; ++i) {
      out.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    out.count_ = count_.load(std::memory_order_relaxed);
    out.sum_ = sum_.load(std::memory_order_relaxed);
    out.max_ = max_.load(std::memory_order_relaxed);
    return out;
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  std::string name_;
  std::atomic<int64_t> buckets_[hist::kBucketCount] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// \brief RAII latency sample into a shard and/or a registry histogram.
/// When histograms are disabled the constructor is one relaxed load and a
/// predicted branch — no clock reads at all.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LocalHistogram* shard,
                              Histogram* global = nullptr)
      : shard_(shard), global_(global), armed_(HistogramsEnabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedLatencyTimer() {
    if (!armed_) return;
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    if (shard_ != nullptr) shard_->Record(us);
    if (global_ != nullptr) global_->Record(us);
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LocalHistogram* shard_;
  Histogram* global_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_HISTOGRAM_H_
