#include "obs/metrics.h"

namespace delex {
namespace obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto counter = std::unique_ptr<Counter>(new Counter(std::string(name)));
    it = counters_.emplace(std::string(name), std::move(counter)).first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
}

}  // namespace obs
}  // namespace delex
