#include "obs/metrics.h"

namespace delex {
namespace obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto counter = std::unique_ptr<Counter>(new Counter(std::string(name)));
    it = counters_.emplace(std::string(name), std::move(counter)).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto gauge = std::unique_ptr<Gauge>(new Gauge(std::string(name)));
    it = gauges_.emplace(std::string(name), std::move(gauge)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto hist = std::unique_ptr<Histogram>(new Histogram(std::string(name)));
    it = histograms_.emplace(std::string(name), std::move(hist)).first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

MetricsSnapshot MetricsRegistry::FullSnapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.histograms.emplace_back(name, hist->Snapshot());
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace delex
