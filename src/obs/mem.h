#ifndef DELEX_OBS_MEM_H_
#define DELEX_OBS_MEM_H_

// Observability layer 4, memory side: tagged per-subsystem byte accounting
// plus a background process sampler (/proc/self/statm + getrusage).
//
// The accounting core is header-only for the same reason trace.h is: the
// charge sites live in storage, text and common, none of which link the
// obs library. A charge is one relaxed fetch_add plus a CAS-max loop on
// the peak — cheap enough to stay compiled in unconditionally, which is
// what lets ci/bench_compare.py gate its overhead at <= 2%.
//
//   // At an ownership point (member order discharges before the bytes go):
//   obs::ScopedMemCharge mem_{obs::MemTag::kSnapshot};
//   mem_.Set(bytes_now_owned);   // re-charge the delta on growth
//
// The process sampler, gauge export (`mem.*`), /memz JSON and the run
// report `resources` block live in mem.cc (MemSampler, MemzJson,
// CollectResourceUsage) — see obs/export.h for the HTTP surface.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace delex {
namespace obs {

/// Subsystems that account their bytes. Keep MemTagName in sync.
enum class MemTag : int {
  kSnapshot = 0,     // page text + urls held by storage::Snapshot
  kReuseReader = 1,  // reuse-file v2 reader state (index, cursors, scratch)
  kResultCache = 2,  // result-cache reader/writer scratch
  kThreadPool = 3,   // queued-task estimate in common::ThreadPool
  kMatcher = 4,      // suffix-automaton states + dictionary storage
  kShard = 5,        // sharded-engine per-shard overhead (partitions, merge)
  kCount = 6,
};

inline constexpr int kMemTagCount = static_cast<int>(MemTag::kCount);

inline const char* MemTagName(MemTag tag) {
  switch (tag) {
    case MemTag::kSnapshot: return "snapshot";
    case MemTag::kReuseReader: return "reuse_reader";
    case MemTag::kResultCache: return "result_cache";
    case MemTag::kThreadPool: return "thread_pool";
    case MemTag::kMatcher: return "matcher";
    case MemTag::kShard: return "shard";
    case MemTag::kCount: break;
  }
  return "unknown";
}

namespace mem_internal {
struct TagCell {
  std::atomic<int64_t> current{0};
  std::atomic<int64_t> peak{0};
};
inline TagCell g_cells[kMemTagCount] = {};
// Whole-tracker totals so "tracked peak" is a real high-water mark of the
// sum, not the (larger) sum of per-tag peaks taken at different times.
inline std::atomic<int64_t> g_total_current{0};
inline std::atomic<int64_t> g_total_peak{0};

inline void RaisePeak(std::atomic<int64_t>& peak, int64_t candidate) {
  int64_t seen = peak.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !peak.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}
}  // namespace mem_internal

/// Charges `bytes` (may be negative to discharge) against `tag`.
inline void MemCharge(MemTag tag, int64_t bytes) {
  if (bytes == 0) return;
  mem_internal::TagCell& cell = mem_internal::g_cells[static_cast<int>(tag)];
  int64_t now =
      cell.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (bytes > 0) mem_internal::RaisePeak(cell.peak, now);
  int64_t total = mem_internal::g_total_current.fetch_add(
                      bytes, std::memory_order_relaxed) +
                  bytes;
  if (bytes > 0) mem_internal::RaisePeak(mem_internal::g_total_peak, total);
}

inline int64_t MemCurrent(MemTag tag) {
  return mem_internal::g_cells[static_cast<int>(tag)].current.load(
      std::memory_order_relaxed);
}

inline int64_t MemPeak(MemTag tag) {
  return mem_internal::g_cells[static_cast<int>(tag)].peak.load(
      std::memory_order_relaxed);
}

/// Sum of all live tagged bytes right now.
inline int64_t MemTrackedCurrent() {
  return mem_internal::g_total_current.load(std::memory_order_relaxed);
}

/// High-water mark of the tracked total.
inline int64_t MemTrackedPeak() {
  return mem_internal::g_total_peak.load(std::memory_order_relaxed);
}

/// Zeroes every cell (tests only — live ScopedMemCharge objects will
/// discharge below zero afterwards).
inline void MemResetForTesting() {
  for (auto& cell : mem_internal::g_cells) {
    cell.current.store(0, std::memory_order_relaxed);
    cell.peak.store(0, std::memory_order_relaxed);
  }
  mem_internal::g_total_current.store(0, std::memory_order_relaxed);
  mem_internal::g_total_peak.store(0, std::memory_order_relaxed);
}

/// \brief RAII charge bound to one owner object: Set() re-charges the
/// delta as the owned footprint grows or shrinks, the destructor returns
/// whatever is still charged. Declare it before the owned containers so it
/// discharges first on teardown. Movable (ownership of the charge moves),
/// copyable (the copy charges its own bytes) so owners keep their default
/// copy/move semantics.
class ScopedMemCharge {
 public:
  explicit ScopedMemCharge(MemTag tag, int64_t bytes = 0) : tag_(tag) {
    Set(bytes);
  }
  ~ScopedMemCharge() { Set(0); }

  ScopedMemCharge(const ScopedMemCharge& other) : tag_(other.tag_) {
    Set(other.bytes_);
  }
  ScopedMemCharge& operator=(const ScopedMemCharge& other) {
    if (this != &other) {
      Set(0);
      tag_ = other.tag_;
      Set(other.bytes_);
    }
    return *this;
  }
  ScopedMemCharge(ScopedMemCharge&& other) noexcept
      : tag_(other.tag_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ScopedMemCharge& operator=(ScopedMemCharge&& other) noexcept {
    if (this != &other) {
      Set(0);
      tag_ = other.tag_;
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Makes the outstanding charge exactly `bytes`.
  void Set(int64_t bytes) {
    if (bytes < 0) bytes = 0;
    if (bytes == bytes_) return;
    MemCharge(tag_, bytes - bytes_);
    bytes_ = bytes;
  }

  /// Grows the outstanding charge by `delta` bytes.
  void Add(int64_t delta) { Set(bytes_ + delta); }

  int64_t bytes() const { return bytes_; }
  MemTag tag() const { return tag_; }

 private:
  MemTag tag_;
  int64_t bytes_ = 0;
};

/// \brief Point-in-time resource view: every tagged subsystem plus the
/// process counters the sampler maintains. Feeds /memz, /statusz, the run
/// report `resources` block and delex_inspect mem.
struct ResourceUsage {
  struct Subsystem {
    std::string tag;
    int64_t current_bytes = 0;
    int64_t peak_bytes = 0;
  };
  std::vector<Subsystem> subsystems;   // MemTag order
  int64_t tracked_bytes = 0;           // sum of live tagged bytes
  int64_t tracked_peak_bytes = 0;      // high-water mark of that sum
  int64_t rss_bytes = 0;               // /proc/self/statm resident, sampled
  int64_t vm_bytes = 0;                // /proc/self/statm size, sampled
  int64_t peak_rss_bytes = 0;          // getrusage ru_maxrss
};

// ----- everything below is implemented in mem.cc (links delex_obs) -----

/// Reads /proc/self/statm + getrusage right now, refreshes the `mem.*`
/// gauges, and returns the combined view. Safe without the sampler.
ResourceUsage CollectResourceUsage();

/// \brief Background sampler: refreshes process RSS/VM gauges every
/// `interval_ms` so exporters and /statusz see fresh numbers without a
/// collector in the hot path. Start is idempotent; Stop joins the thread.
class MemSampler {
 public:
  static MemSampler& Global();
  void Start(int interval_ms);
  void Stop();
  bool running() const;
  /// Samples observed since Start (tests: peak monotonicity).
  int64_t sample_count() const;

 private:
  MemSampler() = default;
};

/// Starts the sampler when DELEX_MEM_SAMPLE_MS is set (interval in ms;
/// "0" disables). Called from MaybeStartExportersFromEnv.
void MaybeStartMemSamplerFromEnv();

/// /memz payload: the ResourceUsage as one JSON object.
std::string MemzJson();

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_MEM_H_
