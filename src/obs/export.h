#ifndef DELEX_OBS_EXPORT_H_
#define DELEX_OBS_EXPORT_H_

// Metrics exposition, observability layer 2: renders the process
// MetricsRegistry (counters, gauges, histograms) as Prometheus text
// format 0.0.4, writes periodic JSONL snapshots, and serves both from a
// minimal embedded HTTP server so a long-running binary (dblife_portal)
// can be scraped like a production service.
//
// Environment wiring (MaybeStartExportersFromEnv, called by the engine's
// Init, BenchInit and the example mains):
//   DELEX_METRICS_PORT=9464        start the stats server (0 = ephemeral)
//   DELEX_METRICS_SNAPSHOT_MS=500  periodic JSONL metrics snapshots
//   DELEX_METRICS_SNAPSHOT_PATH=f  snapshot file (default
//                                  delex_metrics.jsonl in the cwd)
//   DELEX_METRICS_LINGER_MS=5000   keep the server up this long at exit
//                                  (lets CI scrape a fast-finishing run)
//
// Endpoints: GET /metrics (text/plain; version=0.0.4), GET /healthz
// ("ok"), and — observability layer 3 — GET /statusz (human-readable
// HTML: uptime, build stamp, env knobs, last-generation summary,
// per-shard table), GET /varz (the JSON metrics snapshot), GET /history
// (the published generation-history file, application/x-ndjson).
// Loopback only — this is an operational surface, not a public one.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace delex {
namespace obs {

/// Renders a snapshot as Prometheus text format 0.0.4: HELP/TYPE comment
/// lines per family; counters exposed as `delex_<name>_total`, gauges as
/// `delex_<name>`, histograms as `_bucket{le="..."}`/`_sum`/`_count`
/// series over a fixed coarse ladder (cumulative, monotone, +Inf == count
/// by construction). Dots in metric names become underscores.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Same, over MetricsRegistry::Global().FullSnapshot().
std::string PrometheusText();

/// One JSONL line of the full registry state:
///   {"uptime_ms":...,"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"max":..,
///                          "p50":..,"p90":..,"p99":..},...}}
std::string MetricsSnapshotJsonLine();

/// \brief Background thread appending MetricsSnapshotJsonLine() to a file
/// every interval. Process-global singleton, crash-flush registered: a
/// DELEX_CHECK failure writes one final snapshot before aborting.
class MetricsSnapshotWriter {
 public:
  static MetricsSnapshotWriter& Global();

  /// Starts the periodic writer (no-op error if already running).
  Status Start(const std::string& path, int interval_ms);

  /// Appends one snapshot line immediately (independent of the thread;
  /// also the crash-flush hook). Error if never started.
  Status WriteNow();

  /// Stops the thread. Safe to call when not running.
  void Stop();

  bool running() const;
  std::string path() const;

 private:
  MetricsSnapshotWriter() = default;

  mutable Mutex mu_{"obs.export.snapshot_writer"};
  CondVar cv_;
  std::thread thread_ DELEX_GUARDED_BY(mu_);  // moved out under mu_, joined outside
  std::string path_ DELEX_GUARDED_BY(mu_);
  int interval_ms_ DELEX_GUARDED_BY(mu_) = 0;
  bool running_ DELEX_GUARDED_BY(mu_) = false;
  bool stop_requested_ DELEX_GUARDED_BY(mu_) = false;
};

/// \brief Minimal embedded HTTP stats server (loopback only, one accept
/// thread, connection-per-request). GET /metrics returns the Prometheus
/// exposition; GET /healthz returns "ok"; anything else is a 404.
class StatsServer {
 public:
  static StatsServer& Global();

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()) and
  /// starts serving. Error if already running or the bind fails.
  Status Start(int port);

  /// Stops serving and joins the accept thread. Safe when not running.
  void Stop();

  bool running() const;
  /// The bound port (resolved when Start was given 0); 0 when stopped.
  int port() const;

 private:
  StatsServer() = default;
  // The accept loop owns its fd by value — Stop() nulls the member and
  // closes the duplicate-free handle itself, so the loop never reads
  // mutable state through mu_.
  void Serve(int listen_fd);

  mutable Mutex mu_{"obs.export.stats_server"};
  std::thread thread_ DELEX_GUARDED_BY(mu_);  // moved out under mu_, joined outside
  int listen_fd_ DELEX_GUARDED_BY(mu_) = -1;
  int port_ DELEX_GUARDED_BY(mu_) = 0;
  std::atomic<bool> stop_requested_{false};
  bool running_ DELEX_GUARDED_BY(mu_) = false;
};

/// Starts the stats server and/or snapshot writer per the DELEX_METRICS_*
/// environment knobs. Idempotent; failures log a WARN and continue.
void MaybeStartExportersFromEnv();

/// Publishes the newest generation-history state for the introspection
/// endpoints: `history_path` is the merged store the running solution
/// appends to (served verbatim by /history), `line` the latest framed
/// record (parsed into /statusz's last-generation summary). Thread-safe,
/// last write wins; empty strings leave the corresponding slot untouched.
void PublishHistoryForStatus(const std::string& history_path,
                             const std::string& line);

/// The published slots (empty until the first publication).
std::string PublishedHistoryPath();
std::string PublishedHistoryLine();

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_EXPORT_H_
