#ifndef DELEX_OBS_METRICS_H_
#define DELEX_OBS_METRICS_H_

// Process-wide metrics registry: named monotone counters, registered
// lazily at first use and snapshotted into every run report.
//
//   static obs::Counter* demotions =
//       obs::MetricsRegistry::Global().GetCounter("engine.fast_path.demotions");
//   demotions->Increment();
//
// Counters are relaxed atomics — safe from any thread, negligible cost.
// Registration takes a mutex once per call site (cache the pointer).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace delex {
namespace obs {

/// \brief One named monotone counter. Lifetime: owned by the registry,
/// valid until process exit — cache the pointer freely.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// \brief Registry of all counters in the process.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter named `name`, creating it on first use.
  Counter* GetCounter(std::string_view name);

  /// Name→value snapshot, sorted by name (deterministic report order).
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Zeroes every counter (tests and per-process report baselines).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
};

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_METRICS_H_
