#ifndef DELEX_OBS_METRICS_H_
#define DELEX_OBS_METRICS_H_

// Process-wide metrics registry: named monotone counters, point-in-time
// gauges and log-bucketed histograms, registered lazily at first use and
// snapshotted into every run report / exposition scrape.
//
//   static obs::Counter* demotions =
//       obs::MetricsRegistry::Global().GetCounter("engine.fast_path.demotions");
//   demotions->Increment();
//
// Counters and gauges are relaxed atomics, histograms are lock-free —
// safe from any thread, negligible cost. Registration takes a
// mutex-guarded map lookup on every call, so hot paths must cache the
// returned pointer (function-local static); the pointers stay valid
// until process exit.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/histogram.h"

namespace delex {
namespace obs {

/// \brief One named monotone counter. Lifetime: owned by the registry,
/// valid until process exit — cache the pointer freely.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// \brief One named point-in-time value (generation number, listen port,
/// queue depth). Same lifetime rules as Counter.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// \brief Deterministic (name-sorted) view of every metric in the
/// registry — what exporters render and the snapshot writer serializes.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, LocalHistogram>> histograms;
};

/// \brief Registry of all counters, gauges and histograms in the process.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter named `name`, creating it on first use.
  Counter* GetCounter(std::string_view name);

  /// Returns the gauge named `name`, creating it on first use.
  Gauge* GetGauge(std::string_view name);

  /// Returns the histogram named `name`, creating it on first use.
  Histogram* GetHistogram(std::string_view name);

  /// Counter name→value snapshot, sorted by name (run-report order).
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Everything — counters, gauges, histogram snapshots — sorted by name.
  MetricsSnapshot FullSnapshot() const;

  /// Zeroes every metric (tests and per-process report baselines).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_{"obs.metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DELEX_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DELEX_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DELEX_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_METRICS_H_
