#ifndef DELEX_OBS_RUN_REPORT_H_
#define DELEX_OBS_RUN_REPORT_H_

// Versioned, machine-readable per-snapshot run report (JSONL: one JSON
// object per line, one line per snapshot run). This is the artifact a
// regression gate diffs: it snapshots RunStats (per-unit counters and
// phase timers), IoStats, the optimizer's decisions (chosen matcher per
// IE unit, predicted cost vs. measured microseconds — the Figure 11/12
// decomposition from a single file), fast-path hit counters, thread-count
// metadata, and the process metrics registry.
//
// Producers: RunSeries (src/harness) writes a line per snapshot when
// --stats-json / DELEX_STATS_JSON is set; tests build lines directly.
//
// Schema line shape (keys stable; additions bump the version):
//   {"schema_version":4,"solution":"Delex","snapshot":2,"warmup":false,
//    "threads":4,"fast_path":true,"histograms":true,"num_shards":1,
//    "tag":"fig11-talk",
//    "pages":N,"pages_with_previous":N,"pages_identical":N,
//    "result_tuples":N,"raw_bytes_copied":N,"records_decoded_skipped":N,
//    "phases":{"match_us":..,"extract_us":..,"copy_us":..,"opt_us":..,
//              "capture_us":..,"total_us":..,"others_us":..,
//              "phase_drift_us":..},
//    "io":{"reuse_read":{"bytes":..,"records":..},
//          "reuse_write":{"bytes":..,"records":..}},
//    "fast_path_counters":{"demote_result_cache":N,
//                          "demote_missing_group":N,
//                          "decode_copy_groups":N},
//    "latency":{"page_eval_us":{"count":..,"mean":..,"p50":..,"p90":..,
//                               "p99":..,"max":..},
//               "match_ud_us":{...},"match_st_us":{...},
//               "match_ru_us":{...}},               // v2: distributions
//    "trace":{"recording":false,"dropped_events":N},
//    "optimizer":{"assignment":"ST,RU","opt_us":..,
//                 "predicted_total_us":..},        // omitted w/o optimizer
//    "units":[{"unit":0,"matcher":"ST","predicted_us":..,"actual_us":..,
//              "match_us":..,"extract_us":..,"copy_us":..,"capture_us":..,
//              "input_tuples":..,"output_tuples":..,"copied_tuples":..,
//              "extracted_tuples":..,"matcher_calls":..,
//              "exact_region_hits":..,"chars_extracted":..,
//              "extract_count":..,"extract_p50_us":..,"extract_p90_us":..,
//              "extract_p99_us":..,"extract_max_us":..}],
//    "counters":{"engine.fast_path.demote_result_cache":0,...}}
//
// v1 → v2: added "histograms" meta flag, "fast_path_counters" (per-run
// demotion/decode-copy tallies), "latency" (page-eval and per-matcher
// p50/p90/p99/max from the run's merged histogram shards), "trace"
// (recorder state + dropped-event count), and per-unit extract-latency
// percentiles. Latency summaries are present only when histograms were
// enabled for the run.
//
// v2 → v3: the "optimizer" block gains the self-tuning cost-model state:
// "learning" (coefficient learning enabled), "cost_drift" (mean relative
// predicted-vs-measured per-unit error of this run, pre-update; omitted
// before the first feedback), and "coeffs" (per-matcher learned
// calibration rows {"matcher","gain","bias","drift","samples"}; omitted
// until a kind has samples).
//
// v3 → v4: sharded execution. The meta block gains "num_shards" (always
// present; 1 for unsharded runs), and when num_shards > 1 a "shards"
// array with one summary per shard:
//   {"shard":K,"pages":N,"pages_identical":N,"result_tuples":N,
//    "total_us":..,"reuse_corrupt_drops":N}
// The top-level stats blocks then describe the MERGED view (counters
// summed, phase components summed, total_us = sharded wall clock,
// histograms folded across shards).
//
// v4 → v5: explainability (observability layer 3). The meta block gains
// "generation" (the engine's completed-run counter; omitted for
// engine-less baselines), shard summaries gain "assignment" and
// "cost_drift" (each shard's own plan and prediction error), and the
// optimizer block gains a "decisions" array — the optimizer's audit of
// every per-unit matcher choice:
//   {"unit":0,"winner":"ST","runner_up":"UD","margin_us":..,
//    "candidates":{"DN":..,"UD":..,"ST":..,"RU":..},
//    "inputs":{"f":..,"m":..,"a":..,"l":..,"gain":..,"bias":..,
//              "samples":..,"history":..}}
// Candidates are whole-plan estimated µs with only that unit's matcher
// swapped; margin_us = runner-up − winner (negative means the greedy
// search accepted a locally suboptimal unit for a globally better plan).
// The "inputs" block records which statistics and learned coefficients
// fed the estimate, so every matcher switch across generations is
// attributable from the reports alone.
//
// v5 → v6: resource observability (layer 4). Every line gains a
// "resources" block sampled at report time:
//   {"rss_bytes":..,"vm_bytes":..,"peak_rss_bytes":..,
//    "tracked_bytes":..,"tracked_peak_bytes":..,
//    "subsystems":[{"tag":"snapshot","current_bytes":..,"peak_bytes":..},
//                  ...],                      // one row per MemTag
//    "profile":{"total_samples":N,"lost_samples":N,
//               "top_spans":[{"span":"eval_page","self_samples":N},...]}}
// The "profile" sub-block appears only when the span profiler observed at
// least one tick (DELEX_PROFILE); top_spans is self-time (innermost open
// span per tick), largest first, at most 10 rows.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "delex/run_stats.h"

namespace delex {
namespace obs {

inline constexpr int kRunReportSchemaVersion = 6;

/// \brief Run identity and execution-environment metadata for one line.
struct RunReportMeta {
  std::string solution;    ///< "Delex", "Cyclex", "No-reuse", ...
  std::string tag;         ///< free-form context (bench/program name)
  int snapshot_index = 0;  ///< 1-based position in the series
  bool warmup = false;     ///< first snapshot: capture only, no reuse
  int num_threads = 1;     ///< engine worker threads (0 = hardware)
  bool fast_path_enabled = true;
  /// Whether latency histograms were recording (DELEX_HISTOGRAMS); the
  /// "latency" block and per-unit percentiles are emitted only when true.
  bool histograms_enabled = true;

  /// Engine shards the run was partitioned into (v4; 1 = unsharded).
  int num_shards = 1;

  /// Engine generation completed by this run (v5); < 0 for engine-less
  /// baselines, which omit the field.
  int generation = -1;

  /// Per-shard rollup emitted as the "shards" array when num_shards > 1
  /// (v4). The top-level stats blocks carry the merged view.
  struct ShardSummary {
    int shard = 0;
    int64_t pages = 0;
    int64_t pages_identical = 0;
    int64_t result_tuples = 0;
    int64_t total_us = 0;  ///< shard wall clock (driver thread)
    int64_t reuse_corrupt_drops = 0;
    /// This shard's own chosen plan and prediction error (v5; each shard
    /// runs its own optimizer). Empty / negative when unavailable.
    std::string assignment;
    double cost_drift = -1;
  };
  std::vector<ShardSummary> shards;
};

/// \brief The optimizer's decisions for one run, when a plan was chosen.
struct OptimizerReport {
  bool has_optimizer = false;  ///< engine-backed solution (plan exists)
  /// Assigned matcher name per IE unit ("DN"/"UD"/"ST"/"RU").
  std::vector<std::string> unit_matchers;
  /// Cost-model estimate per unit (µs), aligned with unit_matchers;
  /// empty when no statistics were available (warm-up, forced plans).
  std::vector<double> predicted_unit_us;
  /// Cost-model estimate for the whole plan (µs); < 0 when unavailable.
  double predicted_total_us = -1;

  /// One learned-calibration row per matcher kind with samples (v3).
  struct LearnedCoefficient {
    std::string matcher;   ///< "DN"/"UD"/"ST"/"RU"
    double gain = 1.0;     ///< multiplicative correction
    double bias = 0.0;     ///< additive correction (µs)
    double drift = -1.0;   ///< EW mean relative error, pre-update
    int64_t samples = 0;
  };
  /// Whether coefficient learning was enabled for this solution (v3).
  bool learning_enabled = false;
  /// Mean relative predicted-vs-measured per-unit error of this run,
  /// computed before the update; < 0 before any feedback (v3).
  double cost_drift = -1;
  std::vector<LearnedCoefficient> learned;

  /// One audited matcher decision per IE unit (v5): the per-candidate
  /// whole-plan estimates with only this unit's matcher swapped, the
  /// winner, the margin to the best alternative, and the statistics /
  /// learned coefficients that fed the estimate. Empty when the audit is
  /// disabled (DELEX_DECISION_AUDIT=0) or the plan was forced.
  struct UnitDecision {
    int unit = 0;
    std::string winner;     ///< "DN"/"UD"/"ST"/"RU"
    std::string runner_up;  ///< best alternative matcher
    /// Runner-up plan cost − winner plan cost (µs). Negative when the
    /// greedy search kept a locally suboptimal unit choice.
    double margin_us = 0;
    /// (matcher name, estimated whole-plan µs) for every candidate.
    std::vector<std::pair<std::string, double>> candidate_us;
    // Statistics inputs: snapshot level (f, m), unit level (a, l), and
    // the learned calibration row of the winner's priced kind.
    double f = 0, m = 0, a = 0, l = 0;
    double gain = 1.0, bias = 0;
    int64_t samples = 0;
    int history_window = 0;  ///< snapshot pairs in the averaged stats
  };
  std::vector<UnitDecision> decisions;
};

class JsonWriter;

/// Serializes one learned-calibration row / audited decision — shared by
/// the run-report writer and the generation-history store so the two
/// artifacts stay field-for-field diffable.
void WriteLearnedCoefficient(const OptimizerReport::LearnedCoefficient& row,
                             JsonWriter* json);
void WriteUnitDecision(const OptimizerReport::UnitDecision& d,
                       JsonWriter* json);

/// \brief Builds one JSONL line (no trailing newline).
std::string RunReportLine(const RunReportMeta& meta, const RunStats& stats,
                          const OptimizerReport& optimizer);

/// \brief Appends run-report lines to a JSONL file.
class RunReportWriter {
 public:
  RunReportWriter() = default;
  ~RunReportWriter();

  RunReportWriter(const RunReportWriter&) = delete;
  RunReportWriter& operator=(const RunReportWriter&) = delete;

  /// Opens `path` for appending (created if absent) — append so several
  /// solutions and series in one process share a report file.
  Status Open(const std::string& path);

  Status Append(const RunReportMeta& meta, const RunStats& stats,
                const OptimizerReport& optimizer);

  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_RUN_REPORT_H_
