#include "obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/history.h"
#include "obs/json_writer.h"
#include "obs/log.h"
#include "obs/mem.h"
#include "obs/profiler.h"

// Build provenance for /statusz (global compile definitions; the
// fallbacks keep non-CMake builds of this TU compiling).
#ifndef DELEX_GIT_SHA
#define DELEX_GIT_SHA "unknown"
#endif
#ifndef DELEX_BUILD_TYPE
#define DELEX_BUILD_TYPE "unknown"
#endif

namespace delex {
namespace obs {

namespace {

// Coarse microsecond ladder for the Prometheus `le` buckets. The fine
// 592-bucket scheme stays internal; scrapes get a stable, human-sized
// view. CumulativeLE only counts fine buckets wholly below each bound, so
// the series is monotone and the +Inf bucket equals _count exactly.
constexpr int64_t kPrometheusBucketBoundsUs[] = {
    1,      2,      5,       10,      25,      50,      100,
    250,    500,    1000,    2500,    5000,    10000,   25000,
    50000,  100000, 250000,  500000,  1000000, 2500000, 10000000,
};

/// Metric-name sanitizer: [a-zA-Z0-9_] pass through, everything else
/// (the registry's dots) becomes '_'; a "delex_" prefix namespaces the
/// exposition.
std::string PrometheusName(const std::string& name) {
  std::string out = "delex_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// A registry name split into Prometheus family + label set. Registry
/// names may carry labels after a '#' as comma-separated k=v pairs
/// ("shard.pages#shard=3" — the sharded engine's per-shard series);
/// they render as real Prometheus labels so one family aggregates across
/// shards. Base and keys are sanitized like names; values are escaped per
/// the text-format rules (backslash, quote, newline).
struct PromName {
  std::string base;    // sanitized family name, "delex_" prefixed
  std::string labels;  // rendered `k="v",k2="v2"`, empty when unlabeled
};

PromName ParsePromName(const std::string& name) {
  PromName out;
  const size_t hash = name.find('#');
  out.base = PrometheusName(name.substr(0, hash));
  if (hash == std::string::npos) return out;
  size_t start = hash + 1;
  while (start < name.size()) {
    size_t comma = name.find(',', start);
    if (comma == std::string::npos) comma = name.size();
    const std::string pair = name.substr(start, comma - start);
    const size_t eq = pair.find('=');
    const std::string key = pair.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : pair.substr(eq + 1);
    if (!key.empty()) {
      if (!out.labels.empty()) out.labels += ',';
      for (char c : key) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.labels += ok ? c : '_';
      }
      out.labels += "=\"";
      for (char c : value) {
        if (c == '\\' || c == '"') out.labels += '\\';
        if (c == '\n') {
          out.labels += "\\n";
          continue;
        }
        out.labels += c;
      }
      out.labels += '"';
    }
    start = comma + 1;
  }
  return out;
}

/// One sample line: family name, optional extra label set merged with the
/// parsed ones, value appended by the caller.
void AppendSampleName(std::string* out, const std::string& family,
                      const std::string& labels) {
  *out += family;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
}

int64_t UptimeMs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

// ---- /statusz helpers --------------------------------------------------

/// Published generation-history state (see PublishHistoryForStatus).
struct PublishedHistory {
  Mutex mu{"obs.export.published_history"};
  std::string path DELEX_GUARDED_BY(mu);
  std::string line DELEX_GUARDED_BY(mu);
};

PublishedHistory& PublishedHistorySlot() {
  static PublishedHistory* slot = new PublishedHistory();
  return *slot;
}

std::string HtmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendRow(std::string* out, std::string_view key, std::string_view val) {
  *out += "<tr><td>";
  *out += HtmlEscape(key);
  *out += "</td><td>";
  *out += HtmlEscape(val);
  *out += "</td></tr>\n";
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// The operational knobs /statusz reports — one row per env var, so an
/// operator sees the effective configuration without shell access.
constexpr const char* kStatusKnobs[] = {
    "DELEX_THREADS",          "DELEX_SHARDS",
    "DELEX_SIMD",             "DELEX_COST_LEARN",
    "DELEX_HISTORY",          "DELEX_HISTORY_RETAIN",
    "DELEX_DECISION_AUDIT",   "DELEX_HISTOGRAMS",
    "DELEX_TRACE",            "DELEX_STATS_JSON",
    "DELEX_PARANOID",         "DELEX_LOG_LEVEL",
    "DELEX_METRICS_PORT",     "DELEX_METRICS_SNAPSHOT_MS",
    "DELEX_METRICS_LINGER_MS", "DELEX_PROFILE",
    "DELEX_PROFILE_HZ",       "DELEX_MEM_SAMPLE_MS",
};

/// Human-scale byte rendering for the /statusz memory table: exact bytes
/// stay in /memz; here operators want "312.4 MiB" at a glance.
std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
    v /= 1024.0;
    ++u;
  }
  char buf[48];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s (%lld)", v, units[u],
                  static_cast<long long>(bytes));
  }
  return buf;
}

void AppendMemorySection(std::string* html) {
  ResourceUsage usage = CollectResourceUsage();
  *html += "<h2>Memory</h2>\n<table>\n";
  AppendRow(html, "rss", FormatBytes(usage.rss_bytes));
  AppendRow(html, "peak_rss", FormatBytes(usage.peak_rss_bytes));
  AppendRow(html, "vm", FormatBytes(usage.vm_bytes));
  AppendRow(html, "tracked", FormatBytes(usage.tracked_bytes));
  AppendRow(html, "tracked_peak", FormatBytes(usage.tracked_peak_bytes));
  AppendRow(html, "mem_sampler",
            MemSampler::Global().running()
                ? "running (" +
                      std::to_string(MemSampler::Global().sample_count()) +
                      " samples)"
                : "off");
  *html += "</table>\n";

  *html += "<h3>Per-subsystem (tagged)</h3>\n<table>\n";
  *html += "<tr><th>subsystem</th><th>current</th><th>peak</th></tr>\n";
  for (const ResourceUsage::Subsystem& sub : usage.subsystems) {
    *html += "<tr><td>" + HtmlEscape(sub.tag) + "</td><td>" +
             HtmlEscape(FormatBytes(sub.current_bytes)) + "</td><td>" +
             HtmlEscape(FormatBytes(sub.peak_bytes)) + "</td></tr>\n";
  }
  *html += "</table>\n";
}

void AppendLastGenSection(std::string* html) {
  std::string line;
  {
    PublishedHistory& slot = PublishedHistorySlot();
    MutexLock lock(&slot.mu);
    line = slot.line;
  }
  *html += "<h2>Last generation</h2>\n";
  if (line.empty()) {
    *html += "<p>(no generation completed yet)</p>\n";
    return;
  }
  HistoryRecord rec;
  Status st = HistoryStore::ParseLine(line, &rec);
  if (!st.ok()) {
    *html += "<p>unparseable history record: " + HtmlEscape(st.ToString()) +
             "</p>\n";
    return;
  }
  *html += "<table>\n";
  AppendRow(html, "generation", std::to_string(rec.gen));
  AppendRow(html, "solution", rec.solution);
  if (!rec.tag.empty()) AppendRow(html, "tag", rec.tag);
  AppendRow(html, "assignment", rec.assignment);
  AppendRow(html, "pages", std::to_string(rec.pages));
  AppendRow(html, "pages_identical", std::to_string(rec.pages_identical));
  AppendRow(html, "result_tuples", std::to_string(rec.result_tuples));
  AppendRow(html, "total_us", std::to_string(rec.total_us));
  AppendRow(html,
            "phases (match/extract/copy/opt/capture/others µs)",
            std::to_string(rec.match_us) + " / " +
                std::to_string(rec.extract_us) + " / " +
                std::to_string(rec.copy_us) + " / " +
                std::to_string(rec.opt_us) + " / " +
                std::to_string(rec.capture_us) + " / " +
                std::to_string(rec.others_us));
  if (rec.has_optimizer) {
    if (rec.predicted_total_us >= 0) {
      AppendRow(html, "predicted_total_us",
                FormatDouble(rec.predicted_total_us));
    }
    if (rec.cost_drift >= 0) {
      AppendRow(html, "cost_drift", FormatDouble(rec.cost_drift));
    }
    AppendRow(html, "audited decisions", std::to_string(rec.decisions.size()));
  }
  AppendRow(html, "reuse_corrupt_drops",
            std::to_string(rec.reuse_corrupt_drops));
  AppendRow(html, "trace_dropped_events",
            std::to_string(rec.trace_dropped_events));
  *html += "</table>\n";

  if (!rec.shards.empty()) {
    *html += "<h2>Shards (last generation)</h2>\n<table>\n";
    *html +=
        "<tr><th>shard</th><th>pages</th><th>identical</th>"
        "<th>tuples</th><th>total µs</th><th>corrupt drops</th>"
        "<th>assignment</th><th>cost drift</th></tr>\n";
    for (const RunReportMeta::ShardSummary& s : rec.shards) {
      *html += "<tr><td>" + std::to_string(s.shard) + "</td><td>" +
               std::to_string(s.pages) + "</td><td>" +
               std::to_string(s.pages_identical) + "</td><td>" +
               std::to_string(s.result_tuples) + "</td><td>" +
               std::to_string(s.total_us) + "</td><td>" +
               std::to_string(s.reuse_corrupt_drops) + "</td><td>" +
               HtmlEscape(s.assignment) + "</td><td>" +
               (s.cost_drift >= 0 ? FormatDouble(s.cost_drift)
                                  : std::string("-")) +
               "</td></tr>\n";
    }
    *html += "</table>\n";
  }
}

std::string StatuszHtml() {
  std::string html =
      "<!DOCTYPE html>\n<html><head><title>delex /statusz</title>"
      "<style>body{font-family:monospace}table{border-collapse:collapse}"
      "td,th{border:1px solid #999;padding:2px 8px;text-align:left}"
      "</style></head><body>\n<h1>delex /statusz</h1>\n";

  html += "<table>\n";
  AppendRow(&html, "uptime_ms", std::to_string(UptimeMs()));
  AppendRow(&html, "git_sha", DELEX_GIT_SHA);
  AppendRow(&html, "build_type", DELEX_BUILD_TYPE);
  {
    PublishedHistory& slot = PublishedHistorySlot();
    MutexLock lock(&slot.mu);
    AppendRow(&html, "history_path",
              slot.path.empty() ? "(none)" : slot.path);
  }
  html += "</table>\n";

  html += "<h2>Knobs</h2>\n<table>\n";
  for (const char* knob : kStatusKnobs) {
    const char* value = std::getenv(knob);
    AppendRow(&html, knob, value == nullptr ? "(unset)" : value);
  }
  html += "</table>\n";

  AppendMemorySection(&html);
  AppendLastGenSection(&html);

  // The label-aware renderer's view of the labeled families — the same
  // split /metrics uses, shown as family{labels} rows (per-shard series
  // group together because snapshots are name-sorted).
  MetricsSnapshot snapshot = MetricsRegistry::Global().FullSnapshot();
  std::string labeled;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.find('#') == std::string::npos) continue;
    PromName prom = ParsePromName(name);
    std::string sample;
    AppendSampleName(&sample, prom.base + "_total", prom.labels);
    labeled += "<tr><td>" + HtmlEscape(sample) + "</td><td>" +
               std::to_string(value) + "</td></tr>\n";
  }
  if (!labeled.empty()) {
    html += "<h2>Labeled counters</h2>\n<table>\n";
    html += labeled;
    html += "</table>\n";
  }

  html += "</body></html>\n";
  return html;
}

/// Serves the published history file verbatim; falls back to the last
/// published line so /history works even for disabled-on-disk stores.
bool HistoryBody(std::string* body) {
  std::string path;
  std::string line;
  {
    PublishedHistory& slot = PublishedHistorySlot();
    MutexLock lock(&slot.mu);
    path = slot.path;
    line = slot.line;
  }
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      char buf[1 << 14];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        body->append(buf, n);
      }
      std::fclose(f);
      return true;
    }
  }
  if (!line.empty()) {
    *body = line;
    *body += '\n';
    return true;
  }
  return false;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  // The snapshot maps are name-sorted and '#' sorts below every
  // [a-z0-9._] name character, so all labeled series of one family are
  // contiguous — emit HELP/TYPE once per family, then every sample.
  std::string out;
  std::string last_family;
  for (const auto& [name, value] : snapshot.counters) {
    PromName prom = ParsePromName(name);
    const std::string family = prom.base + "_total";
    if (family != last_family) {
      out += "# HELP " + family + " Delex counter " + prom.base + "\n";
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    AppendSampleName(&out, family, prom.labels);
    out += ' ';
    AppendInt(&out, value);
    out += '\n';
  }
  last_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    PromName prom = ParsePromName(name);
    if (prom.base != last_family) {
      out += "# HELP " + prom.base + " Delex gauge " + prom.base + "\n";
      out += "# TYPE " + prom.base + " gauge\n";
      last_family = prom.base;
    }
    AppendSampleName(&out, prom.base, prom.labels);
    out += ' ';
    AppendInt(&out, value);
    out += '\n';
  }
  last_family.clear();
  for (const auto& [name, hist] : snapshot.histograms) {
    PromName prom = ParsePromName(name);
    if (prom.base != last_family) {
      out += "# HELP " + prom.base + " Delex latency histogram " + prom.base +
             " (microseconds)\n";
      out += "# TYPE " + prom.base + " histogram\n";
      last_family = prom.base;
    }
    const std::string le_prefix =
        prom.labels.empty() ? "" : prom.labels + ",";
    for (int64_t bound : kPrometheusBucketBoundsUs) {
      out += prom.base + "_bucket{" + le_prefix + "le=\"";
      AppendInt(&out, bound);
      out += "\"} ";
      AppendInt(&out, hist.CumulativeLE(bound));
      out += '\n';
    }
    out += prom.base + "_bucket{" + le_prefix + "le=\"+Inf\"} ";
    AppendInt(&out, hist.count());
    out += '\n';
    AppendSampleName(&out, prom.base + "_sum", prom.labels);
    out += ' ';
    AppendInt(&out, hist.sum());
    out += '\n';
    AppendSampleName(&out, prom.base + "_count", prom.labels);
    out += ' ';
    AppendInt(&out, hist.count());
    out += '\n';
  }
  return out;
}

std::string PrometheusText() {
  return PrometheusText(MetricsRegistry::Global().FullSnapshot());
}

std::string MetricsSnapshotJsonLine() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().FullSnapshot();
  JsonWriter json;
  json.BeginObject();
  json.KV("uptime_ms", UptimeMs());
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) json.KV(name, value);
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) json.KV(name, value);
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    json.Key(name)
        .BeginObject()
        .KV("count", hist.count())
        .KV("sum", hist.sum())
        .KV("max", hist.max())
        .KV("p50", hist.Percentile(50))
        .KV("p90", hist.Percentile(90))
        .KV("p99", hist.Percentile(99))
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

// ---- MetricsSnapshotWriter ---------------------------------------------

MetricsSnapshotWriter& MetricsSnapshotWriter::Global() {
  static MetricsSnapshotWriter* writer = new MetricsSnapshotWriter();
  return *writer;
}

Status MetricsSnapshotWriter::Start(const std::string& path, int interval_ms) {
  MutexLock lock(&mu_);
  if (running_) {
    return Status::InvalidArgument("metrics snapshot writer already running");
  }
  if (path.empty() || interval_ms <= 0) {
    return Status::InvalidArgument("bad snapshot path or interval");
  }
  path_ = path;
  interval_ms_ = interval_ms;
  stop_requested_ = false;
  running_ = true;
  // Crash-flush: a DELEX_CHECK failure appends one final snapshot so the
  // registry state at the moment of death is on disk. (Lock-free slot
  // registration — safe under mu_.)
  RegisterCrashFlushHook(
      [] { (void)MetricsSnapshotWriter::Global().WriteNow(); });
  // Assigned under mu_ so the handle stays guarded; the worker's first
  // action is to lock mu_, so it simply blocks until Start returns.
  thread_ = std::thread([this] {
    for (;;) {
      {
        MutexLock worker_lock(&mu_);
        if (stop_requested_) return;
      }
      // Write with the lock dropped — a slow disk must not block Stop().
      Status st = WriteNow();
      if (!st.ok()) {
        DELEX_LOG(WARN) << "metrics snapshot: " << st.ToString();
      }
      MutexLock worker_lock(&mu_);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(interval_ms_);
      bool timed_out = false;
      while (!stop_requested_ && !timed_out) {
        timed_out = cv_.WaitUntil(&mu_, deadline);
      }
      if (stop_requested_) return;
    }
  });
  return Status::OK();
}

Status MetricsSnapshotWriter::WriteNow() {
  std::string path;
  {
    MutexLock lock(&mu_);
    if (path_.empty()) {
      return Status::InvalidArgument("metrics snapshot writer never started");
    }
    path = path_;
  }
  std::string line = MetricsSnapshotJsonLine();
  line += '\n';
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics snapshot file " + path);
  }
  size_t written = std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
  if (written != line.size()) {
    return Status::IOError("short write to metrics snapshot file " + path);
  }
  return Status::OK();
}

void MetricsSnapshotWriter::Stop() {
  std::thread to_join;
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.NotifyAll();
  if (to_join.joinable()) to_join.join();
  MutexLock lock(&mu_);
  running_ = false;
}

bool MetricsSnapshotWriter::running() const {
  MutexLock lock(&mu_);
  return running_;
}

std::string MetricsSnapshotWriter::path() const {
  MutexLock lock(&mu_);
  return path_;
}

// ---- StatsServer -------------------------------------------------------

StatsServer& StatsServer::Global() {
  static StatsServer* server = new StatsServer();
  return *server;
}

Status StatsServer::Start(int port) {
  MutexLock lock(&mu_);
  if (running_) {
    return Status::InvalidArgument("stats server already running on port " +
                                   std::to_string(port_));
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad stats server port");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("stats server: socket() failed");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // operational, not public
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // delex-lint: allow(reinterpret-cast) -- the BSD sockets ABI requires it
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("stats server: cannot bind 127.0.0.1:" +
                           std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError("stats server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  // delex-lint: allow(reinterpret-cast) -- the BSD sockets ABI requires it
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IOError("stats server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stop_requested_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this, fd] { Serve(fd); });
  MetricsRegistry::Global().GetGauge("export.stats_server_port")->Set(port_);
  DELEX_LOG(INFO) << "stats server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void StatsServer::Serve(int listen_fd) {
  for (;;) {
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (stop_requested_.load(std::memory_order_acquire)) {
      if (client >= 0) ::close(client);
      return;
    }
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down or broken
    }
    // Bounded read AND write: only the request line matters, and a
    // stalled client (connect-and-hang, or one that never drains its
    // receive window) must not wedge the single accept loop. The send
    // loop additionally enforces an overall deadline — SO_SNDTIMEO only
    // bounds each send() call, not a drip-feeding reader.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    char buf[2048];
    ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string target;
    if (n > 0) {
      buf[n] = '\0';
      // "GET <target> HTTP/1.x" — anything else falls through to 404.
      if (std::strncmp(buf, "GET ", 4) == 0) {
        const char* start = buf + 4;
        const char* end = std::strchr(start, ' ');
        if (end != nullptr) target.assign(start, end);
      }
    }
    std::string body;
    const char* status_line = "HTTP/1.1 404 Not Found";
    const char* content_type = "text/plain; charset=utf-8";
    if (target == "/metrics") {
      status_line = "HTTP/1.1 200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = PrometheusText();
    } else if (target == "/healthz") {
      status_line = "HTTP/1.1 200 OK";
      body = "ok\n";
    } else if (target == "/statusz") {
      status_line = "HTTP/1.1 200 OK";
      content_type = "text/html; charset=utf-8";
      body = StatuszHtml();
    } else if (target == "/varz") {
      status_line = "HTTP/1.1 200 OK";
      content_type = "application/json; charset=utf-8";
      body = MetricsSnapshotJsonLine();
      body += '\n';
    } else if (target == "/history") {
      if (HistoryBody(&body)) {
        status_line = "HTTP/1.1 200 OK";
        content_type = "application/x-ndjson; charset=utf-8";
      } else {
        body = "no history published\n";
      }
    } else if (target == "/memz") {
      status_line = "HTTP/1.1 200 OK";
      content_type = "application/json; charset=utf-8";
      body = MemzJson();
    } else if (target == "/profilez") {
      status_line = "HTTP/1.1 200 OK";
      body = SpanProfiler::Global().FoldedText();
      if (body.empty()) body = "(no samples)\n";
    } else {
      body = "not found\n";
    }
    std::string response = status_line;
    response += "\r\nContent-Type: ";
    response += content_type;
    response += "\r\nContent-Length: " + std::to_string(body.size());
    response += "\r\nConnection: close\r\n\r\n";
    response += body;
    const auto send_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t w = ::send(client, response.data() + sent, response.size() - sent,
                         0);
      if (w <= 0) break;  // error or SO_SNDTIMEO expiry — give up on client
      sent += static_cast<size_t>(w);
      if (std::chrono::steady_clock::now() > send_deadline) break;
    }
    ::close(client);
  }
}

void StatsServer::Stop() {
  std::thread to_join;
  int fd = -1;
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stop_requested_.store(true, std::memory_order_release);
    fd = listen_fd_;
    listen_fd_ = -1;
    to_join = std::move(thread_);
  }
  // Unblocks accept(): shutdown makes the blocked call return on Linux.
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (to_join.joinable()) to_join.join();
  MutexLock lock(&mu_);
  port_ = 0;
  running_ = false;
}

bool StatsServer::running() const {
  MutexLock lock(&mu_);
  return running_;
}

int StatsServer::port() const {
  MutexLock lock(&mu_);
  return port_;
}

// ---- Introspection publication -----------------------------------------

void PublishHistoryForStatus(const std::string& history_path,
                             const std::string& line) {
  PublishedHistory& slot = PublishedHistorySlot();
  MutexLock lock(&slot.mu);
  if (!history_path.empty()) slot.path = history_path;
  if (!line.empty()) slot.line = line;
}

std::string PublishedHistoryPath() {
  PublishedHistory& slot = PublishedHistorySlot();
  MutexLock lock(&slot.mu);
  return slot.path;
}

std::string PublishedHistoryLine() {
  PublishedHistory& slot = PublishedHistorySlot();
  MutexLock lock(&slot.mu);
  return slot.line;
}

// ---- Env wiring --------------------------------------------------------

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

}  // namespace

void MaybeStartExportersFromEnv() {
  static std::atomic<bool> done{false};
  bool expected = false;
  if (!done.compare_exchange_strong(expected, true)) return;

  MaybeStartMemSamplerFromEnv();
  MaybeStartProfilerFromEnv();

  int snapshot_ms = EnvInt("DELEX_METRICS_SNAPSHOT_MS", 0);
  if (snapshot_ms > 0) {
    const char* path_env = std::getenv("DELEX_METRICS_SNAPSHOT_PATH");
    std::string path = path_env != nullptr && *path_env != '\0'
                           ? path_env
                           : "delex_metrics.jsonl";
    Status st = MetricsSnapshotWriter::Global().Start(path, snapshot_ms);
    if (!st.ok()) {
      DELEX_LOG(WARN) << "DELEX_METRICS_SNAPSHOT_MS: " << st.ToString();
    } else {
      // Final snapshot + clean join at exit.
      std::atexit([] {
        (void)MetricsSnapshotWriter::Global().WriteNow();
        MetricsSnapshotWriter::Global().Stop();
      });
    }
  }

  const char* port_env = std::getenv("DELEX_METRICS_PORT");
  if (port_env != nullptr && *port_env != '\0') {
    Status st = StatsServer::Global().Start(std::atoi(port_env));
    if (!st.ok()) {
      DELEX_LOG(WARN) << "DELEX_METRICS_PORT: " << st.ToString();
    } else {
      // Optionally keep the server scrapeable for a short window after a
      // fast run finishes (CI scrapes a backgrounded portal), then shut
      // it down so the process can exit cleanly.
      std::atexit([] {
        int linger_ms = EnvInt("DELEX_METRICS_LINGER_MS", 0);
        if (linger_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
        }
        StatsServer::Global().Stop();
      });
    }
  }
}

}  // namespace obs
}  // namespace delex
