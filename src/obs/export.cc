#include "obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json_writer.h"
#include "obs/log.h"

namespace delex {
namespace obs {

namespace {

// Coarse microsecond ladder for the Prometheus `le` buckets. The fine
// 592-bucket scheme stays internal; scrapes get a stable, human-sized
// view. CumulativeLE only counts fine buckets wholly below each bound, so
// the series is monotone and the +Inf bucket equals _count exactly.
constexpr int64_t kPrometheusBucketBoundsUs[] = {
    1,      2,      5,       10,      25,      50,      100,
    250,    500,    1000,    2500,    5000,    10000,   25000,
    50000,  100000, 250000,  500000,  1000000, 2500000, 10000000,
};

/// Metric-name sanitizer: [a-zA-Z0-9_] pass through, everything else
/// (the registry's dots) becomes '_'; a "delex_" prefix namespaces the
/// exposition.
std::string PrometheusName(const std::string& name) {
  std::string out = "delex_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// A registry name split into Prometheus family + label set. Registry
/// names may carry labels after a '#' as comma-separated k=v pairs
/// ("shard.pages#shard=3" — the sharded engine's per-shard series);
/// they render as real Prometheus labels so one family aggregates across
/// shards. Base and keys are sanitized like names; values are escaped per
/// the text-format rules (backslash, quote, newline).
struct PromName {
  std::string base;    // sanitized family name, "delex_" prefixed
  std::string labels;  // rendered `k="v",k2="v2"`, empty when unlabeled
};

PromName ParsePromName(const std::string& name) {
  PromName out;
  const size_t hash = name.find('#');
  out.base = PrometheusName(name.substr(0, hash));
  if (hash == std::string::npos) return out;
  size_t start = hash + 1;
  while (start < name.size()) {
    size_t comma = name.find(',', start);
    if (comma == std::string::npos) comma = name.size();
    const std::string pair = name.substr(start, comma - start);
    const size_t eq = pair.find('=');
    const std::string key = pair.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : pair.substr(eq + 1);
    if (!key.empty()) {
      if (!out.labels.empty()) out.labels += ',';
      for (char c : key) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.labels += ok ? c : '_';
      }
      out.labels += "=\"";
      for (char c : value) {
        if (c == '\\' || c == '"') out.labels += '\\';
        if (c == '\n') {
          out.labels += "\\n";
          continue;
        }
        out.labels += c;
      }
      out.labels += '"';
    }
    start = comma + 1;
  }
  return out;
}

/// One sample line: family name, optional extra label set merged with the
/// parsed ones, value appended by the caller.
void AppendSampleName(std::string* out, const std::string& family,
                      const std::string& labels) {
  *out += family;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
}

int64_t UptimeMs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  // The snapshot maps are name-sorted and '#' sorts below every
  // [a-z0-9._] name character, so all labeled series of one family are
  // contiguous — emit HELP/TYPE once per family, then every sample.
  std::string out;
  std::string last_family;
  for (const auto& [name, value] : snapshot.counters) {
    PromName prom = ParsePromName(name);
    const std::string family = prom.base + "_total";
    if (family != last_family) {
      out += "# HELP " + family + " Delex counter " + prom.base + "\n";
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    AppendSampleName(&out, family, prom.labels);
    out += ' ';
    AppendInt(&out, value);
    out += '\n';
  }
  last_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    PromName prom = ParsePromName(name);
    if (prom.base != last_family) {
      out += "# HELP " + prom.base + " Delex gauge " + prom.base + "\n";
      out += "# TYPE " + prom.base + " gauge\n";
      last_family = prom.base;
    }
    AppendSampleName(&out, prom.base, prom.labels);
    out += ' ';
    AppendInt(&out, value);
    out += '\n';
  }
  last_family.clear();
  for (const auto& [name, hist] : snapshot.histograms) {
    PromName prom = ParsePromName(name);
    if (prom.base != last_family) {
      out += "# HELP " + prom.base + " Delex latency histogram " + prom.base +
             " (microseconds)\n";
      out += "# TYPE " + prom.base + " histogram\n";
      last_family = prom.base;
    }
    const std::string le_prefix =
        prom.labels.empty() ? "" : prom.labels + ",";
    for (int64_t bound : kPrometheusBucketBoundsUs) {
      out += prom.base + "_bucket{" + le_prefix + "le=\"";
      AppendInt(&out, bound);
      out += "\"} ";
      AppendInt(&out, hist.CumulativeLE(bound));
      out += '\n';
    }
    out += prom.base + "_bucket{" + le_prefix + "le=\"+Inf\"} ";
    AppendInt(&out, hist.count());
    out += '\n';
    AppendSampleName(&out, prom.base + "_sum", prom.labels);
    out += ' ';
    AppendInt(&out, hist.sum());
    out += '\n';
    AppendSampleName(&out, prom.base + "_count", prom.labels);
    out += ' ';
    AppendInt(&out, hist.count());
    out += '\n';
  }
  return out;
}

std::string PrometheusText() {
  return PrometheusText(MetricsRegistry::Global().FullSnapshot());
}

std::string MetricsSnapshotJsonLine() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().FullSnapshot();
  JsonWriter json;
  json.BeginObject();
  json.KV("uptime_ms", UptimeMs());
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) json.KV(name, value);
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) json.KV(name, value);
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    json.Key(name)
        .BeginObject()
        .KV("count", hist.count())
        .KV("sum", hist.sum())
        .KV("max", hist.max())
        .KV("p50", hist.Percentile(50))
        .KV("p90", hist.Percentile(90))
        .KV("p99", hist.Percentile(99))
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

// ---- MetricsSnapshotWriter ---------------------------------------------

MetricsSnapshotWriter& MetricsSnapshotWriter::Global() {
  static MetricsSnapshotWriter* writer = new MetricsSnapshotWriter();
  return *writer;
}

Status MetricsSnapshotWriter::Start(const std::string& path, int interval_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::InvalidArgument("metrics snapshot writer already running");
    }
    if (path.empty() || interval_ms <= 0) {
      return Status::InvalidArgument("bad snapshot path or interval");
    }
    path_ = path;
    interval_ms_ = interval_ms;
    stop_requested_ = false;
    running_ = true;
  }
  // Crash-flush: a DELEX_CHECK failure appends one final snapshot so the
  // registry state at the moment of death is on disk.
  RegisterCrashFlushHook(
      [] { (void)MetricsSnapshotWriter::Global().WriteNow(); });
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_requested_) {
      lock.unlock();
      Status st = WriteNow();
      if (!st.ok()) {
        DELEX_LOG(WARN) << "metrics snapshot: " << st.ToString();
      }
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_requested_; });
    }
  });
  return Status::OK();
}

Status MetricsSnapshotWriter::WriteNow() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty()) {
      return Status::InvalidArgument("metrics snapshot writer never started");
    }
    path = path_;
  }
  std::string line = MetricsSnapshotJsonLine();
  line += '\n';
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics snapshot file " + path);
  }
  size_t written = std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
  if (written != line.size()) {
    return Status::IOError("short write to metrics snapshot file " + path);
  }
  return Status::OK();
}

void MetricsSnapshotWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool MetricsSnapshotWriter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

// ---- StatsServer -------------------------------------------------------

StatsServer& StatsServer::Global() {
  static StatsServer* server = new StatsServer();
  return *server;
}

Status StatsServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::InvalidArgument("stats server already running on port " +
                                   std::to_string(port_));
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad stats server port");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("stats server: socket() failed");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // operational, not public
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // delex-lint: allow(reinterpret-cast) -- the BSD sockets ABI requires it
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("stats server: cannot bind 127.0.0.1:" +
                           std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError("stats server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  // delex-lint: allow(reinterpret-cast) -- the BSD sockets ABI requires it
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IOError("stats server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stop_requested_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this] { Serve(); });
  MetricsRegistry::Global().GetGauge("export.stats_server_port")->Set(port_);
  DELEX_LOG(INFO) << "stats server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void StatsServer::Serve() {
  for (;;) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (stop_requested_.load(std::memory_order_acquire)) {
      if (client >= 0) ::close(client);
      return;
    }
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down or broken
    }
    // Bounded read: only the request line matters, and a stalled client
    // must not wedge the accept loop.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[2048];
    ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string target;
    if (n > 0) {
      buf[n] = '\0';
      // "GET <target> HTTP/1.x" — anything else falls through to 404.
      if (std::strncmp(buf, "GET ", 4) == 0) {
        const char* start = buf + 4;
        const char* end = std::strchr(start, ' ');
        if (end != nullptr) target.assign(start, end);
      }
    }
    std::string body;
    const char* status_line = "HTTP/1.1 404 Not Found";
    const char* content_type = "text/plain; charset=utf-8";
    if (target == "/metrics") {
      status_line = "HTTP/1.1 200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = PrometheusText();
    } else if (target == "/healthz") {
      status_line = "HTTP/1.1 200 OK";
      body = "ok\n";
    } else {
      body = "not found\n";
    }
    std::string response = status_line;
    response += "\r\nContent-Type: ";
    response += content_type;
    response += "\r\nContent-Length: " + std::to_string(body.size());
    response += "\r\nConnection: close\r\n\r\n";
    response += body;
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t w = ::send(client, response.data() + sent, response.size() - sent,
                         0);
      if (w <= 0) break;
      sent += static_cast<size_t>(w);
    }
    ::close(client);
  }
}

void StatsServer::Stop() {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_.store(true, std::memory_order_release);
    fd = listen_fd_;
  }
  // Unblocks accept(): shutdown makes the blocked call return on Linux.
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  listen_fd_ = -1;
  port_ = 0;
  running_ = false;
}

bool StatsServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int StatsServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

// ---- Env wiring --------------------------------------------------------

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

}  // namespace

void MaybeStartExportersFromEnv() {
  static std::atomic<bool> done{false};
  bool expected = false;
  if (!done.compare_exchange_strong(expected, true)) return;

  int snapshot_ms = EnvInt("DELEX_METRICS_SNAPSHOT_MS", 0);
  if (snapshot_ms > 0) {
    const char* path_env = std::getenv("DELEX_METRICS_SNAPSHOT_PATH");
    std::string path = path_env != nullptr && *path_env != '\0'
                           ? path_env
                           : "delex_metrics.jsonl";
    Status st = MetricsSnapshotWriter::Global().Start(path, snapshot_ms);
    if (!st.ok()) {
      DELEX_LOG(WARN) << "DELEX_METRICS_SNAPSHOT_MS: " << st.ToString();
    } else {
      // Final snapshot + clean join at exit.
      std::atexit([] {
        (void)MetricsSnapshotWriter::Global().WriteNow();
        MetricsSnapshotWriter::Global().Stop();
      });
    }
  }

  const char* port_env = std::getenv("DELEX_METRICS_PORT");
  if (port_env != nullptr && *port_env != '\0') {
    Status st = StatsServer::Global().Start(std::atoi(port_env));
    if (!st.ok()) {
      DELEX_LOG(WARN) << "DELEX_METRICS_PORT: " << st.ToString();
    } else {
      // Optionally keep the server scrapeable for a short window after a
      // fast run finishes (CI scrapes a backgrounded portal), then shut
      // it down so the process can exit cleanly.
      std::atexit([] {
        int linger_ms = EnvInt("DELEX_METRICS_LINGER_MS", 0);
        if (linger_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
        }
        StatsServer::Global().Stop();
      });
    }
  }
}

}  // namespace obs
}  // namespace delex
