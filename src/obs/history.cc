#include "obs/history.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/hash.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "obs/trace.h"

namespace delex {
namespace obs {

namespace {

// Envelope layout constants — see the header comment. The crc hex field
// sits at a fixed offset so validators can check lines without a JSON
// parser: prefix [0,8), hex [8,24), mid [24,32), rec [32,len-1).
constexpr std::string_view kEnvelopePrefix = "{\"crc\":\"";
constexpr std::string_view kEnvelopeMid = "\",\"rec\":";
constexpr size_t kRecOffset = 32;
constexpr size_t kMinLineSize = kRecOffset + 3;  // "{}" rec + final '}'

std::string RecordBody(const HistoryRecord& r) {
  JsonWriter json;
  json.BeginObject();
  json.KV("gen", r.gen);
  if (r.shard >= 0) json.KV("shard", r.shard);
  json.KV("solution", r.solution);
  if (!r.tag.empty()) json.KV("tag", r.tag);
  json.KV("warmup", r.warmup);
  json.KV("threads", r.threads);
  json.KV("num_shards", r.num_shards);
  json.KV("fast_path", r.fast_path);
  if (!r.assignment.empty()) json.KV("assignment", r.assignment);
  json.KV("pages", r.pages);
  json.KV("pages_identical", r.pages_identical);
  json.KV("result_tuples", r.result_tuples);
  json.Key("phases")
      .BeginObject()
      .KV("match_us", r.match_us)
      .KV("extract_us", r.extract_us)
      .KV("copy_us", r.copy_us)
      .KV("opt_us", r.opt_us)
      .KV("capture_us", r.capture_us)
      .KV("total_us", r.total_us)
      .KV("others_us", r.others_us)
      .KV("phase_drift_us", r.phase_drift_us)
      .EndObject();
  json.Key("counters")
      .BeginObject()
      .KV("demote_result_cache", r.demote_result_cache)
      .KV("demote_missing_group", r.demote_missing_group)
      .KV("decode_copy_groups", r.decode_copy_groups)
      .KV("reuse_corrupt_drops", r.reuse_corrupt_drops)
      .KV("trace_dropped_events", r.trace_dropped_events)
      .EndObject();
  if (r.has_optimizer) {
    json.Key("optimizer").BeginObject();
    json.KV("learning", r.learning);
    if (r.predicted_total_us >= 0) {
      json.KV("predicted_total_us", r.predicted_total_us);
    }
    if (r.cost_drift >= 0) json.KV("cost_drift", r.cost_drift);
    if (!r.coeffs.empty()) {
      json.Key("coeffs").BeginArray();
      for (const OptimizerReport::LearnedCoefficient& row : r.coeffs) {
        WriteLearnedCoefficient(row, &json);
      }
      json.EndArray();
    }
    if (!r.decisions.empty()) {
      json.Key("decisions").BeginArray();
      for (const OptimizerReport::UnitDecision& d : r.decisions) {
        WriteUnitDecision(d, &json);
      }
      json.EndArray();
    }
    json.EndObject();
  }
  if (!r.units.empty()) {
    json.Key("units").BeginArray();
    for (const HistoryRecord::UnitSummary& u : r.units) {
      json.BeginObject().KV("matcher", u.matcher);
      if (u.predicted_us >= 0) json.KV("predicted_us", u.predicted_us);
      json.KV("actual_us", u.actual_us).EndObject();
    }
    json.EndArray();
  }
  if (!r.shards.empty()) {
    json.Key("shards").BeginArray();
    for (const RunReportMeta::ShardSummary& s : r.shards) {
      json.BeginObject()
          .KV("shard", s.shard)
          .KV("pages", s.pages)
          .KV("pages_identical", s.pages_identical)
          .KV("result_tuples", s.result_tuples)
          .KV("total_us", s.total_us)
          .KV("reuse_corrupt_drops", s.reuse_corrupt_drops);
      if (!s.assignment.empty()) json.KV("assignment", s.assignment);
      if (s.cost_drift >= 0) json.KV("cost_drift", s.cost_drift);
      json.EndObject();
    }
    json.EndArray();
  }
  if (r.has_resources) {
    json.Key("resources").BeginObject();
    json.KV("rss_bytes", r.resources.rss_bytes);
    json.KV("vm_bytes", r.resources.vm_bytes);
    json.KV("peak_rss_bytes", r.resources.peak_rss_bytes);
    json.KV("tracked_bytes", r.resources.tracked_bytes);
    json.KV("tracked_peak_bytes", r.resources.tracked_peak_bytes);
    json.Key("subsystems").BeginArray();
    for (const ResourceUsage::Subsystem& sub : r.resources.subsystems) {
      json.BeginObject()
          .KV("tag", sub.tag)
          .KV("current_bytes", sub.current_bytes)
          .KV("peak_bytes", sub.peak_bytes)
          .EndObject();
    }
    json.EndArray();
    if (r.profile_samples > 0) {
      json.KV("profile_samples", r.profile_samples);
      json.KV("profile_lost", r.profile_lost);
      json.Key("top_spans").BeginArray();
      for (const SpanSelfSample& sample : r.top_spans) {
        json.BeginObject()
            .KV("span", sample.span)
            .KV("self_samples", sample.self_samples)
            .EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndObject();
  return json.TakeString();
}

bool ParseHex16(std::string_view hex, uint64_t* out) {
  *out = 0;
  if (hex.size() != 16) return false;
  for (char c : hex) {
    *out <<= 4;
    if (c >= '0' && c <= '9') {
      *out |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *out |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  return true;
}

void ParseCoefficient(const JsonValue& v,
                      OptimizerReport::LearnedCoefficient* row) {
  row->matcher = v.At("matcher").StringOr("");
  row->gain = v.At("gain").NumberOr(1.0);
  row->bias = v.At("bias").NumberOr(0.0);
  row->drift = v.At("drift").NumberOr(-1.0);
  row->samples = v.At("samples").IntOr(0);
}

void ParseDecision(const JsonValue& v, OptimizerReport::UnitDecision* d) {
  d->unit = static_cast<int>(v.At("unit").IntOr(0));
  d->winner = v.At("winner").StringOr("");
  d->runner_up = v.At("runner_up").StringOr("");
  d->margin_us = v.At("margin_us").NumberOr(0);
  for (const auto& [matcher, est] : v.At("candidates").object) {
    d->candidate_us.emplace_back(matcher, est.NumberOr(0));
  }
  const JsonValue& in = v.At("inputs");
  d->f = in.At("f").NumberOr(0);
  d->m = in.At("m").NumberOr(0);
  d->a = in.At("a").NumberOr(0);
  d->l = in.At("l").NumberOr(0);
  d->gain = in.At("gain").NumberOr(1.0);
  d->bias = in.At("bias").NumberOr(0);
  d->samples = in.At("samples").IntOr(0);
  d->history_window = static_cast<int>(in.At("history").IntOr(0));
}

void ParseShardRow(const JsonValue& v, RunReportMeta::ShardSummary* s) {
  s->shard = static_cast<int>(v.At("shard").IntOr(0));
  s->pages = v.At("pages").IntOr(0);
  s->pages_identical = v.At("pages_identical").IntOr(0);
  s->result_tuples = v.At("result_tuples").IntOr(0);
  s->total_us = v.At("total_us").IntOr(0);
  s->reuse_corrupt_drops = v.At("reuse_corrupt_drops").IntOr(0);
  s->assignment = v.At("assignment").StringOr("");
  s->cost_drift = v.At("cost_drift").NumberOr(-1);
}

// True when the file exists, is non-empty, and does not end in '\n' — a
// torn tail from a crashed writer that the next append must heal.
bool TailNeedsNewline(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool torn = false;
  if (std::fseek(f, 0, SEEK_END) == 0 && std::ftell(f) > 0 &&
      std::fseek(f, -1, SEEK_END) == 0) {
    torn = std::fgetc(f) != '\n';
  }
  std::fclose(f);
  return torn;
}

Status ReadWholeFile(const std::string& path, std::string* out,
                     bool* missing) {
  out->clear();
  *missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *missing = true;
    return Status::OK();
  }
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("cannot read history file " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open history temp file " + tmp);
  }
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to history temp file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot replace history file " + path);
  }
  return Status::OK();
}

void NoteDrop(HistoryLoadInfo* info, const Status& why) {
  if (info == nullptr) return;
  ++info->corrupt_dropped;
  if (info->first_error.ok()) info->first_error = why;
}

}  // namespace

HistoryRecord MakeHistoryRecord(const RunReportMeta& meta,
                                const RunStats& stats,
                                const OptimizerReport& optimizer,
                                const std::string& assignment) {
  HistoryRecord r;
  r.gen = meta.generation;
  r.solution = meta.solution;
  r.tag = meta.tag;
  r.warmup = meta.warmup;
  r.threads = meta.num_threads;
  r.num_shards = meta.num_shards;
  r.fast_path = meta.fast_path_enabled;
  r.assignment = assignment;

  r.pages = stats.pages;
  r.pages_identical = stats.pages_identical;
  r.result_tuples = stats.result_tuples;

  const PhaseBreakdown& phases = stats.phases;
  r.match_us = phases.match_us;
  r.extract_us = phases.extract_us;
  r.copy_us = phases.copy_us;
  r.opt_us = phases.opt_us;
  r.capture_us = phases.capture_us;
  r.total_us = phases.total_us;
  r.others_us = phases.OthersUs();
  r.phase_drift_us = phases.phase_drift_us;

  r.demote_result_cache = stats.fast_path_demote_result_cache;
  r.demote_missing_group = stats.fast_path_demote_missing_group;
  r.decode_copy_groups = stats.fast_path_decode_copy_groups;
  r.reuse_corrupt_drops = stats.reuse_corrupt_drops;
  r.trace_dropped_events = TraceRecorder::Global().DroppedEventCount();

  r.has_optimizer = optimizer.has_optimizer;
  r.learning = optimizer.learning_enabled;
  r.predicted_total_us = optimizer.predicted_total_us;
  r.cost_drift = optimizer.cost_drift;
  r.coeffs = optimizer.learned;
  r.decisions = optimizer.decisions;

  // The executed plan labels every unit even when the optimizer block is
  // absent (warm-up runs report no unit_matchers): fall back to the
  // assignment string when it is one plain comma-separated plan covering
  // every unit, so a diff against a warm-up generation can still detect
  // matcher switches. A '|'-joined per-shard plan list is not per-unit
  // and is left alone.
  std::vector<std::string> plan;
  if (optimizer.unit_matchers.empty() && !assignment.empty() &&
      assignment.find('|') == std::string::npos) {
    size_t start = 0;
    while (start <= assignment.size()) {
      size_t comma = assignment.find(',', start);
      if (comma == std::string::npos) comma = assignment.size();
      plan.push_back(assignment.substr(start, comma - start));
      start = comma + 1;
    }
    if (plan.size() != stats.units.size()) plan.clear();
  }

  for (size_t u = 0; u < stats.units.size(); ++u) {
    HistoryRecord::UnitSummary unit;
    if (u < optimizer.unit_matchers.size()) {
      unit.matcher = optimizer.unit_matchers[u];
    } else if (u < plan.size()) {
      unit.matcher = plan[u];
    }
    if (u < optimizer.predicted_unit_us.size()) {
      unit.predicted_us = optimizer.predicted_unit_us[u];
    }
    const UnitRunStats& s = stats.units[u];
    unit.actual_us = static_cast<double>(s.match_us + s.extract_us +
                                         s.copy_us + s.capture_us);
    r.units.push_back(std::move(unit));
  }

  if (meta.num_shards > 1) r.shards = meta.shards;

  // Layer-4 resource view: sample the process and freeze the tagged
  // peaks/profiler rollup into the generation's record.
  r.has_resources = true;
  r.resources = CollectResourceUsage();
  SpanProfiler& profiler = SpanProfiler::Global();
  r.profile_samples = profiler.TotalSamples();
  r.profile_lost = profiler.LostSamples();
  if (r.profile_samples > 0) r.top_spans = profiler.TopSelfSamples(10);
  return r;
}

std::string HistoryStore::FormatLine(const HistoryRecord& rec) {
  std::string body = RecordBody(rec);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(body)));
  std::string line;
  line.reserve(kRecOffset + body.size() + 1);
  line += kEnvelopePrefix;
  line += hex;
  line += kEnvelopeMid;
  line += body;
  line += '}';
  return line;
}

Status HistoryStore::ParseLine(std::string_view line, HistoryRecord* rec) {
  *rec = HistoryRecord();
  if (line.size() < kMinLineSize ||
      line.substr(0, kEnvelopePrefix.size()) != kEnvelopePrefix ||
      line.substr(24, kEnvelopeMid.size()) != kEnvelopeMid ||
      line.back() != '}') {
    return Status::Corruption("history line: bad envelope framing");
  }
  uint64_t want = 0;
  if (!ParseHex16(line.substr(8, 16), &want)) {
    return Status::Corruption("history line: bad checksum field");
  }
  std::string_view body =
      line.substr(kRecOffset, line.size() - kRecOffset - 1);
  if (Fnv1a64(body) != want) {
    return Status::Corruption("history line: checksum mismatch");
  }
  JsonValue v;
  DELEX_RETURN_NOT_OK(ParseJson(body, &v));
  if (!v.is_object()) {
    return Status::Corruption("history record: not a JSON object");
  }
  rec->gen = static_cast<int>(v.At("gen").IntOr(-1));
  if (rec->gen < 0) {
    return Status::Corruption("history record: missing generation");
  }
  rec->shard = static_cast<int>(v.At("shard").IntOr(-1));
  rec->solution = v.At("solution").StringOr("");
  rec->tag = v.At("tag").StringOr("");
  rec->warmup = v.At("warmup").BoolOr(false);
  rec->threads = static_cast<int>(v.At("threads").IntOr(1));
  rec->num_shards = static_cast<int>(v.At("num_shards").IntOr(1));
  rec->fast_path = v.At("fast_path").BoolOr(true);
  rec->assignment = v.At("assignment").StringOr("");
  rec->pages = v.At("pages").IntOr(0);
  rec->pages_identical = v.At("pages_identical").IntOr(0);
  rec->result_tuples = v.At("result_tuples").IntOr(0);

  const JsonValue& phases = v.At("phases");
  rec->match_us = phases.At("match_us").IntOr(0);
  rec->extract_us = phases.At("extract_us").IntOr(0);
  rec->copy_us = phases.At("copy_us").IntOr(0);
  rec->opt_us = phases.At("opt_us").IntOr(0);
  rec->capture_us = phases.At("capture_us").IntOr(0);
  rec->total_us = phases.At("total_us").IntOr(0);
  rec->others_us = phases.At("others_us").IntOr(0);
  rec->phase_drift_us = phases.At("phase_drift_us").IntOr(0);

  const JsonValue& counters = v.At("counters");
  rec->demote_result_cache = counters.At("demote_result_cache").IntOr(0);
  rec->demote_missing_group = counters.At("demote_missing_group").IntOr(0);
  rec->decode_copy_groups = counters.At("decode_copy_groups").IntOr(0);
  rec->reuse_corrupt_drops = counters.At("reuse_corrupt_drops").IntOr(0);
  rec->trace_dropped_events = counters.At("trace_dropped_events").IntOr(0);

  if (v.Has("optimizer")) {
    const JsonValue& opt = v.At("optimizer");
    rec->has_optimizer = true;
    rec->learning = opt.At("learning").BoolOr(false);
    rec->predicted_total_us = opt.At("predicted_total_us").NumberOr(-1);
    rec->cost_drift = opt.At("cost_drift").NumberOr(-1);
    for (const JsonValue& row : opt.At("coeffs").array) {
      OptimizerReport::LearnedCoefficient coeff;
      ParseCoefficient(row, &coeff);
      rec->coeffs.push_back(std::move(coeff));
    }
    for (const JsonValue& row : opt.At("decisions").array) {
      OptimizerReport::UnitDecision d;
      ParseDecision(row, &d);
      rec->decisions.push_back(std::move(d));
    }
  }
  for (const JsonValue& row : v.At("units").array) {
    HistoryRecord::UnitSummary unit;
    unit.matcher = row.At("matcher").StringOr("");
    unit.predicted_us = row.At("predicted_us").NumberOr(-1);
    unit.actual_us = row.At("actual_us").NumberOr(0);
    rec->units.push_back(std::move(unit));
  }
  for (const JsonValue& row : v.At("shards").array) {
    RunReportMeta::ShardSummary shard;
    ParseShardRow(row, &shard);
    rec->shards.push_back(std::move(shard));
  }
  if (v.Has("resources")) {
    const JsonValue& res = v.At("resources");
    rec->has_resources = true;
    rec->resources.rss_bytes = res.At("rss_bytes").IntOr(0);
    rec->resources.vm_bytes = res.At("vm_bytes").IntOr(0);
    rec->resources.peak_rss_bytes = res.At("peak_rss_bytes").IntOr(0);
    rec->resources.tracked_bytes = res.At("tracked_bytes").IntOr(0);
    rec->resources.tracked_peak_bytes =
        res.At("tracked_peak_bytes").IntOr(0);
    for (const JsonValue& row : res.At("subsystems").array) {
      ResourceUsage::Subsystem sub;
      sub.tag = row.At("tag").StringOr("");
      sub.current_bytes = row.At("current_bytes").IntOr(0);
      sub.peak_bytes = row.At("peak_bytes").IntOr(0);
      rec->resources.subsystems.push_back(std::move(sub));
    }
    rec->profile_samples = res.At("profile_samples").IntOr(0);
    rec->profile_lost = res.At("profile_lost").IntOr(0);
    for (const JsonValue& row : res.At("top_spans").array) {
      SpanSelfSample sample;
      sample.span = row.At("span").StringOr("");
      sample.self_samples = row.At("self_samples").IntOr(0);
      rec->top_spans.push_back(std::move(sample));
    }
  }
  rec->raw = std::string(line);
  return Status::OK();
}

Status HistoryStore::Append(const HistoryRecord& rec) {
  std::string line = FormatLine(rec);
  if (options_.retain_gens > 0) {
    // Compacting append: keep the newest retain_gens records (including
    // this one), drop anything that no longer verifies, and replace the
    // file atomically so readers never see a half-written store.
    std::vector<HistoryRecord> kept;
    DELEX_RETURN_NOT_OK(Load(&kept, nullptr));
    std::string data;
    size_t first = 0;
    const size_t budget = static_cast<size_t>(options_.retain_gens);
    if (kept.size() + 1 > budget) first = kept.size() + 1 - budget;
    for (size_t i = first; i < kept.size(); ++i) {
      data += kept[i].raw;
      data += '\n';
    }
    data += line;
    data += '\n';
    return WriteFileAtomic(path_, data);
  }

  std::string out;
  if (TailNeedsNewline(path_)) out += '\n';
  out += line;
  out += '\n';
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open history file " + path_);
  }
  bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::IOError("short write to history file " + path_);
  return Status::OK();
}

Status HistoryStore::Load(std::vector<HistoryRecord>* out,
                          HistoryLoadInfo* info) const {
  return LoadFile(path_, out, info);
}

Status HistoryStore::LoadFile(const std::string& path,
                              std::vector<HistoryRecord>* out,
                              HistoryLoadInfo* info) {
  out->clear();
  std::string data;
  bool missing = false;
  DELEX_RETURN_NOT_OK(ReadWholeFile(path, &data, &missing));
  if (missing) return Status::OK();

  size_t pos = 0;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    std::string_view line(data.data() + pos,
                          (eol == std::string::npos ? data.size() : eol) -
                              pos);
    pos = eol == std::string::npos ? data.size() : eol + 1;
    if (line.empty()) continue;
    HistoryRecord rec;
    Status st = ParseLine(line, &rec);
    if (!st.ok()) {
      NoteDrop(info, st);
      continue;
    }
    if (!out->empty() && rec.gen <= out->back().gen) {
      NoteDrop(info,
               Status::Corruption("history record: out-of-order generation"));
      continue;
    }
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

bool HistoryEnabledFromEnv() {
  const char* v = std::getenv("DELEX_HISTORY");
  return v == nullptr || std::string_view(v) != "0";
}

int HistoryRetainFromEnv() {
  const char* v = std::getenv("DELEX_HISTORY_RETAIN");
  if (v == nullptr || *v == '\0') return 0;
  int n = std::atoi(v);
  return n > 0 ? n : 0;
}

bool DecisionAuditEnabledFromEnv() {
  const char* v = std::getenv("DELEX_DECISION_AUDIT");
  return v == nullptr || std::string_view(v) != "0";
}

}  // namespace obs
}  // namespace delex
