#ifndef DELEX_OBS_PROFILER_H_
#define DELEX_OBS_PROFILER_H_

// Observability layer 4, CPU side: a SIGPROF-driven span-sampling
// profiler. Each timer tick the handler reads the interrupted thread's
// own stack of open DELEX_TRACE_SPAN names (trace.h maintains it while
// the profile hook is on) and bumps a count for that span path in a
// lock-free fixed-size table. No symbolization, no unwinding, no
// allocation in the handler — span names are string literals, so a path
// is just an array of stable pointers.
//
// Output is the folded-stack format flamegraph.pl and speedscope consume
// directly, one "root;child;leaf COUNT" line per distinct path:
//
//   DELEX_PROFILE=/tmp/delex.folded DELEX_PROFILE_HZ=97 ./run_experiment …
//   flamegraph.pl /tmp/delex.folded > flame.svg
//
// DELEX_PROFILE=1 profiles without writing a file (scrape /profilez or
// read the run report's resources.profile block instead). Sampling uses
// ITIMER_PROF, so ticks land on whichever thread is burning CPU and the
// sample distribution approximates self-time. The profiler is process-
// global and off by default; when off, span cost is unchanged (one
// relaxed load + branch — see trace.h).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace delex {
namespace obs {

/// One span's aggregate from the sample table (run report top-N).
struct SpanSelfSample {
  std::string span;         // leaf (innermost) span name
  int64_t self_samples = 0; // ticks where this span was innermost
};

/// \brief Process-wide span-sampling profiler. Start installs the SIGPROF
/// handler and arms ITIMER_PROF; Stop disarms, restores the previous
/// handler and freezes the sample table for reading.
class SpanProfiler {
 public:
  static SpanProfiler& Global();

  /// Begins sampling at `hz` ticks/sec (clamped to [1, 1000]). If
  /// `folded_path` is non-empty the folded output is written there at
  /// Stop — and at process exit, for runs that never call Stop. A second
  /// Start while running returns InvalidArgument.
  Status Start(int hz, const std::string& folded_path = "");

  /// Stops sampling; writes the folded file when one was requested.
  Status Stop();

  bool running() const;

  /// Folded-stack text: one "a;b;c N" line per path, sorted by path so
  /// equal workloads produce byte-identical output regardless of thread
  /// count or table fill order. Empty-stack ticks fold as "(no_span)".
  std::string FoldedText() const;

  /// Leaf-span self-sample totals, largest first, at most `limit`.
  std::vector<SpanSelfSample> TopSelfSamples(int limit) const;

  int64_t TotalSamples() const;  // every tick observed
  /// Ticks dropped because the table was full or a slot was mid-claim.
  int64_t LostSamples() const;

  /// Drops all samples (only while stopped; tests and /profilez?reset).
  void ClearForTesting();

 private:
  SpanProfiler() = default;
};

/// Starts the profiler when DELEX_PROFILE is set: "1" samples without a
/// file, any other non-empty value is the folded output path. The rate
/// comes from DELEX_PROFILE_HZ (default 97 — an off-round prime so ticks
/// do not phase-lock with 10ms-aligned periodic work).
void MaybeStartProfilerFromEnv();

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_PROFILER_H_
