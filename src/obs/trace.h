#ifndef DELEX_OBS_TRACE_H_
#define DELEX_OBS_TRACE_H_

// Low-overhead trace recorder emitting Chrome trace-event / Perfetto
// compatible JSON (load the file in ui.perfetto.dev or chrome://tracing).
//
//   DELEX_TRACE_SPAN("eval_page", page_did);   // RAII scoped span
//
// Disabled (the default), a span costs exactly one relaxed atomic load and
// one predicted branch — no clock read, no allocation. Enabled
// (TraceRecorder::Global().Start(path), DelexEngine::Options::trace_path,
// or the DELEX_TRACE env var via MaybeStartTraceFromEnv), each span takes
// two steady-clock reads and one append into its thread's ring buffer
// (per-thread mutex, never contended on the hot path; the lock exists so
// Stop() can drain buffers TSan-clean). Buffers are rings: when a thread
// records more than kRingCapacity events the oldest are overwritten and
// counted as dropped in the trace's otherData.
//
// Span names must be string literals (or otherwise outlive the recorder) —
// events store the pointer, not a copy.
//
// Header-only so every layer (storage, matcher, engine) can emit spans
// without a link dependency on the obs library.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "obs/json_writer.h"
#include "obs/log.h"

namespace delex {
namespace obs {

inline constexpr int64_t kTraceNoArg = std::numeric_limits<int64_t>::min();

struct TraceEvent {
  const char* name = nullptr;  // static-storage string
  const char* cat = nullptr;
  int64_t ts_us = 0;   // microseconds since trace start
  int64_t dur_us = 0;  // complete-event ("ph":"X") duration
  int64_t arg = kTraceNoArg;
  uint32_t tid = 0;
};

namespace trace_internal {
// Span hooks bitmask. Bit 0: the trace recorder wants complete events; bit
// 1: the span-sampling profiler (obs/profiler.h) wants the per-thread open
// span stack maintained. Namespace-scope inline atomic: the disabled-path
// check is a single load with no function-local-static guard in front of
// it, and with both hooks off a span still costs exactly one relaxed load
// and one predicted branch.
inline constexpr uint32_t kHookTrace = 1u;
inline constexpr uint32_t kHookProfile = 2u;
inline std::atomic<uint32_t> g_span_hooks{0};

inline void SetSpanHook(uint32_t bit, bool on) {
  if (on) {
    g_span_hooks.fetch_or(bit, std::memory_order_release);
  } else {
    g_span_hooks.fetch_and(~bit, std::memory_order_release);
  }
}

/// One thread's stack of currently-open span names, maintained only while
/// the profile hook is on. The SIGPROF handler reads the *interrupted*
/// thread's own stack, so cross-thread synchronization is unnecessary; the
/// relaxed atomics plus signal fences only pin program order against the
/// same-thread handler. Everything is constant-initialized and trivially
/// destructible so TLS access never takes an init guard — that is what
/// makes reading it from a signal handler tolerable.
inline constexpr int kSpanStackMaxDepth = 48;
struct SpanStack {
  std::atomic<const char*> names[kSpanStackMaxDepth] = {};
  std::atomic<int> depth{0};  // may exceed kSpanStackMaxDepth (truncated)
};

inline SpanStack& LocalSpanStack() {
  thread_local SpanStack stack;
  return stack;
}

inline void PushSpan(const char* name) {
  SpanStack& stack = LocalSpanStack();
  int depth = stack.depth.load(std::memory_order_relaxed);
  if (depth < kSpanStackMaxDepth) {
    stack.names[depth].store(name, std::memory_order_relaxed);
  }
  // The name must be visible before the new depth: a handler that reads
  // depth d trusts names[0..d).
  std::atomic_signal_fence(std::memory_order_release);
  stack.depth.store(depth + 1, std::memory_order_relaxed);
}

inline void PopSpan() {
  SpanStack& stack = LocalSpanStack();
  stack.depth.store(stack.depth.load(std::memory_order_relaxed) - 1,
                    std::memory_order_relaxed);
}
}  // namespace trace_internal

/// \brief Process-wide trace recorder with per-thread ring buffers.
class TraceRecorder {
 public:
  static constexpr size_t kRingCapacity = 1 << 14;  // events per thread

  static TraceRecorder& Global() {
    static TraceRecorder recorder;
    return recorder;
  }

  /// True when spans are being recorded (the hot-path gate).
  static bool enabled() {
    return (trace_internal::g_span_hooks.load(std::memory_order_relaxed) &
            trace_internal::kHookTrace) != 0;
  }

  /// Begins recording into `path` (written at Stop / process exit). A
  /// second Start while recording keeps the first session and returns
  /// InvalidArgument — tracing is process-global.
  Status Start(const std::string& path) {
    MutexLock lock(&mu_);
    if (started_) {
      return Status::InvalidArgument("trace already recording to " + path_);
    }
    if (path.empty()) {
      return Status::InvalidArgument("empty trace path");
    }
    path_ = path;
    for (auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      buffer->ring.clear();
      buffer->count = 0;
    }
    t0_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count(),
                 std::memory_order_relaxed);
    started_ = true;
    if (!atexit_registered_) {
      // Best-effort flush for processes that never call Stop (benches
      // under DELEX_TRACE): write whatever the rings hold at exit.
      atexit_registered_ = true;
      std::atexit([] { (void)TraceRecorder::Global().Stop(); });
    }
    // A DELEX_CHECK failure flushes the rings too, so a crashing run
    // still leaves a loadable trace of its final moments.
    RegisterCrashFlushHook([] { (void)TraceRecorder::Global().Stop(); });
    trace_internal::SetSpanHook(trace_internal::kHookTrace, true);
    return Status::OK();
  }

  bool started() const {
    MutexLock lock(&mu_);
    return started_;
  }

  /// Stops recording and writes the JSON trace. No-op when not recording.
  Status Stop() {
    trace_internal::SetSpanHook(trace_internal::kHookTrace, false);
    MutexLock lock(&mu_);
    if (!started_) return Status::OK();
    started_ = false;
    return WriteLocked();
  }

  /// Microseconds since Start (span timestamps).
  int64_t NowUs() const {
    int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    return (now_ns - t0_ns_.load(std::memory_order_relaxed)) / 1000;
  }

  /// Records one complete span event into the calling thread's ring.
  void AppendComplete(const char* name, const char* cat, int64_t ts_us,
                      int64_t dur_us, int64_t arg) {
    ThreadBuffer* buffer = LocalBuffer();
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.arg = arg;
    event.tid = CurrentThreadId();
    MutexLock lock(&buffer->mu);
    if (buffer->ring.size() < kRingCapacity) {
      buffer->ring.push_back(event);
    } else {
      buffer->ring[buffer->count % kRingCapacity] = event;
    }
    ++buffer->count;
  }

  /// Snapshot of all buffered events (tests; also the writer's source).
  std::vector<TraceEvent> SnapshotEvents() const {
    MutexLock lock(&mu_);
    return SnapshotEventsLocked();
  }

  /// Total events currently buffered across threads.
  int64_t BufferedEventCount() const {
    MutexLock lock(&mu_);
    int64_t total = 0;
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      total += static_cast<int64_t>(buffer->ring.size());
    }
    return total;
  }

  /// Events lost to ring-buffer wraparound so far this session (the same
  /// number the trace file reports in otherData) — run reports surface it.
  int64_t DroppedEventCount() const {
    MutexLock lock(&mu_);
    int64_t dropped = 0;
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      if (buffer->count > buffer->ring.size()) {
        dropped += static_cast<int64_t>(buffer->count - buffer->ring.size());
      }
    }
    return dropped;
  }

  /// Drops all buffered events (tests).
  void ClearForTesting() {
    MutexLock lock(&mu_);
    for (auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      buffer->ring.clear();
      buffer->count = 0;
    }
  }

 private:
  /// One thread's event ring. Buffers are pooled, never destroyed while
  /// the recorder lives: a thread leases one for its lifetime (returned by
  /// the thread_local handle's destructor), so Stop can always walk every
  /// buffer without use-after-free, and short-lived pool threads across
  /// many runs reuse storage instead of growing the registry unboundedly.
  struct ThreadBuffer {
    // All buffers share one construction site on purpose: a thread only
    // ever holds its own buffer's lock, so orderings among buffers never
    // arise. The canonical nesting is recorder mu_ -> buffer mu.
    Mutex mu{"obs.trace.buffer"};
    std::vector<TraceEvent> ring DELEX_GUARDED_BY(mu);
    size_t count DELEX_GUARDED_BY(mu) = 0;  // total appended; > ring.size() once wrapped
    bool leased = false;  // guarded by the recorder's mu_, not this->mu
  };

  struct TlsHandle {
    TraceRecorder* owner = nullptr;
    ThreadBuffer* buffer = nullptr;
    ~TlsHandle() {
      if (owner != nullptr && buffer != nullptr) owner->Release(buffer);
    }
  };

  ThreadBuffer* LocalBuffer() {
    thread_local TlsHandle handle;
    if (handle.buffer == nullptr || handle.owner != this) {
      MutexLock lock(&mu_);
      ThreadBuffer* found = nullptr;
      for (auto& buffer : buffers_) {
        if (!buffer->leased) {
          found = buffer.get();
          break;
        }
      }
      if (found == nullptr) {
        buffers_.push_back(std::make_unique<ThreadBuffer>());
        found = buffers_.back().get();
      }
      found->leased = true;
      handle.owner = this;
      handle.buffer = found;
    }
    return handle.buffer;
  }

  void Release(ThreadBuffer* buffer) {
    MutexLock lock(&mu_);
    buffer->leased = false;  // events stay buffered for the final flush
  }

  std::vector<TraceEvent> SnapshotEventsLocked() const DELEX_REQUIRES(mu_) {
    std::vector<TraceEvent> events;
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.tid != b.tid) return a.tid < b.tid;
                if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                return a.dur_us > b.dur_us;  // enclosing span first
              });
    return events;
  }

  Status WriteLocked() DELEX_REQUIRES(mu_) {
    int64_t dropped = 0;
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      if (buffer->count > buffer->ring.size()) {
        dropped += static_cast<int64_t>(buffer->count - buffer->ring.size());
      }
    }
    std::vector<TraceEvent> events = SnapshotEventsLocked();

    JsonWriter json;
    json.BeginObject();
    json.Key("traceEvents").BeginArray();
    for (const TraceEvent& event : events) {
      json.BeginObject();
      json.KV("name", event.name);
      json.KV("cat", event.cat != nullptr ? event.cat : "delex");
      json.KV("ph", "X");
      json.KV("ts", event.ts_us);
      json.KV("dur", event.dur_us);
      json.KV("pid", static_cast<int64_t>(1));
      json.KV("tid", static_cast<int64_t>(event.tid));
      if (event.arg != kTraceNoArg) {
        json.Key("args").BeginObject().KV("id", event.arg).EndObject();
      }
      json.EndObject();
    }
    json.EndArray();
    json.KV("displayTimeUnit", "ms");
    json.Key("otherData")
        .BeginObject()
        .KV("dropped_events", dropped)
        .KV("recorder", "delex")
        .EndObject();
    json.EndObject();

    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("cannot write trace file " + path_);
    }
    const std::string& out = json.str();
    size_t written = std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    if (written != out.size()) {
      return Status::IOError("short write to trace file " + path_);
    }
    DELEX_LOG(INFO) << "trace written: " << path_ << " (" << events.size()
                    << " events, " << dropped << " dropped)";
    return Status::OK();
  }

  mutable Mutex mu_{"obs.trace.recorder"};  // registry + start/stop + path
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ DELEX_GUARDED_BY(mu_);
  std::atomic<int64_t> t0_ns_{0};
  std::string path_ DELEX_GUARDED_BY(mu_);
  bool started_ DELEX_GUARDED_BY(mu_) = false;
  bool atexit_registered_ DELEX_GUARDED_BY(mu_) = false;
};

/// \brief RAII span: records one complete trace event from construction to
/// destruction. When tracing is disabled the constructor is a single
/// predicted branch and the destructor a dead-flag check.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(const char* name, int64_t arg = kTraceNoArg,
                           const char* cat = "delex") {
    uint32_t hooks =
        trace_internal::g_span_hooks.load(std::memory_order_relaxed);
    if (hooks == 0) return;
    if ((hooks & trace_internal::kHookProfile) != 0) {
      trace_internal::PushSpan(name);
      pushed_ = true;
    }
    if ((hooks & trace_internal::kHookTrace) != 0) {
      name_ = name;
      cat_ = cat;
      arg_ = arg;
      start_us_ = TraceRecorder::Global().NowUs();
    }
  }

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

  ~ScopedTraceSpan() {
    if (pushed_) trace_internal::PopSpan();
    if (name_ == nullptr) return;
    // If tracing stopped mid-span the event is dropped — Stop() owns the
    // buffers from that point on.
    if (!TraceRecorder::enabled()) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    recorder.AppendComplete(name_, cat_, start_us_,
                            recorder.NowUs() - start_us_, arg_);
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int64_t arg_ = kTraceNoArg;
  int64_t start_us_ = 0;
  bool pushed_ = false;
};

/// Starts tracing if DELEX_TRACE names a path and no session is active.
inline void MaybeStartTraceFromEnv() {
  const char* path = std::getenv("DELEX_TRACE");
  if (path == nullptr || *path == '\0') return;
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.started()) return;
  Status st = recorder.Start(path);
  if (!st.ok()) {
    DELEX_LOG(WARN) << "DELEX_TRACE: " << st.ToString();
  }
}

}  // namespace obs
}  // namespace delex

#define DELEX_OBS_CONCAT_INNER(a, b) a##b
#define DELEX_OBS_CONCAT(a, b) DELEX_OBS_CONCAT_INNER(a, b)

/// Scoped trace span: DELEX_TRACE_SPAN("name") or
/// DELEX_TRACE_SPAN("name", id). The name must be a string literal.
#define DELEX_TRACE_SPAN(...)                               \
  ::delex::obs::ScopedTraceSpan DELEX_OBS_CONCAT(           \
      delex_trace_span_, __LINE__)(__VA_ARGS__)

#endif  // DELEX_OBS_TRACE_H_
