#ifndef DELEX_OBS_JSON_READER_H_
#define DELEX_OBS_JSON_READER_H_

// Minimal JSON reader — the inverse of obs/json_writer.h, sized for the
// observability artifacts this repo itself produces (history records,
// run-report lines, metrics snapshots). Header-only so the history
// reader, the introspection endpoints and the delex_inspect tool share
// one parser without a new library.
//
// Scope (deliberately small, not a general-purpose JSON library):
//   - numbers are doubles (every count we serialize fits in the 2^53
//     exact-integer range; checksums travel as hex strings);
//   - objects preserve insertion order and keep the LAST value for a
//     duplicated key (duplicates never appear in our own output);
//   - input must be a single JSON value; trailing garbage is an error.
// Malformed input yields Status::Corruption — parsing untrusted bytes
// must degrade, never abort (same contract as the storage decoders).

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace delex {
namespace obs {

/// \brief One parsed JSON value (tagged union, plain members).
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == kObject; }
  bool is_array() const { return kind == kArray; }

  /// Member lookup; a shared null value when absent or not an object.
  const JsonValue& At(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v;
    }
    static const JsonValue missing;
    return missing;
  }
  bool Has(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        (void)v;
        return true;
      }
    }
    return false;
  }

  /// Typed accessors with defaults — absent/mistyped members read as the
  /// fallback, so callers probing optional fields stay branch-free.
  double NumberOr(double fallback) const {
    return kind == kNumber ? number : fallback;
  }
  int64_t IntOr(int64_t fallback) const {
    return kind == kNumber ? static_cast<int64_t>(number) : fallback;
  }
  bool BoolOr(bool fallback) const {
    return kind == kBool ? boolean : fallback;
  }
  std::string StringOr(std::string fallback) const {
    return kind == kString ? string : std::move(fallback);
  }
};

namespace json_internal {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    DELEX_RETURN_NOT_OK(ParseValue(out, /*depth=*/0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing bytes after JSON value");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::Corruption("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::Corruption("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::Corruption("bad \\u escape digit");
            }
          }
          // Our own writer only emits \u00XX for control bytes; decode
          // the latin-1 range and pass anything else through UTF-8.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Status::Corruption("unknown escape in string");
      }
    }
    return Status::Corruption("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Status::Corruption("JSON nested too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Status::Corruption("unexpected end");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return Status::OK();
      for (;;) {
        std::string key;
        DELEX_RETURN_NOT_OK(ParseString(&key));
        if (!Consume(':')) return Status::Corruption("expected ':'");
        JsonValue value;
        DELEX_RETURN_NOT_OK(ParseValue(&value, depth + 1));
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) {
          SkipSpace();
          continue;
        }
        if (Consume('}')) return Status::OK();
        return Status::Corruption("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return Status::OK();
      for (;;) {
        JsonValue value;
        DELEX_RETURN_NOT_OK(ParseValue(&value, depth + 1));
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Status::Corruption("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->kind = JsonValue::kNull;
      return Status::OK();
    }
    // Number: strtod from a bounded, NUL-terminated copy (string_view is
    // not NUL-terminated; a number token is tiny).
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return Status::Corruption("unexpected character");
    std::string token(text_.substr(pos_, end - pos_));
    char* parsed_end = nullptr;
    double value = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end == token.c_str() || *parsed_end != '\0') {
      return Status::Corruption("malformed number");
    }
    pos_ = end;
    out->kind = JsonValue::kNumber;
    out->number = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace json_internal

/// Parses one complete JSON value. Malformed input is Corruption.
inline Status ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  return json_internal::Parser(text).Parse(out);
}

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_JSON_READER_H_
