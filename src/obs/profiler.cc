#include "obs/profiler.h"

#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace delex {
namespace obs {

namespace {

using trace_internal::kSpanStackMaxDepth;

// The sample table the SIGPROF handler aggregates into. Open-addressed,
// fixed size, never resized: a handler may not allocate. A slot moves
// empty -> claimed -> ready exactly once; counts only accumulate on ready
// slots, and the rare tick that lands on a mid-claim slot or a full probe
// chain is counted as lost rather than waited for — a profiler must never
// block the thread it interrupts.
constexpr int kTableSize = 2048;  // power of two (mask probing)
constexpr int kMaxProbes = 32;

constexpr uint32_t kSlotEmpty = 0;
constexpr uint32_t kSlotClaimed = 1;
constexpr uint32_t kSlotReady = 2;

struct Slot {
  std::atomic<uint32_t> state{kSlotEmpty};
  std::atomic<int64_t> count{0};
  uint64_t hash = 0;                         // written before state=ready
  int len = 0;                               // written before state=ready
  const char* path[kSpanStackMaxDepth] = {}; // written before state=ready
};

Slot g_table[kTableSize];
std::atomic<int64_t> g_total_samples{0};
std::atomic<int64_t> g_lost_samples{0};
std::atomic<int64_t> g_no_span_samples{0};
std::atomic<bool> g_sampling{false};

uint64_t HashPath(const char* const* path, int len) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 over pointer bytes
  for (int i = 0; i < len; ++i) {
    // delex-lint: allow(reinterpret-cast) -- hashing the pointer VALUE
    uint64_t p = reinterpret_cast<uint64_t>(path[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (p >> (b * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h == 0 ? 1 : h;
}

extern "C" void DelexSigprofHandler(int) {
  if (!g_sampling.load(std::memory_order_relaxed)) return;
  g_total_samples.fetch_add(1, std::memory_order_relaxed);

  trace_internal::SpanStack& stack = trace_internal::LocalSpanStack();
  int depth = stack.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  int len = depth < kSpanStackMaxDepth ? depth : kSpanStackMaxDepth;
  if (len <= 0) {
    g_no_span_samples.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const char* path[kSpanStackMaxDepth];
  for (int i = 0; i < len; ++i) {
    path[i] = stack.names[i].load(std::memory_order_relaxed);
  }

  uint64_t hash = HashPath(path, len);
  for (int probe = 0; probe < kMaxProbes; ++probe) {
    Slot& slot =
        g_table[(hash + static_cast<uint64_t>(probe)) & (kTableSize - 1)];
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == kSlotEmpty) {
      uint32_t expected = kSlotEmpty;
      if (slot.state.compare_exchange_strong(expected, kSlotClaimed,
                                             std::memory_order_acq_rel)) {
        slot.hash = hash;
        slot.len = len;
        for (int i = 0; i < len; ++i) slot.path[i] = path[i];
        slot.state.store(kSlotReady, std::memory_order_release);
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      state = slot.state.load(std::memory_order_acquire);
    }
    if (state == kSlotClaimed) {
      // Another thread is publishing this slot right now; don't spin in a
      // signal handler.
      g_lost_samples.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // kSlotReady: match?
    if (slot.hash == hash && slot.len == len &&
        std::memcmp(slot.path, path, sizeof(path[0]) * len) == 0) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  g_lost_samples.fetch_add(1, std::memory_order_relaxed);
}

struct ProfilerState {
  mutable Mutex mu{"obs.profiler"};
  bool running DELEX_GUARDED_BY(mu) = false;
  bool atexit_registered DELEX_GUARDED_BY(mu) = false;
  int hz DELEX_GUARDED_BY(mu) = 0;
  std::string folded_path DELEX_GUARDED_BY(mu);
  struct sigaction previous_action DELEX_GUARDED_BY(mu) = {};
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState;  // leaked on purpose
  return *state;
}

// One folded path with its count, for sorting outside the handler.
struct FoldedLine {
  std::string path;
  const char* leaf = nullptr;
  int64_t count = 0;
};

std::vector<FoldedLine> SnapshotFolded() {
  std::vector<FoldedLine> lines;
  for (Slot& slot : g_table) {
    if (slot.state.load(std::memory_order_acquire) != kSlotReady) continue;
    int64_t count = slot.count.load(std::memory_order_relaxed);
    if (count <= 0) continue;
    FoldedLine line;
    for (int i = 0; i < slot.len; ++i) {
      if (i > 0) line.path += ';';
      line.path += slot.path[i];
    }
    line.leaf = slot.path[slot.len - 1];
    line.count = count;
    lines.push_back(std::move(line));
  }
  int64_t no_span = g_no_span_samples.load(std::memory_order_relaxed);
  if (no_span > 0) {
    FoldedLine line;
    line.path = "(no_span)";
    line.leaf = "(no_span)";
    line.count = no_span;
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end(),
            [](const FoldedLine& a, const FoldedLine& b) {
              return a.path < b.path;
            });
  return lines;
}

Status WriteFoldedFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot write folded profile " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IOError("short write to folded profile " + path);
  }
  return Status::OK();
}

void PublishProfilerGauges(int hz_value) {
  static Gauge* total =
      MetricsRegistry::Global().GetGauge("profile.samples");
  static Gauge* lost =
      MetricsRegistry::Global().GetGauge("profile.lost_samples");
  static Gauge* hz = MetricsRegistry::Global().GetGauge("profile.hz");
  total->Set(g_total_samples.load(std::memory_order_relaxed));
  lost->Set(g_lost_samples.load(std::memory_order_relaxed));
  hz->Set(hz_value);
}

}  // namespace

SpanProfiler& SpanProfiler::Global() {
  static SpanProfiler profiler;
  return profiler;
}

Status SpanProfiler::Start(int hz, const std::string& folded_path) {
  if (hz < 1) hz = 1;
  if (hz > 1000) hz = 1000;
  ProfilerState& state = State();
  MutexLock lock(&state.mu);
  if (state.running) {
    return Status::InvalidArgument("profiler already running");
  }
  state.hz = hz;
  state.folded_path = folded_path;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = DelexSigprofHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &state.previous_action) != 0) {
    return Status::Internal("sigaction(SIGPROF) failed");
  }

  // Maintain the per-thread span stacks, then start counting ticks.
  trace_internal::SetSpanHook(trace_internal::kHookProfile, true);
  g_sampling.store(true, std::memory_order_release);

  struct itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / hz);
  if (timer.it_interval.tv_usec <= 0) timer.it_interval.tv_usec = 1000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_sampling.store(false, std::memory_order_release);
    trace_internal::SetSpanHook(trace_internal::kHookProfile, false);
    sigaction(SIGPROF, &state.previous_action, nullptr);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }

  state.running = true;
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit([] { (void)SpanProfiler::Global().Stop(); });
  }
  if (folded_path.empty()) {
    DELEX_LOG(INFO) << "span profiler started at " << hz << " Hz";
  } else {
    DELEX_LOG(INFO) << "span profiler started at " << hz << " Hz -> "
                    << folded_path;
  }
  return Status::OK();
}

Status SpanProfiler::Stop() {
  ProfilerState& state = State();
  MutexLock lock(&state.mu);
  if (!state.running) return Status::OK();
  state.running = false;

  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  g_sampling.store(false, std::memory_order_release);
  trace_internal::SetSpanHook(trace_internal::kHookProfile, false);
  sigaction(SIGPROF, &state.previous_action, nullptr);

  PublishProfilerGauges(state.hz);
  Status status = Status::OK();
  if (!state.folded_path.empty()) {
    std::vector<FoldedLine> lines = SnapshotFolded();
    std::string text;
    for (const FoldedLine& line : lines) {
      text += line.path;
      text += ' ';
      text += std::to_string(line.count);
      text += '\n';
    }
    status = WriteFoldedFile(state.folded_path, text);
    if (status.ok()) {
      DELEX_LOG(INFO) << "folded profile written: " << state.folded_path
                      << " (" << lines.size() << " paths, "
                      << g_total_samples.load(std::memory_order_relaxed)
                      << " samples)";
    } else {
      DELEX_LOG(WARN) << status.ToString();
    }
  }
  return status;
}

bool SpanProfiler::running() const {
  ProfilerState& state = State();
  MutexLock lock(&state.mu);
  return state.running;
}

std::string SpanProfiler::FoldedText() const {
  std::string text;
  for (const FoldedLine& line : SnapshotFolded()) {
    text += line.path;
    text += ' ';
    text += std::to_string(line.count);
    text += '\n';
  }
  return text;
}

std::vector<SpanSelfSample> SpanProfiler::TopSelfSamples(int limit) const {
  // Self time of a span == ticks where it was innermost == the leaf of
  // the sampled path.
  std::vector<SpanSelfSample> totals;
  for (const FoldedLine& line : SnapshotFolded()) {
    auto it = std::find_if(totals.begin(), totals.end(),
                           [&](const SpanSelfSample& s) {
                             return s.span == line.leaf;
                           });
    if (it == totals.end()) {
      SpanSelfSample sample;
      sample.span = line.leaf;
      sample.self_samples = line.count;
      totals.push_back(std::move(sample));
    } else {
      it->self_samples += line.count;
    }
  }
  std::sort(totals.begin(), totals.end(),
            [](const SpanSelfSample& a, const SpanSelfSample& b) {
              if (a.self_samples != b.self_samples) {
                return a.self_samples > b.self_samples;
              }
              return a.span < b.span;
            });
  if (limit >= 0 && static_cast<size_t>(limit) < totals.size()) {
    totals.resize(static_cast<size_t>(limit));
  }
  return totals;
}

int64_t SpanProfiler::TotalSamples() const {
  return g_total_samples.load(std::memory_order_relaxed);
}

int64_t SpanProfiler::LostSamples() const {
  return g_lost_samples.load(std::memory_order_relaxed);
}

void SpanProfiler::ClearForTesting() {
  ProfilerState& state = State();
  MutexLock lock(&state.mu);
  if (state.running) return;  // never race the handler
  for (Slot& slot : g_table) {
    slot.state.store(kSlotEmpty, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
    slot.hash = 0;
    slot.len = 0;
  }
  g_total_samples.store(0, std::memory_order_relaxed);
  g_lost_samples.store(0, std::memory_order_relaxed);
  g_no_span_samples.store(0, std::memory_order_relaxed);
}

void MaybeStartProfilerFromEnv() {
  const char* value = std::getenv("DELEX_PROFILE");
  if (value == nullptr || *value == '\0' ||
      std::strcmp(value, "0") == 0) {
    return;
  }
  SpanProfiler& profiler = SpanProfiler::Global();
  if (profiler.running()) return;
  int hz = 97;
  const char* hz_env = std::getenv("DELEX_PROFILE_HZ");
  if (hz_env != nullptr && *hz_env != '\0') {
    int parsed = std::atoi(hz_env);
    if (parsed > 0) hz = parsed;
  }
  std::string folded_path;
  if (std::strcmp(value, "1") != 0) folded_path = value;
  Status status = profiler.Start(hz, folded_path);
  if (!status.ok()) {
    DELEX_LOG(WARN) << "DELEX_PROFILE: " << status.ToString();
  }
}

}  // namespace obs
}  // namespace delex
