#ifndef DELEX_OBS_HISTORY_H_
#define DELEX_OBS_HISTORY_H_

// Generation-history store — observability layer 3 (memory across
// generations). Run reports answer "what happened in this run"; the
// history store answers "what changed across generations": one compact
// checksummed record per completed generation, appended to
// `work_dir/history.jsonl` at the end of every engine-backed run (and,
// for sharded engines, a per-shard view in `shard<K>/history.jsonl`).
//
// Line framing — every line is an envelope with a fixed-offset header so
// a checker can validate without parsing JSON first:
//   {"crc":"<16 lowercase hex>","rec":{...}}\n
// The crc is Fnv1a64 over the exact byte range of the "rec" value (from
// the opening '{' at byte 32 through the closing '}' at len-2 of the
// envelope). A record whose envelope, checksum, or JSON fails to parse
// is dropped as Status::Corruption — degrade, never abort — and the next
// Append still lands on a fresh line (a torn tail without '\n' is
// healed by prefixing one).
//
// Record shape (inner "rec" object; optional blocks omitted when empty):
//   {"gen":2,"solution":"Delex","tag":"fig11-talk","warmup":false,
//    "threads":4,"num_shards":1,"fast_path":true,"assignment":"ST,RU",
//    "pages":N,"pages_identical":N,"result_tuples":N,
//    "phases":{"match_us":..,"extract_us":..,"copy_us":..,"opt_us":..,
//              "capture_us":..,"total_us":..,"others_us":..,
//              "phase_drift_us":..},
//    "counters":{"demote_result_cache":N,"demote_missing_group":N,
//                "decode_copy_groups":N,"reuse_corrupt_drops":N,
//                "trace_dropped_events":N},
//    "optimizer":{"learning":true,"predicted_total_us":..,
//                 "cost_drift":..,"coeffs":[...],"decisions":[...]},
//    "units":[{"matcher":"ST","predicted_us":..,"actual_us":..}],
//    "shards":[{"shard":0,...,"assignment":"ST","cost_drift":..}]}
// The coeffs / decisions rows are exactly the run-report v5 shapes
// (obs/run_report.h), so the two artifacts stay diffable.
//
// Retention: Options::retain_gens > 0 compacts the file on Append to the
// newest N records (atomic rewrite-and-rename); 0 keeps everything.
// Knobs: DELEX_HISTORY ("0" disables writing; default on) and
// DELEX_HISTORY_RETAIN (record count; default 0 = unlimited).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/mem.h"
#include "obs/profiler.h"
#include "obs/run_report.h"

namespace delex {
namespace obs {

/// File name of the store inside a work dir (and each shard<K>/ dir).
inline constexpr const char* kHistoryFileName = "history.jsonl";

/// \brief One generation's compact summary — the unit of history.
struct HistoryRecord {
  // Identity.
  int gen = 0;             ///< engine generation this run completed
  int shard = -1;          ///< shard id for per-shard views; -1 = merged
  std::string solution;    ///< "Delex", "Cyclex", ...
  std::string tag;         ///< series tag (program/bench name)
  bool warmup = false;
  int threads = 1;
  int num_shards = 1;
  bool fast_path = true;
  std::string assignment;  ///< executed matcher plan, "ST,RU,..."

  // Volume.
  int64_t pages = 0;
  int64_t pages_identical = 0;
  int64_t result_tuples = 0;

  // Phase breakdown (µs), the Figure 11 decomposition.
  int64_t match_us = 0;
  int64_t extract_us = 0;
  int64_t copy_us = 0;
  int64_t opt_us = 0;
  int64_t capture_us = 0;
  int64_t total_us = 0;
  int64_t others_us = 0;
  int64_t phase_drift_us = 0;

  // Degradation counters.
  int64_t demote_result_cache = 0;
  int64_t demote_missing_group = 0;
  int64_t decode_copy_groups = 0;
  int64_t reuse_corrupt_drops = 0;
  int64_t trace_dropped_events = 0;

  // Optimizer view (block omitted from the line when !has_optimizer).
  bool has_optimizer = false;
  bool learning = false;
  double predicted_total_us = -1;
  double cost_drift = -1;
  std::vector<OptimizerReport::LearnedCoefficient> coeffs;
  std::vector<OptimizerReport::UnitDecision> decisions;

  /// Per-unit plan vs. outcome.
  struct UnitSummary {
    std::string matcher;       ///< executed matcher ("DN"/"UD"/"ST"/"RU")
    double predicted_us = -1;  ///< cost-model estimate; < 0 when none
    double actual_us = 0;      ///< measured match+extract+copy+capture
  };
  std::vector<UnitSummary> units;

  /// Per-shard rollup (merged records with num_shards > 1 only).
  std::vector<RunReportMeta::ShardSummary> shards;

  /// Resource view at record time (v6 resources block; layer 4). Written
  /// whenever has_resources — records from older stores parse with it
  /// false, and delex_inspect mem reports them as pre-layer-4.
  bool has_resources = false;
  ResourceUsage resources;
  /// Span-profiler rollup; top_spans empty when the profiler never ran.
  int64_t profile_samples = 0;
  int64_t profile_lost = 0;
  std::vector<SpanSelfSample> top_spans;

  /// The framed line this record was parsed from (no trailing newline).
  /// Filled by ParseLine/Load; empty on freshly built records. Lets the
  /// compactor and the /history endpoint re-emit verified lines verbatim.
  std::string raw;
};

/// Builds the merged-view record for one completed run. `assignment` is
/// the executed plan (may be set even when the optimizer block is absent,
/// e.g. the uniform warm-up plan).
HistoryRecord MakeHistoryRecord(const RunReportMeta& meta,
                                const RunStats& stats,
                                const OptimizerReport& optimizer,
                                const std::string& assignment);

/// \brief Reader diagnostics for one Load pass.
struct HistoryLoadInfo {
  int64_t corrupt_dropped = 0;  ///< lines dropped (framing/crc/JSON/order)
  Status first_error = Status::OK();  ///< first drop's Corruption status
};

/// \brief Append-only, checksummed JSONL store of HistoryRecords.
class HistoryStore {
 public:
  struct Options {
    /// Keep only the newest N records, compacting on Append; 0 keeps all.
    int retain_gens = 0;
  };

  explicit HistoryStore(std::string path) : path_(std::move(path)) {}
  HistoryStore(std::string path, Options options)
      : path_(std::move(path)), options_(options) {}

  const std::string& path() const { return path_; }

  /// Appends one framed record (then compacts if retention is set). A
  /// torn final line in the existing file is healed with a newline so
  /// this record always starts a fresh line.
  Status Append(const HistoryRecord& rec);

  /// Loads every valid record, oldest first. Corrupt or out-of-order
  /// lines are counted into `info` (may be null) and skipped — a damaged
  /// store degrades to the records that still verify. A missing file is
  /// an empty history, not an error.
  Status Load(std::vector<HistoryRecord>* out,
              HistoryLoadInfo* info = nullptr) const;

  /// Load without constructing a store.
  static Status LoadFile(const std::string& path,
                         std::vector<HistoryRecord>* out,
                         HistoryLoadInfo* info = nullptr);

  /// Frames one record as an envelope line (no trailing newline).
  static std::string FormatLine(const HistoryRecord& rec);

  /// Parses one framed line (no newline). Any framing/checksum/JSON
  /// defect is Status::Corruption. On success fills rec->raw.
  static Status ParseLine(std::string_view line, HistoryRecord* rec);

 private:
  std::string path_;
  Options options_;
};

/// DELEX_HISTORY: history writing enabled unless set to "0".
bool HistoryEnabledFromEnv();

/// DELEX_HISTORY_RETAIN: records kept per store; 0/unset = unlimited.
int HistoryRetainFromEnv();

/// DELEX_DECISION_AUDIT: optimizer decision audit unless set to "0".
bool DecisionAuditEnabledFromEnv();

}  // namespace obs
}  // namespace delex

#endif  // DELEX_OBS_HISTORY_H_
