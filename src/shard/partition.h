#ifndef DELEX_SHARD_PARTITION_H_
#define DELEX_SHARD_PARTITION_H_

#include <string_view>
#include <vector>

#include "storage/snapshot.h"

namespace delex {
namespace shard {

/// \brief The shard router: Snapshot → per-shard page subsets.
///
/// Partitioning invariants (the sharded engine's correctness rests on
/// these; sharded_engine_test asserts them directly):
///
///  1. **Stability.** A page's shard is a pure function of its URL — the
///     identity that survives across snapshots (dids are reassigned every
///     crawl). Page adds and deletes elsewhere in the corpus never migrate
///     a surviving page, so each shard's reuse files stay aligned with the
///     pages they describe across generations.
///  2. **Partition.** Every page lands in exactly one shard; shard
///     subsets are disjoint and cover the snapshot.
///  3. **Order preservation.** Within a shard, pages keep their snapshot
///     order and their *global* dids (Snapshot::AddExistingPage). A
///     subsequence of a did-ordered snapshot is did-ordered, which is all
///     the reuse-file append contract requires — and it makes per-shard
///     result rows carry exactly the dids an unsharded run would emit, so
///     the merge step can be byte-identical.

/// Shard index of a URL: FNV-1a hash mod num_shards. Deterministic across
/// runs, processes, and platforms (the hash is fixed, not seeded).
int ShardOfUrl(std::string_view url, int num_shards);

/// Splits `snapshot` into `num_shards` sub-snapshots by ShardOfUrl,
/// preserving global dids and relative page order within each shard.
std::vector<Snapshot> SplitSnapshot(const Snapshot& snapshot, int num_shards);

}  // namespace shard
}  // namespace delex

#endif  // DELEX_SHARD_PARTITION_H_
