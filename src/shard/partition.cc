#include "shard/partition.h"

#include "common/hash.h"
#include "common/logging.h"

namespace delex {
namespace shard {

int ShardOfUrl(std::string_view url, int num_shards) {
  DELEX_CHECK(num_shards >= 1);
  if (num_shards == 1) return 0;
  return static_cast<int>(Fnv1a64(url) % static_cast<uint64_t>(num_shards));
}

std::vector<Snapshot> SplitSnapshot(const Snapshot& snapshot, int num_shards) {
  DELEX_CHECK(num_shards >= 1);
  std::vector<Snapshot> shards(static_cast<size_t>(num_shards));
  for (const Page& page : snapshot.pages()) {
    shards[static_cast<size_t>(ShardOfUrl(page.url, num_shards))]
        .AddExistingPage(page);
  }
  return shards;
}

}  // namespace shard
}  // namespace delex
