#ifndef DELEX_SHARD_SHARDED_ENGINE_H_
#define DELEX_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "delex/engine.h"
#include "delex/run_stats.h"
#include "shard/partition.h"
#include "storage/snapshot.h"
#include "xlog/plan.h"

namespace delex {
namespace shard {

/// \brief Hash-partitioned multi-shard Delex engine.
///
/// Partitions each snapshot into N page shards by URL hash (see
/// partition.h for the invariants) and drives one DelexEngine per shard,
/// each with its own work_dir subdirectory (`shard<K>/`: reuse files,
/// `.idx` sidecars, result caches, learned-coefficient files) so a shard
/// can be inspected, corrupted-and-degraded, or later re-balanced in
/// isolation.
///
/// Two-level scheduling: one lightweight driver thread per shard runs that
/// shard's reader-prefetch and ordered write-back stages (mostly I/O),
/// while every shard submits its page-evaluation tasks into ONE shared
/// ThreadPool — so N shards × M pages never oversubscribe the machine; the
/// pool width bounds total compute. Within a shard the ordered write-back
/// keeps reuse files byte-identical to a single-engine run over the same
/// page subset, at every shard/thread combination.
///
/// The merge step re-interleaves per-shard result rows into global
/// snapshot page order (exact, not canonicalized: shards emit rows grouped
/// by page, pages carry global dids, so a cursor per shard reproduces the
/// unsharded row order byte for byte) and folds per-shard RunStats into
/// one merged view via RunStats::MergeFrom + histogram folding. Per-shard
/// stats are also published to the metrics registry with the shard id as
/// a label (`shard.pages#shard=K` → Prometheus `delex_shard_pages_total{shard="K"}`).
class ShardedEngine {
 public:
  struct Options {
    /// Root directory; shard K lives in `<work_dir>/shard<K>/`.
    std::string work_dir = "/tmp/delex-shards";

    /// Number of engine shards (>= 1). The shard count is part of the
    /// on-disk layout: re-opening a work_dir with a different count
    /// orphans the old reuse files (pages re-extract from scratch).
    int num_shards = 1;

    /// Width of the shared worker pool (0 = one per hardware thread).
    int num_threads = 1;

    // Per-shard engine knobs, passed through to DelexEngine::Options.
    int max_match_candidates = 2;
    bool disable_exact_fast_path = false;
    bool disable_page_fast_path = false;
    bool fold_unit_operators = true;
  };

  /// Per-run, per-shard outputs (optional out-param of RunSnapshot): the
  /// harness uses these to feed each shard's optimizer its own measured
  /// costs and to emit per-shard run-report summaries.
  struct ShardRunStats {
    std::vector<RunStats> per_shard;
    std::vector<double> shard_seconds;  ///< per-shard wall clock
  };

  ShardedEngine(xlog::PlanNodePtr plan, Options options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Initializes every shard engine (creates `shard<K>/` dirs).
  Status Init();

  int num_shards() const { return options_.num_shards; }
  const xlog::PlanNodePtr& plan() const { return plan_; }
  /// Unit analysis (identical across shards — same plan).
  const UnitAnalysis& analysis() const;
  size_t NumUnits() const;
  /// Completed runs (uniform across shards).
  int generation() const;
  /// Work dir of shard `k` (`<work_dir>/shard<K>`).
  std::string ShardWorkDir(int k) const;

  /// Positions every shard as if `generation` runs completed in this
  /// work_dir (DelexEngine::Resume per shard).
  Status Resume(int generation);

  /// Runs one snapshot across all shards with a single assignment
  /// broadcast to every shard. Returns merged, globally page-ordered,
  /// did-prefixed result tuples — byte-identical to an unsharded run.
  Result<std::vector<Tuple>> RunSnapshot(const Snapshot& current,
                                         const Snapshot* previous,
                                         const MatcherAssignment& assignment,
                                         RunStats* stats);

  /// Same, with one assignment per shard (each shard's optimizer can pick
  /// its own plan) and optional per-shard stats out.
  Result<std::vector<Tuple>> RunSnapshot(
      const Snapshot& current, const Snapshot* previous,
      const std::vector<MatcherAssignment>& assignments, RunStats* stats,
      ShardRunStats* shard_stats);

 private:
  xlog::PlanNodePtr plan_;
  Options options_;
  bool initialized_ = false;
  std::unique_ptr<ThreadPool> pool_;  // the one shared worker pool
  std::vector<std::unique_ptr<DelexEngine>> shards_;

  // Split of the last `current` snapshot, reused as the previous split
  // when the caller feeds consecutive snapshots (the only legal pattern):
  // saves one full corpus copy per run at 1M-page scale.
  std::vector<Snapshot> last_split_;
  const Snapshot* last_split_source_ = nullptr;
};

/// \brief Differential oracle leg for sharding (DELEX_PARANOID tooling):
/// runs `series` through an unsharded serial engine and through sharded
/// configurations (2 and 3 shards, shared pool) in throwaway work dirs
/// under `scratch_dir`, comparing exact (non-canonicalized) per-snapshot
/// results — sharded output must be byte-identical, not merely
/// set-equal. Returns OK on agreement, Corruption naming the first
/// divergence otherwise. Lives here rather than in delex/paranoid.cc
/// because the core engine library cannot depend on the shard layer.
Status ShardedDifferentialOracle(const xlog::PlanNodePtr& plan,
                                 const std::vector<Snapshot>& series,
                                 const MatcherAssignment& assignment,
                                 const std::string& scratch_dir);

}  // namespace shard
}  // namespace delex

#endif  // DELEX_SHARD_SHARDED_ENGINE_H_
