#include "shard/sharded_engine.h"

#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/value.h"
#include "obs/histogram.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace delex {
namespace shard {

namespace {

/// Per-shard metrics, shard id as a label. Names use the registry's
/// `base#key=value` convention; the Prometheus renderer turns the suffix
/// into real labels (`delex_shard_pages_total{shard="3"}`). These are
/// resolved per run, not cached in statics — the names are dynamic and a
/// snapshot run amortizes one map lookup over thousands of pages.
void PublishShardStats(int k, const RunStats& stats, int generation) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::string label = "#shard=" + std::to_string(k);
  reg.GetCounter("shard.pages" + label)->Increment(stats.pages);
  reg.GetCounter("shard.pages_identical" + label)
      ->Increment(stats.pages_identical);
  reg.GetCounter("shard.result_tuples" + label)
      ->Increment(stats.result_tuples);
  reg.GetCounter("shard.reuse_corrupt_drops" + label)
      ->Increment(stats.reuse_corrupt_drops);
  reg.GetCounter("shard.total_us" + label)->Increment(stats.phases.total_us);
  reg.GetGauge("shard.generation" + label)->Set(generation);
  if (obs::HistogramsEnabled()) {
    reg.GetHistogram("shard.page_eval_us" + label)
        ->MergeFrom(stats.page_eval_hist);
  }
}

}  // namespace

ShardedEngine::ShardedEngine(xlog::PlanNodePtr plan, Options options)
    : plan_(std::move(plan)), options_(std::move(options)) {}

ShardedEngine::~ShardedEngine() = default;

std::string ShardedEngine::ShardWorkDir(int k) const {
  return options_.work_dir + "/shard" + std::to_string(k);
}

Status ShardedEngine::Init() {
  if (initialized_) return Status::InvalidArgument("engine already initialized");
  if (options_.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  int pool_width = options_.num_threads;
  if (pool_width <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    pool_width = hw > 0 ? static_cast<int>(hw) : 1;
  }
  pool_ = std::make_unique<ThreadPool>(pool_width);
  for (int k = 0; k < options_.num_shards; ++k) {
    DelexEngine::Options engine_options;
    engine_options.work_dir = ShardWorkDir(k);
    engine_options.shared_pool = pool_.get();
    engine_options.max_match_candidates = options_.max_match_candidates;
    engine_options.disable_exact_fast_path = options_.disable_exact_fast_path;
    engine_options.disable_page_fast_path = options_.disable_page_fast_path;
    engine_options.fold_unit_operators = options_.fold_unit_operators;
    auto engine = std::make_unique<DelexEngine>(plan_, engine_options);
    DELEX_RETURN_NOT_OK(engine->Init());
    shards_.push_back(std::move(engine));
  }
  obs::MetricsRegistry::Global().GetGauge("shard.count")
      ->Set(options_.num_shards);
  DELEX_LOG(INFO) << "sharded engine initialized: " << options_.num_shards
                  << " shards, pool=" << pool_width
                  << " threads, work_dir=" << options_.work_dir;
  initialized_ = true;
  return Status::OK();
}

const UnitAnalysis& ShardedEngine::analysis() const {
  return shards_.front()->analysis();
}

size_t ShardedEngine::NumUnits() const {
  return shards_.front()->NumUnits();
}

int ShardedEngine::generation() const {
  return shards_.front()->generation();
}

Status ShardedEngine::Resume(int generation) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  for (auto& engine : shards_) {
    DELEX_RETURN_NOT_OK(engine->Resume(generation));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> ShardedEngine::RunSnapshot(
    const Snapshot& current, const Snapshot* previous,
    const MatcherAssignment& assignment, RunStats* stats) {
  std::vector<MatcherAssignment> assignments(
      static_cast<size_t>(options_.num_shards), assignment);
  return RunSnapshot(current, previous, assignments, stats, nullptr);
}

Result<std::vector<Tuple>> ShardedEngine::RunSnapshot(
    const Snapshot& current, const Snapshot* previous,
    const std::vector<MatcherAssignment>& assignments, RunStats* stats,
    ShardRunStats* shard_stats) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (assignments.size() != static_cast<size_t>(options_.num_shards)) {
    return Status::InvalidArgument("one assignment per shard required");
  }
  const size_t n = static_cast<size_t>(options_.num_shards);
  DELEX_TRACE_SPAN("sharded_run_snapshot", generation());
  Stopwatch total_watch;

  // Route pages to shards. The split of the last `current` is cached as
  // this run's previous split when the caller feeds consecutive snapshots
  // (the engine's only legal pattern) — one corpus copy saved per run,
  // which matters at the 1M-page profile.
  std::vector<Snapshot> fresh_prev_split;
  const std::vector<Snapshot>* prev_split = nullptr;
  if (previous != nullptr) {
    if (previous == last_split_source_) {
      prev_split = &last_split_;
    } else {
      fresh_prev_split = SplitSnapshot(*previous, options_.num_shards);
      prev_split = &fresh_prev_split;
    }
  }
  std::vector<Snapshot> cur_split = SplitSnapshot(current, options_.num_shards);

  // One driver thread per shard: drivers run the reader-prefetch and
  // ordered write-back stages (I/O-bound); all page evaluation funnels
  // into the one shared pool, which bounds compute at its width.
  std::vector<Result<std::vector<Tuple>>> shard_rows(
      n, Result<std::vector<Tuple>>(Status::Internal("shard never ran")));
  std::vector<RunStats> per_shard(n);
  std::vector<double> shard_seconds(n, 0.0);
  {
    std::vector<std::thread> drivers;
    drivers.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      drivers.emplace_back([this, k, &cur_split, prev_split, &assignments,
                            &shard_rows, &per_shard, &shard_seconds] {
        Stopwatch watch;
        const Snapshot* prev_k =
            prev_split != nullptr ? &(*prev_split)[k] : nullptr;
        shard_rows[k] = shards_[k]->RunSnapshot(cur_split[k], prev_k,
                                                assignments[k], &per_shard[k]);
        shard_seconds[k] = watch.ElapsedSeconds();
      });
    }
    for (std::thread& t : drivers) t.join();
  }
  for (size_t k = 0; k < n; ++k) {
    if (!shard_rows[k].ok()) {
      // Preserve the original status code (callers dispatch on it); the
      // failing shard's id goes to the log.
      DELEX_LOG(WARN) << "shard " << k << " failed: "
                      << shard_rows[k].status().ToString();
      return shard_rows[k].status();
    }
  }

  // Merge step, rows: re-interleave per-shard rows into global snapshot
  // page order. Each shard emits rows grouped by page, pages carry global
  // dids, so one cursor per shard reconstructs the exact unsharded row
  // order (byte-identical, not just set-equal).
  std::vector<std::vector<Tuple>> rows(n);
  for (size_t k = 0; k < n; ++k) {
    rows[k] = std::move(shard_rows[k]).ValueOrDie();
  }
  std::vector<size_t> cursor(n, 0);
  std::vector<Tuple> merged_rows;
  size_t total_rows = 0;
  for (const std::vector<Tuple>& r : rows) total_rows += r.size();
  // Shard-layer overhead accounting: during the merge both the per-shard
  // row vectors and the merged buffer exist (row payloads move, the
  // vector shells don't) — the transient that makes sharded peaks exceed
  // unsharded ones. Split-snapshot text itself is charged to `snapshot`.
  obs::ScopedMemCharge merge_mem(
      obs::MemTag::kShard,
      static_cast<int64_t>(2 * total_rows * sizeof(Tuple)));
  merged_rows.reserve(total_rows);
  for (const Page& page : current.pages()) {
    const size_t k = static_cast<size_t>(
        ShardOfUrl(page.url, options_.num_shards));
    while (cursor[k] < rows[k].size() &&
           std::get<int64_t>(rows[k][cursor[k]][0]) == page.did) {
      merged_rows.push_back(std::move(rows[k][cursor[k]]));
      ++cursor[k];
    }
  }
  for (size_t k = 0; k < n; ++k) {
    DELEX_CHECK_MSG(cursor[k] == rows[k].size(),
                    "shard merge left rows behind (did mismatch)");
  }

  // Merge step, stats: fold per-shard RunStats (unit counters, io,
  // fast-path tallies, histogram shards) into one view; phase components
  // sum across shards but total_us is this run's single wall clock — the
  // overshoot of concurrent shard time past it lands in phase_drift_us.
  if (stats != nullptr) {
    *stats = RunStats();
    for (size_t k = 0; k < n; ++k) {
      stats->MergeFrom(per_shard[k]);
      stats->phases.match_us += per_shard[k].phases.match_us;
      stats->phases.extract_us += per_shard[k].phases.extract_us;
      stats->phases.copy_us += per_shard[k].phases.copy_us;
      stats->phases.opt_us += per_shard[k].phases.opt_us;
      stats->phases.capture_us += per_shard[k].phases.capture_us;
    }
    stats->phases.total_us = total_watch.ElapsedMicros();
    stats->phases.FinalizeDrift();
  }
  const int gen = generation();
  for (size_t k = 0; k < n; ++k) {
    PublishShardStats(static_cast<int>(k), per_shard[k], gen);
    obs::MetricsRegistry::Global()
        .GetGauge("mem.shard.snapshot_bytes#shard=" + std::to_string(k))
        ->Set(cur_split[k].TotalBytes());
  }
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("shard.merged.pages")
        ->Increment(static_cast<int64_t>(current.pages().size()));
    reg.GetCounter("shard.merged.result_tuples")
        ->Increment(static_cast<int64_t>(merged_rows.size()));
    reg.GetGauge("shard.merged.generation")->Set(gen);
  }
  if (shard_stats != nullptr) {
    shard_stats->per_shard = std::move(per_shard);
    shard_stats->shard_seconds = std::move(shard_seconds);
  }
  last_split_ = std::move(cur_split);
  last_split_source_ = &current;
  return merged_rows;
}

Status ShardedDifferentialOracle(const xlog::PlanNodePtr& plan,
                                 const std::vector<Snapshot>& series,
                                 const MatcherAssignment& assignment,
                                 const std::string& scratch_dir) {
  // Reference leg: unsharded, serial, fast path on.
  DelexEngine::Options ref_options;
  ref_options.work_dir = scratch_dir + "/oracle-unsharded";
  ref_options.num_threads = 1;
  DelexEngine reference(plan, ref_options);
  DELEX_RETURN_NOT_OK(reference.Init());
  std::vector<std::vector<Tuple>> expected;
  for (size_t i = 0; i < series.size(); ++i) {
    const Snapshot* prev = i == 0 ? nullptr : &series[i - 1];
    DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                           reference.RunSnapshot(series[i], prev, assignment,
                                                 nullptr));
    expected.push_back(std::move(rows));
  }

  struct Config {
    const char* tag;
    int num_shards;
    int num_threads;
  };
  const Config configs[] = {
      {"shards2", 2, 2},
      {"shards3", 3, 1},
  };
  for (const Config& config : configs) {
    ShardedEngine::Options options;
    options.work_dir = scratch_dir + "/oracle-" + config.tag;
    options.num_shards = config.num_shards;
    options.num_threads = config.num_threads;
    ShardedEngine engine(plan, options);
    DELEX_RETURN_NOT_OK(engine.Init());
    for (size_t i = 0; i < series.size(); ++i) {
      const Snapshot* prev = i == 0 ? nullptr : &series[i - 1];
      DELEX_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          engine.RunSnapshot(series[i], prev, assignment, nullptr));
      // Byte-identical, order included: the merge step promises the exact
      // unsharded row sequence, so compare without canonicalizing.
      if (rows.size() != expected[i].size()) {
        return Status::Corruption(
            std::string("sharded oracle: ") + config.tag + " snapshot " +
            std::to_string(i) + " row count " + std::to_string(rows.size()) +
            " != unsharded " + std::to_string(expected[i].size()));
      }
      for (size_t r = 0; r < rows.size(); ++r) {
        if (TupleLess(rows[r], expected[i][r]) ||
            TupleLess(expected[i][r], rows[r])) {
          return Status::Corruption(
              std::string("sharded oracle: ") + config.tag + " snapshot " +
              std::to_string(i) + " diverges from unsharded at row " +
              std::to_string(r));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace shard
}  // namespace delex
