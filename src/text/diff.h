#ifndef DELEX_TEXT_DIFF_H_
#define DELEX_TEXT_DIFF_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "text/match_segment.h"

namespace delex {

/// \brief Options for the Unix-diff-style matcher (UD in the paper).
struct DiffOptions {
  /// Upper bound on the Myers edit distance explored before bailing out to
  /// the prefix/suffix heuristic. Real diff applies a similar cutoff; it is
  /// what keeps UD "linear in |R| + |S|" on slowly-changing pages.
  int64_t max_edit_distance = 4096;

  /// Matched line runs shorter than this many characters are dropped; tiny
  /// matches create more region-bookkeeping than they save in extraction.
  int64_t min_segment_length = 1;
};

/// \brief Line-based Myers O(ND) diff between region `p_text` (at absolute
/// offset `p_base` in its page) and region `q_text` (at `q_base`).
///
/// Returns equal-length matched segments, ordered and non-crossing (this is
/// the "finds only some matching regions" matcher: relocated blocks are not
/// detected). This implements reference [24] of the paper (Myers 1986).
std::vector<MatchSegment> DiffMatch(std::string_view p_text, int64_t p_base,
                                    std::string_view q_text, int64_t q_base,
                                    const DiffOptions& options = DiffOptions());

/// \brief Splits `text` into line spans (newline included in each span,
/// offsets relative to the start of `text`).
std::vector<TextSpan> SplitLines(std::string_view text);

}  // namespace delex

#endif  // DELEX_TEXT_DIFF_H_
