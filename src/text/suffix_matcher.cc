#include "text/suffix_matcher.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "text/interval_set.h"

namespace delex {
namespace {

std::atomic<int64_t> g_truncated_total{0};

void NoteTruncation(size_t max_candidates) {
  g_truncated_total.fetch_add(1, std::memory_order_relaxed);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    DELEX_LOG(WARN) << "SuffixMatch candidate list truncated at "
                    << max_candidates
                    << " (raise DELEX_SUFFIX_MAX_CANDIDATES to keep more; "
                       "matches stay correct but may be less complete)";
  }
}

}  // namespace

int64_t SuffixCandidatesTruncatedTotal() {
  return g_truncated_total.load(std::memory_order_relaxed);
}

SuffixMatchOptions SuffixMatchOptions::FromEnv() {
  SuffixMatchOptions options;
  const char* env = std::getenv("DELEX_SUFFIX_MAX_CANDIDATES");
  if (env != nullptr && *env != '\0') {
    long long value = std::atoll(env);
    if (value > 0) {
      options.max_candidates = static_cast<size_t>(value);
    } else {
      DELEX_LOG(WARN) << "ignoring DELEX_SUFFIX_MAX_CANDIDATES='" << env
                      << "' (want a positive integer)";
    }
  }
  return options;
}

SuffixAutomaton::SuffixAutomaton(std::string_view text) {
  states_.reserve(2 * text.size() + 2);
  states_.emplace_back();  // root
  root_next_.fill(-1);
  int32_t last = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(text.size()); ++i) {
    unsigned char c = static_cast<unsigned char>(text[static_cast<size_t>(i)]);
    int32_t cur = static_cast<int32_t>(states_.size());
    states_.emplace_back();
    states_[static_cast<size_t>(cur)].len =
        states_[static_cast<size_t>(last)].len + 1;
    states_[static_cast<size_t>(cur)].first_end = static_cast<int32_t>(i);
    int32_t v = last;
    while (v >= 0 && Transition(v, c) < 0) {
      SetTransition(v, c, cur);
      v = states_[static_cast<size_t>(v)].link;
    }
    if (v < 0) {
      states_[static_cast<size_t>(cur)].link = 0;
    } else {
      int32_t u = Transition(v, c);
      if (states_[static_cast<size_t>(u)].len ==
          states_[static_cast<size_t>(v)].len + 1) {
        states_[static_cast<size_t>(cur)].link = u;
      } else {
        int32_t clone = static_cast<int32_t>(states_.size());
        states_.push_back(states_[static_cast<size_t>(u)]);
        states_[static_cast<size_t>(clone)].len =
            states_[static_cast<size_t>(v)].len + 1;
        // first_end inherited from u is still a valid (minimal) end position.
        while (v >= 0 && Transition(v, c) == u) {
          SetTransition(v, c, clone);
          v = states_[static_cast<size_t>(v)].link;
        }
        states_[static_cast<size_t>(u)].link = clone;
        states_[static_cast<size_t>(cur)].link = clone;
      }
    }
    last = cur;
  }
  for (int b = 0; b < 256; ++b) {
    if (root_next_[static_cast<size_t>(b)] >= 0) {
      root_alphabet_.Add(static_cast<unsigned char>(b));
    }
  }
}

int32_t SuffixAutomaton::Transition(int32_t state, unsigned char c) const {
  if (state == 0) return root_next_[c];
  const auto& next = states_[static_cast<size_t>(state)].next;
  auto it = std::lower_bound(
      next.begin(), next.end(), c,
      [](const std::pair<unsigned char, int32_t>& edge, unsigned char key) {
        return edge.first < key;
      });
  if (it != next.end() && it->first == c) return it->second;
  return -1;
}

void SuffixAutomaton::SetTransition(int32_t state, unsigned char c,
                                    int32_t to) {
  if (state == 0) {
    root_next_[c] = to;
    return;
  }
  auto& next = states_[static_cast<size_t>(state)].next;
  auto it = std::lower_bound(
      next.begin(), next.end(), c,
      [](const std::pair<unsigned char, int32_t>& edge, unsigned char key) {
        return edge.first < key;
      });
  if (it != next.end() && it->first == c) {
    it->second = to;
    return;
  }
  next.emplace(it, c, to);
}

int64_t SuffixAutomaton::LongestCommonSubstring(std::string_view query) const {
  int64_t best = 0;
  ScanMaximalMatches(query, 1, [&](int64_t, int64_t, int64_t len) {
    best = std::max(best, len);
  });
  return best;
}

std::vector<MatchSegment> SuffixMatch(std::string_view p_text, int64_t p_base,
                                      std::string_view q_text, int64_t q_base,
                                      const SuffixMatchOptions& options) {
  std::vector<MatchSegment> out;
  if (p_text.empty() || q_text.empty()) return out;

  struct Candidate {
    int64_t p_start;
    int64_t q_start;
    int64_t length;
  };
  std::vector<Candidate> candidates;
  bool truncated = false;

  SuffixAutomaton automaton(q_text);
  automaton.ScanMaximalMatches(
      p_text, options.min_match_length,
      [&](int64_t p_end, int64_t q_end, int64_t len) {
        if (candidates.size() >= options.max_candidates) {
          truncated = true;
          return;
        }
        candidates.push_back({p_end - len + 1, q_end - len + 1, len});
      });
  if (truncated) NoteTruncation(options.max_candidates);

  // Greedy tiling: longest candidates first, rejecting any that overlaps an
  // already-claimed stretch on either side. Ties broken by position to keep
  // the result deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.length != b.length) return a.length > b.length;
              if (a.p_start != b.p_start) return a.p_start < b.p_start;
              return a.q_start < b.q_start;
            });

  IntervalSet p_claimed;
  IntervalSet q_claimed;
  for (const Candidate& c : candidates) {
    TextSpan p_span(c.p_start, c.p_start + c.length);
    TextSpan q_span(c.q_start, c.q_start + c.length);
    bool p_free = p_claimed.Intersect(IntervalSet({p_span})).Empty();
    bool q_free = q_claimed.Intersect(IntervalSet({q_span})).Empty();
    if (!p_free || !q_free) continue;
    p_claimed.Add(p_span);
    q_claimed.Add(q_span);
    out.emplace_back(p_span.Shift(p_base), q_span.Shift(q_base));
  }

  std::sort(out.begin(), out.end(),
            [](const MatchSegment& a, const MatchSegment& b) {
              return a.p.start < b.p.start;
            });
  return out;
}

}  // namespace delex
