#include "text/interval_set.h"

#include <algorithm>

namespace delex {

IntervalSet::IntervalSet(std::vector<TextSpan> spans)
    : spans_(std::move(spans)), normalized_(false) {}

void IntervalSet::Add(const TextSpan& span) {
  spans_.push_back(span);
  normalized_ = false;
}

void IntervalSet::Normalize() const {
  if (normalized_) return;
  std::vector<TextSpan> merged;
  std::erase_if(spans_, [](const TextSpan& s) { return s.empty(); });
  std::sort(spans_.begin(), spans_.end());
  for (const TextSpan& s : spans_) {
    if (!merged.empty() && s.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, s.end);
    } else {
      merged.push_back(s);
    }
  }
  spans_ = std::move(merged);
  normalized_ = true;
}

const std::vector<TextSpan>& IntervalSet::spans() const {
  Normalize();
  return spans_;
}

int64_t IntervalSet::TotalLength() const {
  int64_t total = 0;
  for (const TextSpan& s : spans()) total += s.length();
  return total;
}

bool IntervalSet::ContainsWithinOne(const TextSpan& span) const {
  const auto& sp = spans();
  // First interval whose end is past span.start could contain it.
  auto it = std::lower_bound(
      sp.begin(), sp.end(), span.start,
      [](const TextSpan& s, int64_t pos) { return s.end <= pos; });
  return it != sp.end() && it->Contains(span);
}

bool IntervalSet::ContainsPoint(int64_t pos) const {
  return ContainsWithinOne(TextSpan(pos, pos + 1));
}

IntervalSet IntervalSet::ComplementWithin(const TextSpan& bounds) const {
  std::vector<TextSpan> out;
  int64_t cursor = bounds.start;
  for (const TextSpan& s : spans()) {
    TextSpan clipped = s.Intersect(bounds);
    if (clipped.empty()) continue;
    if (clipped.start > cursor) out.emplace_back(cursor, clipped.start);
    cursor = std::max(cursor, clipped.end);
  }
  if (cursor < bounds.end) out.emplace_back(cursor, bounds.end);
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Expand(int64_t amount, const TextSpan& bounds) const {
  std::vector<TextSpan> out;
  out.reserve(spans().size());
  for (const TextSpan& s : spans()) {
    TextSpan grown = s.Expand(amount, bounds);
    if (!grown.empty()) out.push_back(grown);
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  const auto& a = spans();
  const auto& b = other.spans();
  std::vector<TextSpan> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    TextSpan cross = a[i].Intersect(b[j]);
    if (!cross.empty()) out.push_back(cross);
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<TextSpan> all = spans();
  const auto& b = other.spans();
  all.insert(all.end(), b.begin(), b.end());
  return IntervalSet(std::move(all));
}

}  // namespace delex
