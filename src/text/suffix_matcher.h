#ifndef DELEX_TEXT_SUFFIX_MATCHER_H_
#define DELEX_TEXT_SUFFIX_MATCHER_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/simd.h"
#include "text/match_segment.h"

namespace delex {

/// \brief Options for the suffix-tree-style matcher (ST in the paper).
struct SuffixMatchOptions {
  /// Minimum length of a reported common substring. Short accidental
  /// matches (single words) are useless for reuse — the β-shrunken interior
  /// would be empty — and bloat the segment list.
  int64_t min_match_length = 24;

  /// Safety valve on the number of candidate maximal matches considered by
  /// the greedy tiling step. Hitting it truncates the candidate list (the
  /// result is still correct, just potentially less complete); truncation
  /// bumps the process-wide tally below and the engine WARNs once per run.
  size_t max_candidates = 1 << 16;

  /// Defaults overridden by the environment: DELEX_SUFFIX_MAX_CANDIDATES
  /// (positive integer) replaces max_candidates.
  static SuffixMatchOptions FromEnv();
};

/// \brief Finds common substrings between region `p_text` (absolute offset
/// `p_base`) and region `q_text` (offset `q_base`).
///
/// Implementation: a suffix automaton over the old region is streamed with
/// the new region (O(|R| + |S|) construction and matching, the bound the
/// paper quotes for ST), producing locally-maximal common substrings; a
/// greedy tiling pass then selects a set of mutually non-overlapping
/// segments, longest first. Unlike DiffMatch, relocated blocks are found —
/// the returned segments may cross.
std::vector<MatchSegment> SuffixMatch(
    std::string_view p_text, int64_t p_base, std::string_view q_text,
    int64_t q_base, const SuffixMatchOptions& options = SuffixMatchOptions());

/// Process-wide count of SuffixMatch calls whose candidate list was
/// truncated at max_candidates. Monotone; the engine publishes deltas to
/// the metrics registry (the text layer cannot depend on obs).
int64_t SuffixCandidatesTruncatedTotal();

/// \brief Suffix automaton over a byte string; exposed for testing and for
/// longest-common-substring queries.
class SuffixAutomaton {
 public:
  explicit SuffixAutomaton(std::string_view text);

  /// Length of the longest substring of the indexed text that is also a
  /// substring of `query`.
  int64_t LongestCommonSubstring(std::string_view query) const;

  /// Streams `query`, invoking `sink(query_end, indexed_end, length)` for
  /// every locally-maximal common substring with length >= min_length.
  /// Positions are inclusive end indices into query / indexed text.
  template <typename Sink>
  void ScanMaximalMatches(std::string_view query, int64_t min_length,
                          Sink&& sink) const;

  size_t NumStates() const { return states_.size(); }

 private:
  struct State {
    int32_t len = 0;
    int32_t link = -1;
    int32_t first_end = -1;  // minimal end position (inclusive) in the text
    // Edges sorted by byte so Transition is a binary search; non-root
    // states have few edges (amortized O(1) per construction step), while
    // the root — which can fan out to all 256 bytes and is re-entered on
    // every match reset — uses the dense table below instead.
    std::vector<std::pair<unsigned char, int32_t>> next;
  };

  int32_t Transition(int32_t state, unsigned char c) const;
  void SetTransition(int32_t state, unsigned char c, int32_t to);

  std::vector<State> states_;
  std::array<int32_t, 256> root_next_;  // state 0's edges, O(1) lookup
  simd::ByteSet root_alphabet_;         // bytes with a root transition
};

template <typename Sink>
void SuffixAutomaton::ScanMaximalMatches(std::string_view query,
                                         int64_t min_length,
                                         Sink&& sink) const {
  int32_t state = 0;
  int64_t length = 0;
  int32_t prev_state = 0;
  int64_t prev_length = 0;
  const int64_t n = static_cast<int64_t>(query.size());
  for (int64_t i = 0; i < n; ++i) {
    unsigned char c = static_cast<unsigned char>(query[static_cast<size_t>(i)]);
    while (state != 0 && Transition(state, c) < 0) {
      state = states_[static_cast<size_t>(state)].link;
      length = states_[static_cast<size_t>(state)].len;
    }
    int32_t to = Transition(state, c);
    bool root_miss = false;
    if (to >= 0) {
      state = to;
      ++length;
    } else {
      // The while loop above only stops on a missing transition when it
      // has fallen all the way back to the root, so state == 0 here.
      length = 0;
      root_miss = true;
    }
    // The match ending at i-1 was locally maximal iff it could not be
    // extended by query[i].
    if (prev_length >= min_length && length != prev_length + 1) {
      sink(i - 1, states_[static_cast<size_t>(prev_state)].first_end,
           prev_length);
    }
    prev_state = state;
    prev_length = length;
    if (root_miss && min_length > 0 && i + 1 < n) {
      // Batched character classing: while the next bytes have no root
      // transition the automaton stays parked at the root with length 0
      // and (min_length > 0) nothing can be sunk, so skip the whole run
      // with one SIMD membership scan. Behavior-preserving by the same
      // argument the per-byte loop would make, one byte at a time.
      size_t skip = simd::FindFirstInSet(
          static_cast<const unsigned char*>(
              static_cast<const void*>(query.data())) +
              i + 1,
          static_cast<size_t>(n - i - 1), root_alphabet_);
      i += static_cast<int64_t>(skip);  // loop ++i lands on the next member
    }
  }
  if (prev_length >= min_length) {
    sink(n - 1, states_[static_cast<size_t>(prev_state)].first_end,
         prev_length);
  }
}

}  // namespace delex

#endif  // DELEX_TEXT_SUFFIX_MATCHER_H_
