#ifndef DELEX_TEXT_INTERVAL_SET_H_
#define DELEX_TEXT_INTERVAL_SET_H_

#include <vector>

#include "common/span.h"

namespace delex {

/// \brief A normalized set of disjoint, sorted, non-empty text spans.
///
/// This is the workhorse of copy/extraction-region derivation (§5.3): the
/// copy-safe interiors form an IntervalSet; the extraction regions are its
/// complement expanded by α+β and re-normalized.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds a normalized set from arbitrary (possibly overlapping,
  /// unsorted, empty) spans.
  explicit IntervalSet(std::vector<TextSpan> spans);

  /// Adds a span; the set is re-normalized lazily on first read.
  void Add(const TextSpan& span);

  const std::vector<TextSpan>& spans() const;

  bool Empty() const { return spans().empty(); }
  int64_t TotalLength() const;

  /// True iff `span` is fully covered by a single member interval.
  bool ContainsWithinOne(const TextSpan& span) const;
  bool ContainsPoint(int64_t pos) const;

  /// Set complement relative to `bounds`.
  IntervalSet ComplementWithin(const TextSpan& bounds) const;

  /// Every interval grown by `amount` on each side, clipped to `bounds`,
  /// and re-merged.
  IntervalSet Expand(int64_t amount, const TextSpan& bounds) const;

  /// Pairwise intersection with another set.
  IntervalSet Intersect(const IntervalSet& other) const;

  /// Union with another set.
  IntervalSet Union(const IntervalSet& other) const;

 private:
  void Normalize() const;

  mutable std::vector<TextSpan> spans_;
  mutable bool normalized_ = true;
};

}  // namespace delex

#endif  // DELEX_TEXT_INTERVAL_SET_H_
