#include "text/diff.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/simd.h"

namespace delex {
namespace {

// A line with its relative span and content hash; equality compares the
// hash first and falls back to bytes to rule out collisions. Lines inside
// the byte-proven common prefix/suffix (see DiffMatch) are never compared
// and carry hash 0 — both sides of any compared pair are always hashed.
struct Line {
  TextSpan span;  // relative to the region text
  uint64_t hash;
};

// Builds the Line vector, hashing only indices in [hash_begin, hash_end);
// the rest are already known byte-equal and skipping their hashes is the
// bulk of the win on slowly-changing pages.
std::vector<Line> HashLines(std::string_view text,
                            const std::vector<TextSpan>& spans,
                            size_t hash_begin, size_t hash_end) {
  std::vector<Line> lines;
  lines.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const TextSpan& s = spans[i];
    uint64_t hash = 0;
    if (i >= hash_begin && i < hash_end) {
      hash = Fnv1a64(text.substr(static_cast<size_t>(s.start),
                                 static_cast<size_t>(s.length())));
    }
    lines.push_back({s, hash});
  }
  return lines;
}

bool LinesEqual(std::string_view p_text, const Line& a, std::string_view q_text,
                const Line& b) {
  if (a.hash != b.hash || a.span.length() != b.span.length()) return false;
  return simd::BytesEqual(p_text.data() + a.span.start,
                          q_text.data() + b.span.start,
                          static_cast<size_t>(a.span.length()));
}

// Appends the char-level segment covering matched line pair (pi, qi),
// coalescing with the previous segment when adjacent on both sides.
void EmitMatchedLine(const std::vector<Line>& p_lines,
                     const std::vector<Line>& q_lines, int64_t p_base,
                     int64_t q_base, size_t pi, size_t qi,
                     std::vector<MatchSegment>* out) {
  TextSpan p_span = p_lines[pi].span.Shift(p_base);
  TextSpan q_span = q_lines[qi].span.Shift(q_base);
  if (!out->empty() && out->back().p.end == p_span.start &&
      out->back().q.end == q_span.start) {
    out->back().p.end = p_span.end;
    out->back().q.end = q_span.end;
  } else {
    out->emplace_back(p_span, q_span);
  }
}

}  // namespace

std::vector<TextSpan> SplitLines(std::string_view text) {
  std::vector<TextSpan> out;
  const size_t n = text.size();
  size_t start = 0;
  while (start < n) {
    size_t nl = simd::FindByte(text.data() + start, n - start, '\n');
    size_t end = start + nl;
    if (end < n) ++end;  // include the terminating '\n'
    out.emplace_back(static_cast<int64_t>(start), static_cast<int64_t>(end));
    start = end;
  }
  return out;
}

std::vector<MatchSegment> DiffMatch(std::string_view p_text, int64_t p_base,
                                    std::string_view q_text, int64_t q_base,
                                    const DiffOptions& options) {
  std::vector<MatchSegment> out;
  if (p_text.empty() || q_text.empty()) return out;

  std::vector<TextSpan> p_spans = SplitLines(p_text);
  std::vector<TextSpan> q_spans = SplitLines(q_text);
  const size_t np = p_spans.size();
  const size_t nq = q_spans.size();

  // Byte-level SIMD bounds for the line trim loops. Every '\n'-terminated
  // line lying wholly inside the common byte prefix (B bytes) is equal on
  // both sides, so the per-line loop can start past them; symmetrically
  // for the common byte suffix (S bytes, capped so it cannot overlap the
  // prefix). The last byte of the suffix window is excluded when counting
  // so a trailing line is only claimed together with the '\n' *preceding*
  // it. The scalar per-line loops below then extend past the bounds (a
  // final unterminated line, a '\n' landing exactly on the boundary), so
  // the trim result is exactly what the old all-scalar loops produced.
  const size_t min_len = std::min(p_text.size(), q_text.size());
  const size_t byte_prefix = simd::CommonPrefix(p_text.data(), q_text.data(),
                                                min_len);
  const size_t byte_suffix =
      simd::CommonSuffix(p_text.data(), p_text.size(), q_text.data(),
                         q_text.size(), min_len - byte_prefix);
  const size_t prefix_bound = simd::CountByte(p_text.data(), byte_prefix, '\n');
  const size_t suffix_bound =
      byte_suffix > 1
          ? simd::CountByte(p_text.data() + (p_text.size() - byte_suffix),
                            byte_suffix - 1, '\n')
          : 0;

  // On slowly changing pages the trimmed region is nearly everything, and
  // skipping its per-line hashes is most of the speedup.
  std::vector<Line> p_lines =
      HashLines(p_text, p_spans, prefix_bound, np - suffix_bound);
  std::vector<Line> q_lines =
      HashLines(q_text, q_spans, prefix_bound, nq - suffix_bound);

  size_t prefix = prefix_bound;
  for (size_t i = 0; i < prefix; ++i) {
    EmitMatchedLine(p_lines, q_lines, p_base, q_base, i, i, &out);
  }
  while (prefix < np && prefix < nq &&
         LinesEqual(p_text, p_lines[prefix], q_text, q_lines[prefix])) {
    EmitMatchedLine(p_lines, q_lines, p_base, q_base, prefix, prefix, &out);
    ++prefix;
  }
  size_t suffix = suffix_bound;
  while (prefix + suffix < np && prefix + suffix < nq &&
         LinesEqual(p_text, p_lines[np - 1 - suffix], q_text,
                    q_lines[nq - 1 - suffix])) {
    ++suffix;
  }

  const int64_t n = static_cast<int64_t>(p_lines.size() - prefix - suffix);
  const int64_t m = static_cast<int64_t>(q_lines.size() - prefix - suffix);

  if (n > 0 && m > 0) {
    auto equal_mid = [&](int64_t x, int64_t y) {
      return LinesEqual(p_text, p_lines[prefix + static_cast<size_t>(x)],
                        q_text, q_lines[prefix + static_cast<size_t>(y)]);
    };

    // Myers O(ND) with full trace for backtracking.
    const int64_t max_d = std::min(n + m, options.max_edit_distance);
    const int64_t offset = max_d;
    std::vector<int64_t> v(static_cast<size_t>(2 * max_d + 1), 0);
    std::vector<std::vector<int64_t>> trace;
    int64_t found_d = -1;
    for (int64_t d = 0; d <= max_d && found_d < 0; ++d) {
      trace.push_back(v);
      for (int64_t k = -d; k <= d; k += 2) {
        int64_t x;
        if (k == -d ||
            (k != d && v[static_cast<size_t>(offset + k - 1)] <
                           v[static_cast<size_t>(offset + k + 1)])) {
          x = v[static_cast<size_t>(offset + k + 1)];  // insertion (down)
        } else {
          x = v[static_cast<size_t>(offset + k - 1)] + 1;  // deletion (right)
        }
        int64_t y = x - k;
        while (x < n && y < m && equal_mid(x, y)) {
          ++x;
          ++y;
        }
        v[static_cast<size_t>(offset + k)] = x;
        if (x >= n && y >= m) {
          found_d = d;
          break;
        }
      }
    }

    if (found_d >= 0) {
      // Backtrack, collecting matched (x, y) line pairs.
      std::vector<std::pair<int64_t, int64_t>> matched;
      int64_t x = n;
      int64_t y = m;
      for (int64_t d = found_d; d > 0 && (x > 0 || y > 0); --d) {
        const std::vector<int64_t>& pv = trace[static_cast<size_t>(d)];
        int64_t k = x - y;
        int64_t prev_k;
        if (k == -d || (k != d && pv[static_cast<size_t>(offset + k - 1)] <
                                      pv[static_cast<size_t>(offset + k + 1)])) {
          prev_k = k + 1;
        } else {
          prev_k = k - 1;
        }
        int64_t prev_x = pv[static_cast<size_t>(offset + prev_k)];
        int64_t prev_y = prev_x - prev_k;
        while (x > prev_x && y > prev_y) {
          matched.emplace_back(x - 1, y - 1);
          --x;
          --y;
        }
        if (prev_k == k + 1) {
          --y;  // was an insertion
        } else {
          --x;  // was a deletion
        }
        x = prev_x;
        y = prev_y;
      }
      while (x > 0 && y > 0) {  // snake at d == 0
        matched.emplace_back(x - 1, y - 1);
        --x;
        --y;
      }
      std::reverse(matched.begin(), matched.end());
      for (const auto& [mx, my] : matched) {
        EmitMatchedLine(p_lines, q_lines, p_base, q_base,
                        prefix + static_cast<size_t>(mx),
                        prefix + static_cast<size_t>(my), &out);
      }
    }
    // If the cutoff was hit the middle contributes nothing — like diff's
    // bail-out, UD then reports only the prefix/suffix matches.
  }

  for (size_t i = 0; i < suffix; ++i) {
    size_t pi = p_lines.size() - suffix + i;
    size_t qi = q_lines.size() - suffix + i;
    EmitMatchedLine(p_lines, q_lines, p_base, q_base, pi, qi, &out);
  }

  if (options.min_segment_length > 1) {
    std::erase_if(out, [&](const MatchSegment& s) {
      return s.length() < options.min_segment_length;
    });
  }
  return out;
}

}  // namespace delex
