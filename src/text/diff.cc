#include "text/diff.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace delex {
namespace {

// A line with its absolute span and content hash; equality compares the
// hash first and falls back to bytes to rule out collisions.
struct Line {
  TextSpan span;  // relative to the region text
  uint64_t hash;
};

std::vector<Line> HashLines(std::string_view text) {
  std::vector<Line> lines;
  for (const TextSpan& s : SplitLines(text)) {
    lines.push_back(
        {s, Fnv1a64(text.substr(static_cast<size_t>(s.start),
                                static_cast<size_t>(s.length())))});
  }
  return lines;
}

bool LinesEqual(std::string_view p_text, const Line& a, std::string_view q_text,
                const Line& b) {
  if (a.hash != b.hash || a.span.length() != b.span.length()) return false;
  return p_text.substr(static_cast<size_t>(a.span.start),
                       static_cast<size_t>(a.span.length())) ==
         q_text.substr(static_cast<size_t>(b.span.start),
                       static_cast<size_t>(b.span.length()));
}

// Appends the char-level segment covering matched line pair (pi, qi),
// coalescing with the previous segment when adjacent on both sides.
void EmitMatchedLine(const std::vector<Line>& p_lines,
                     const std::vector<Line>& q_lines, int64_t p_base,
                     int64_t q_base, size_t pi, size_t qi,
                     std::vector<MatchSegment>* out) {
  TextSpan p_span = p_lines[pi].span.Shift(p_base);
  TextSpan q_span = q_lines[qi].span.Shift(q_base);
  if (!out->empty() && out->back().p.end == p_span.start &&
      out->back().q.end == q_span.start) {
    out->back().p.end = p_span.end;
    out->back().q.end = q_span.end;
  } else {
    out->emplace_back(p_span, q_span);
  }
}

}  // namespace

std::vector<TextSpan> SplitLines(std::string_view text) {
  std::vector<TextSpan> out;
  int64_t start = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(text.size()); ++i) {
    if (text[static_cast<size_t>(i)] == '\n') {
      out.emplace_back(start, i + 1);
      start = i + 1;
    }
  }
  if (start < static_cast<int64_t>(text.size())) {
    out.emplace_back(start, static_cast<int64_t>(text.size()));
  }
  return out;
}

std::vector<MatchSegment> DiffMatch(std::string_view p_text, int64_t p_base,
                                    std::string_view q_text, int64_t q_base,
                                    const DiffOptions& options) {
  std::vector<MatchSegment> out;
  if (p_text.empty() || q_text.empty()) return out;

  std::vector<Line> p_lines = HashLines(p_text);
  std::vector<Line> q_lines = HashLines(q_text);

  // Trim the common prefix and suffix of the line sequences — on slowly
  // changing pages this does nearly all of the work.
  size_t prefix = 0;
  while (prefix < p_lines.size() && prefix < q_lines.size() &&
         LinesEqual(p_text, p_lines[prefix], q_text, q_lines[prefix])) {
    EmitMatchedLine(p_lines, q_lines, p_base, q_base, prefix, prefix, &out);
    ++prefix;
  }
  size_t suffix = 0;
  while (prefix + suffix < p_lines.size() && prefix + suffix < q_lines.size() &&
         LinesEqual(p_text, p_lines[p_lines.size() - 1 - suffix], q_text,
                    q_lines[q_lines.size() - 1 - suffix])) {
    ++suffix;
  }

  const int64_t n = static_cast<int64_t>(p_lines.size() - prefix - suffix);
  const int64_t m = static_cast<int64_t>(q_lines.size() - prefix - suffix);

  if (n > 0 && m > 0) {
    auto equal_mid = [&](int64_t x, int64_t y) {
      return LinesEqual(p_text, p_lines[prefix + static_cast<size_t>(x)],
                        q_text, q_lines[prefix + static_cast<size_t>(y)]);
    };

    // Myers O(ND) with full trace for backtracking.
    const int64_t max_d = std::min(n + m, options.max_edit_distance);
    const int64_t offset = max_d;
    std::vector<int64_t> v(static_cast<size_t>(2 * max_d + 1), 0);
    std::vector<std::vector<int64_t>> trace;
    int64_t found_d = -1;
    for (int64_t d = 0; d <= max_d && found_d < 0; ++d) {
      trace.push_back(v);
      for (int64_t k = -d; k <= d; k += 2) {
        int64_t x;
        if (k == -d ||
            (k != d && v[static_cast<size_t>(offset + k - 1)] <
                           v[static_cast<size_t>(offset + k + 1)])) {
          x = v[static_cast<size_t>(offset + k + 1)];  // insertion (down)
        } else {
          x = v[static_cast<size_t>(offset + k - 1)] + 1;  // deletion (right)
        }
        int64_t y = x - k;
        while (x < n && y < m && equal_mid(x, y)) {
          ++x;
          ++y;
        }
        v[static_cast<size_t>(offset + k)] = x;
        if (x >= n && y >= m) {
          found_d = d;
          break;
        }
      }
    }

    if (found_d >= 0) {
      // Backtrack, collecting matched (x, y) line pairs.
      std::vector<std::pair<int64_t, int64_t>> matched;
      int64_t x = n;
      int64_t y = m;
      for (int64_t d = found_d; d > 0 && (x > 0 || y > 0); --d) {
        const std::vector<int64_t>& pv = trace[static_cast<size_t>(d)];
        int64_t k = x - y;
        int64_t prev_k;
        if (k == -d || (k != d && pv[static_cast<size_t>(offset + k - 1)] <
                                      pv[static_cast<size_t>(offset + k + 1)])) {
          prev_k = k + 1;
        } else {
          prev_k = k - 1;
        }
        int64_t prev_x = pv[static_cast<size_t>(offset + prev_k)];
        int64_t prev_y = prev_x - prev_k;
        while (x > prev_x && y > prev_y) {
          matched.emplace_back(x - 1, y - 1);
          --x;
          --y;
        }
        if (prev_k == k + 1) {
          --y;  // was an insertion
        } else {
          --x;  // was a deletion
        }
        x = prev_x;
        y = prev_y;
      }
      while (x > 0 && y > 0) {  // snake at d == 0
        matched.emplace_back(x - 1, y - 1);
        --x;
        --y;
      }
      std::reverse(matched.begin(), matched.end());
      for (const auto& [mx, my] : matched) {
        EmitMatchedLine(p_lines, q_lines, p_base, q_base,
                        prefix + static_cast<size_t>(mx),
                        prefix + static_cast<size_t>(my), &out);
      }
    }
    // If the cutoff was hit the middle contributes nothing — like diff's
    // bail-out, UD then reports only the prefix/suffix matches.
  }

  for (size_t i = 0; i < suffix; ++i) {
    size_t pi = p_lines.size() - suffix + i;
    size_t qi = q_lines.size() - suffix + i;
    EmitMatchedLine(p_lines, q_lines, p_base, q_base, pi, qi, &out);
  }

  if (options.min_segment_length > 1) {
    std::erase_if(out, [&](const MatchSegment& s) {
      return s.length() < options.min_segment_length;
    });
  }
  return out;
}

}  // namespace delex
