#ifndef DELEX_TEXT_MATCH_SEGMENT_H_
#define DELEX_TEXT_MATCH_SEGMENT_H_

#include <ostream>
#include <vector>

#include "common/span.h"

namespace delex {

/// \brief An equal-length pair of spans, one in the new text ("p" side)
/// and one in the old text ("q" side), whose characters are identical.
///
/// Matchers (Figure 1 of the paper) produce lists of MatchSegments; region
/// derivation consumes them. Spans are in absolute page coordinates.
struct MatchSegment {
  TextSpan p;  ///< span in the current-snapshot page
  TextSpan q;  ///< span in the previous-snapshot page

  MatchSegment() = default;
  MatchSegment(TextSpan p_span, TextSpan q_span) : p(p_span), q(q_span) {}

  int64_t length() const { return p.length(); }

  /// Offset to add to a q-side position to land on the p side.
  int64_t Delta() const { return p.start - q.start; }

  bool operator==(const MatchSegment& other) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const MatchSegment& m) {
  return os << "p" << m.p.ToString() << "=q" << m.q.ToString();
}

/// Total matched length over a segment list.
inline int64_t TotalMatchedLength(const std::vector<MatchSegment>& segs) {
  int64_t total = 0;
  for (const MatchSegment& s : segs) total += s.length();
  return total;
}

}  // namespace delex

#endif  // DELEX_TEXT_MATCH_SEGMENT_H_
