#include "delex/paranoid.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "common/logging.h"
#include "common/simd.h"
#include "delex/engine.h"

namespace delex {
namespace paranoid {

bool Enabled() {
#ifdef DELEX_PARANOID_DEFAULT
  static constexpr bool kDefault = DELEX_PARANOID_DEFAULT != 0;
#else
  static constexpr bool kDefault = false;
#endif
  static const bool enabled = [] {
    const char* env = std::getenv("DELEX_PARANOID");
    if (env == nullptr || env[0] == '\0') return kDefault;
    return std::string_view(env) != "0";
  }();
  return enabled;
}

void CheckSegments(std::string_view p_content, const TextSpan& p_region,
                   std::string_view q_content, const TextSpan& q_region,
                   const std::vector<MatchSegment>& segments) {
  for (const MatchSegment& seg : segments) {
    DELEX_CHECK_MSG(seg.p.length() == seg.q.length(),
                    "segment sides differ in length: " << seg);
    DELEX_CHECK_MSG(!seg.p.empty(), "empty match segment: " << seg);
    DELEX_CHECK_MSG(p_region.Contains(seg.p),
                    "segment escapes p region " << p_region << ": " << seg);
    DELEX_CHECK_MSG(q_region.Contains(seg.q),
                    "segment escapes q region " << q_region << ": " << seg);
    std::string_view p_text = p_content.substr(
        static_cast<size_t>(seg.p.start), static_cast<size_t>(seg.p.length()));
    std::string_view q_text = q_content.substr(
        static_cast<size_t>(seg.q.start), static_cast<size_t>(seg.q.length()));
    DELEX_CHECK_MSG(p_text == q_text, "segment bytes differ: " << seg);
  }
}

void CheckDerivation(const RegionDerivation& derivation,
                     const TextSpan& p_region) {
  TextSpan prev_copy(p_region.start - 1, p_region.start - 1);
  for (const CopyRegion& copy : derivation.copy_regions) {
    DELEX_CHECK_MSG(p_region.Contains(copy.p_interior),
                    "copy interior escapes region " << p_region << ": "
                                                    << copy.p_interior);
    DELEX_CHECK_MSG(copy.p_interior == copy.q_interior.Shift(copy.delta),
                    "copy interiors disagree through delta " << copy.delta);
    DELEX_CHECK_MSG(copy.p_interior.start >= prev_copy.end,
                    "copy interiors overlap or regress: "
                        << prev_copy << " then " << copy.p_interior);
    prev_copy = copy.p_interior;
  }
  TextSpan prev_ext(p_region.start - 1, p_region.start - 1);
  for (const TextSpan& sub : derivation.extraction_regions.spans()) {
    DELEX_CHECK_MSG(p_region.Contains(sub),
                    "extraction region escapes " << p_region << ": " << sub);
    DELEX_CHECK_MSG(sub.start >= prev_ext.end,
                    "extraction regions overlap or regress: "
                        << prev_ext << " then " << sub);
    prev_ext = sub;
  }
  for (const TextSpan& safe : derivation.p_safe.spans()) {
    DELEX_CHECK_MSG(p_region.Contains(safe),
                    "safe interior escapes region " << p_region << ": "
                                                    << safe);
  }
}

void CheckCopiedMention(const CopyRegion& copy, const Tuple& relocated,
                        const TextSpan& p_region) {
  TextSpan envelope = SpanEnvelope(relocated);
  if (envelope.empty()) return;  // span-free tuple: nothing to bound
  DELEX_CHECK_MSG(copy.p_interior.Contains(envelope),
                  "copied mention " << envelope
                                    << " escapes its safe interior "
                                    << copy.p_interior);
  DELEX_CHECK_MSG(p_region.Contains(envelope),
                  "copied mention " << envelope << " escapes input region "
                                    << p_region);
}

void CheckPageGroupOrdinals(int64_t did,
                            const std::vector<InputTupleRec>& inputs,
                            const std::vector<OutputTupleRec>& outputs) {
  for (size_t i = 0; i < inputs.size(); ++i) {
    DELEX_CHECK_MSG(inputs[i].tid == static_cast<int64_t>(i),
                    "input ordinals not dense at " << i << " (tid "
                                                   << inputs[i].tid << ")");
    DELEX_CHECK_MSG(inputs[i].did == did,
                    "input record did " << inputs[i].did
                                        << " leaked across page " << did);
  }
  for (const OutputTupleRec& out : outputs) {
    DELEX_CHECK_MSG(
        out.itid >= 0 && out.itid < static_cast<int64_t>(inputs.size()),
        "output itid " << out.itid << " names no input of page " << did);
    DELEX_CHECK_MSG(out.did == did, "output record did "
                                        << out.did << " leaked across page "
                                        << did);
  }
}

void CheckRawSlice(const RawPageSlice& slice) {
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
  Status st = DecodeRawPageSlice(slice, /*did=*/0, &inputs, &outputs);
  DELEX_CHECK_MSG(st.ok(),
                  "raw slice does not decode: " << st.ToString());
  DELEX_CHECK_MSG(static_cast<int64_t>(inputs.size()) == slice.n_inputs,
                  "raw slice input count " << inputs.size() << " vs "
                                           << slice.n_inputs);
  DELEX_CHECK_MSG(static_cast<int64_t>(outputs.size()) == slice.n_outputs,
                  "raw slice output count " << outputs.size() << " vs "
                                            << slice.n_outputs);
  CheckPageGroupOrdinals(0, inputs, outputs);
}

namespace {

/// Canonical multiset form of a result set: sorted by TupleLess.
std::vector<Tuple> Canonical(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end(), TupleLess);
  return rows;
}

}  // namespace

Status DifferentialOracle(const xlog::PlanNodePtr& plan,
                          const std::vector<Snapshot>& series,
                          const MatcherAssignment& assignment,
                          const std::string& scratch_dir) {
  struct Config {
    const char* name;
    int num_threads;
    bool disable_fast_path;
    bool force_scalar_simd;
  };
  const Config configs[] = {
      {"serial", 1, false, false},
      {"parallel", 3, false, false},
      {"no-fast-path", 1, true, false},
      // simd-on == simd-off: the vectorized kernels must be byte-identical
      // to the scalar fallback (DELEX_SIMD=0 equivalence, in-process).
      {"simd-off", 1, false, true},
  };
  std::vector<std::vector<std::vector<Tuple>>> per_config;
  for (const Config& config : configs) {
    std::optional<simd::ScopedLevelOverride> scalar_guard;
    if (config.force_scalar_simd) {
      scalar_guard.emplace(simd::Level::kScalar);
    }
    DelexEngine::Options options;
    options.work_dir = scratch_dir + "/oracle-" + config.name;
    options.num_threads = config.num_threads;
    options.disable_page_fast_path = config.disable_fast_path;
    DelexEngine engine(plan, options);
    DELEX_RETURN_NOT_OK(engine.Init());
    std::vector<std::vector<Tuple>> snapshots;
    for (size_t i = 0; i < series.size(); ++i) {
      DELEX_ASSIGN_OR_RETURN(
          std::vector<Tuple> rows,
          engine.RunSnapshot(series[i], i > 0 ? &series[i - 1] : nullptr,
                             assignment, nullptr));
      snapshots.push_back(Canonical(std::move(rows)));
    }
    per_config.push_back(std::move(snapshots));
  }
  for (size_t c = 1; c < per_config.size(); ++c) {
    for (size_t i = 0; i < per_config[c].size(); ++i) {
      if (per_config[c][i] != per_config[0][i]) {
        return Status::Corruption(
            std::string("differential oracle: ") + configs[c].name +
            " diverges from " + configs[0].name + " at snapshot " +
            std::to_string(i));
      }
    }
  }
  return Status::OK();
}

}  // namespace paranoid
}  // namespace delex
