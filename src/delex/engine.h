#ifndef DELEX_DELEX_ENGINE_H_
#define DELEX_DELEX_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "delex/ie_unit.h"
#include "delex/run_stats.h"
#include "matcher/matcher.h"
#include "storage/result_cache.h"
#include "storage/reuse_file.h"
#include "storage/snapshot.h"
#include "xlog/plan.h"

namespace delex {

/// \brief The end-to-end Delex executor (§7).
///
/// One engine instance owns the reuse files of one (program, corpus)
/// stream. Feed it consecutive snapshots:
///
///   DelexEngine engine(plan, {.work_dir = "/tmp/delex"});
///   engine.Init();
///   engine.RunSnapshot(s0, nullptr, assignment0, &stats0);  // capture only
///   engine.RunSnapshot(s1, &s0, assignment1, &stats1);      // reuse + capture
///
/// Each run scans the current snapshot once, page by page, in snapshot
/// order; each IE unit's reuse files from the previous run are scanned
/// strictly sequentially alongside (§5.2). The run captures fresh reuse
/// files for the next snapshot (§4). Output tuples match from-scratch
/// execution exactly (Theorem 1) for extractors honoring their declared
/// (α, β).
class DelexEngine {
 public:
  struct Options {
    /// Directory for reuse files (created if absent).
    std::string work_dir = "/tmp/delex-work";

    /// Worker threads for page evaluation. Pages are mutually independent
    /// (each carries its own MatchContext), so the engine runs the
    /// per-page plan walk on a fixed ThreadPool: a reader stage keeps each
    /// reuse file's strictly-forward scan on the submitting thread, and an
    /// ordered write-back stage commits captures in snapshot page order,
    /// so results and next-generation reuse files are byte-identical at
    /// every thread count. 1 = serial in-caller execution (the exact
    /// legacy path, no pool); 0 = one worker per hardware thread. Ignored
    /// when `shared_pool` is set.
    int num_threads = 1;

    /// Worker pool shared with other engines (non-owning; must outlive the
    /// engine). When set, page-evaluation tasks are submitted here instead
    /// of a run-local pool, so N sharded engines × M pages never
    /// oversubscribe the machine: the pool's width bounds total compute
    /// while each engine keeps its own reader-prefetch and ordered
    /// write-back stages on the calling thread. Run completion is tracked
    /// per engine (ThreadPool::Wait would block on *other* engines'
    /// tasks), and results/reuse files remain byte-identical to serial
    /// execution — the ordered write-back commits in snapshot page order
    /// regardless of which pool ran the page.
    ThreadPool* shared_pool = nullptr;

    /// Maximum old input regions matched per new input region when no
    /// exact-content candidate exists (ŝ of the cost model).
    int max_match_candidates = 2;

    /// Disable the exact-content fast path (forces the assigned matcher to
    /// run even on unchanged regions; used by ablation benches).
    bool disable_exact_fast_path = false;

    /// Disable the whole-page identical fast path: byte-identical pages
    /// are then evaluated like any other (region-level reuse still
    /// applies). The fast path short-circuits evaluation entirely for
    /// pages whose content digest and bytes match their previous version —
    /// reuse records relocate raw (zero decode / zero re-encode) and final
    /// rows come from the per-generation page result cache. Used by
    /// equivalence tests and the identical-fraction bench. Like
    /// disable_exact_fast_path, this gates only the *consuming* side:
    /// digests and the result cache are still captured, so a later run
    /// (e.g. after Resume) can enable the fast path against this
    /// generation's files.
    bool disable_page_fast_path = false;

    /// Disable σ/π folding: reuse at bare-blackbox level instead of IE-unit
    /// level (the §4 ablation).
    bool fold_unit_operators = true;

    /// If non-empty, Init() starts the process-wide trace recorder writing
    /// Chrome-trace/Perfetto JSON here (equivalent to the DELEX_TRACE env
    /// var; the first session wins — tracing is process-global). Every
    /// pipeline stage, matcher call, extractor invocation, and reuse-file
    /// I/O emits DELEX_TRACE_SPAN events; with tracing off each span site
    /// costs one predicted branch.
    std::string trace_path;
  };

  DelexEngine(xlog::PlanNodePtr plan, Options options);

  /// Analyzes IE units; must be called once before RunSnapshot.
  Status Init();

  const xlog::PlanNodePtr& plan() const { return plan_; }
  const UnitAnalysis& analysis() const { return analysis_; }
  size_t NumUnits() const { return analysis_.units.size(); }

  /// Executes the plan over `current`. `previous` is the prior snapshot
  /// (null for the first run — everything extracts from scratch but
  /// results are still captured). `assignment` maps each IE unit to a
  /// matcher; it is ignored when `previous` is null.
  ///
  /// Returns the result tuples, each prefixed with the page's did.
  Result<std::vector<Tuple>> RunSnapshot(const Snapshot& current,
                                         const Snapshot* previous,
                                         const MatcherAssignment& assignment,
                                         RunStats* stats);

  /// Number of completed runs (also the reuse-file generation counter).
  int generation() const { return generation_; }

  /// Resumes an interrupted stream: positions the engine as if
  /// `generation` runs had completed in this work_dir, so the next
  /// RunSnapshot consumes the reuse files that run left behind. Fails
  /// unless those files exist. Call after Init(), before any RunSnapshot.
  Status Resume(int generation);

 private:
  struct PageContext;
  struct PageReuse;
  struct PageSlot;
  struct RunState;

  /// Effective worker count for this run (resolves num_threads == 0).
  int EffectiveThreads() const;

  /// Drains each unit's reuse reader for `q_did` into `*reuse` (one
  /// forward seek per unit — §5.2). Must be called from the single reader
  /// stage, in snapshot page order. A unit whose previous-generation bytes
  /// fail validation is dropped for the rest of the run (its pages
  /// re-extract from scratch) — corrupt reuse input degrades, it never
  /// fails the run or miscomputes. `stats` is the current page's shard.
  Status PrefetchPageReuse(int64_t q_did, std::vector<PageReuse>* reuse,
                           RunStats* stats);

  /// Marks unit `u`'s previous-generation reader unusable after `cause`
  /// (logged + counted); subsequent pages see no reuse for that unit.
  void DropCorruptReader(size_t u, const Status& cause, RunStats* stats);

  /// Reader-stage entry point for one slot, called in snapshot page order.
  /// For a fast-path slot (`slot->identical`), recovers the page's result
  /// rows from the previous generation's result cache and lifts each
  /// unit's reuse records as raw slices; any missing piece demotes the
  /// slot tier by tier (raw copy → decode-copy → full evaluation) so
  /// degradation never miscomputes. For every other slot, prefetches the
  /// decoded per-unit reuse tuples.
  Status PrefetchSlot(PageSlot* slot);

  /// Evaluates one page end to end (match → copy → extract → chain
  /// replay). Const: all mutable state — capture buffers, stats shard,
  /// match cache — lives in the caller-owned PageContext, so any number
  /// of pages can run concurrently.
  Result<std::vector<Tuple>> EvalPage(PageContext* page_ctx) const;

  /// Commits one page: per-unit capture buffers (or raw slices, for
  /// fast-path pages) are appended to the reuse writers, and the page's
  /// result rows to this generation's result cache. Caller must serialize
  /// commits in snapshot page order (the ordered write-back stage).
  Status CommitPage(PageSlot* slot);

  Result<std::vector<Tuple>> EvalNode(const xlog::PlanNode& node,
                                      PageContext* page_ctx) const;
  Result<std::vector<Tuple>> EvalUnit(const IEUnit& unit,
                                      PageContext* page_ctx) const;

  /// Applies the unit's folded σ/π chain to (input ++ blackbox output);
  /// returns false if a folded σ rejects.
  Result<bool> ReplayChain(const IEUnit& unit, const Tuple& input_tuple,
                           const Tuple& blackbox_output,
                           std::string_view page_text,
                           Tuple* final_tuple) const;

  Status RunPagesSerial(std::vector<PageSlot>* slots);
  Status RunPagesParallel(int num_threads, std::vector<PageSlot>* slots);

  std::string ReusePathPrefix(int unit_index, int generation) const;
  std::string ResultCachePath(int generation) const;

  xlog::PlanNodePtr plan_;
  Options options_;
  UnitAnalysis analysis_;
  bool initialized_ = false;
  int generation_ = 0;

  // Per-run state. The writers/readers are touched only by the ordered
  // write-back and reader stages respectively; workers see them never.
  std::vector<std::unique_ptr<UnitReuseWriter>> writers_;
  std::vector<std::unique_ptr<UnitReuseReader>> readers_;
  // Per-unit reader health: 0 after the unit's previous-generation bytes
  // failed validation (open or mid-scan). A dropped reader's pages extract
  // from scratch for the rest of the run.
  std::vector<char> reader_ok_;
  // Page result cache: written for every page each run; the previous
  // generation's cache is read by the fast path. `result_reader_` is null
  // when the fast path is disabled, on the first generation, or when the
  // previous cache is missing/corrupt (all identical pages then evaluate
  // normally — degrade, never miscompute).
  std::unique_ptr<ResultCacheWriter> result_writer_;
  std::unique_ptr<ResultCacheReader> result_reader_;
  const MatcherAssignment* assignment_ = nullptr;
};

}  // namespace delex

#endif  // DELEX_DELEX_ENGINE_H_
