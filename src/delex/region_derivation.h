#ifndef DELEX_DELEX_REGION_DERIVATION_H_
#define DELEX_DELEX_REGION_DERIVATION_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "text/interval_set.h"
#include "text/match_segment.h"

namespace delex {

/// \brief One copy opportunity: mentions recorded against `q_interior`
/// (belonging to old input tuple `old_tid`) relocate by `delta` into the
/// new page.
struct CopyRegion {
  TextSpan q_interior;  ///< safe interior, in old-page coordinates
  TextSpan p_interior;  ///< the same interior, in new-page coordinates
  int64_t delta = 0;    ///< p position − q position
  int64_t old_tid = 0;  ///< tid of the old input tuple this match came from
};

/// \brief A matcher result annotated with the old input region it matched
/// against (one new region can be matched against several old regions).
struct TaggedSegment {
  MatchSegment segment;
  TextSpan q_region;
  int64_t old_tid = 0;
};

/// \brief The outcome of matching one new input region under (α, β):
/// where to copy from, and where extraction must still run (§5.3).
struct RegionDerivation {
  std::vector<CopyRegion> copy_regions;

  /// Union of the p-side interiors — a mention whose envelope lies inside
  /// is satisfied by copying, so re-extracted duplicates are suppressed
  /// against this set.
  IntervalSet p_safe;

  /// Maximal sub-regions of the new input region to run the blackbox on.
  IntervalSet extraction_regions;
};

/// \brief Derives copy and extraction regions for new region `p_region`
/// from matcher outputs against one or more old regions.
///
/// Safety rule (reconstruction of Cyclex's derivation, §3/§5.3): a mention
/// with envelope e is copyable iff its β-expanded window lies inside a
/// single matched segment; window clipping at a region edge is permitted
/// only where the segment abuts the corresponding edge of *both* regions
/// (so the extractor sees the same "start/end of input" on both sides).
/// Equivalently: e must lie in the segment's interior shrunk by β on every
/// non-edge-aligned side. Interiors are additionally shrunk by ≥1 so
/// adjacent interiors never touch — a mention straddling two interiors
/// must then cross uncovered ground and is guaranteed to be re-extracted.
///
/// Extraction regions are the complement of the interiors expanded by
/// α + β: any non-copyable mention (length < α) has a character outside
/// every interior, hence its whole β-window falls inside one expanded
/// complement piece, where from-scratch extraction behaves exactly as on
/// the full region.
///
/// Segments are clipped to the regions and made disjoint on the p side;
/// non-equal-length segments are rejected by DELEX_CHECK.
RegionDerivation DeriveRegionsTagged(const TextSpan& p_region,
                                     std::vector<TaggedSegment> segments,
                                     int64_t alpha, int64_t beta);

/// \brief Single-old-region convenience wrapper (used by tests and by the
/// leaf-unit fast path).
RegionDerivation DeriveRegions(const TextSpan& p_region,
                               const TextSpan& q_region,
                               const std::vector<MatchSegment>& segments,
                               int64_t alpha, int64_t beta,
                               int64_t old_tid = 0);

/// \brief True iff the mention envelope `e_q` (old-page coordinates) is
/// safely copyable through `copy`. Tuples without spans (empty envelope)
/// are copyable only when the interior covers the entire old region.
bool EnvelopeCopyable(const CopyRegion& copy, const TextSpan& e_q,
                      const TextSpan& q_region);

}  // namespace delex

#endif  // DELEX_DELEX_REGION_DERIVATION_H_
