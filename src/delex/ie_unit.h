#ifndef DELEX_DELEX_IE_UNIT_H_
#define DELEX_DELEX_IE_UNIT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xlog/plan.h"

namespace delex {

/// \brief An IE unit (Definition 5): a maximal path of σ/π operators
/// applied to an IE blackbox.
///
/// Reuse is captured and replayed at this granularity. A σ folds into the
/// unit only when its predicate reads nothing but the blackbox's own
/// outputs (and literals): a σ that inspects the unit's *input* columns —
/// e.g. containsStr(paragraph, "grossed") — stays outside, because its
/// verdict can change even when the mention's β-window is unchanged, which
/// would poison captured results. π always folds. ⋈ never folds (it would
/// break the wholesale transfer of (α, β) from the blackbox — see §4).
struct IEUnit {
  /// Dense unit index (0-based, bottom-up document order).
  int index = 0;

  /// The unit's topmost node (whose outputs are the unit's outputs).
  xlog::PlanNodePtr top;

  /// The IE blackbox node at the bottom of the unit.
  xlog::PlanNodePtr ie_node;

  /// ie_node's input subtree.
  xlog::PlanNodePtr input;

  /// Folded operator chain from ie_node (inclusive, first) up to top
  /// (inclusive, last).
  std::vector<xlog::PlanNodePtr> chain;

  /// Scope/context transferred wholesale from the blackbox (§4).
  int64_t alpha = 0;
  int64_t beta = 0;

  std::string name;  ///< "<extractor>#<node id>"
};

/// \brief The unit decomposition of an execution tree.
struct UnitAnalysis {
  std::vector<IEUnit> units;  ///< bottom-up (post-order of unit tops)

  /// Maps a node's id to the unit it tops (unit index), or absent.
  std::unordered_map<int, int> unit_of_top;

  /// Maps any node id covered by a unit (chain member or ie node) to its
  /// unit index.
  std::unordered_map<int, int> unit_of_member;

  bool IsUnitTop(const xlog::PlanNode& node) const {
    return unit_of_top.contains(node.id);
  }
};

/// \brief Identifies all IE units of `root`. Requires AssignIds to have
/// run on the tree.
///
/// `fold_operators` = false disables σ/π folding, reducing every unit to
/// its bare blackbox — the suboptimal reuse-at-blackbox-level alternative
/// §4 argues against; kept as an ablation knob.
Result<UnitAnalysis> AnalyzeUnits(const xlog::PlanNodePtr& root,
                                  bool fold_operators = true);

/// \brief An IE chain (Definition 6): a maximal sequence of IE units where
/// each extracts from regions produced (possibly through non-unit
/// relational operators) by the next.
struct IEChain {
  /// Unit indexes, top-of-chain first (A_1 ... A_k of Definition 6);
  /// A_k is the bottom unit, nearest the raw document.
  std::vector<int> units;
};

/// \brief Partitions the units of `analysis` into IE chains (unique by
/// Definition 6). `root` must be the same tree passed to AnalyzeUnits.
std::vector<IEChain> PartitionChains(const xlog::PlanNodePtr& root,
                                     const UnitAnalysis& analysis);

}  // namespace delex

#endif  // DELEX_DELEX_IE_UNIT_H_
