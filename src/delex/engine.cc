#include "delex/engine.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "delex/region_derivation.h"

namespace delex {

using xlog::PlanKind;
using xlog::PlanNode;
using xlog::PlanNodePtr;

/// Per-page evaluation state threaded through the tree walk.
struct DelexEngine::PageContext {
  const Page* page = nullptr;     // current page p
  const Page* q_page = nullptr;   // previous version q, or null
  MatchContext match_ctx;         // RU's shared match cache for this pair
};

DelexEngine::DelexEngine(xlog::PlanNodePtr plan, Options options)
    : plan_(std::move(plan)), options_(std::move(options)) {}

Status DelexEngine::Init() {
  if (initialized_) return Status::InvalidArgument("engine already initialized");
  DELEX_ASSIGN_OR_RETURN(analysis_,
                         AnalyzeUnits(plan_, options_.fold_unit_operators));
  if (analysis_.units.empty()) {
    return Status::InvalidArgument("plan contains no IE units");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    return Status::IOError("cannot create work dir " + options_.work_dir);
  }
  initialized_ = true;
  return Status::OK();
}

Status DelexEngine::Resume(int generation) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (generation_ != 0) {
    return Status::InvalidArgument("engine has already run in this process");
  }
  if (generation <= 0) return Status::InvalidArgument("generation must be > 0");
  for (size_t u = 0; u < analysis_.units.size(); ++u) {
    std::string prefix = ReusePathPrefix(static_cast<int>(u), generation - 1);
    std::error_code ec;
    if (!std::filesystem::exists(prefix + ".in", ec) ||
        !std::filesystem::exists(prefix + ".out", ec)) {
      return Status::NotFound("no reuse files for generation " +
                              std::to_string(generation - 1) + " under " +
                              options_.work_dir);
    }
  }
  generation_ = generation;
  return Status::OK();
}

std::string DelexEngine::ReusePathPrefix(int unit_index, int generation) const {
  return options_.work_dir + "/unit" + std::to_string(unit_index) + ".gen" +
         std::to_string(generation);
}

Result<std::vector<Tuple>> DelexEngine::RunSnapshot(
    const Snapshot& current, const Snapshot* previous,
    const MatcherAssignment& assignment, RunStats* stats) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (previous != nullptr && generation_ == 0) {
    return Status::InvalidArgument(
        "previous snapshot supplied but no reuse files captured yet");
  }
  if (previous != nullptr &&
      assignment.per_unit.size() != analysis_.units.size()) {
    return Status::InvalidArgument("assignment size != number of IE units");
  }

  RunStats local_stats;
  local_stats.units.resize(analysis_.units.size());
  stats_ = stats != nullptr ? stats : &local_stats;
  *stats_ = RunStats();
  stats_->units.resize(analysis_.units.size());
  assignment_ = &assignment;

  Stopwatch total_watch;

  // Open writers for this generation and readers over the previous one.
  writers_.clear();
  readers_.clear();
  for (size_t u = 0; u < analysis_.units.size(); ++u) {
    auto writer = std::make_unique<UnitReuseWriter>();
    DELEX_RETURN_NOT_OK(
        writer->Open(ReusePathPrefix(static_cast<int>(u), generation_)));
    writers_.push_back(std::move(writer));
    if (previous != nullptr) {
      auto reader = std::make_unique<UnitReuseReader>();
      DELEX_RETURN_NOT_OK(
          reader->Open(ReusePathPrefix(static_cast<int>(u), generation_ - 1)));
      readers_.push_back(std::move(reader));
    }
  }

  std::vector<Tuple> results;
  for (const Page& page : current.pages()) {
    PageContext page_ctx;
    page_ctx.page = &page;
    if (previous != nullptr) {
      if (auto idx = previous->FindByUrl(page.url)) {
        page_ctx.q_page = &previous->pages()[*idx];
        ++stats_->pages_with_previous;
      }
    }
    ++stats_->pages;

    DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> page_rows,
                           EvalNode(*plan_, &page_ctx));
    for (Tuple& row : page_rows) {
      Tuple with_did;
      with_did.reserve(row.size() + 1);
      with_did.push_back(page.did);
      for (Value& v : row) with_did.push_back(std::move(v));
      results.push_back(std::move(with_did));
    }
  }

  for (auto& writer : writers_) {
    DELEX_RETURN_NOT_OK(writer->Close());
    stats_->reuse_write_io += writer->CombinedStats();
  }
  for (auto& reader : readers_) {
    DELEX_RETURN_NOT_OK(reader->Close());
    stats_->reuse_read_io += reader->CombinedStats();
  }

  // Drop the now-consumed previous generation.
  if (previous != nullptr) {
    for (size_t u = 0; u < analysis_.units.size(); ++u) {
      std::string prefix = ReusePathPrefix(static_cast<int>(u), generation_ - 1);
      std::error_code ec;
      std::filesystem::remove(prefix + ".in", ec);
      std::filesystem::remove(prefix + ".out", ec);
    }
  }

  writers_.clear();
  readers_.clear();
  ++generation_;
  stats_->result_tuples = static_cast<int64_t>(results.size());
  stats_->phases.total_us = total_watch.ElapsedMicros();
  for (const UnitRunStats& u : stats_->units) {
    stats_->phases.match_us += u.match_us;
    stats_->phases.extract_us += u.extract_us;
    stats_->phases.copy_us += u.copy_us;
  }
  assignment_ = nullptr;
  stats_ = nullptr;
  return results;
}

Result<std::vector<Tuple>> DelexEngine::EvalNode(const PlanNode& node,
                                                 PageContext* page_ctx) {
  auto unit_it = analysis_.unit_of_top.find(node.id);
  if (unit_it != analysis_.unit_of_top.end()) {
    return EvalUnit(analysis_.units[static_cast<size_t>(unit_it->second)],
                    page_ctx);
  }
  const Page& page = *page_ctx->page;
  switch (node.kind) {
    case PlanKind::kScan: {
      std::vector<Tuple> out;
      out.push_back(
          {Value(TextSpan(0, static_cast<int64_t>(page.content.size())))});
      return out;
    }
    case PlanKind::kSelect: {
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                             EvalNode(*node.children[0], page_ctx));
      std::vector<Tuple> out;
      for (Tuple& t : input) {
        DELEX_ASSIGN_OR_RETURN(bool keep,
                               xlog::EvalSelect(node, t, page.content));
        if (keep) out.push_back(std::move(t));
      }
      return out;
    }
    case PlanKind::kProject: {
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                             EvalNode(*node.children[0], page_ctx));
      std::vector<Tuple> out;
      out.reserve(input.size());
      for (const Tuple& t : input) {
        Tuple projected;
        projected.reserve(node.columns.size());
        for (int c : node.columns) {
          projected.push_back(t[static_cast<size_t>(c)]);
        }
        out.push_back(std::move(projected));
      }
      return out;
    }
    case PlanKind::kJoin: {
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> left,
                             EvalNode(*node.children[0], page_ctx));
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> right,
                             EvalNode(*node.children[1], page_ctx));
      std::vector<Tuple> out;
      xlog::EvalJoin(node, left, right, &out);
      return out;
    }
    case PlanKind::kIE:
      return Status::Internal(
          "raw IE node reached outside a unit (unit analysis bug)");
  }
  return Status::Internal("unhandled node kind");
}

Result<bool> DelexEngine::ReplayChain(const IEUnit& unit,
                                      const Tuple& input_tuple,
                                      const Tuple& blackbox_output,
                                      std::string_view page_text,
                                      Tuple* final_tuple) {
  Tuple combined = input_tuple;
  combined.reserve(input_tuple.size() + blackbox_output.size());
  for (const Value& v : blackbox_output) combined.push_back(v);

  // chain[0] is the IE node itself (already applied); replay the folded
  // σ/π above it.
  for (size_t i = 1; i < unit.chain.size(); ++i) {
    const PlanNode& op = *unit.chain[i];
    if (op.kind == PlanKind::kSelect) {
      DELEX_ASSIGN_OR_RETURN(bool keep,
                             xlog::EvalSelect(op, combined, page_text));
      if (!keep) return false;
    } else {
      DELEX_CHECK(op.kind == PlanKind::kProject);
      Tuple projected;
      projected.reserve(op.columns.size());
      for (int c : op.columns) {
        projected.push_back(combined[static_cast<size_t>(c)]);
      }
      combined = std::move(projected);
    }
  }
  *final_tuple = std::move(combined);
  return true;
}

Result<std::vector<Tuple>> DelexEngine::EvalUnit(const IEUnit& unit,
                                                 PageContext* page_ctx) {
  const Page& page = *page_ctx->page;
  const Page* q_page = page_ctx->q_page;
  UnitRunStats& ustats = stats_->units[static_cast<size_t>(unit.index)];
  UnitReuseWriter& writer = *writers_[static_cast<size_t>(unit.index)];

  DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> inputs,
                         EvalNode(*unit.input, page_ctx));

  // Pull this page's recorded tuples from the previous run (one forward
  // seek per unit per page — §5.2's sequential-scan discipline).
  std::vector<InputTupleRec> old_inputs;
  std::vector<OutputTupleRec> old_outputs;
  if (q_page != nullptr && !readers_.empty()) {
    DELEX_RETURN_NOT_OK(readers_[static_cast<size_t>(unit.index)]->SeekPage(
        q_page->did, &old_inputs, &old_outputs));
  }
  std::unordered_multimap<int64_t, const OutputTupleRec*> outputs_by_itid;
  for (const OutputTupleRec& rec : old_outputs) {
    outputs_by_itid.emplace(rec.itid, &rec);
  }

  const Extractor& extractor = *unit.ie_node->extractor;
  const MatcherKind matcher_kind =
      (assignment_ != nullptr && !assignment_->per_unit.empty() &&
       q_page != nullptr)
          ? assignment_->per_unit[static_cast<size_t>(unit.index)]
          : MatcherKind::kDN;
  const Matcher& matcher = GetMatcher(matcher_kind);
  const TextSpan page_bounds(0, static_cast<int64_t>(page.content.size()));
  (void)page_bounds;

  std::vector<Tuple> unit_results;

  // Index of old inputs by content hash (exact fast path) and by tid
  // (copy-phase lookups). Old regions with a non-empty context are left
  // out of the hash index and handled by the slow path.
  std::unordered_multimap<uint64_t, const InputTupleRec*> old_by_hash;
  std::unordered_map<int64_t, const InputTupleRec*> old_by_tid;
  if (q_page != nullptr && !old_inputs.empty()) {
    ScopedTimer match_timer(&ustats.match_us);
    old_by_hash.reserve(old_inputs.size());
    old_by_tid.reserve(old_inputs.size());
    for (const InputTupleRec& old : old_inputs) {
      old_by_tid.emplace(old.tid, &old);
      if (!options_.disable_exact_fast_path && old.context.empty()) {
        old_by_hash.emplace(old.region_hash, &old);
      }
    }
  }

  // Group child tuples by distinct input region: one paragraph carrying
  // several person mentions yields several child tuples over the same
  // region, but the blackbox (and all reuse machinery) runs once per
  // distinct region; child-tuple multiplicity is restored at chain-replay
  // time. This also keeps the reuse files free of duplicate groups.
  struct RegionGroup {
    TextSpan region;
    size_t representative = 0;  // index of the first input tuple
    int64_t tid = 0;
    std::vector<Tuple> produced;  // sigma-surviving blackbox outputs
  };
  std::vector<RegionGroup> groups;
  std::map<std::pair<int64_t, int64_t>, size_t> group_index;
  std::vector<size_t> group_of_input(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Value& region_value =
        inputs[i][static_cast<size_t>(unit.ie_node->input_col)];
    if (!std::holds_alternative<TextSpan>(region_value)) {
      return Status::InvalidArgument("IE input column is not a span");
    }
    TextSpan region = std::get<TextSpan>(region_value);
    auto key = std::make_pair(region.start, region.end);
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      it = group_index.emplace(key, groups.size()).first;
      RegionGroup group;
      group.region = region;
      group.representative = i;
      groups.push_back(std::move(group));
    }
    group_of_input[i] = it->second;
  }

  int64_t group_ordinal = -1;
  for (RegionGroup& group : groups) {
    ++group_ordinal;
    ++ustats.input_tuples;
    const TextSpan region = group.region;
    const Tuple context;  // our IE predicates carry no extra parameters (c)
    const uint64_t region_hash =
        Fnv1a64(std::string_view(page.content)
                    .substr(static_cast<size_t>(region.start),
                            static_cast<size_t>(region.length())));

    {
      ScopedTimer capture_timer(&stats_->phases.capture_us);
      DELEX_RETURN_NOT_OK(writer.AppendInput(page.did, region, region_hash,
                                             context, &group.tid));
    }

    // ---- Matching: find reuse opportunities (§5.3). ----
    RegionDerivation derivation;
    bool attempted_reuse = false;
    bool exact_hit = false;
    if (q_page != nullptr && !old_inputs.empty()) {
      ScopedTimer match_timer(&ustats.match_us);
      attempted_reuse = true;
      std::string_view p_text =
          std::string_view(page.content)
              .substr(static_cast<size_t>(region.start),
                      static_cast<size_t>(region.length()));

      // Fast path: an old region with identical bytes => one full-width,
      // fully aligned segment; no matcher call, no region derivation --
      // everything copies and nothing is re-extracted.
      const InputTupleRec* exact = nullptr;
      if (!options_.disable_exact_fast_path && context.empty()) {
        auto [begin, end] = old_by_hash.equal_range(region_hash);
        for (auto it = begin; it != end; ++it) {
          const InputTupleRec& old = *it->second;
          if (old.region.length() != region.length()) continue;
          // Verify bytes (hash collisions must not corrupt results).
          std::string_view q_text =
              std::string_view(q_page->content)
                  .substr(static_cast<size_t>(old.region.start),
                          static_cast<size_t>(old.region.length()));
          if (q_text == p_text) {
            exact = &old;
            break;
          }
        }
      }

      std::vector<TaggedSegment> segments;
      if (exact != nullptr) {
        ++ustats.exact_region_hits;
        exact_hit = true;
        MatchSegment full(region, exact->region);
        // Record into the page pair's match cache so RU in higher units
        // can recycle even exact matches.
        page_ctx->match_ctx.Record(region, exact->region, {full});
        // Hand-built derivation: the interior is the whole matched region
        // (both edges aligned), so every recorded mention is copyable and
        // the extraction residue is empty.
        CopyRegion copy;
        copy.q_interior = exact->region;
        copy.delta = full.Delta();
        copy.p_interior = region;
        copy.old_tid = exact->tid;
        derivation.copy_regions.push_back(copy);
        derivation.p_safe = IntervalSet({region});
      } else if (matcher_kind != MatcherKind::kDN) {
        // Candidate old regions. RU answers from the page pair's recorded
        // match cache at near-zero cost, so it can afford to consult every
        // old region; the real matchers (UD/ST) only try the ones nearest
        // in ordinal position.
        std::vector<const InputTupleRec*> candidates;
        if (matcher_kind == MatcherKind::kRU) {
          candidates.reserve(old_inputs.size());
          for (const InputTupleRec& old : old_inputs) {
            candidates.push_back(&old);
          }
        } else {
          for (int64_t offset = 0;
               static_cast<int>(candidates.size()) <
                   options_.max_match_candidates &&
               offset < static_cast<int64_t>(old_inputs.size());
               ++offset) {
            int64_t idx = group_ordinal + (offset % 2 == 0 ? 1 : -1) *
                                              ((offset + 1) / 2);
            if (offset == 0) idx = group_ordinal;
            if (idx < 0 || idx >= static_cast<int64_t>(old_inputs.size())) {
              continue;
            }
            candidates.push_back(&old_inputs[static_cast<size_t>(idx)]);
          }
        }
        for (const InputTupleRec* old : candidates) {
          ++ustats.matcher_calls;
          std::vector<MatchSegment> found =
              matcher.Match(page.content, region, q_page->content, old->region,
                            &page_ctx->match_ctx);
          for (const MatchSegment& seg : found) {
            segments.push_back({seg, old->region, old->tid});
          }
        }
      }
      if (!exact_hit) {
        derivation = DeriveRegionsTagged(region, std::move(segments),
                                         unit.alpha, unit.beta);
      }
    }
    if (!attempted_reuse) {
      derivation.extraction_regions = IntervalSet({region});
    }

    // ---- Copy phase: relocate recorded mentions (§5.3). ----
    std::vector<Tuple> produced;  // blackbox outputs for this region
    {
      ScopedTimer copy_timer(&ustats.copy_us);
      for (const CopyRegion& copy : derivation.copy_regions) {
        auto [begin, end] = outputs_by_itid.equal_range(copy.old_tid);
        auto old_it = old_by_tid.find(copy.old_tid);
        const TextSpan old_region = old_it != old_by_tid.end()
                                        ? old_it->second->region
                                        : TextSpan();
        for (auto it = begin; it != end; ++it) {
          const OutputTupleRec& rec = *it->second;
          TextSpan envelope = SpanEnvelope(rec.payload);
          if (!EnvelopeCopyable(copy, envelope, old_region)) continue;
          Tuple relocated = rec.payload;
          ShiftSpans(&relocated, copy.delta);
          produced.push_back(std::move(relocated));
          ++ustats.copied_tuples;
        }
      }
    }

    // ---- Extraction phase: run the blackbox on the residue. ----
    {
      ScopedTimer extract_timer(&ustats.extract_us);
      for (const TextSpan& sub : derivation.extraction_regions.spans()) {
        ustats.chars_extracted += sub.length();
        std::string_view sub_text =
            std::string_view(page.content)
                .substr(static_cast<size_t>(sub.start),
                        static_cast<size_t>(sub.length()));
        std::vector<Tuple> extracted =
            extractor.Extract(sub_text, sub.start, context);
        for (Tuple& o : extracted) {
          TextSpan envelope = SpanEnvelope(o);
          if (envelope.empty() && HasSpan(o)) continue;  // degenerate
          // Keep rule: the mention's beta-window must lie inside this
          // sub-region; clipping is allowed only at true region edges
          // (where the sub-region edge IS the region edge).
          TextSpan window(envelope.start - unit.beta,
                          envelope.end + unit.beta);
          if (window.start < region.start) window.start = region.start;
          if (window.end > region.end) window.end = region.end;
          if (!sub.Contains(window)) continue;
          // Suppression rule: copy-safe mentions were already copied.
          if (!envelope.empty() &&
              derivation.p_safe.ContainsWithinOne(envelope)) {
            continue;
          }
          produced.push_back(std::move(o));
          ++ustats.extracted_tuples;
        }
      }
    }

    // ---- sigma-filter and capture survivors (once per region). ----
    // Folded sigma predicates only read blackbox-produced columns (the
    // foldability rule), so the verdict is identical for every child tuple
    // sharing this region; the representative decides capture.
    const Tuple& representative = inputs[group.representative];
    for (Tuple& o : produced) {
      Tuple ignored;
      DELEX_ASSIGN_OR_RETURN(
          bool keep,
          ReplayChain(unit, representative, o, page.content, &ignored));
      if (!keep) continue;
      {
        ScopedTimer capture_timer(&stats_->phases.capture_us);
        DELEX_RETURN_NOT_OK(writer.AppendOutput(group.tid, page.did, o));
      }
      group.produced.push_back(std::move(o));
    }
  }

  // ---- Materialize unit outputs: child multiplicity x region outputs. ----
  for (size_t i = 0; i < inputs.size(); ++i) {
    const RegionGroup& group = groups[group_of_input[i]];
    for (const Tuple& o : group.produced) {
      Tuple final_tuple;
      DELEX_ASSIGN_OR_RETURN(
          bool keep, ReplayChain(unit, inputs[i], o, page.content,
                                 &final_tuple));
      DELEX_CHECK(keep);  // survivors were filtered above
      unit_results.push_back(std::move(final_tuple));
      ++ustats.output_tuples;
    }
  }
  return unit_results;
}

}  // namespace delex
