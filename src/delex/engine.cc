#include "delex/engine.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include "common/annotations.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "delex/paranoid.h"
#include "delex/region_derivation.h"
#include "text/suffix_matcher.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace delex {

namespace {

/// Fast-path demotion counters: each names one reason an identical page
/// fell back a tier (see DelexEngine::PrefetchSlot). Knowing *where*
/// reuse is lost is the optimization signal the observability layer
/// exists to surface; every run report snapshots these.
obs::Counter* DemoteResultCacheCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "engine.fast_path.demote_result_cache");
  return counter;
}
obs::Counter* DemoteMissingGroupCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "engine.fast_path.demote_missing_group");
  return counter;
}
obs::Counter* DecodeCopyGroupCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "engine.fast_path.decode_copy_groups");
  return counter;
}
obs::Counter* ReuseCorruptDropCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "engine.reuse.corrupt_drops");
  return counter;
}

/// Process-wide latency series (observability layer 2). Hot per-sample
/// recording goes into the per-page RunStats shards; these registry
/// histograms take one bulk MergeFrom per run (plus per-page samples for
/// the two pipeline-stage timers below). All pointers are resolved once —
/// GetHistogram takes a mutex-guarded map lookup.
obs::Histogram* PageEvalHistogram() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("engine.page_eval_us");
  return hist;
}
obs::Histogram* ExtractHistogram() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("engine.extract_us");
  return hist;
}
obs::Histogram* PrefetchIoHistogram() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("io.prefetch_us");
  return hist;
}
obs::Histogram* CommitIoHistogram() {
  static obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("io.commit_us");
  return hist;
}
obs::Histogram* MatchHistogram(MatcherKind kind) {
  static obs::Histogram* const hists[kNumMatcherKinds] = {
      obs::MetricsRegistry::Global().GetHistogram("matcher.dn.match_us"),
      obs::MetricsRegistry::Global().GetHistogram("matcher.ud.match_us"),
      obs::MetricsRegistry::Global().GetHistogram("matcher.st.match_us"),
      obs::MetricsRegistry::Global().GetHistogram("matcher.ru.match_us"),
  };
  return hists[static_cast<size_t>(kind)];
}

}  // namespace

using xlog::PlanKind;
using xlog::PlanNode;
using xlog::PlanNodePtr;

/// One IE unit's slice of the previous generation for one page pair,
/// pre-fetched by the reader stage (which owns the strictly-forward §5.2
/// scan) so workers never touch the readers.
struct DelexEngine::PageReuse {
  std::vector<InputTupleRec> inputs;
  std::vector<OutputTupleRec> outputs;
};

/// Per-page evaluation state threaded through the tree walk. Everything a
/// page mutates lives here (or in the structures it points to), which is
/// what makes EvalPage const and pages safe to evaluate concurrently.
struct DelexEngine::PageContext {
  const Page* page = nullptr;     // current page p
  const Page* q_page = nullptr;   // previous version q, or null
  MatchContext match_ctx;         // RU's shared match cache for this pair
  const std::vector<PageReuse>* reuse = nullptr;  // per unit; null w/o q
  std::vector<PageCapture>* captures = nullptr;   // per unit, page-private
  RunStats* stats = nullptr;                      // per-page stats shard
};

/// One page's place in the pipeline: reader-stage prefetch in, worker
/// results out, consumed by the ordered write-back stage and the final
/// result/stats assembly.
struct DelexEngine::PageSlot {
  const Page* page = nullptr;
  const Page* q_page = nullptr;
  std::vector<PageReuse> reuse;       // filled by the reader stage
  std::vector<PageCapture> captures;  // filled by the worker
  RunStats stats;                     // per-page shard (incl. unit timers)
  std::vector<Tuple> rows;            // did-prefixed result tuples
  bool done = false;                  // guarded by RunState::mu

  // Whole-page fast path (content byte-identical to q_page): set at slot
  // layout, cleared by PrefetchSlot if any required previous-generation
  // piece is missing. Fast-path slots never reach EvalPage — rows are
  // recovered from the result cache and reuse records relocate as raw
  // slices (or, per unit, as decode-copied captures when the unit's index
  // entry failed validation).
  bool identical = false;
  std::vector<RawPageSlice> raw_slices;  // per unit; meaningful when valid
  std::vector<char> raw_valid;           // per unit: commit slice raw?
  ResultPageSlice result_slice;          // cached rows, still encoded
};

/// Shared coordination state of one parallel run.
///
/// `submitted`/`finished` track this run's tasks only: with a shared pool
/// (sharded execution) ThreadPool::Wait() would block on other engines'
/// work, so run completion — and the every-task-settled guarantee the
/// stack-owned slots depend on — comes from these counters instead.
struct DelexEngine::RunState {
  RunState() : commit_mu("engine.run.commit_mu"), mu("engine.run.mu") {}

  // Canonical order: commit_mu before mu — the committer peeks at done
  // flags (mu) while serializing write-back (commit_mu); nothing ever
  // takes commit_mu while holding mu.
  Mutex commit_mu DELEX_ACQUIRED_BEFORE(mu);
  Mutex mu;   // guards done flags, counters, error
  CondVar cv; // completion / window-space signal
  size_t next_commit DELEX_GUARDED_BY(mu) = 0;  // first page index not committed
  size_t in_flight DELEX_GUARDED_BY(mu) = 0;    // submitted but not finished
  size_t submitted DELEX_GUARDED_BY(mu) = 0;    // tasks handed to the pool
  size_t finished DELEX_GUARDED_BY(mu) = 0;     // fully done (incl. drain pass)
  Status error DELEX_GUARDED_BY(mu);            // first evaluation/commit failure
};

DelexEngine::DelexEngine(xlog::PlanNodePtr plan, Options options)
    : plan_(std::move(plan)), options_(std::move(options)) {}

Status DelexEngine::Init() {
  if (initialized_) return Status::InvalidArgument("engine already initialized");
  DELEX_ASSIGN_OR_RETURN(analysis_,
                         AnalyzeUnits(plan_, options_.fold_unit_operators));
  if (analysis_.units.empty()) {
    return Status::InvalidArgument("plan contains no IE units");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    return Status::IOError("cannot create work dir " + options_.work_dir);
  }
  if (!options_.trace_path.empty() &&
      !obs::TraceRecorder::Global().started()) {
    Status st = obs::TraceRecorder::Global().Start(options_.trace_path);
    if (!st.ok()) {
      DELEX_LOG(WARN) << "trace_path: " << st.ToString();
    }
  }
  // DELEX_TRACE works for any engine-embedding binary (examples, tests)
  // without per-main wiring; a no-op if a session is already recording.
  obs::MaybeStartTraceFromEnv();
  // Same deal for the metrics exposition knobs (DELEX_METRICS_PORT,
  // DELEX_METRICS_SNAPSHOT_MS): any engine-embedding binary is scrapeable.
  obs::MaybeStartExportersFromEnv();
  DELEX_LOG(INFO) << "engine initialized: " << analysis_.units.size()
                  << " IE units, work_dir=" << options_.work_dir;
  initialized_ = true;
  return Status::OK();
}

Status DelexEngine::Resume(int generation) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (generation_ != 0) {
    return Status::InvalidArgument("engine has already run in this process");
  }
  if (generation <= 0) return Status::InvalidArgument("generation must be > 0");
  for (size_t u = 0; u < analysis_.units.size(); ++u) {
    std::string prefix = ReusePathPrefix(static_cast<int>(u), generation - 1);
    std::error_code ec;
    if (!std::filesystem::exists(prefix + ".in", ec) ||
        !std::filesystem::exists(prefix + ".out", ec)) {
      return Status::NotFound("no reuse files for generation " +
                              std::to_string(generation - 1) + " under " +
                              options_.work_dir);
    }
  }
  generation_ = generation;
  return Status::OK();
}

std::string DelexEngine::ReusePathPrefix(int unit_index, int generation) const {
  return options_.work_dir + "/unit" + std::to_string(unit_index) + ".gen" +
         std::to_string(generation);
}

std::string DelexEngine::ResultCachePath(int generation) const {
  return options_.work_dir + "/results.gen" + std::to_string(generation);
}

int DelexEngine::EffectiveThreads() const {
  if (options_.shared_pool != nullptr) {
    return options_.shared_pool->num_threads();
  }
  if (options_.num_threads > 0) return options_.num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void DelexEngine::DropCorruptReader(size_t u, const Status& cause,
                                    RunStats* stats) {
  DELEX_LOG(WARN) << "dropping unit " << u
                  << " reuse reader (pages re-extract from scratch): "
                  << cause.ToString();
  ReuseCorruptDropCounter()->Increment();
  if (stats != nullptr) ++stats->reuse_corrupt_drops;
  reader_ok_[u] = 0;
}

Status DelexEngine::PrefetchPageReuse(int64_t q_did,
                                      std::vector<PageReuse>* reuse,
                                      RunStats* stats) {
  reuse->resize(analysis_.units.size());
  for (size_t u = 0; u < analysis_.units.size(); ++u) {
    PageReuse& unit_reuse = (*reuse)[u];
    unit_reuse.inputs.clear();
    unit_reuse.outputs.clear();
    if (reader_ok_[u] == 0) continue;
    Status st =
        readers_[u]->SeekPage(q_did, &unit_reuse.inputs, &unit_reuse.outputs);
    if (!st.ok()) {
      // Corrupt or truncated previous-generation bytes: the scan position
      // is no longer trustworthy, so drop the whole reader rather than
      // guess at record boundaries. Reuse degrades; results don't.
      DropCorruptReader(u, st, stats);
      unit_reuse.inputs.clear();
      unit_reuse.outputs.clear();
      continue;
    }
    if (paranoid::Enabled()) {
      paranoid::CheckPageGroupOrdinals(q_did, unit_reuse.inputs,
                                       unit_reuse.outputs);
    }
  }
  return Status::OK();
}

Status DelexEngine::PrefetchSlot(PageSlot* slot) {
  DELEX_TRACE_SPAN("prefetch_page", slot->page->did);
  // Reuse + result-cache read latency for this page (reader stage).
  obs::ScopedLatencyTimer io_timer(nullptr, PrefetchIoHistogram());
  const size_t num_units = analysis_.units.size();
  // The result-cache reader can be dropped mid-run (corrupt bytes below),
  // after slots were laid out with identical=true: such slots demote here.
  if (slot->identical && result_reader_ == nullptr) {
    ++slot->stats.fast_path_demote_result_cache;
    DemoteResultCacheCounter()->Increment();
    slot->identical = false;
  }
  if (slot->identical) {
    // Result rows first: without them the page must fully evaluate, and
    // demoting before any unit reader has advanced keeps every unit's
    // group available to the normal decoded prefetch below.
    bool found = false;
    Status read = result_reader_->ReadPage(slot->q_page->did,
                                           &slot->result_slice, &found);
    if (!read.ok()) {
      // Corrupt cache: its forward-scan position is untrustworthy from
      // here on, so drop it for the rest of the run. All remaining
      // identical pages evaluate normally — degrade, never miscompute.
      DELEX_LOG(WARN) << "dropping result cache (corrupt): "
                      << read.ToString();
      ReuseCorruptDropCounter()->Increment();
      ++slot->stats.reuse_corrupt_drops;
      result_reader_.reset();
      found = false;
    }
    if (found) {
      Status decoded =
          DecodeResultSlice(slot->result_slice, slot->page->did, &slot->rows);
      if (!decoded.ok()) found = false;
    }
    if (!found) {
      DemoteResultCacheCounter()->Increment();
      ++slot->stats.fast_path_demote_result_cache;
      DELEX_LOG(DEBUG) << "fast path demoted (result cache miss) did="
                       << slot->page->did;
      slot->identical = false;
      slot->rows.clear();
    }
  }
  if (slot->identical) {
    slot->raw_slices.resize(num_units);
    slot->raw_valid.assign(num_units, 0);
    for (size_t u = 0; u < num_units; ++u) {
      bool found = false;
      bool index_valid = false;
      if (reader_ok_[u] != 0) {
        Status st = readers_[u]->ReadPageRaw(slot->q_page->did,
                                             slot->q_page->content_hash,
                                             &slot->raw_slices[u], &found,
                                             &index_valid);
        if (!st.ok()) {
          DropCorruptReader(u, st, &slot->stats);
          found = false;
        }
      }
      if (!found) {
        // The old generation has no group for this page (work dir out of
        // step with the corpus). Demote to full evaluation; units whose
        // groups were already consumed above simply extract from scratch.
        DemoteMissingGroupCounter()->Increment();
        ++slot->stats.fast_path_demote_missing_group;
        DELEX_LOG(DEBUG) << "fast path demoted (missing reuse group) did="
                         << slot->page->did << " unit=" << u;
        slot->identical = false;
        slot->rows.clear();
        slot->raw_valid.assign(num_units, 0);
        for (PageCapture& capture : slot->captures) capture.groups.clear();
        break;
      }
      if (index_valid) {
        slot->raw_valid[u] = 1;
      } else {
        // Decode-copy tier: the index entry was missing or failed
        // validation, so the slice can't be trusted for a byte-range copy
        // — but its records decode fine, and an identical page's capture
        // IS its old records.
        DecodeCopyGroupCounter()->Increment();
        ++slot->stats.fast_path_decode_copy_groups;
        DELEX_RETURN_NOT_OK(
            CaptureFromRawSlice(slot->raw_slices[u], &slot->captures[u]));
      }
    }
  }
  if (!slot->identical && slot->q_page != nullptr) {
    DELEX_RETURN_NOT_OK(
        PrefetchPageReuse(slot->q_page->did, &slot->reuse, &slot->stats));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> DelexEngine::EvalPage(PageContext* page_ctx) const {
  const Page& page = *page_ctx->page;
  DELEX_TRACE_SPAN("eval_page", page.did);
  // Whole-page eval latency into this page's single-writer shard; the
  // run merges shards into the engine.page_eval_us registry histogram.
  obs::ScopedLatencyTimer eval_timer(&page_ctx->stats->page_eval_hist);
  DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> page_rows,
                         EvalNode(*plan_, page_ctx));
  std::vector<Tuple> rows;
  rows.reserve(page_rows.size());
  for (Tuple& row : page_rows) {
    Tuple with_did;
    with_did.reserve(row.size() + 1);
    with_did.push_back(page.did);
    for (Value& v : row) with_did.push_back(std::move(v));
    rows.push_back(std::move(with_did));
  }
  return rows;
}

Status DelexEngine::CommitPage(PageSlot* slot) {
  const int64_t did = slot->page->did;
  DELEX_TRACE_SPAN("commit_page", did);
  // Reuse + result-cache write latency for this page (write-back stage).
  obs::ScopedLatencyTimer io_timer(nullptr, CommitIoHistogram());
  for (size_t u = 0; u < writers_.size(); ++u) {
    ScopedTimer capture_timer(&slot->stats.units[u].capture_us);
    if (slot->identical && slot->raw_valid[u] != 0) {
      const RawPageSlice& raw = slot->raw_slices[u];
      if (paranoid::Enabled()) paranoid::CheckRawSlice(raw);
      DELEX_RETURN_NOT_OK(writers_[u]->CommitPageRaw(did, raw));
      slot->stats.raw_bytes_copied += raw.TotalBytes();
      slot->stats.records_decoded_skipped += raw.n_inputs + raw.n_outputs;
    } else {
      DELEX_RETURN_NOT_OK(writers_[u]->CommitPage(
          did, slot->page->content_hash, slot->captures[u]));
    }
  }
  if (slot->identical) {
    slot->stats.pages_identical = 1;
    // The cached rows were decoded once to recover this page's results;
    // their bytes still relocate verbatim into the new cache.
    DELEX_RETURN_NOT_OK(result_writer_->CommitPageRaw(did, slot->result_slice));
    slot->stats.raw_bytes_copied +=
        static_cast<int64_t>(slot->result_slice.bytes.size());
  } else {
    DELEX_RETURN_NOT_OK(result_writer_->CommitPage(did, slot->rows));
  }
  slot->captures.clear();  // free buffered records as the pipeline drains
  slot->raw_slices.clear();
  slot->result_slice.bytes.clear();
  return Status::OK();
}

Status DelexEngine::RunPagesSerial(std::vector<PageSlot>* slots) {
  for (PageSlot& slot : *slots) {
    DELEX_RETURN_NOT_OK(PrefetchSlot(&slot));
    if (!slot.identical) {
      PageContext page_ctx;
      page_ctx.page = slot.page;
      page_ctx.q_page = slot.q_page;
      page_ctx.reuse = slot.q_page != nullptr ? &slot.reuse : nullptr;
      page_ctx.captures = &slot.captures;
      page_ctx.stats = &slot.stats;
      DELEX_ASSIGN_OR_RETURN(slot.rows, EvalPage(&page_ctx));
    }
    DELEX_RETURN_NOT_OK(CommitPage(&slot));
  }
  return Status::OK();
}

Status DelexEngine::RunPagesParallel(int num_threads,
                                     std::vector<PageSlot>* slots) {
  RunState state;
  // Two-level scheduling: a caller-provided shared pool (sharded
  // execution) or a run-local one. Either way the reader and write-back
  // stages stay on this thread; only page evaluation goes to the pool.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options_.shared_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(num_threads);
    pool = owned_pool.get();
  }
  // Bound on submitted-but-unfinished pages: keeps the reader stage a few
  // pages ahead of the workers without prefetching the whole previous
  // generation into memory.
  const size_t window = static_cast<size_t>(num_threads) * 2 + 2;

  // Commits every ready page at the front of the snapshot order. Any
  // finishing worker may become the committer; commit_mu serializes the
  // writers, mu orders the done-flag handoff.
  auto drain_commits = [this, &state, slots]() -> Status {
    MutexLock commit_lock(&state.commit_mu);
    for (;;) {
      PageSlot* slot = nullptr;
      {
        MutexLock lock(&state.mu);
        if (!state.error.ok() || state.next_commit >= slots->size() ||
            !(*slots)[state.next_commit].done) {
          return Status::OK();
        }
        slot = &(*slots)[state.next_commit];
      }
      Status st = CommitPage(slot);
      MutexLock lock(&state.mu);
      if (!st.ok()) {
        if (state.error.ok()) state.error = st;
        return st;
      }
      ++state.next_commit;
    }
  };

  Status prefetch_error;
  for (size_t i = 0; i < slots->size(); ++i) {
    PageSlot* slot = &(*slots)[i];
    // Reader stage: one strictly-forward scan per reuse file, kept on this
    // thread and in snapshot page order (§5.2). On error we cannot return
    // yet: in-flight tasks still reference `state` and the slots.
    prefetch_error = PrefetchSlot(slot);
    if (!prefetch_error.ok()) break;
    if (slot->identical) {
      // Fast-path pages bypass the worker stage: rows are already
      // recovered and nothing needs evaluating, but the commit still must
      // land in snapshot order, so mark the slot done and drain from here
      // (the reader thread). in_flight is untouched — the slot never
      // occupied a worker.
      {
        MutexLock lock(&state.mu);
        if (!state.error.ok()) break;
        slot->done = true;
      }
      if (!drain_commits().ok()) break;  // error lands in state.error
      continue;
    }
    {
      MutexLock lock(&state.mu);
      while (state.in_flight >= window && state.error.ok()) {
        state.cv.Wait(&state.mu);
      }
      if (!state.error.ok()) break;
      ++state.in_flight;
      ++state.submitted;
    }
    pool->Submit([this, slot, &state, &drain_commits]() -> Status {
      PageContext page_ctx;
      page_ctx.page = slot->page;
      page_ctx.q_page = slot->q_page;
      page_ctx.reuse = slot->q_page != nullptr ? &slot->reuse : nullptr;
      page_ctx.captures = &slot->captures;
      page_ctx.stats = &slot->stats;
      Result<std::vector<Tuple>> rows = EvalPage(&page_ctx);
      {
        MutexLock lock(&state.mu);
        --state.in_flight;
        if (rows.ok()) {
          slot->rows = std::move(rows).ValueOrDie();
          slot->done = true;
        } else if (state.error.ok()) {
          state.error = rows.status();
        }
      }
      state.cv.NotifyAll();
      Status task_status = rows.ok() ? drain_commits() : rows.status();
      // The finished mark must come last: the settle wait below treats a
      // finished task as one that will never touch `state` or the slots
      // again, including its drain pass.
      {
        MutexLock lock(&state.mu);
        ++state.finished;
        // Notify while still holding the lock: the settling thread
        // destroys `state` the moment it observes finished == submitted,
        // and it cannot re-acquire `mu` (and thus return from its wait)
        // until this guard releases — an unlocked notify here could
        // broadcast on an already-destroyed condvar.
        state.cv.NotifyAll();
      }
      return task_status;
    });
  }
  // Settle: every task this run submitted must finish before the stack
  // state can be torn down. ThreadPool::Wait() is deliberately not used —
  // with a shared pool it would block on (and steal the sticky error of)
  // other engines' tasks.
  {
    MutexLock lock(&state.mu);
    while (state.finished != state.submitted) state.cv.Wait(&state.mu);
  }
  DELEX_RETURN_NOT_OK(prefetch_error);
  {
    MutexLock lock(&state.mu);
    DELEX_RETURN_NOT_OK(state.error);
  }
  // Defensive final drain: covers a trailing fast-path slot marked done
  // after the last worker's drain pass (the inline drain above normally
  // commits it already).
  DELEX_RETURN_NOT_OK(drain_commits());
  MutexLock lock(&state.mu);
  DELEX_RETURN_NOT_OK(state.error);
  DELEX_CHECK(state.next_commit == slots->size());
  return Status::OK();
}

Result<std::vector<Tuple>> DelexEngine::RunSnapshot(
    const Snapshot& current, const Snapshot* previous,
    const MatcherAssignment& assignment, RunStats* stats) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (previous != nullptr && generation_ == 0) {
    return Status::InvalidArgument(
        "previous snapshot supplied but no reuse files captured yet");
  }
  if (previous != nullptr &&
      assignment.per_unit.size() != analysis_.units.size()) {
    return Status::InvalidArgument("assignment size != number of IE units");
  }

  const size_t num_units = analysis_.units.size();
  RunStats local_stats;
  RunStats* out_stats = stats != nullptr ? stats : &local_stats;
  *out_stats = RunStats();
  out_stats->units.resize(num_units);
  assignment_ = &assignment;

  DELEX_TRACE_SPAN("run_snapshot", generation_);
  Stopwatch total_watch;

  // Open writers for this generation and readers over the previous one.
  writers_.clear();
  readers_.clear();
  reader_ok_.clear();
  for (size_t u = 0; u < num_units; ++u) {
    auto writer = std::make_unique<UnitReuseWriter>();
    DELEX_RETURN_NOT_OK(
        writer->Open(ReusePathPrefix(static_cast<int>(u), generation_)));
    writers_.push_back(std::move(writer));
    if (previous != nullptr) {
      auto reader = std::make_unique<UnitReuseReader>();
      Status opened =
          reader->Open(ReusePathPrefix(static_cast<int>(u), generation_ - 1));
      // A unit whose previous-generation files are missing or corrupt is
      // degraded (all its pages re-extract from scratch), never fatal:
      // untrusted bytes on disk must not be able to fail the run.
      readers_.push_back(std::move(reader));
      reader_ok_.push_back(opened.ok() ? 1 : 0);
      if (!opened.ok()) DropCorruptReader(u, opened, out_stats);
    }
  }
  result_writer_ = std::make_unique<ResultCacheWriter>();
  DELEX_RETURN_NOT_OK(result_writer_->Open(ResultCachePath(generation_)));
  result_reader_.reset();
  if (previous != nullptr && !options_.disable_page_fast_path) {
    auto reader = std::make_unique<ResultCacheReader>();
    // A missing or corrupt previous cache (e.g. a resumed work dir from an
    // older layout) just disables the fast path for this run.
    if (reader->Open(ResultCachePath(generation_ - 1)).ok()) {
      result_reader_ = std::move(reader);
    }
  }

  // Stage 0: lay out one slot per page, resolving each page's previous
  // version. Workers only ever touch their own slot.
  std::vector<PageSlot> slots(current.pages().size());
  for (size_t i = 0; i < current.pages().size(); ++i) {
    const Page& page = current.pages()[i];
    PageSlot& slot = slots[i];
    slot.page = &page;
    if (previous != nullptr) {
      if (auto idx = previous->FindByUrl(page.url)) {
        slot.q_page = &previous->pages()[*idx];
      }
    }
    slot.captures.resize(num_units);
    slot.stats.units.resize(num_units);
    slot.stats.pages = 1;
    if (slot.q_page != nullptr) slot.stats.pages_with_previous = 1;
    // Whole-page fast path: digests first (O(1) per pair), then a byte
    // compare so a digest collision can never relocate wrong records.
    if (slot.q_page != nullptr && result_reader_ != nullptr &&
        slot.q_page->content_hash == page.content_hash &&
        slot.q_page->content.size() == page.content.size() &&
        simd::BytesEqual(slot.q_page->content.data(), page.content.data(),
                         page.content.size())) {
      slot.identical = true;
    }
  }

  // With a shared pool, always go through it — even a 1-wide pool — so a
  // sharded run's total compute is bounded by the pool width rather than
  // by the number of engine driver threads.
  const int num_threads = EffectiveThreads();
  const bool parallel = options_.shared_pool != nullptr ||
                        (num_threads > 1 && slots.size() > 1);
  Status run_status = parallel ? RunPagesParallel(num_threads, &slots)
                               : RunPagesSerial(&slots);
  if (!run_status.ok()) {
    writers_.clear();
    readers_.clear();
    result_writer_.reset();
    result_reader_.reset();
    assignment_ = nullptr;
    return run_status;
  }

  // Final assembly: results in snapshot page order, stats shards merged in
  // the same order (counter totals are order-independent; the fixed order
  // keeps the merge deterministic anyway).
  std::vector<Tuple> results;
  for (PageSlot& slot : slots) {
    for (Tuple& row : slot.rows) results.push_back(std::move(row));
    out_stats->MergeFrom(slot.stats);
  }

  for (auto& writer : writers_) {
    DELEX_RETURN_NOT_OK(writer->Close());
    out_stats->reuse_write_io += writer->CombinedStats();
  }
  for (auto& reader : readers_) {
    DELEX_RETURN_NOT_OK(reader->Close());
    out_stats->reuse_read_io += reader->CombinedStats();
  }
  DELEX_RETURN_NOT_OK(result_writer_->Close());
  out_stats->reuse_write_io += result_writer_->stats();
  if (result_reader_ != nullptr) {
    DELEX_RETURN_NOT_OK(result_reader_->Close());
    out_stats->reuse_read_io += result_reader_->stats();
  }

  // Drop the now-consumed previous generation.
  if (previous != nullptr) {
    for (size_t u = 0; u < num_units; ++u) {
      std::string prefix = ReusePathPrefix(static_cast<int>(u), generation_ - 1);
      std::error_code ec;
      std::filesystem::remove(prefix + ".in", ec);
      std::filesystem::remove(prefix + ".out", ec);
      std::filesystem::remove(prefix + ".idx", ec);
    }
    std::error_code ec;
    std::filesystem::remove(ResultCachePath(generation_ - 1), ec);
  }

  writers_.clear();
  readers_.clear();
  result_writer_.reset();
  result_reader_.reset();
  ++generation_;
  out_stats->result_tuples = static_cast<int64_t>(results.size());
  out_stats->phases.total_us = total_watch.ElapsedMicros();
  // Phase totals are derived purely from the merged per-page shards
  // (satisfying Fig 11's decomposition without any engine-global timer
  // that per-page code would have to race on).
  for (const UnitRunStats& u : out_stats->units) {
    out_stats->phases.match_us += u.match_us;
    out_stats->phases.extract_us += u.extract_us;
    out_stats->phases.copy_us += u.copy_us;
    out_stats->phases.capture_us += u.capture_us;
  }
  // Under parallel execution the per-phase timers (merged from concurrent
  // shards) can legitimately sum past the single wall clock; record the
  // overshoot instead of silently clamping it away in OthersUs().
  out_stats->phases.FinalizeDrift();
  // Fold this run's merged latency shards into the process-wide registry
  // histograms — one bulk add per run, nothing on the per-sample path.
  if (obs::HistogramsEnabled()) {
    PageEvalHistogram()->MergeFrom(out_stats->page_eval_hist);
    for (MatcherKind kind : kAllMatcherKinds) {
      MatchHistogram(kind)->MergeFrom(
          out_stats->match_hist[static_cast<size_t>(kind)]);
    }
    for (const UnitRunStats& u : out_stats->units) {
      ExtractHistogram()->MergeFrom(u.extract_hist);
    }
  }
  static obs::Gauge* generation_gauge =
      obs::MetricsRegistry::Global().GetGauge("engine.generation");
  generation_gauge->Set(generation_);
  // Bridge the text-layer truncation tally into the metrics registry
  // (delex_text cannot depend on obs) and WARN at most once per run.
  {
    static obs::Counter* truncated_counter =
        obs::MetricsRegistry::Global().GetCounter(
            "matcher.suffix.candidates_truncated");
    static std::atomic<int64_t> truncated_seen{0};
    int64_t truncated_total = SuffixCandidatesTruncatedTotal();
    int64_t truncated_delta =
        truncated_total -
        truncated_seen.exchange(truncated_total, std::memory_order_relaxed);
    if (truncated_delta > 0) {
      truncated_counter->Increment(truncated_delta);
      DELEX_LOG(WARN) << "suffix matcher truncated " << truncated_delta
                      << " candidate list(s) this run; raise "
                         "DELEX_SUFFIX_MAX_CANDIDATES if ST reuse looks thin";
    }
  }
  // Reuse-state corruption degrades silently to re-extraction (results
  // stay correct); surface it once so an operator notices without
  // scraping run reports.
  if (out_stats->reuse_corrupt_drops > 0) {
    static std::atomic<bool> corrupt_warned{false};
    if (!corrupt_warned.exchange(true, std::memory_order_relaxed)) {
      DELEX_LOG(WARN) << "dropped " << out_stats->reuse_corrupt_drops
                      << " corrupt previous-generation artifact(s) in gen "
                      << generation_
                      << "; affected pages re-extracted from scratch — "
                         "check the work dir's storage";
    }
  }
  DELEX_LOG(INFO) << "snapshot run done: gen=" << generation_
                  << " pages=" << out_stats->pages
                  << " identical=" << out_stats->pages_identical
                  << " tuples=" << out_stats->result_tuples
                  << " total_us=" << out_stats->phases.total_us;
  assignment_ = nullptr;
  return results;
}

Result<std::vector<Tuple>> DelexEngine::EvalNode(const PlanNode& node,
                                                 PageContext* page_ctx) const {
  auto unit_it = analysis_.unit_of_top.find(node.id);
  if (unit_it != analysis_.unit_of_top.end()) {
    return EvalUnit(analysis_.units[static_cast<size_t>(unit_it->second)],
                    page_ctx);
  }
  const Page& page = *page_ctx->page;
  switch (node.kind) {
    case PlanKind::kScan: {
      std::vector<Tuple> out;
      out.push_back(
          {Value(TextSpan(0, static_cast<int64_t>(page.content.size())))});
      return out;
    }
    case PlanKind::kSelect: {
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                             EvalNode(*node.children[0], page_ctx));
      std::vector<Tuple> out;
      for (Tuple& t : input) {
        DELEX_ASSIGN_OR_RETURN(bool keep,
                               xlog::EvalSelect(node, t, page.content));
        if (keep) out.push_back(std::move(t));
      }
      return out;
    }
    case PlanKind::kProject: {
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> input,
                             EvalNode(*node.children[0], page_ctx));
      std::vector<Tuple> out;
      out.reserve(input.size());
      for (const Tuple& t : input) {
        Tuple projected;
        projected.reserve(node.columns.size());
        for (int c : node.columns) {
          projected.push_back(t[static_cast<size_t>(c)]);
        }
        out.push_back(std::move(projected));
      }
      return out;
    }
    case PlanKind::kJoin: {
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> left,
                             EvalNode(*node.children[0], page_ctx));
      DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> right,
                             EvalNode(*node.children[1], page_ctx));
      std::vector<Tuple> out;
      xlog::EvalJoin(node, left, right, &out);
      return out;
    }
    case PlanKind::kIE:
      return Status::Internal(
          "raw IE node reached outside a unit (unit analysis bug)");
  }
  return Status::Internal("unhandled node kind");
}

Result<bool> DelexEngine::ReplayChain(const IEUnit& unit,
                                      const Tuple& input_tuple,
                                      const Tuple& blackbox_output,
                                      std::string_view page_text,
                                      Tuple* final_tuple) const {
  Tuple combined = input_tuple;
  combined.reserve(input_tuple.size() + blackbox_output.size());
  for (const Value& v : blackbox_output) combined.push_back(v);

  // chain[0] is the IE node itself (already applied); replay the folded
  // σ/π above it.
  for (size_t i = 1; i < unit.chain.size(); ++i) {
    const PlanNode& op = *unit.chain[i];
    if (op.kind == PlanKind::kSelect) {
      DELEX_ASSIGN_OR_RETURN(bool keep,
                             xlog::EvalSelect(op, combined, page_text));
      if (!keep) return false;
    } else {
      DELEX_CHECK(op.kind == PlanKind::kProject);
      Tuple projected;
      projected.reserve(op.columns.size());
      for (int c : op.columns) {
        projected.push_back(combined[static_cast<size_t>(c)]);
      }
      combined = std::move(projected);
    }
  }
  *final_tuple = std::move(combined);
  return true;
}

Result<std::vector<Tuple>> DelexEngine::EvalUnit(const IEUnit& unit,
                                                 PageContext* page_ctx) const {
  DELEX_TRACE_SPAN("eval_unit", unit.index);
  const Page& page = *page_ctx->page;
  const Page* q_page = page_ctx->q_page;
  UnitRunStats& ustats =
      page_ctx->stats->units[static_cast<size_t>(unit.index)];
  PageCapture& capture =
      (*page_ctx->captures)[static_cast<size_t>(unit.index)];

  DELEX_ASSIGN_OR_RETURN(std::vector<Tuple> inputs,
                         EvalNode(*unit.input, page_ctx));

  // This page's recorded tuples from the previous run, pre-fetched by the
  // reader stage (one forward seek per unit per page — §5.2's
  // sequential-scan discipline, kept on the reader thread).
  const PageReuse* page_reuse =
      (q_page != nullptr && page_ctx->reuse != nullptr)
          ? &(*page_ctx->reuse)[static_cast<size_t>(unit.index)]
          : nullptr;
  static const std::vector<InputTupleRec> kNoInputs;
  static const std::vector<OutputTupleRec> kNoOutputs;
  const std::vector<InputTupleRec>& old_inputs =
      page_reuse != nullptr ? page_reuse->inputs : kNoInputs;
  const std::vector<OutputTupleRec>& old_outputs =
      page_reuse != nullptr ? page_reuse->outputs : kNoOutputs;
  std::unordered_multimap<int64_t, const OutputTupleRec*> outputs_by_itid;
  if (!old_outputs.empty()) {
    outputs_by_itid.reserve(old_outputs.size());
    for (const OutputTupleRec& rec : old_outputs) {
      outputs_by_itid.emplace(rec.itid, &rec);
    }
  }

  const Extractor& extractor = *unit.ie_node->extractor;
  const MatcherKind matcher_kind =
      (assignment_ != nullptr && !assignment_->per_unit.empty() &&
       q_page != nullptr)
          ? assignment_->per_unit[static_cast<size_t>(unit.index)]
          : MatcherKind::kDN;
  const Matcher& matcher = GetMatcher(matcher_kind);

  std::vector<Tuple> unit_results;

  // Index of old inputs by content hash (exact fast path) and by tid
  // (copy-phase lookups). Per the region_hash contract (reuse_file.h),
  // only empty-context records enter the hash index — context equality is
  // part of reuse eligibility and the hash covers region bytes only;
  // non-empty-context records are left to the matcher path.
  std::unordered_multimap<uint64_t, const InputTupleRec*> old_by_hash;
  std::unordered_map<int64_t, const InputTupleRec*> old_by_tid;
  if (q_page != nullptr && !old_inputs.empty()) {
    ScopedTimer match_timer(&ustats.match_us);
    old_by_hash.reserve(old_inputs.size());
    old_by_tid.reserve(old_inputs.size());
    for (const InputTupleRec& old : old_inputs) {
      old_by_tid.emplace(old.tid, &old);
      if (!options_.disable_exact_fast_path && old.context.empty()) {
        old_by_hash.emplace(old.region_hash, &old);
      }
    }
  }

  // Group child tuples by distinct input region: one paragraph carrying
  // several person mentions yields several child tuples over the same
  // region, but the blackbox (and all reuse machinery) runs once per
  // distinct region; child-tuple multiplicity is restored at chain-replay
  // time. This also keeps the reuse files free of duplicate groups.
  struct RegionGroup {
    TextSpan region;
    size_t representative = 0;  // index of the first input tuple
    std::vector<Tuple> produced;  // sigma-surviving blackbox outputs
  };
  std::vector<RegionGroup> groups;
  // Span endpoints are offsets into the in-memory page, so they fit 32
  // bits each (guarded below) and (start, end) packs into one 64-bit hash
  // key — a flat O(1) probe instead of the ordered-map walk this loop used
  // to pay per input tuple.
  std::unordered_map<uint64_t, size_t> group_index;
  group_index.reserve(inputs.size());
  std::vector<size_t> group_of_input(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Value& region_value =
        inputs[i][static_cast<size_t>(unit.ie_node->input_col)];
    if (!std::holds_alternative<TextSpan>(region_value)) {
      return Status::InvalidArgument("IE input column is not a span");
    }
    TextSpan region = std::get<TextSpan>(region_value);
    if (region.start < 0 || region.end < 0 || (region.start >> 32) != 0 ||
        (region.end >> 32) != 0) {
      return Status::InvalidArgument("IE input span exceeds 32-bit offsets");
    }
    const uint64_t key = (static_cast<uint64_t>(region.start) << 32) |
                         static_cast<uint64_t>(region.end);
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      it = group_index.emplace(key, groups.size()).first;
      RegionGroup group;
      group.region = region;
      group.representative = i;
      groups.push_back(std::move(group));
    }
    group_of_input[i] = it->second;
  }

  capture.groups.reserve(groups.size());
  int64_t group_ordinal = -1;
  for (RegionGroup& group : groups) {
    ++group_ordinal;
    ++ustats.input_tuples;
    const TextSpan region = group.region;
    const Tuple context;  // our IE predicates carry no extra parameters (c)
    const uint64_t region_hash =
        Fnv1a64(std::string_view(page.content)
                    .substr(static_cast<size_t>(region.start),
                            static_cast<size_t>(region.length())));

    // Buffer the input record; the ordered write-back stage appends it
    // (assigning the tid) once every earlier page has committed.
    PageCapture::Group& capture_group = capture.groups.emplace_back();
    capture_group.region = region;
    capture_group.region_hash = region_hash;
    capture_group.context = context;

    // ---- Matching: find reuse opportunities (§5.3). ----
    RegionDerivation derivation;
    bool attempted_reuse = false;
    bool exact_hit = false;
    if (q_page != nullptr && !old_inputs.empty()) {
      ScopedTimer match_timer(&ustats.match_us);
      attempted_reuse = true;
      std::string_view p_text =
          std::string_view(page.content)
              .substr(static_cast<size_t>(region.start),
                      static_cast<size_t>(region.length()));

      // Fast path: an old region with identical bytes => one full-width,
      // fully aligned segment; no matcher call, no region derivation --
      // everything copies and nothing is re-extracted.
      const InputTupleRec* exact = nullptr;
      if (!options_.disable_exact_fast_path && context.empty()) {
        auto [begin, end] = old_by_hash.equal_range(region_hash);
        for (auto it = begin; it != end; ++it) {
          const InputTupleRec& old = *it->second;
          if (old.region.length() != region.length()) continue;
          // Verify bytes (hash collisions must not corrupt results).
          std::string_view q_text =
              std::string_view(q_page->content)
                  .substr(static_cast<size_t>(old.region.start),
                          static_cast<size_t>(old.region.length()));
          if (q_text == p_text) {
            exact = &old;
            break;
          }
        }
      }

      std::vector<TaggedSegment> segments;
      if (exact != nullptr) {
        ++ustats.exact_region_hits;
        exact_hit = true;
        MatchSegment full(region, exact->region);
        // Record into the page pair's match cache so RU in higher units
        // can recycle even exact matches.
        page_ctx->match_ctx.Record(region, exact->region, {full});
        // Hand-built derivation: the interior is the whole matched region
        // (both edges aligned), so every recorded mention is copyable and
        // the extraction residue is empty.
        CopyRegion copy;
        copy.q_interior = exact->region;
        copy.delta = full.Delta();
        copy.p_interior = region;
        copy.old_tid = exact->tid;
        derivation.copy_regions.push_back(copy);
        derivation.p_safe = IntervalSet({region});
      } else if (matcher_kind != MatcherKind::kDN) {
        // Candidate old regions. RU answers from the page pair's recorded
        // match cache at near-zero cost, so it can afford to consult every
        // old region; the real matchers (UD/ST) only try the ones nearest
        // in ordinal position.
        std::vector<const InputTupleRec*> candidates;
        if (matcher_kind == MatcherKind::kRU) {
          candidates.reserve(old_inputs.size());
          for (const InputTupleRec& old : old_inputs) {
            candidates.push_back(&old);
          }
        } else {
          for (int64_t offset = 0;
               static_cast<int>(candidates.size()) <
                   options_.max_match_candidates &&
               offset < static_cast<int64_t>(old_inputs.size());
               ++offset) {
            int64_t idx = group_ordinal + (offset % 2 == 0 ? 1 : -1) *
                                              ((offset + 1) / 2);
            if (offset == 0) idx = group_ordinal;
            if (idx < 0 || idx >= static_cast<int64_t>(old_inputs.size())) {
              continue;
            }
            candidates.push_back(&old_inputs[static_cast<size_t>(idx)]);
          }
        }
        obs::LocalHistogram& match_hist =
            page_ctx->stats->match_hist[static_cast<size_t>(matcher_kind)];
        for (const InputTupleRec* old : candidates) {
          ++ustats.matcher_calls;
          std::vector<MatchSegment> found;
          {
            obs::ScopedLatencyTimer match_latency(&match_hist);
            found = matcher.Match(page.content, region, q_page->content,
                                  old->region, &page_ctx->match_ctx);
          }
          if (paranoid::Enabled()) {
            paranoid::CheckSegments(page.content, region, q_page->content,
                                    old->region, found);
          }
          for (const MatchSegment& seg : found) {
            segments.push_back({seg, old->region, old->tid});
          }
        }
      }
      if (!exact_hit) {
        derivation = DeriveRegionsTagged(region, std::move(segments),
                                         unit.alpha, unit.beta);
      }
      if (paranoid::Enabled()) paranoid::CheckDerivation(derivation, region);
    }
    if (!attempted_reuse) {
      derivation.extraction_regions = IntervalSet({region});
    }

    // ---- Copy phase: relocate recorded mentions (§5.3). ----
    std::vector<Tuple> produced;  // blackbox outputs for this region
    {
      ScopedTimer copy_timer(&ustats.copy_us);
      for (const CopyRegion& copy : derivation.copy_regions) {
        auto [begin, end] = outputs_by_itid.equal_range(copy.old_tid);
        auto old_it = old_by_tid.find(copy.old_tid);
        const TextSpan old_region = old_it != old_by_tid.end()
                                        ? old_it->second->region
                                        : TextSpan();
        for (auto it = begin; it != end; ++it) {
          const OutputTupleRec& rec = *it->second;
          TextSpan envelope = SpanEnvelope(rec.payload);
          if (!EnvelopeCopyable(copy, envelope, old_region)) continue;
          Tuple relocated = rec.payload;
          ShiftSpans(&relocated, copy.delta);
          if (paranoid::Enabled()) {
            paranoid::CheckCopiedMention(copy, relocated, region);
          }
          produced.push_back(std::move(relocated));
          ++ustats.copied_tuples;
        }
      }
    }

    // ---- Extraction phase: run the blackbox on the residue. ----
    {
      ScopedTimer extract_timer(&ustats.extract_us);
      DELEX_TRACE_SPAN("extract", unit.index);
      for (const TextSpan& sub : derivation.extraction_regions.spans()) {
        ustats.chars_extracted += sub.length();
        std::string_view sub_text =
            std::string_view(page.content)
                .substr(static_cast<size_t>(sub.start),
                        static_cast<size_t>(sub.length()));
        std::vector<Tuple> extracted;
        {
          // One latency sample per blackbox invocation.
          obs::ScopedLatencyTimer extract_latency(&ustats.extract_hist);
          extracted = extractor.Extract(sub_text, sub.start, context);
        }
        for (Tuple& o : extracted) {
          TextSpan envelope = SpanEnvelope(o);
          if (envelope.empty() && HasSpan(o)) continue;  // degenerate
          // Keep rule: the mention's beta-window must lie inside this
          // sub-region; clipping is allowed only at true region edges
          // (where the sub-region edge IS the region edge).
          TextSpan window(envelope.start - unit.beta,
                          envelope.end + unit.beta);
          if (window.start < region.start) window.start = region.start;
          if (window.end > region.end) window.end = region.end;
          if (!sub.Contains(window)) continue;
          // Suppression rule: copy-safe mentions were already copied.
          if (!envelope.empty() &&
              derivation.p_safe.ContainsWithinOne(envelope)) {
            continue;
          }
          produced.push_back(std::move(o));
          ++ustats.extracted_tuples;
        }
      }
    }

    // ---- sigma-filter and capture survivors (once per region). ----
    // Folded sigma predicates only read blackbox-produced columns (the
    // foldability rule), so the verdict is identical for every child tuple
    // sharing this region; the representative decides capture.
    const Tuple& representative = inputs[group.representative];
    for (Tuple& o : produced) {
      Tuple ignored;
      DELEX_ASSIGN_OR_RETURN(
          bool keep,
          ReplayChain(unit, representative, o, page.content, &ignored));
      if (!keep) continue;
      {
        ScopedTimer capture_timer(&ustats.capture_us);
        capture_group.outputs.push_back(o);
      }
      group.produced.push_back(std::move(o));
    }
  }

  // ---- Materialize unit outputs: child multiplicity x region outputs. ----
  for (size_t i = 0; i < inputs.size(); ++i) {
    const RegionGroup& group = groups[group_of_input[i]];
    for (const Tuple& o : group.produced) {
      Tuple final_tuple;
      DELEX_ASSIGN_OR_RETURN(
          bool keep, ReplayChain(unit, inputs[i], o, page.content,
                                 &final_tuple));
      DELEX_CHECK(keep);  // survivors were filtered above
      unit_results.push_back(std::move(final_tuple));
      ++ustats.output_tuples;
    }
  }
  return unit_results;
}

}  // namespace delex
