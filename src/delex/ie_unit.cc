#include "delex/ie_unit.h"

#include <algorithm>

#include "common/logging.h"

namespace delex {

using xlog::PlanKind;
using xlog::PlanNode;
using xlog::PlanNodePtr;

namespace {

/// Parent lookup for every node id.
void BuildParentMap(const PlanNodePtr& node,
                    std::unordered_map<int, PlanNodePtr>* parents) {
  for (const PlanNodePtr& child : node->children) {
    (*parents)[child->id] = node;
    BuildParentMap(child, parents);
  }
}

}  // namespace

Result<UnitAnalysis> AnalyzeUnits(const PlanNodePtr& root,
                                  bool fold_operators) {
  std::unordered_map<int, PlanNodePtr> parents;
  BuildParentMap(root, &parents);

  std::vector<PlanNodePtr> post_order;
  CollectPostOrder(root, &post_order);

  UnitAnalysis analysis;
  for (const PlanNodePtr& node : post_order) {
    if (node->kind != PlanKind::kIE) continue;
    if (node->id < 0) {
      return Status::InvalidArgument("plan ids not assigned (call AssignIds)");
    }

    IEUnit unit;
    unit.ie_node = node;
    unit.input = node->children[0];
    unit.chain.push_back(node);

    // Provenance of the current top's columns: true = produced by the
    // blackbox, false = passed through from the unit's input.
    size_t child_arity = unit.input->schema.size();
    std::vector<bool> from_blackbox(node->schema.size(), false);
    for (size_t i = child_arity; i < node->schema.size(); ++i) {
      from_blackbox[i] = true;
    }

    PlanNodePtr top = node;
    while (fold_operators) {
      auto it = parents.find(top->id);
      if (it == parents.end()) break;
      const PlanNodePtr& parent = it->second;
      if (parent->kind == PlanKind::kSelect) {
        bool foldable = true;
        for (const xlog::PredArg& arg : parent->pred_args) {
          if (arg.IsCol() && !from_blackbox[static_cast<size_t>(arg.col)]) {
            foldable = false;
            break;
          }
        }
        if (!foldable) break;
        top = parent;
        unit.chain.push_back(top);
        // σ does not change the schema or provenance.
      } else if (parent->kind == PlanKind::kProject) {
        std::vector<bool> remapped;
        remapped.reserve(parent->columns.size());
        for (int c : parent->columns) {
          remapped.push_back(from_blackbox[static_cast<size_t>(c)]);
        }
        from_blackbox = std::move(remapped);
        top = parent;
        unit.chain.push_back(top);
      } else {
        break;
      }
    }

    unit.top = top;
    unit.alpha = node->extractor->Scope();
    unit.beta = node->extractor->ContextWidth();
    unit.name = node->extractor->Name() + "#" + std::to_string(node->id);
    analysis.units.push_back(std::move(unit));
  }

  // Bottom-up order by top node id (post-order ids grow upward).
  std::sort(analysis.units.begin(), analysis.units.end(),
            [](const IEUnit& a, const IEUnit& b) {
              return a.top->id < b.top->id;
            });
  for (size_t i = 0; i < analysis.units.size(); ++i) {
    analysis.units[i].index = static_cast<int>(i);
    analysis.unit_of_top[analysis.units[i].top->id] = static_cast<int>(i);
    for (const PlanNodePtr& member : analysis.units[i].chain) {
      analysis.unit_of_member[member->id] = static_cast<int>(i);
    }
  }
  return analysis;
}

namespace {

/// Traces which unit (if any) produced the span flowing into `unit`'s
/// blackbox. Returns -1 when the span originates at the raw document scan.
int TraceInputOrigin(const IEUnit& unit, const UnitAnalysis& analysis) {
  PlanNodePtr node = unit.input;
  int col = unit.ie_node->input_col;
  while (node != nullptr) {
    switch (node->kind) {
      case PlanKind::kScan:
        return -1;
      case PlanKind::kSelect:
        node = node->children[0];
        break;
      case PlanKind::kProject:
        col = node->columns[static_cast<size_t>(col)];
        node = node->children[0];
        break;
      case PlanKind::kJoin: {
        size_t left_arity = node->children[0]->schema.size();
        if (static_cast<size_t>(col) < left_arity) {
          node = node->children[0];
        } else {
          col = node->right_keep[static_cast<size_t>(col) - left_arity];
          node = node->children[1];
        }
        break;
      }
      case PlanKind::kIE: {
        size_t child_arity = node->children[0]->schema.size();
        if (static_cast<size_t>(col) >= child_arity) {
          auto it = analysis.unit_of_member.find(node->id);
          DELEX_CHECK(it != analysis.unit_of_member.end());
          return it->second;
        }
        node = node->children[0];
        break;
      }
    }
  }
  return -1;
}

}  // namespace

std::vector<IEChain> PartitionChains(const xlog::PlanNodePtr& root,
                                     const UnitAnalysis& analysis) {
  (void)root;
  const size_t n = analysis.units.size();
  std::vector<int> next_lower(n, -1);
  for (size_t i = 0; i < n; ++i) {
    next_lower[i] = TraceInputOrigin(analysis.units[i], analysis);
  }

  std::vector<bool> claimed(n, false);
  std::vector<IEChain> chains;
  // Upper units first: a chain begins at a unit no other unclaimed unit
  // feeds from, and extends downward while the producer is unclaimed.
  for (size_t i = n; i-- > 0;) {
    if (claimed[i]) continue;
    IEChain chain;
    int current = static_cast<int>(i);
    while (current >= 0 && !claimed[static_cast<size_t>(current)]) {
      claimed[static_cast<size_t>(current)] = true;
      chain.units.push_back(current);
      current = next_lower[static_cast<size_t>(current)];
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace delex
