#ifndef DELEX_DELEX_RUN_STATS_H_
#define DELEX_DELEX_RUN_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "matcher/matcher.h"
#include "obs/histogram.h"
#include "storage/io_stats.h"

namespace delex {

/// \brief Matcher choice per IE unit — the paper's "IE plan" (§6.1).
struct MatcherAssignment {
  std::vector<MatcherKind> per_unit;

  static MatcherAssignment Uniform(size_t num_units, MatcherKind kind) {
    MatcherAssignment a;
    a.per_unit.assign(num_units, kind);
    return a;
  }

  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < per_unit.size(); ++i) {
      if (i > 0) out += ",";
      out += MatcherKindName(per_unit[i]);
    }
    return out;
  }

  bool operator==(const MatcherAssignment& other) const = default;
};

/// \brief Wall-clock decomposition of one snapshot run — the categories of
/// Figure 11 (Match / Extraction / Copy / Opt / Others).
struct PhaseBreakdown {
  int64_t match_us = 0;
  int64_t extract_us = 0;
  int64_t copy_us = 0;
  int64_t opt_us = 0;
  int64_t capture_us = 0;  ///< reuse-file writes (folded into Others in Fig 11)
  int64_t total_us = 0;    ///< end-to-end wall clock

  /// Overshoot of the accounted phase time past total_us (timer drift:
  /// per-phase timers merged from concurrent page shards can sum past the
  /// single wall clock). Recorded by FinalizeDrift — OthersUs then clamps
  /// to 0 without losing the signal; the run report surfaces it.
  int64_t phase_drift_us = 0;

  int64_t OthersUs() const {
    int64_t accounted = match_us + extract_us + copy_us + opt_us + capture_us;
    return total_us > accounted ? total_us - accounted : 0;
  }

  /// Call once after total_us and the component timers are final.
  void FinalizeDrift() {
    int64_t accounted = match_us + extract_us + copy_us + opt_us + capture_us;
    phase_drift_us = accounted > total_us ? accounted - total_us : 0;
  }

  PhaseBreakdown& operator+=(const PhaseBreakdown& other) {
    match_us += other.match_us;
    extract_us += other.extract_us;
    copy_us += other.copy_us;
    opt_us += other.opt_us;
    capture_us += other.capture_us;
    total_us += other.total_us;
    phase_drift_us += other.phase_drift_us;
    return *this;
  }
};

/// \brief Per-unit counters for one snapshot run.
///
/// Under parallel execution every page task accumulates into its own
/// private shard (inside a per-page RunStats), merged into the run's
/// stats by RunStats::MergeFrom once the page is done — per-page code
/// never touches engine-global counters. All phase timers, including
/// capture, live here; RunStats::PhaseBreakdown totals are derived from
/// the merged shards.
struct UnitRunStats {
  int64_t input_tuples = 0;
  int64_t output_tuples = 0;
  int64_t copied_tuples = 0;
  int64_t extracted_tuples = 0;
  int64_t matcher_calls = 0;
  int64_t exact_region_hits = 0;
  int64_t chars_extracted = 0;  ///< total length of extraction regions run
  int64_t match_us = 0;
  int64_t extract_us = 0;
  int64_t copy_us = 0;
  int64_t capture_us = 0;  ///< reuse-record buffering + ordered write-back

  /// Per-blackbox-invocation extract latency (one sample per
  /// extractor.Extract call) — extract_us only gives the sum.
  obs::LocalHistogram extract_hist;

  UnitRunStats& operator+=(const UnitRunStats& other) {
    input_tuples += other.input_tuples;
    output_tuples += other.output_tuples;
    copied_tuples += other.copied_tuples;
    extracted_tuples += other.extracted_tuples;
    matcher_calls += other.matcher_calls;
    exact_region_hits += other.exact_region_hits;
    chars_extracted += other.chars_extracted;
    match_us += other.match_us;
    extract_us += other.extract_us;
    copy_us += other.copy_us;
    capture_us += other.capture_us;
    extract_hist.MergeFrom(other.extract_hist);
    return *this;
  }
};

/// \brief Aggregate statistics of one snapshot run.
struct RunStats {
  PhaseBreakdown phases;
  IoStats reuse_read_io;
  IoStats reuse_write_io;
  std::vector<UnitRunStats> units;
  int64_t pages = 0;
  int64_t pages_with_previous = 0;
  int64_t result_tuples = 0;

  /// Pages whose content was byte-identical to their previous version and
  /// whose reuse records + result rows were taken wholesale from the last
  /// generation (the whole-page fast path — no EvalPage).
  int64_t pages_identical = 0;
  /// Framed reuse/result bytes relocated verbatim (zero decode, zero
  /// re-encode) by the fast path's raw passthrough.
  int64_t raw_bytes_copied = 0;
  /// Previous-generation reuse records (inputs + outputs) the fast path
  /// relocated without ever decoding them.
  int64_t records_decoded_skipped = 0;

  /// Fast-path degradations this run (the global metrics counters track
  /// the same events process-wide; these are the per-run view the run
  /// report emits). Demotions fall back from the whole-page fast path to
  /// a normal EvalPage; decode_copy_groups counts group-index rebuilds.
  int64_t fast_path_demote_result_cache = 0;
  int64_t fast_path_demote_missing_group = 0;
  int64_t fast_path_decode_copy_groups = 0;

  /// Previous-generation artifacts (a unit's reuse files or the result
  /// cache) dropped mid-run because their bytes failed validation. Each
  /// drop degrades the affected pages to clean re-extraction — results
  /// stay correct, reuse is lost — so a nonzero value means the work dir
  /// was corrupted (or truncated) between runs.
  int64_t reuse_corrupt_drops = 0;

  /// Latency distributions, observability layer 2. Each per-page shard
  /// records into its own histograms (single writer, lock-free); the
  /// MergeFrom below folds them. Gated on obs::HistogramsEnabled().
  obs::LocalHistogram page_eval_hist;  ///< one sample per EvalPage call
  /// One sample per Matcher::Match call, indexed by MatcherKind (DN never
  /// calls Match, so its slot stays empty).
  std::array<obs::LocalHistogram, kNumMatcherKinds> match_hist;

  /// Folds a per-page shard into this run's stats (unit counters summed
  /// element-wise; `units` grows to cover the shard). Phase totals are
  /// *not* touched — the engine derives them from the merged unit shards
  /// at the end of the run.
  void MergeFrom(const RunStats& other) {
    if (units.size() < other.units.size()) units.resize(other.units.size());
    for (size_t i = 0; i < other.units.size(); ++i) units[i] += other.units[i];
    reuse_read_io += other.reuse_read_io;
    reuse_write_io += other.reuse_write_io;
    pages += other.pages;
    pages_with_previous += other.pages_with_previous;
    result_tuples += other.result_tuples;
    pages_identical += other.pages_identical;
    raw_bytes_copied += other.raw_bytes_copied;
    records_decoded_skipped += other.records_decoded_skipped;
    fast_path_demote_result_cache += other.fast_path_demote_result_cache;
    fast_path_demote_missing_group += other.fast_path_demote_missing_group;
    fast_path_decode_copy_groups += other.fast_path_decode_copy_groups;
    reuse_corrupt_drops += other.reuse_corrupt_drops;
    page_eval_hist.MergeFrom(other.page_eval_hist);
    for (size_t k = 0; k < match_hist.size(); ++k) {
      match_hist[k].MergeFrom(other.match_hist[k]);
    }
  }
};

}  // namespace delex

#endif  // DELEX_DELEX_RUN_STATS_H_
