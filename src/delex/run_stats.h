#ifndef DELEX_DELEX_RUN_STATS_H_
#define DELEX_DELEX_RUN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "matcher/matcher.h"
#include "storage/io_stats.h"

namespace delex {

/// \brief Matcher choice per IE unit — the paper's "IE plan" (§6.1).
struct MatcherAssignment {
  std::vector<MatcherKind> per_unit;

  static MatcherAssignment Uniform(size_t num_units, MatcherKind kind) {
    MatcherAssignment a;
    a.per_unit.assign(num_units, kind);
    return a;
  }

  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < per_unit.size(); ++i) {
      if (i > 0) out += ",";
      out += MatcherKindName(per_unit[i]);
    }
    return out;
  }

  bool operator==(const MatcherAssignment& other) const = default;
};

/// \brief Wall-clock decomposition of one snapshot run — the categories of
/// Figure 11 (Match / Extraction / Copy / Opt / Others).
struct PhaseBreakdown {
  int64_t match_us = 0;
  int64_t extract_us = 0;
  int64_t copy_us = 0;
  int64_t opt_us = 0;
  int64_t capture_us = 0;  ///< reuse-file writes (folded into Others in Fig 11)
  int64_t total_us = 0;    ///< end-to-end wall clock

  int64_t OthersUs() const {
    int64_t accounted = match_us + extract_us + copy_us + opt_us + capture_us;
    return total_us > accounted ? total_us - accounted : 0;
  }

  PhaseBreakdown& operator+=(const PhaseBreakdown& other) {
    match_us += other.match_us;
    extract_us += other.extract_us;
    copy_us += other.copy_us;
    opt_us += other.opt_us;
    capture_us += other.capture_us;
    total_us += other.total_us;
    return *this;
  }
};

/// \brief Per-unit counters for one snapshot run.
struct UnitRunStats {
  int64_t input_tuples = 0;
  int64_t output_tuples = 0;
  int64_t copied_tuples = 0;
  int64_t extracted_tuples = 0;
  int64_t matcher_calls = 0;
  int64_t exact_region_hits = 0;
  int64_t chars_extracted = 0;  ///< total length of extraction regions run
  int64_t match_us = 0;
  int64_t extract_us = 0;
  int64_t copy_us = 0;
};

/// \brief Aggregate statistics of one snapshot run.
struct RunStats {
  PhaseBreakdown phases;
  IoStats reuse_read_io;
  IoStats reuse_write_io;
  std::vector<UnitRunStats> units;
  int64_t pages = 0;
  int64_t pages_with_previous = 0;
  int64_t result_tuples = 0;
};

}  // namespace delex

#endif  // DELEX_DELEX_RUN_STATS_H_
