#include "delex/region_derivation.h"

#include <algorithm>

#include "common/logging.h"

namespace delex {

RegionDerivation DeriveRegionsTagged(const TextSpan& p_region,
                                     std::vector<TaggedSegment> segments,
                                     int64_t alpha, int64_t beta) {
  RegionDerivation out;

  // Clip segments to the regions (consistently on both sides), drop
  // empties.
  std::vector<TaggedSegment> clipped;
  clipped.reserve(segments.size());
  for (const TaggedSegment& tagged : segments) {
    const MatchSegment& seg = tagged.segment;
    DELEX_CHECK_EQ(seg.p.length(), seg.q.length());
    TextSpan p_clip = seg.p.Intersect(p_region);
    if (p_clip.empty()) continue;
    TextSpan q_clip = p_clip.Shift(-seg.Delta()).Intersect(tagged.q_region);
    if (q_clip.empty()) continue;
    TaggedSegment kept = tagged;
    kept.segment = MatchSegment(q_clip.Shift(seg.Delta()), q_clip);
    clipped.push_back(kept);
  }

  // Enforce disjointness on the p side: sort by p.start and trim each
  // segment's head to the previous tail (keeping p/q aligned).
  std::sort(clipped.begin(), clipped.end(),
            [](const TaggedSegment& a, const TaggedSegment& b) {
              return a.segment.p.start < b.segment.p.start;
            });
  std::vector<TaggedSegment> disjoint;
  int64_t p_cursor = p_region.start;
  for (TaggedSegment tagged : clipped) {
    MatchSegment& seg = tagged.segment;
    if (seg.p.start < p_cursor) {
      int64_t trim = p_cursor - seg.p.start;
      seg.p.start += trim;
      seg.q.start += trim;
    }
    if (seg.p.empty()) continue;
    p_cursor = seg.p.end;
    disjoint.push_back(std::move(tagged));
  }

  // Interiors: shrink each side by β unless the segment abuts that edge of
  // BOTH regions; always shrink ≥ 1 so interiors never touch.
  const int64_t shrink = std::max<int64_t>(beta, 1);
  std::vector<TextSpan> p_interiors;
  for (const TaggedSegment& tagged : disjoint) {
    const MatchSegment& seg = tagged.segment;
    bool left_aligned = seg.p.start == p_region.start &&
                        seg.q.start == tagged.q_region.start;
    bool right_aligned =
        seg.p.end == p_region.end && seg.q.end == tagged.q_region.end;
    TextSpan q_interior = seg.q;
    if (!left_aligned) q_interior.start += shrink;
    if (!right_aligned) q_interior.end -= shrink;
    if (q_interior.empty()) continue;

    CopyRegion copy;
    copy.q_interior = q_interior;
    copy.delta = seg.Delta();
    copy.p_interior = q_interior.Shift(copy.delta);
    copy.old_tid = tagged.old_tid;
    out.copy_regions.push_back(copy);
    p_interiors.push_back(copy.p_interior);
  }

  out.p_safe = IntervalSet(p_interiors);
  out.extraction_regions =
      out.p_safe.ComplementWithin(p_region).Expand(alpha + beta, p_region);
  return out;
}

RegionDerivation DeriveRegions(const TextSpan& p_region,
                               const TextSpan& q_region,
                               const std::vector<MatchSegment>& segments,
                               int64_t alpha, int64_t beta, int64_t old_tid) {
  std::vector<TaggedSegment> tagged;
  tagged.reserve(segments.size());
  for (const MatchSegment& seg : segments) {
    tagged.push_back({seg, q_region, old_tid});
  }
  return DeriveRegionsTagged(p_region, std::move(tagged), alpha, beta);
}

bool EnvelopeCopyable(const CopyRegion& copy, const TextSpan& e_q,
                      const TextSpan& q_region) {
  if (e_q.empty()) {
    // Spanless tuple: only a full-region match preserves everything the
    // blackbox might have looked at.
    return copy.q_interior.Contains(q_region);
  }
  return copy.q_interior.Contains(e_q);
}

}  // namespace delex
