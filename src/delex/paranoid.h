#ifndef DELEX_DELEX_PARANOID_H_
#define DELEX_DELEX_PARANOID_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/value.h"
#include "delex/region_derivation.h"
#include "delex/run_stats.h"
#include "storage/reuse_file.h"
#include "storage/snapshot.h"
#include "text/match_segment.h"
#include "xlog/plan.h"

namespace delex {
namespace paranoid {

/// \brief Deep invariant checking at phase boundaries (DELEX_PARANOID).
///
/// Theorem 1 says recycling prior IE results is equivalent to re-running
/// the blackboxes; these checkers assert the intermediate invariants that
/// the proof leans on, at runtime, on real data. They are compiled in
/// unconditionally but run only when enabled — flip the DELEX_PARANOID
/// env var (or build with -DDELEX_PARANOID=ON to change the default) to
/// turn a production binary into its own oracle for one triage run.
///
/// Every Check* function DELEX_CHECK-aborts on violation: a failed
/// invariant here means results are already wrong, and the crash-flush
/// hooks preserve the trace. Checks are *internal*-invariant guards; they
/// never run on untrusted bytes (the storage layer rejects those with a
/// Status first).

/// True when deep checking is enabled for this process. Reads the
/// DELEX_PARANOID env var once ("0"/"" → compile-time default, anything
/// else → on); the compile default is off unless built with
/// -DDELEX_PARANOID=ON.
bool Enabled();

/// Matcher postcondition: every segment has equal-length p/q spans, both
/// lying inside the query regions, with byte-identical content.
void CheckSegments(std::string_view p_content, const TextSpan& p_region,
                   std::string_view q_content, const TextSpan& q_region,
                   const std::vector<MatchSegment>& segments);

/// Region-derivation postcondition: copy interiors and extraction regions
/// lie inside `p_region`; the p-side pieces are monotone and
/// non-overlapping; each copy's p/q interiors agree through its delta.
void CheckDerivation(const RegionDerivation& derivation,
                     const TextSpan& p_region);

/// Copy-phase postcondition for one relocated mention: the shifted span
/// envelope lies inside the copy's safe p-interior (hence inside the
/// matched region and the new input region).
void CheckCopiedMention(const CopyRegion& copy, const Tuple& relocated,
                        const TextSpan& p_region);

/// Reuse-record decode postcondition: input ordinals are dense and
/// page-local (tid == position, did uniform) and every output's itid
/// names an existing input of the same page.
void CheckPageGroupOrdinals(int64_t did,
                            const std::vector<InputTupleRec>& inputs,
                            const std::vector<OutputTupleRec>& outputs);

/// Raw-passthrough precondition: a slice about to be committed without
/// decode must decode cleanly and match its advertised record counts —
/// the deep re-validation of the zero-decode relocation.
void CheckRawSlice(const RawPageSlice& slice);

/// \brief Differential oracle: runs `series` through three independent
/// engine configurations — serial, parallel, and whole-page fast path
/// disabled — in throwaway work dirs under `scratch_dir`, and compares
/// the canonicalized per-snapshot result multisets.
///
/// Returns OK when all three agree on every snapshot; a Corruption status
/// naming the first divergence otherwise. This is a Status (not a check)
/// so tests and CI legs can drive it without a death harness.
Status DifferentialOracle(const xlog::PlanNodePtr& plan,
                          const std::vector<Snapshot>& series,
                          const MatcherAssignment& assignment,
                          const std::string& scratch_dir);

}  // namespace paranoid
}  // namespace delex

#endif  // DELEX_DELEX_PARANOID_H_
