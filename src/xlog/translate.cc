#include "xlog/translate.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace delex {
namespace xlog {
namespace {

int FindCol(const std::vector<std::string>& schema, const std::string& var) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == var) return static_cast<int>(i);
  }
  return -1;
}

class Translator {
 public:
  Translator(const Program& program, const ExtractorRegistry& registry)
      : program_(program), registry_(registry) {
    for (size_t i = 0; i < program.rules.size(); ++i) {
      const std::string& head = program.rules[i].head.predicate;
      rule_index_.emplace(head, i);
    }
  }

  Result<PlanNodePtr> Build(const std::string& predicate) {
    auto range = rule_index_.equal_range(predicate);
    if (range.first == range.second) {
      return Status::NotFound("no rule defines predicate '" + predicate + "'");
    }
    if (std::distance(range.first, range.second) > 1) {
      return Status::NotSupported("predicate '" + predicate +
                                  "' has multiple rules (union unsupported)");
    }
    if (visiting_.contains(predicate)) {
      return Status::NotSupported("recursive predicate '" + predicate +
                                  "' (xlog forbids recursion)");
    }
    visiting_.insert(predicate);
    Result<PlanNodePtr> result = BuildRule(program_.rules[range.first->second]);
    visiting_.erase(predicate);
    return result;
  }

 private:
  Result<PlanNodePtr> BuildRule(const Rule& rule) {
    PlanNodePtr plan;
    for (const Atom& atom : rule.body) {
      if (atom.predicate == "docs") {
        DELEX_RETURN_NOT_OK(ApplyDocs(atom, &plan));
      } else if (registry_.Contains(atom.predicate)) {
        DELEX_RETURN_NOT_OK(ApplyIE(atom, &plan));
      } else if (IsBuiltin(atom.predicate)) {
        DELEX_RETURN_NOT_OK(ApplyBuiltin(atom, &plan));
      } else if (rule_index_.contains(atom.predicate)) {
        DELEX_RETURN_NOT_OK(ApplyIntensional(atom, &plan));
      } else {
        return Status::NotFound("atom '" + atom.predicate +
                                "' is neither docs, a registered extractor, "
                                "a builtin, nor a rule head");
      }
    }
    if (plan == nullptr) {
      return Status::InvalidArgument("rule for '" + rule.head.predicate +
                                     "' has an empty body");
    }
    // Final π onto the head variables.
    auto project = std::make_shared<PlanNode>();
    project->kind = PlanKind::kProject;
    project->children.push_back(plan);
    for (const Term& term : rule.head.args) {
      if (!term.IsVar()) {
        return Status::NotSupported("literal in rule head");
      }
      int col = FindCol(plan->schema, term.text);
      if (col < 0) {
        return Status::InvalidArgument("head variable '" + term.text +
                                       "' is unbound in rule body");
      }
      project->columns.push_back(col);
      project->schema.push_back(term.text);
    }
    return project;
  }

  Status ApplyDocs(const Atom& atom, PlanNodePtr* plan) {
    if (*plan != nullptr) {
      return Status::NotSupported("docs(...) must be the first atom");
    }
    if (atom.args.size() != 1 || !atom.args[0].IsVar()) {
      return Status::InvalidArgument("docs expects one variable");
    }
    auto scan = std::make_shared<PlanNode>();
    scan->kind = PlanKind::kScan;
    scan->schema.push_back(atom.args[0].text);
    *plan = std::move(scan);
    return Status::OK();
  }

  Status ApplyIE(const Atom& atom, PlanNodePtr* plan) {
    DELEX_ASSIGN_OR_RETURN(ExtractorPtr extractor,
                           registry_.Lookup(atom.predicate));
    size_t expected = 1 + static_cast<size_t>(extractor->OutputArity());
    if (atom.args.size() != expected) {
      return Status::InvalidArgument(
          "IE predicate '" + atom.predicate + "' expects " +
          std::to_string(expected) + " arguments");
    }
    if (*plan == nullptr) {
      return Status::InvalidArgument("IE predicate '" + atom.predicate +
                                     "' has no bound input (docs missing?)");
    }
    if (!atom.args[0].IsVar()) {
      return Status::InvalidArgument("IE input must be a variable");
    }
    int input_col = FindCol((*plan)->schema, atom.args[0].text);
    if (input_col < 0) {
      return Status::InvalidArgument("IE input variable '" +
                                     atom.args[0].text + "' is unbound");
    }
    auto ie = std::make_shared<PlanNode>();
    ie->kind = PlanKind::kIE;
    ie->extractor = std::move(extractor);
    ie->input_col = input_col;
    ie->children.push_back(*plan);
    ie->schema = (*plan)->schema;
    for (size_t i = 1; i < atom.args.size(); ++i) {
      const Term& term = atom.args[i];
      if (!term.IsVar()) {
        return Status::NotSupported("IE output must be a variable");
      }
      if (FindCol(ie->schema, term.text) >= 0) {
        return Status::NotSupported("IE output variable '" + term.text +
                                    "' is already bound");
      }
      ie->schema.push_back(term.text);
    }
    *plan = std::move(ie);
    return Status::OK();
  }

  Status ApplyBuiltin(const Atom& atom, PlanNodePtr* plan) {
    DELEX_ASSIGN_OR_RETURN(BuiltinPred pred, LookupBuiltin(atom.predicate));
    if (static_cast<int>(atom.args.size()) != BuiltinArity(pred)) {
      return Status::InvalidArgument("builtin '" + atom.predicate +
                                     "' has wrong arity");
    }
    if (*plan == nullptr) {
      return Status::InvalidArgument("builtin '" + atom.predicate +
                                     "' appears before any generator atom");
    }
    auto select = std::make_shared<PlanNode>();
    select->kind = PlanKind::kSelect;
    select->pred = pred;
    select->children.push_back(*plan);
    select->schema = (*plan)->schema;
    for (const Term& term : atom.args) {
      switch (term.kind) {
        case Term::Kind::kVariable: {
          int col = FindCol((*plan)->schema, term.text);
          if (col < 0) {
            return Status::InvalidArgument("builtin argument '" + term.text +
                                           "' is unbound");
          }
          select->pred_args.push_back(PredArg::Col(col));
          break;
        }
        case Term::Kind::kString:
          select->pred_args.push_back(PredArg::Lit(Value(term.text)));
          break;
        case Term::Kind::kInt:
          select->pred_args.push_back(PredArg::Lit(Value(term.int_value)));
          break;
      }
    }
    *plan = std::move(select);
    return Status::OK();
  }

  Status ApplyIntensional(const Atom& atom, PlanNodePtr* plan) {
    DELEX_ASSIGN_OR_RETURN(PlanNodePtr sub, Build(atom.predicate));
    if (atom.args.size() != sub->schema.size()) {
      return Status::InvalidArgument("atom '" + atom.predicate +
                                     "' has wrong arity");
    }
    // Rename the subplan's output columns to this atom's variables.
    std::vector<std::string> renamed;
    renamed.reserve(atom.args.size());
    for (const Term& term : atom.args) {
      if (!term.IsVar()) {
        return Status::NotSupported(
            "literal argument to intensional predicate");
      }
      renamed.push_back(term.text);
    }
    sub->schema = std::move(renamed);

    if (*plan == nullptr) {
      *plan = std::move(sub);
      return Status::OK();
    }
    // Natural join on shared variable names.
    auto join = std::make_shared<PlanNode>();
    join->kind = PlanKind::kJoin;
    join->children.push_back(*plan);
    join->children.push_back(sub);
    join->schema = (*plan)->schema;
    const PlanNodePtr& right = join->children[1];
    for (size_t rc = 0; rc < right->schema.size(); ++rc) {
      int lc = FindCol((*plan)->schema, right->schema[rc]);
      if (lc >= 0) {
        join->eq_pairs.emplace_back(lc, static_cast<int>(rc));
      } else {
        join->right_keep.push_back(static_cast<int>(rc));
        join->schema.push_back(right->schema[rc]);
      }
    }
    *plan = std::move(join);
    return Status::OK();
  }

  const Program& program_;
  const ExtractorRegistry& registry_;
  std::unordered_multimap<std::string, size_t> rule_index_;
  std::unordered_set<std::string> visiting_;
};

}  // namespace

Result<PlanNodePtr> TranslateProgram(const Program& program,
                                     const ExtractorRegistry& registry,
                                     const std::string& target) {
  Translator translator(program, registry);
  const std::string& goal =
      target.empty() ? program.TargetPredicate() : target;
  DELEX_ASSIGN_OR_RETURN(PlanNodePtr root, translator.Build(goal));
  AssignIds(root);
  return root;
}

}  // namespace xlog
}  // namespace delex
