#include "xlog/builtins.h"

#include <algorithm>

namespace delex {
namespace xlog {
namespace {

Result<TextSpan> AsSpan(const std::vector<Value>& args, size_t i) {
  if (i >= args.size() || !std::holds_alternative<TextSpan>(args[i])) {
    return Status::InvalidArgument("builtin argument " + std::to_string(i) +
                                   " is not a span");
  }
  return std::get<TextSpan>(args[i]);
}

Result<int64_t> AsInt(const std::vector<Value>& args, size_t i) {
  if (i >= args.size() || !std::holds_alternative<int64_t>(args[i])) {
    return Status::InvalidArgument("builtin argument " + std::to_string(i) +
                                   " is not an integer");
  }
  return std::get<int64_t>(args[i]);
}

Result<std::string> AsString(const std::vector<Value>& args, size_t i) {
  if (i >= args.size() || !std::holds_alternative<std::string>(args[i])) {
    return Status::InvalidArgument("builtin argument " + std::to_string(i) +
                                   " is not a string");
  }
  return std::get<std::string>(args[i]);
}

}  // namespace

Result<BuiltinPred> LookupBuiltin(const std::string& name) {
  if (name == "immBefore") return BuiltinPred::kImmBefore;
  if (name == "before") return BuiltinPred::kBefore;
  if (name == "within") return BuiltinPred::kWithin;
  if (name == "contains") return BuiltinPred::kContains;
  if (name == "containsStr") return BuiltinPred::kContainsStr;
  if (name == "sameSpan") return BuiltinPred::kSameSpan;
  return Status::NotFound("unknown builtin predicate '" + name + "'");
}

bool IsBuiltin(const std::string& name) { return LookupBuiltin(name).ok(); }

int BuiltinArity(BuiltinPred pred) {
  switch (pred) {
    case BuiltinPred::kWithin:
      return 3;
    case BuiltinPred::kImmBefore:
    case BuiltinPred::kBefore:
    case BuiltinPred::kContains:
    case BuiltinPred::kContainsStr:
    case BuiltinPred::kSameSpan:
      return 2;
  }
  return 0;
}

const char* BuiltinName(BuiltinPred pred) {
  switch (pred) {
    case BuiltinPred::kImmBefore:
      return "immBefore";
    case BuiltinPred::kBefore:
      return "before";
    case BuiltinPred::kWithin:
      return "within";
    case BuiltinPred::kContains:
      return "contains";
    case BuiltinPred::kContainsStr:
      return "containsStr";
    case BuiltinPred::kSameSpan:
      return "sameSpan";
  }
  return "?";
}

Result<bool> EvalBuiltin(BuiltinPred pred, const std::vector<Value>& args,
                         std::string_view page_text) {
  switch (pred) {
    case BuiltinPred::kImmBefore: {
      DELEX_ASSIGN_OR_RETURN(TextSpan a, AsSpan(args, 0));
      DELEX_ASSIGN_OR_RETURN(TextSpan b, AsSpan(args, 1));
      return a.end <= b.start && b.start - a.end <= 2;
    }
    case BuiltinPred::kBefore: {
      DELEX_ASSIGN_OR_RETURN(TextSpan a, AsSpan(args, 0));
      DELEX_ASSIGN_OR_RETURN(TextSpan b, AsSpan(args, 1));
      return a.end <= b.start;
    }
    case BuiltinPred::kWithin: {
      DELEX_ASSIGN_OR_RETURN(TextSpan a, AsSpan(args, 0));
      DELEX_ASSIGN_OR_RETURN(TextSpan b, AsSpan(args, 1));
      DELEX_ASSIGN_OR_RETURN(int64_t k, AsInt(args, 2));
      int64_t extent = std::max(a.end, b.end) - std::min(a.start, b.start);
      return extent < k;
    }
    case BuiltinPred::kContains: {
      DELEX_ASSIGN_OR_RETURN(TextSpan a, AsSpan(args, 0));
      DELEX_ASSIGN_OR_RETURN(TextSpan b, AsSpan(args, 1));
      return a.Contains(b);
    }
    case BuiltinPred::kContainsStr: {
      DELEX_ASSIGN_OR_RETURN(TextSpan a, AsSpan(args, 0));
      DELEX_ASSIGN_OR_RETURN(std::string lit, AsString(args, 1));
      if (a.start < 0 || a.end > static_cast<int64_t>(page_text.size())) {
        return Status::InvalidArgument("span out of page bounds");
      }
      std::string_view body = page_text.substr(
          static_cast<size_t>(a.start), static_cast<size_t>(a.length()));
      return body.find(lit) != std::string_view::npos;
    }
    case BuiltinPred::kSameSpan: {
      DELEX_ASSIGN_OR_RETURN(TextSpan a, AsSpan(args, 0));
      DELEX_ASSIGN_OR_RETURN(TextSpan b, AsSpan(args, 1));
      return a == b;
    }
  }
  return Status::Internal("unhandled builtin");
}

}  // namespace xlog
}  // namespace delex
