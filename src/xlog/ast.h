#ifndef DELEX_XLOG_AST_H_
#define DELEX_XLOG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace delex {
namespace xlog {

/// \brief One argument of an atom: a variable, a string literal, or an
/// integer literal.
struct Term {
  enum class Kind { kVariable, kString, kInt };

  Kind kind = Kind::kVariable;
  std::string text;     // variable name or string literal body
  int64_t int_value = 0;

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.text = std::move(name);
    return t;
  }
  static Term Str(std::string s) {
    Term t;
    t.kind = Kind::kString;
    t.text = std::move(s);
    return t;
  }
  static Term Int(int64_t v) {
    Term t;
    t.kind = Kind::kInt;
    t.int_value = v;
    return t;
  }

  bool IsVar() const { return kind == Kind::kVariable; }
};

/// \brief A predicate applied to terms: docs(d), extractTitle(d, title),
/// immBefore(title, abstract), ...
struct Atom {
  std::string predicate;
  std::vector<Term> args;
};

/// \brief A rule `head :- body_1, ..., body_n.`
struct Rule {
  Atom head;
  std::vector<Atom> body;
};

/// \brief A parsed xlog program: a list of rules (no negation/recursion —
/// the same restriction as the paper's xlog).
struct Program {
  std::vector<Rule> rules;

  /// The head predicate of the last rule — by convention the program's
  /// target relation.
  const std::string& TargetPredicate() const {
    return rules.back().head.predicate;
  }
};

}  // namespace xlog
}  // namespace delex

#endif  // DELEX_XLOG_AST_H_
