#ifndef DELEX_XLOG_PLAN_H_
#define DELEX_XLOG_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "extract/extractor.h"
#include "storage/snapshot.h"
#include "xlog/builtins.h"

namespace delex {
namespace xlog {

/// Node kinds of an execution tree (Figure 2b / Figure 3a of the paper):
/// relational operators mixed with IE blackbox procedures.
enum class PlanKind { kScan, kIE, kSelect, kProject, kJoin };

/// \brief One argument of a σ predicate: either a column of the input
/// tuple or a literal value.
struct PredArg {
  int col = -1;
  Value literal;

  bool IsCol() const { return col >= 0; }
  static PredArg Col(int c) {
    PredArg a;
    a.col = c;
    return a;
  }
  static PredArg Lit(Value v) {
    PredArg a;
    a.literal = std::move(v);
    return a;
  }
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// \brief A node of an execution tree.
///
/// The tree is shared between the from-scratch interpreter (below), the
/// baselines, and the Delex engine — they differ only in *how* IE nodes
/// are evaluated, never in plan semantics.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;

  /// Post-order id, assigned by AssignIds; stable across runs and used to
  /// key reuse files and matcher assignments.
  int id = -1;

  /// Output column names (the xlog variables each column binds).
  std::vector<std::string> schema;

  /// kScan: none. kIE/kSelect/kProject: one. kJoin: two.
  std::vector<PlanNodePtr> children;

  // --- kIE ---
  ExtractorPtr extractor;
  int input_col = -1;  ///< column of the child tuple holding the input span

  // --- kSelect ---
  BuiltinPred pred = BuiltinPred::kBefore;
  std::vector<PredArg> pred_args;

  // --- kProject ---
  std::vector<int> columns;  ///< child columns kept, in output order

  // --- kJoin ---
  /// Natural-join equality pairs (left col, right col).
  std::vector<std::pair<int, int>> eq_pairs;
  /// Right columns appended to the output (duplicates of join columns are
  /// dropped).
  std::vector<int> right_keep;

  /// Short human-readable description ("IE[extractPerson]", "σ[within]").
  std::string Label() const;
};

/// \brief Assigns post-order ids to every node. Call once after building.
void AssignIds(const PlanNodePtr& root);

/// \brief Renders the tree with indentation (for docs/tests/examples).
std::string PlanToString(const PlanNode& root);

/// \brief Collects nodes in post-order (children before parents).
void CollectPostOrder(const PlanNodePtr& root, std::vector<PlanNodePtr>* out);

/// \brief Number of IE nodes in the tree.
int CountIENodes(const PlanNode& root);

/// \brief Evaluates σ predicate `node` on `tuple` (resolving PredArgs).
Result<bool> EvalSelect(const PlanNode& node, const Tuple& tuple,
                        std::string_view page_text);

/// \brief Evaluates a join-equality + right_keep combination.
///
/// Appends joined tuples of `left` × `right` to `*out`.
void EvalJoin(const PlanNode& node, const std::vector<Tuple>& left,
              const std::vector<Tuple>& right, std::vector<Tuple>* out);

/// \brief From-scratch execution of a plan on a single page (the No-reuse
/// path; also the correctness oracle for Theorem 1 tests).
Result<std::vector<Tuple>> ExecutePlan(const PlanNode& root, const Page& page);

/// \brief From-scratch execution over a whole snapshot; returns per-page
/// results concatenated with a leading did column.
Result<std::vector<Tuple>> ExecutePlanOnSnapshot(const PlanNode& root,
                                                 const Snapshot& snapshot);

}  // namespace xlog
}  // namespace delex

#endif  // DELEX_XLOG_PLAN_H_
