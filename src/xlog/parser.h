#ifndef DELEX_XLOG_PARSER_H_
#define DELEX_XLOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xlog/ast.h"

namespace delex {
namespace xlog {

/// \brief Parses xlog program text into an AST.
///
/// Grammar (a Datalog variant, §3 of the paper):
///
///   program  := rule+
///   rule     := atom ":-" atom ("," atom)* "."
///   atom     := IDENT "(" term ("," term)* ")"
///   term     := IDENT            (variable)
///             | STRING           ("double-quoted literal")
///             | INTEGER
///
/// Comments run from '#' or '%' to end of line. The paper renders input
/// arguments with an overline; the textual form needs no marker — binding
/// direction is inferred during translation (an argument already bound by
/// earlier atoms is an input).
Result<Program> ParseProgram(std::string_view source);

}  // namespace xlog
}  // namespace delex

#endif  // DELEX_XLOG_PARSER_H_
