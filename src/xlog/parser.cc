#include "xlog/parser.h"

#include <cctype>

namespace delex {
namespace xlog {
namespace {

/// Token kinds produced by the lexer.
enum class TokenKind {
  kIdent,
  kString,
  kInt,
  kLParen,
  kRParen,
  kComma,
  kImplies,  // :-
  kPeriod,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int64_t int_value = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token token;
    token.line = line_;
    if (pos_ >= source_.size()) {
      token.kind = TokenKind::kEnd;
      return token;
    }
    char c = source_[pos_];
    if (c == '(') {
      ++pos_;
      token.kind = TokenKind::kLParen;
      return token;
    }
    if (c == ')') {
      ++pos_;
      token.kind = TokenKind::kRParen;
      return token;
    }
    if (c == ',') {
      ++pos_;
      token.kind = TokenKind::kComma;
      return token;
    }
    if (c == '.') {
      ++pos_;
      token.kind = TokenKind::kPeriod;
      return token;
    }
    if (c == ':') {
      if (pos_ + 1 < source_.size() && source_[pos_ + 1] == '-') {
        pos_ += 2;
        token.kind = TokenKind::kImplies;
        return token;
      }
      return Error("expected ':-'");
    }
    if (c == '"') {
      ++pos_;
      std::string body;
      while (pos_ < source_.size() && source_[pos_] != '"') {
        if (source_[pos_] == '\\' && pos_ + 1 < source_.size()) ++pos_;
        body += source_[pos_++];
      }
      if (pos_ >= source_.size()) return Error("unterminated string literal");
      ++pos_;  // closing quote
      token.kind = TokenKind::kString;
      token.text = std::move(body);
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < source_.size() &&
         std::isdigit(static_cast<unsigned char>(source_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < source_.size() &&
             std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
        ++pos_;
      }
      token.kind = TokenKind::kInt;
      token.int_value = std::stoll(std::string(source_.substr(start, pos_ - start)));
      return token;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        ++pos_;
      }
      token.kind = TokenKind::kIdent;
      token.text = std::string(source_.substr(start, pos_ - start));
      return token;
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < source_.size()) {
      char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' || c == '%') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("xlog parse error at line " +
                                   std::to_string(line_) + ": " + message);
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) {}

  Result<Program> Parse() {
    DELEX_RETURN_NOT_OK(Advance());
    Program program;
    while (current_.kind != TokenKind::kEnd) {
      DELEX_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules.push_back(std::move(rule));
    }
    if (program.rules.empty()) {
      return Status::InvalidArgument("xlog program has no rules");
    }
    return program;
  }

 private:
  Status Advance() {
    DELEX_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (current_.kind != kind) {
      return Status::InvalidArgument(
          "xlog parse error at line " + std::to_string(current_.line) +
          ": expected " + what);
    }
    return Advance();
  }

  Result<Rule> ParseRule() {
    Rule rule;
    DELEX_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    DELEX_RETURN_NOT_OK(Expect(TokenKind::kImplies, "':-'"));
    while (true) {
      DELEX_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      rule.body.push_back(std::move(atom));
      if (current_.kind == TokenKind::kComma) {
        DELEX_RETURN_NOT_OK(Advance());
        continue;
      }
      break;
    }
    DELEX_RETURN_NOT_OK(Expect(TokenKind::kPeriod, "'.'"));
    return rule;
  }

  Result<Atom> ParseAtom() {
    if (current_.kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          "xlog parse error at line " + std::to_string(current_.line) +
          ": expected predicate name");
    }
    Atom atom;
    atom.predicate = current_.text;
    DELEX_RETURN_NOT_OK(Advance());
    DELEX_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      switch (current_.kind) {
        case TokenKind::kIdent:
          atom.args.push_back(Term::Var(current_.text));
          break;
        case TokenKind::kString:
          atom.args.push_back(Term::Str(current_.text));
          break;
        case TokenKind::kInt:
          atom.args.push_back(Term::Int(current_.int_value));
          break;
        default:
          return Status::InvalidArgument(
              "xlog parse error at line " + std::to_string(current_.line) +
              ": expected term");
      }
      DELEX_RETURN_NOT_OK(Advance());
      if (current_.kind == TokenKind::kComma) {
        DELEX_RETURN_NOT_OK(Advance());
        continue;
      }
      break;
    }
    DELEX_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return atom;
  }

  Lexer lexer_;
  Token current_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  return Parser(source).Parse();
}

}  // namespace xlog
}  // namespace delex
