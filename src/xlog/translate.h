#ifndef DELEX_XLOG_TRANSLATE_H_
#define DELEX_XLOG_TRANSLATE_H_

#include <string>

#include "common/status.h"
#include "extract/registry.h"
#include "xlog/ast.h"
#include "xlog/plan.h"

namespace delex {
namespace xlog {

/// \brief Translates a parsed xlog program into an execution tree
/// (the Shen et al. VLDB'07 step the paper performs before handing the
/// tree to Delex, §7).
///
/// Body atoms resolve, in order of declaration, to:
///  - `docs(d)`      → a scan node (must be the first atom of a rule that
///                     does not start from an intensional predicate);
///  - a name bound in `registry` → an IE node: first argument is the input
///    span (must already be bound), remaining arguments bind the
///    blackbox's outputs (must be fresh variables);
///  - a builtin (immBefore, within, ...) → a σ node (all variable
///    arguments must be bound);
///  - an intensional predicate (head of another rule) → its subplan,
///    natural-joined with the atoms translated so far.
///
/// The rule's head becomes a final π. `target` selects which rule head is
/// the program result (default: the head of the last rule). The returned
/// tree has post-order ids assigned.
Result<PlanNodePtr> TranslateProgram(const Program& program,
                                     const ExtractorRegistry& registry,
                                     const std::string& target = "");

}  // namespace xlog
}  // namespace delex

#endif  // DELEX_XLOG_TRANSLATE_H_
